#!/usr/bin/env python3
"""Validate structured log files emitted by `asynth --log-file` (obs/log.hpp).

Checks the contract every consumer (journald shippers, jq pipelines, the
daemon's stats op) relies on:

  * every line parses as exactly one self-contained JSON object -- a torn or
    interleaved line is a logger concurrency bug, never tolerable noise;
  * every line carries the schema fields ts, mono_ms, level, thread, event,
    with ts/mono_ms numeric and level one of debug|info|warn|error;
  * per thread, mono_ms is monotone non-decreasing in file order (lines of
    one thread are emitted under the sink mutex in construction order);
  * with --responses FILE..., every response JSON that carries a req_id has
    at least one log line carrying the same req_id -- the end-to-end
    correlation contract (docs/OBSERVABILITY.md).

Exit code 0 = valid, 1 = invariant violation, 2 = usage/IO error.

Example:
    asynth batch --count 4 --log-level info --log-file events.log -q
    python3 tools/check_log_lines.py events.log
    python3 tools/check_log_lines.py serve.log --responses resp_*.json
"""

import json
import sys

REQUIRED = ("ts", "mono_ms", "level", "thread", "event")
LEVELS = {"debug", "info", "warn", "error"}


def fail(where, message):
    print(f"{where}: {message}", file=sys.stderr)
    return False


def check_log(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        sys.exit(2)

    ok = True
    req_ids = set()
    last_mono = {}  # thread -> last mono_ms seen
    for n, line in enumerate(lines, 1):
        where = f"{path}:{n}"
        if not line:
            ok = fail(where, "empty line")
            continue
        try:
            ev = json.loads(line)
        except ValueError as e:
            ok = fail(where, f"not a JSON object: {e}")
            continue
        if not isinstance(ev, dict):
            ok = fail(where, "line is not a JSON object")
            continue
        missing = [k for k in REQUIRED if k not in ev]
        if missing:
            ok = fail(where, f"missing required fields: {', '.join(missing)}")
            continue
        if not isinstance(ev["ts"], (int, float)) or not isinstance(
            ev["mono_ms"], (int, float)
        ):
            ok = fail(where, "ts/mono_ms must be numeric")
            continue
        if ev["level"] not in LEVELS:
            ok = fail(where, f"unknown level {ev['level']!r}")
            continue
        if not isinstance(ev["event"], str) or not ev["event"]:
            ok = fail(where, "event must be a non-empty string")
            continue
        thread = ev["thread"]
        if ev["mono_ms"] < last_mono.get(thread, float("-inf")):
            ok = fail(where, f"mono_ms went backwards on thread {thread!r}")
        last_mono[thread] = ev["mono_ms"]
        if isinstance(ev.get("req_id"), str):
            req_ids.add(ev["req_id"])
    if not lines:
        ok = fail(path, "log file is empty")
    return ok, req_ids


def check_responses(paths, logged_ids):
    ok = True
    for path in paths:
        try:
            with open(path) as f:
                text = f.read().strip()
        except OSError as e:
            print(f"{path}: cannot read: {e}", file=sys.stderr)
            sys.exit(2)
        try:
            resp = json.loads(text.splitlines()[0]) if text else {}
        except ValueError as e:
            ok = fail(path, f"response is not JSON: {e}")
            continue
        req_id = resp.get("req_id")
        if req_id is None:
            continue  # ops without correlation (stats, metrics) are fine
        if req_id not in logged_ids:
            ok = fail(path, f"response req_id {req_id!r} appears in no log line")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if "--responses" in argv:
        split = argv.index("--responses")
        log_paths, resp_paths = argv[1:split], argv[split + 1:]
    else:
        log_paths, resp_paths = argv[1:], []
    if not log_paths:
        print("check_log_lines: no log files given", file=sys.stderr)
        return 2

    ok = True
    all_ids = set()
    for path in log_paths:
        good, ids = check_log(path)
        ok = good and ok
        all_ids |= ids
        print(f"{path}: {'OK' if good else 'INVALID'}")
    if resp_paths and not check_responses(resp_paths, all_ids):
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
