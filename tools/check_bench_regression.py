#!/usr/bin/env python3
"""Guard against pipeline-stage performance regressions in CI.

Compares one or more pipeline stages' total wall-clock between a baseline
BENCH_pipeline.json (checked in at the repo root) and a freshly generated
report, over the *intersection* of spec names (the baseline sweeps more specs
than the CI smoke run).  Repeat --stage to guard several stages in one run
(the nightly workflow watches `reduce` and `logic`); the exit code reports
the worst verdict across them.  Report schema_versions 1 through 5 are all
accepted (v2 adds store/queue aggregates, v3 the impl-verification fields and
emit/verify stage timings, v4 the metrics-registry "counters" block, v5 the
search-quality label and bound gap, all above or beside the specs[] layout
this reads).  A v4+ report missing its counters block is rejected: that key
is part of the schema contract.  So is a v5 report whose exact-mode rows
carry a nonzero bound gap -- exact search declares no gap by definition, and
a gap there means the producing run was not what the sweep claims.
Do NOT feed it a store-warmed report: a hit's timings describe the producing
run, not this machine.

Raw milliseconds are not comparable across machines, so by default the stage
total is normalised by a calibration total -- the sum of the `expand` and
`state-graph` stages over the same spec set.  Those stages are plain graph
construction that no engine knob touches, so the ratio
    stage_total / calibration_total
cancels machine speed to first order.  Pass --absolute to compare raw
milliseconds instead (useful when baseline and current ran on one machine).

Exit code 0 = within budget, 1 = regression, 2 = usage/data error.

Example (the CI bench-smoke job):
    asynth batch --count 8 --jobs 2 --report BENCH_current.json
    python3 tools/check_bench_regression.py \
        --baseline BENCH_pipeline.json --current BENCH_current.json \
        --stage reduce --max-regress-pct 25
"""

import argparse
import json
import sys

CALIBRATION_STAGES = ("expand", "state-graph")


def die(message):
    """Data/usage error: exit 2 so CI can tell it apart from a regression (1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5)  # v2 adds store hit/miss + queue-wait
                                     # aggregates, v3 impl-verification fields
                                     # and emit/verify stage timings, v4 the
                                     # counters block, v5 the quality label +
                                     # bound gap; the per-spec layout this
                                     # tool reads is shared.


def load_specs(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        die(f"error: cannot read {path}: {e}")
    if report.get("schema_version") not in SUPPORTED_SCHEMAS:
        die(f"error: {path} has schema_version {report.get('schema_version')!r} "
            f"(supported: {SUPPORTED_SCHEMAS})")
    if report.get("schema_version") >= 4:
        counters = report.get("counters")
        if not isinstance(counters, dict):
            die(f"error: {path} is schema_version >= 4 but has no counters object")
        bad = [k for k, v in counters.items() if not isinstance(v, int) or v < 0]
        if bad:
            die(f"error: {path} counters carry non-count values: {bad}")
    specs = report.get("specs")
    if not isinstance(specs, list) or not specs:
        die(f"error: {path} has no specs[]")
    if report.get("schema_version") >= 5:
        # Exact search declares no gap by definition; a nonzero gap on an
        # exact row means the report does not describe an exact sweep and
        # its timings cannot gate exact-mode budgets.
        lying = [s.get("name") for s in specs
                 if s.get("quality", "exact") == "exact" and s.get("bound_gap", 0)]
        if lying:
            die(f"error: {path} has exact-mode specs with nonzero bound_gap: {lying}")
    return {s["name"]: s for s in specs if "name" in s}


def stage_total(specs, names, stage):
    key = f"{stage}_ms"
    samples = [float(specs[n][key]) for n in names if key in specs[n]]
    if not samples:
        # A renamed/dropped stage key must not read as a -100% "improvement":
        # that is exactly when the gate would be defeated silently.
        die(f"error: no {key} samples over the common specs "
            "(schema change? rerun with a matching --stage)")
    return sum(samples)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True, help="checked-in BENCH_pipeline.json")
    ap.add_argument("--current", required=True, help="freshly generated report")
    ap.add_argument("--stage", action="append", default=None,
                    help="stage to guard; repeat for several (default: reduce)")
    ap.add_argument("--max-regress-pct", type=float, default=25.0,
                    help="maximum allowed regression in percent (default: 25)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw milliseconds instead of calibrated ratios")
    args = ap.parse_args()
    stages = args.stage or ["reduce"]

    base = load_specs(args.baseline)
    cur = load_specs(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        die("error: baseline and current share no spec names")

    if not args.absolute:
        base_cal = sum(stage_total(base, common, s) for s in CALIBRATION_STAGES)
        cur_cal = sum(stage_total(cur, common, s) for s in CALIBRATION_STAGES)
        if base_cal <= 0.0 or cur_cal <= 0.0:
            die("error: calibration stages missing; rerun with --absolute")

    failed = False
    for stage in stages:
        base_stage = stage_total(base, common, stage)
        cur_stage = stage_total(cur, common, stage)
        if base_stage <= 0.0:
            die(f"error: baseline has no {stage}_ms samples over the common specs")

        if args.absolute:
            base_metric, cur_metric, unit = base_stage, cur_stage, "ms"
        else:
            base_metric, cur_metric = base_stage / base_cal, cur_stage / cur_cal
            unit = f"x {'+'.join(CALIBRATION_STAGES)}"

        change_pct = 100.0 * (cur_metric - base_metric) / base_metric
        print(f"{stage} over {len(common)} common specs: "
              f"baseline {base_metric:.3f} {unit}, current {cur_metric:.3f} {unit} "
              f"({change_pct:+.1f}%)")

        if change_pct > args.max_regress_pct:
            print(f"FAIL: {stage} regressed {change_pct:.1f}% "
                  f"(budget {args.max_regress_pct:.0f}%)")
            failed = True
        else:
            print(f"OK: {stage} within the {args.max_regress_pct:.0f}% budget")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
