#!/usr/bin/env python3
"""Validate Chrome trace-event JSON emitted by `asynth --trace` / `serve --trace`.

Checks the structural invariants that make a trace loadable and truthful in
chrome://tracing / Perfetto, the same invariants src/obs/trace.cpp promises:

  * the file is well-formed JSON with a traceEvents list;
  * every event carries the required keys for its phase ("B"/"E" need
    name/ts/pid/tid, "M" metadata needs a name and args);
  * per (pid, tid), "B" and "E" events nest properly: every "E" closes the
    most recent open "B" of the same name (a stack, never interleaved), and
    the file leaves no span open;
  * per (pid, tid), timestamps are monotone non-decreasing in file order --
    the emitter sorts and clamps to guarantee this, so a violation means a
    collector bug, not clock jitter.

Exit code 0 = valid, 1 = invariant violation, 2 = usage/IO error.  Repeat the
file argument to validate several traces (the CI bench-smoke job validates a
traced sweep; the service smoke test validates the daemon's per-batch files).

Example:
    asynth --corpus lr --trace trace.json -q
    python3 tools/validate_trace.py trace.json
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        sys.exit(2)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "no traceEvents list")

    ok = True
    stacks = {}     # (pid, tid) -> [open span names]
    last_ts = {}    # (pid, tid) -> last timestamp seen, file order
    counts = {"B": 0, "E": 0, "M": 0}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            ok = fail(path, f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in counts:
            ok = fail(path, f"event {i} has unexpected phase {ph!r}")
            continue
        counts[ph] += 1
        if ph == "M":
            if ev.get("name") != "thread_name" or "name" not in ev.get("args", {}):
                ok = fail(path, f"metadata event {i} is not a thread_name record")
            continue
        missing = [k for k in ("name", "ts", "pid", "tid") if k not in ev]
        if missing:
            ok = fail(path, f"event {i} ({ph}) is missing {missing}")
            continue
        track = (ev["pid"], ev["tid"])
        ts = float(ev["ts"])
        if ts < last_ts.get(track, 0.0):
            ok = fail(path, f"event {i} ({ev['name']}): timestamp {ts} goes backwards "
                            f"on track {track} (last {last_ts[track]})")
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if ph == "B":
            stack.append(ev["name"])
        else:
            if not stack:
                ok = fail(path, f"event {i}: E '{ev['name']}' with no open span "
                                f"on track {track}")
            elif stack[-1] != ev["name"]:
                ok = fail(path, f"event {i}: E '{ev['name']}' closes '{stack[-1]}' "
                                f"on track {track} (improper nesting)")
                stack.pop()
            else:
                stack.pop()

    for track, stack in stacks.items():
        if stack:
            ok = fail(path, f"track {track} ends with open spans: {stack}")
    if counts["B"] != counts["E"]:
        ok = fail(path, f"unbalanced phases: {counts['B']} B vs {counts['E']} E")
    if ok:
        print(f"{path}: OK ({counts['B']} spans on {len(stacks)} tracks, "
              f"{counts['M']} named threads)")
    return ok

def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return 0 if all([validate(p) for p in sys.argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main())
