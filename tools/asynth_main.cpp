// asynth: end-to-end synthesis of partially specified asynchronous systems.
//
// Drives the full DAC'99 flow (handshake expansion -> state graph -> Fig. 9
// concurrency reduction -> CSC -> logic synthesis -> timed analysis -> STG
// recovery) over an astg (.g) file or an embedded corpus entry, printing
// per-stage wall-clock timings and the synthesised circuit.
//
// The `batch` subcommand sweeps the embedded corpus plus a generated random
// workload on a work-stealing thread pool and can serialise the corpus-level
// report as BENCH_pipeline.json (see docs/CLI.md for the full reference):
//
// The `serve` subcommand runs the same engine as a long-lived daemon behind
// a Unix-domain socket with a content-addressed result store in front
// (docs/SERVICE.md), and `client` scripts requests against it:
//
//   asynth --corpus fig1
//   asynth --strategy full --w 0.2 spec.g
//   asynth --corpus lr --out reduced.g
// The `fuzz` subcommand differentially fuzzes the pipeline's redundant
// paths (reference vs incremental engine, exact vs dominance minimiser,
// store round trip, write/parse round trip, CSP front end, netlist vs
// state graph, bounded vs exact quality) over randomly generated
// specifications, shrinking every mismatch (docs/FUZZING.md):
//
//   asynth batch --count 64 --jobs 0 --report BENCH_pipeline.json
//   asynth batch --store results/ --count 64     # resumable sweep
//   asynth serve --socket svc.sock --store results/
//   asynth client --socket svc.sock --corpus lr
//   asynth fuzz --budget 60 --seed 1 --oracle all --dir cex/
//   asynth fuzz --replay cex/cex_engines_s1_i0.g
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "batch/batch.hpp"
#include "benchmarks/corpus.hpp"
#include "benchmarks/generate.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"
#include "service/server.hpp"

namespace {

using namespace asynth;

void print_usage(std::FILE* to) {
    std::fprintf(to,
                 "usage: asynth [options] <spec.g>\n"
                 "       asynth [options] --corpus <name>\n"
                 "       asynth batch [batch options]\n"
                 "       asynth fuzz [fuzz options]\n"
                 "       asynth serve [serve options]\n"
                 "       asynth client [client options] [<spec.g>]\n"
                 "\n"
                 "Runs the full synthesis pipeline: parse -> handshake expansion -> state\n"
                 "graph -> concurrency-reduction search (Fig. 9) -> CSC resolution -> logic\n"
                 "synthesis -> timed analysis -> STG recovery.  On a stage failure the\n"
                 "failed stage and diagnostic go to stderr and the exit code is 1.\n"
                 "See docs/CLI.md for the complete reference and docs/PIPELINE.md for the\n"
                 "stage-by-stage walkthrough.\n"
                 "\n"
                 "input:\n"
                 "  <spec.g>              astg specification file (petrify .g dialect)\n"
                 "  --corpus <name>       use an embedded paper benchmark instead of a file\n"
                 "  --list-corpus         list the embedded benchmarks and exit\n"
                 "\n"
                 "flow options:\n"
                 "  --strategy <s>        none | beam | full   (default: beam, the Fig. 9 search)\n"
                 "  --engine <e>          reference | incremental beam engine (default:\n"
                 "                        incremental; identical results, incremental is faster)\n"
                 "  --minimizer <m>       exact | incremental candidate scoring (default:\n"
                 "                        incremental = dominance-filtered bounds; identical\n"
                 "                        results, faster; see docs/CLI.md)\n"
                 "  --quality <q>         exact | bounded | anytime search quality (default:\n"
                 "                        exact = bit-identical classic beam; bounded admits\n"
                 "                        the beam on literal bounds and reports its bound\n"
                 "                        gap; anytime honours --deadline; docs/SEARCH.md)\n"
                 "  --deadline <ms>       anytime wall-clock budget in milliseconds, checked\n"
                 "                        between search levels (requires --quality anytime)\n"
                 "  --search-jobs <n>     incremental-engine scoring threads; 0 = all hardware\n"
                 "                        cores (default 1; identical results for every value)\n"
                 "  --w <x>               cost weight W in [0,1]; 0 biases CSC, 1 logic\n"
                 "                        (default 0.5)\n"
                 "  --frontier <n>        beam frontier size (default 4)\n"
                 "  --max-levels <n>      beam depth limit (default 128)\n"
                 "  --phases <2|4>        handshake expansion protocol (default 4)\n"
                 "  --csc-signals <n>     max inserted state signals (default 4)\n"
                 "  --no-perf             skip the timed critical-cycle analysis\n"
                 "  --no-recover          skip region-based STG recovery (ignored with --out)\n"
                 "  --verify-impl         emulate the emitted gate-level implementation\n"
                 "                        against the spec's state graph; a divergence is a\n"
                 "                        stage failure (docs/NETLIST.md)\n"
                 "\n"
                 "output:\n"
                 "  --emit <backend>      print the emitted netlist to stdout (verilog |\n"
                 "                        cmodel; repeatable; requires a synthesised circuit)\n"
                 "  --out <file>          write the recovered (reduced) STG as astg text\n"
                 "  --dot <file>          write the reduced state graph as Graphviz dot\n"
                 "  --trace <file>        record a Chrome-trace of the run (load in Perfetto /\n"
                 "                        chrome://tracing) and print a text flamegraph\n"
                 "                        (docs/OBSERVABILITY.md)\n"
                 "  --log-level <l>       debug | info | warn | error | off; structured JSON\n"
                 "                        event lines below this level are dropped\n"
                 "                        (default warn; docs/OBSERVABILITY.md)\n"
                 "  --log-file <file>     append structured log lines there instead of stderr\n"
                 "  --print-spec          echo the parsed specification before running\n"
                 "  -q, --quiet           only print errors (exit code carries the result)\n"
                 "  -h, --help            this message\n"
                 "\n"
                 "batch subcommand (corpus sweep on a work-stealing thread pool):\n"
                 "  --jobs <n>            worker threads; 0 = all hardware cores (default 0)\n"
                 "  --engine <e>          reference | incremental beam engine (default:\n"
                 "                        incremental)\n"
                 "  --minimizer <m>       exact | incremental candidate scoring (default:\n"
                 "                        incremental)\n"
                 "  --quality <q>         exact | bounded | anytime search quality (default:\n"
                 "                        exact; per-spec bound gaps land in the report)\n"
                 "  --deadline <ms>       per-spec anytime budget in milliseconds (requires\n"
                 "                        --quality anytime)\n"
                 "  --seed <n>            first seed of the generated workload (default 1)\n"
                 "  --count <n>           number of generated random specs (default 64)\n"
                 "  --size <n>            handshake calls per generated spec (default 4)\n"
                 "  --concurrency <x>     generator concurrency degree in [0,1] (default 0.5)\n"
                 "  --choice <x>          generator free-choice probability in [0,1]\n"
                 "                        (default 0.15)\n"
                 "  --arbitration <x>     generator arbitration (shared-resource) probability\n"
                 "                        in [0,1] (default 0)\n"
                 "  --counter <x>         generator counter-leaf probability in [0,1]\n"
                 "                        (default 0)\n"
                 "  --choice-ways <k>     minimum branches per generated select (default 2);\n"
                 "                        an unsatisfiable combination with --size is a\n"
                 "                        structured error, not a silent downgrade\n"
                 "  --no-corpus           sweep only the generated workload\n"
                 "  --verify-impl         emulate every synthesised netlist against its\n"
                 "                        spec's state graph (corpus-wide verification sweep)\n"
                 "  --store <dir>         consult/fill a content-addressed result store;\n"
                 "                        finished specs are skipped on re-runs\n"
                 "  --report <file>       write the corpus report as JSON\n"
                 "                        (BENCH_pipeline.json format); a partial report is\n"
                 "                        checkpointed there whenever a spec fails\n"
                 "  --trace <file>        record a Chrome-trace of the sweep (per-worker\n"
                 "                        tracks) and print a text flamegraph\n"
                 "  --log-level <l>       structured log filter (default warn); each spec's\n"
                 "                        lines carry a req_id derived from its store key\n"
                 "  --log-file <file>     append structured log lines there instead of stderr\n"
                 "  -q, --quiet           suppress the per-spec table\n"
                 "\n"
                 "fuzz subcommand (differential fuzzing; see docs/FUZZING.md):\n"
                 "  --budget <n>[s]|<n>x  wall-clock seconds (default unit) or, with the x\n"
                 "                        suffix, an exact iteration count (default: 20x)\n"
                 "  --seed <n>            base PRNG seed; every iteration is reproducible\n"
                 "                        from (seed, index) alone (default 1)\n"
                 "  --oracle <o>          engines | minimizers | store-roundtrip |\n"
                 "                        text-roundtrip | csp-frontend | impl-vs-sg |\n"
                 "                        bounded-vs-exact | all; repeatable (default all)\n"
                 "  --jobs <n>            parallel iterations; 0 = all hardware cores\n"
                 "                        (default 1; results independent of the value)\n"
                 "  --max-size <n>        channel-budget cap; >= 8 enables the multi-way\n"
                 "                        choice family (default 6)\n"
                 "  --dir <dir>           write minimised counterexamples (.g, paired .csp)\n"
                 "  --replay <file.g>     re-check one counterexample through the enabled\n"
                 "                        oracles (honours its '# profile:' header) and exit\n"
                 "  -q, --quiet           only print findings and the final verdict\n"
                 "  exit codes: 0 all oracles agreed, 1 mismatch found, 2 usage error\n"
                 "\n"
                 "serve subcommand (long-running daemon; see docs/SERVICE.md):\n"
                 "  --socket <path>       Unix-domain socket to bind (default asynth.sock)\n"
                 "  --store <dir>         content-addressed result store (default: off)\n"
                 "  --jobs <n>            synthesis workers; 0 = all hardware cores\n"
                 "                        (default 0)\n"
                 "  --queue <n>           bounded request queue capacity (default 64);\n"
                 "                        overflow answers {\"error\":\"queue full\"}\n"
                 "  --report <file>       write a batch-format report on drain\n"
                 "  --trace <dir>         write one Chrome-trace file per drained request\n"
                 "                        batch into <dir> (trace_batch_<n>.json)\n"
                 "  --log-level <l>       structured log filter (default info for daemons)\n"
                 "  --log-file <file>     append structured log lines there instead of stderr\n"
                 "  --slow-ms <ms>        log a warn-level per-stage breakdown for requests\n"
                 "                        slower than this (default: off)\n"
                 "  --high-water <n>      op:\"ready\" reports ready:false at this queue depth\n"
                 "                        (default: 3/4 of --queue)\n"
                 "  -q, --quiet           suppress lifecycle output\n"
                 "  SIGTERM/SIGINT (or an op:\"shutdown\" request) drain gracefully: queued\n"
                 "  work finishes, responses flush, exit code 0; health/ready probes keep\n"
                 "  answering (ready:false) until the drain completes.\n"
                 "\n"
                 "client subcommand (one request per invocation, line-JSON protocol):\n"
                 "  --socket <path>       daemon socket (default asynth.sock)\n"
                 "  --op <op>             synth | stats | metrics | ping | health | ready |\n"
                 "                        shutdown (default synth); op metrics prints the\n"
                 "                        daemon's Prometheus text exposition; op ready's\n"
                 "                        exit code is the readiness verdict (0 = ready)\n"
                 "  <spec.g> | --corpus <name>   specification for op synth\n"
                 "  --name <label>        spec label in the daemon's report\n"
                 "  --id <n>              correlation id echoed in the response\n"
                 "  --req-id <s>          request id threaded through the daemon's log lines,\n"
                 "                        trace spans and the response (<= 128 chars;\n"
                 "                        generated for op synth when omitted)\n"
                 "  --w <x> | --strategy <s>     per-request option overrides\n"
                 "  --out <file>          write the recovered (reduced) STG returned by the\n"
                 "                        daemon as astg text (op synth)\n"
                 "  --no-store            bypass the daemon's result store\n"
                 "  --timeout <s>         response timeout seconds (default 600)\n"
                 "  -q, --quiet           print nothing; the exit code is the verdict\n"
                 "  exit codes: 0 ok, 1 request failed, 2 transport/usage error\n");
}

[[nodiscard]] bool parse_double(const char* s, double& out) {
    char* end = nullptr;
    out = std::strtod(s, &end);
    return end && *end == '\0';
}

/// Parses a non-negative integer; prints a diagnostic naming @p flag on
/// failure so a typo never exits silently.  Digits only: strtoull would
/// silently wrap negative or overflowing inputs into huge values.
[[nodiscard]] bool parse_size(const char* flag, const char* s, std::size_t& out) {
    bool digits_only = *s != '\0';
    for (const char* c = s; *c; ++c)
        if (*c < '0' || *c > '9') digits_only = false;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!digits_only || errno == ERANGE || v > std::numeric_limits<std::size_t>::max()) {
        std::fprintf(stderr, "asynth: %s expects a non-negative integer, got '%s'\n", flag, s);
        return false;
    }
    (void)end;
    out = static_cast<std::size_t>(v);
    return true;
}

/// Parses an --engine value; prints a diagnostic and returns false on typos.
[[nodiscard]] bool parse_engine(const char* s, search_engine& out) {
    if (std::strcmp(s, "reference") == 0) {
        out = search_engine::reference;
        return true;
    }
    if (std::strcmp(s, "incremental") == 0) {
        out = search_engine::incremental;
        return true;
    }
    std::fprintf(stderr, "asynth: unknown engine '%s' (reference | incremental)\n", s);
    return false;
}

/// Parses a --minimizer value; prints a diagnostic and returns false on typos.
[[nodiscard]] bool parse_minimizer(const char* s, minimizer_mode& out) {
    if (std::strcmp(s, "exact") == 0) {
        out = minimizer_mode::exact;
        return true;
    }
    if (std::strcmp(s, "incremental") == 0) {
        out = minimizer_mode::incremental;
        return true;
    }
    std::fprintf(stderr, "asynth: unknown minimizer '%s' (exact | incremental)\n", s);
    return false;
}

/// Parses a --quality value; prints a diagnostic and returns false on typos.
[[nodiscard]] bool parse_quality(const char* s, search_quality& out) {
    if (std::strcmp(s, "exact") == 0) {
        out = search_quality::exact;
        return true;
    }
    if (std::strcmp(s, "bounded") == 0) {
        out = search_quality::bounded;
        return true;
    }
    if (std::strcmp(s, "anytime") == 0) {
        out = search_quality::anytime;
        return true;
    }
    std::fprintf(stderr, "asynth: unknown quality '%s' (exact | bounded | anytime)\n", s);
    return false;
}

/// Parses a --log-level value; prints a diagnostic and returns false on typos.
[[nodiscard]] bool parse_log_level(const char* s, obs::log_level& out) {
    if (auto lvl = obs::level_from_name(s)) {
        out = *lvl;
        return true;
    }
    std::fprintf(stderr, "asynth: unknown log level '%s' (debug | info | warn | error | off)\n",
                 s);
    return false;
}

/// Applies --log-level / --log-file; an unopenable log file is a usage error
/// (the user asked for a capture that cannot happen).
[[nodiscard]] bool configure_logging(obs::log_level lvl, const std::string& file) {
    obs::set_log_level(lvl);
    if (file.empty()) return true;
    std::string err;
    if (!obs::open_log_file(file, err)) {
        std::fprintf(stderr, "asynth: %s\n", err.c_str());
        return false;
    }
    return true;
}

/// A locally-unique request correlation id for `asynth client` when the user
/// did not pass --req-id: pid + monotonic nanoseconds.
[[nodiscard]] std::string generate_req_id() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
    char buf[64];
    std::snprintf(buf, sizeof buf, "c%x-%llx", static_cast<unsigned>(::getpid()),
                  static_cast<unsigned long long>(ns));
    return buf;
}

/// `asynth batch`: embedded corpus + generated workload through run_batch().
/// Exit code 0 only when every spec completed (a CSC "no circuit" verdict
/// still counts as completed -- the verdict is the result).
int run_batch_cli(int argc, char** argv) {
    batch::batch_options opt;
    benchmarks::generator_options gen;
    uint64_t seed = 1;
    std::size_t count = 64;
    bool use_corpus = true, quiet = false;
    std::string report_file, store_dir, trace_file, log_file;
    obs::log_level log_lvl = obs::log_level::warn;

    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "asynth batch: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    auto parse_unit = [&](const char* flag, const char* s, double& out) {
        // !(0 <= out <= 1) rather than out < 0 || out > 1: NaN must fail too.
        if (!parse_double(s, out) || !(out >= 0 && out <= 1)) {
            std::fprintf(stderr, "asynth batch: %s expects a number in [0,1]\n", flag);
            return false;
        }
        return true;
    };

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            print_usage(stdout);
            return 0;
        } else if (arg == "--jobs") {
            if (!parse_size("--jobs", need_value(i, "--jobs"), opt.jobs)) return 2;
        } else if (arg == "--engine") {
            if (!parse_engine(need_value(i, "--engine"), opt.pipeline.search.engine)) return 2;
        } else if (arg == "--minimizer") {
            if (!parse_minimizer(need_value(i, "--minimizer"), opt.pipeline.search.minimizer))
                return 2;
        } else if (arg == "--quality") {
            if (!parse_quality(need_value(i, "--quality"), opt.pipeline.search.quality)) return 2;
        } else if (arg == "--deadline") {
            if (!parse_size("--deadline", need_value(i, "--deadline"),
                            opt.pipeline.search.deadline_ms))
                return 2;
        } else if (arg == "--seed") {
            std::size_t v = 0;
            if (!parse_size("--seed", need_value(i, "--seed"), v)) return 2;
            seed = v;
        } else if (arg == "--count") {
            if (!parse_size("--count", need_value(i, "--count"), count)) return 2;
        } else if (arg == "--size") {
            std::size_t v = 0;
            if (!parse_size("--size", need_value(i, "--size"), v)) return 2;
            // Sizes beyond ~8 already exceed the state-graph budget; 4096 is
            // a generous bound that keeps the int cast from truncating.
            if (v == 0 || v > 4096) {
                std::fprintf(stderr, "asynth batch: --size must be in [1, 4096]\n");
                return 2;
            }
            gen.size = static_cast<int>(v);
        } else if (arg == "--concurrency") {
            if (!parse_unit("--concurrency", need_value(i, "--concurrency"), gen.concurrency))
                return 2;
        } else if (arg == "--choice") {
            if (!parse_unit("--choice", need_value(i, "--choice"), gen.choice)) return 2;
        } else if (arg == "--arbitration") {
            if (!parse_unit("--arbitration", need_value(i, "--arbitration"), gen.arbitration))
                return 2;
        } else if (arg == "--counter") {
            if (!parse_unit("--counter", need_value(i, "--counter"), gen.counter)) return 2;
        } else if (arg == "--choice-ways") {
            std::size_t v = 0;
            if (!parse_size("--choice-ways", need_value(i, "--choice-ways"), v)) return 2;
            if (v < 2 || v > 64) {
                std::fprintf(stderr, "asynth batch: --choice-ways must be in [2, 64]\n");
                return 2;
            }
            gen.min_choice_ways = static_cast<int>(v);
        } else if (arg == "--no-corpus") {
            use_corpus = false;
        } else if (arg == "--verify-impl") {
            opt.pipeline.verify_impl = true;
        } else if (arg == "--store") {
            store_dir = need_value(i, "--store");
        } else if (arg == "--report") {
            report_file = need_value(i, "--report");
        } else if (arg == "--trace") {
            trace_file = need_value(i, "--trace");
        } else if (arg == "--log-level") {
            if (!parse_log_level(need_value(i, "--log-level"), log_lvl)) return 2;
        } else if (arg == "--log-file") {
            log_file = need_value(i, "--log-file");
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "asynth batch: unknown option '%s' (see --help)\n", arg.c_str());
            return 2;
        }
    }
    if (opt.pipeline.search.deadline_ms > 0 &&
        opt.pipeline.search.quality != search_quality::anytime) {
        std::fprintf(stderr, "asynth batch: --deadline requires --quality anytime\n");
        return 2;
    }
    if (!configure_logging(log_lvl, log_file)) return 2;
    // --report doubles as the failure-checkpoint path: a sweep that dies
    // mid-corpus still leaves the finished rows there (batch/batch.hpp).
    opt.checkpoint_file = report_file;

    if (!store_dir.empty()) {
        opt.store = store::result_store::open(store_dir);
        // A store that cannot be opened degrades to a cold sweep; that must
        // be loud (the user asked for resumability) but not fatal.
        if (!opt.store.enabled())
            std::fprintf(stderr, "asynth batch: %s (continuing without a store)\n",
                         opt.store.message().c_str());
    }

    std::vector<benchmarks::named_spec> specs;
    if (use_corpus) specs = benchmarks::corpus_specs();
    try {
        auto generated = benchmarks::generate_workload(seed, count, gen);
        specs.insert(specs.end(), std::make_move_iterator(generated.begin()),
                     std::make_move_iterator(generated.end()));
    } catch (const error& e) {
        // An unsatisfiable knob combination (generate.hpp's validation) is a
        // usage error, reported before any work starts -- never a silently
        // degraded workload.
        std::fprintf(stderr, "asynth batch: %s\n", e.what());
        return 2;
    }
    if (specs.empty()) {
        std::fprintf(stderr, "asynth batch: nothing to run (--no-corpus with --count 0)\n");
        return 2;
    }

    obs::trace_session session;
    if (!trace_file.empty()) {
        // The calling thread is pool worker 0 (batch/pool.hpp), so it gets a
        // span track of its own; name it for the trace viewer.
        obs::name_thread("main");
        session.start();
    }
    auto report = batch::run_batch(specs, opt);
    if (!trace_file.empty()) {
        session.stop();
        std::ofstream out(trace_file, std::ios::binary);
        out << session.chrome_json();
        out.close();
        if (!out) {
            std::fprintf(stderr, "asynth batch: cannot write '%s'\n", trace_file.c_str());
            return 1;
        }
        if (!quiet) {
            std::fputs(session.flamegraph().c_str(), stdout);
            std::printf("wrote %s\n", trace_file.c_str());
        }
    }

    if (!quiet) std::fputs(batch::report_text(report).c_str(), stdout);
    for (const auto& s : report.specs)
        if (!s.completed)
            std::fprintf(stderr, "asynth batch: %s failed at stage %s: %s\n", s.name.c_str(),
                         s.failed_stage.c_str(), s.message.c_str());

    if (!report_file.empty()) {
        std::ofstream out(report_file);
        out << batch::report_json(report);
        out.close();
        if (!out) {
            std::fprintf(stderr, "asynth batch: cannot write '%s'\n", report_file.c_str());
            return 1;
        }
        if (!quiet) std::printf("wrote %s\n", report_file.c_str());
    }
    return report.failed == 0 ? 0 : 1;
}

/// Parses a fuzz --budget value: "<n>x" = iterations, "<n>" or "<n>s" =
/// wall-clock seconds.  Prints a diagnostic and returns false on typos.
[[nodiscard]] bool parse_budget(const char* s, fuzz::fuzz_options& opt) {
    std::string v = s;
    bool iterations = false, seconds_suffix = false;
    if (!v.empty() && (v.back() == 'x' || v.back() == 's')) {
        iterations = v.back() == 'x';
        seconds_suffix = v.back() == 's';
        v.pop_back();
    }
    if (iterations) {
        std::size_t n = 0;
        if (!parse_size("--budget", v.c_str(), n) || n == 0) return false;
        opt.iterations = n;
        opt.seconds = 0.0;
        return true;
    }
    double secs = 0.0;
    if (!parse_double(v.c_str(), secs) || !(secs > 0)) {
        if (!seconds_suffix)
            std::fprintf(stderr, "asynth fuzz: --budget expects <seconds>[s] or <iterations>x\n");
        return false;
    }
    opt.seconds = secs;
    opt.iterations = 0;
    return true;
}

/// `asynth fuzz`: the differential fuzzing harness (fuzz/fuzz.hpp), plus
/// counterexample replay.
int run_fuzz_cli(int argc, char** argv) {
    fuzz::fuzz_options opt;
    uint32_t mask = 0;
    bool quiet = false;
    std::string replay_file;

    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "asynth fuzz: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            print_usage(stdout);
            return 0;
        } else if (arg == "--budget") {
            if (!parse_budget(need_value(i, "--budget"), opt)) return 2;
        } else if (arg == "--seed") {
            std::size_t v = 0;
            if (!parse_size("--seed", need_value(i, "--seed"), v)) return 2;
            opt.seed = v;
        } else if (arg == "--oracle") {
            const char* v = need_value(i, "--oracle");
            if (std::strcmp(v, "all") == 0) {
                mask = fuzz::all_oracles;
            } else if (auto o = fuzz::oracle_from_name(v)) {
                mask |= fuzz::oracle_bit(*o);
            } else {
                std::fprintf(stderr,
                             "asynth fuzz: unknown oracle '%s' (engines | minimizers |"
                             " store-roundtrip | text-roundtrip | csp-frontend | impl-vs-sg |"
                             " bounded-vs-exact | all)\n",
                             v);
                return 2;
            }
        } else if (arg == "--jobs") {
            if (!parse_size("--jobs", need_value(i, "--jobs"), opt.jobs)) return 2;
            if (opt.jobs == 0) opt.jobs = std::max(1u, std::thread::hardware_concurrency());
        } else if (arg == "--max-size") {
            std::size_t v = 0;
            if (!parse_size("--max-size", need_value(i, "--max-size"), v)) return 2;
            if (v < 2 || v > 64) {
                std::fprintf(stderr, "asynth fuzz: --max-size must be in [2, 64]\n");
                return 2;
            }
            opt.max_size = static_cast<int>(v);
        } else if (arg == "--dir") {
            opt.dir = need_value(i, "--dir");
        } else if (arg == "--replay") {
            replay_file = need_value(i, "--replay");
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "asynth fuzz: unknown option '%s' (see --help)\n", arg.c_str());
            return 2;
        }
    }
    if (mask != 0) opt.oracles = mask;

    if (!replay_file.empty()) {
        std::ifstream in(replay_file);
        if (!in) {
            std::fprintf(stderr, "asynth fuzz: cannot open '%s'\n", replay_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        // The counterexample's '# profile:' header names the option profile
        // it was found under; replaying under another would not reproduce.
        fuzz::fuzz_profile profile = fuzz::fuzz_profile::deep;
        std::istringstream lines(text.str());
        for (std::string line; std::getline(lines, line);) {
            const std::string key = "# profile: ";
            if (line.rfind(key, 0) == 0) {
                if (auto p = fuzz::profile_from_name(line.substr(key.size())))
                    profile = *p;
                break;
            }
            if (!line.empty() && line[0] != '#') break;
        }
        std::string csp_text;
        if (replay_file.size() > 2 && replay_file.ends_with(".g")) {
            std::ifstream csp(replay_file.substr(0, replay_file.size() - 2) + ".csp");
            if (csp) {
                std::ostringstream ct;
                ct << csp.rdbuf();
                csp_text = ct.str();
            }
        }
        try {
            std::string diag = fuzz::replay_text(text.str(), csp_text, opt.oracles, profile);
            if (diag.empty()) {
                if (!quiet) std::printf("replay OK: all enabled oracles agree\n");
                return 0;
            }
            std::fputs(diag.c_str(), stdout);
            return 1;
        } catch (const error& e) {
            std::fprintf(stderr, "asynth fuzz: %s\n", e.what());
            return 2;
        }
    }

    try {
        auto report = fuzz::run_fuzz(opt);
        std::string summary = report.summary();
        if (quiet) {
            // Keep only FINDING lines and the final verdict.
            std::istringstream lines(summary);
            summary.clear();
            for (std::string line; std::getline(lines, line);)
                if (line.rfind("  FINDING", 0) == 0 || line.rfind("FUZZ", 0) == 0)
                    summary += line + "\n";
        }
        std::fputs(summary.c_str(), stdout);
        return report.ok() ? 0 : 1;
    } catch (const error& e) {
        std::fprintf(stderr, "asynth fuzz: %s\n", e.what());
        return 2;
    }
}

/// `asynth serve`: the synthesis daemon (service/server.hpp).
int run_serve_cli(int argc, char** argv) {
    service::server_options opt;
    // Daemons default to info so the lifecycle and per-request events land in
    // the journal; one-shot commands stay at warn.
    obs::log_level log_lvl = obs::log_level::info;
    std::string log_file;
    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "asynth serve: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            print_usage(stdout);
            return 0;
        } else if (arg == "--socket") {
            opt.socket_path = need_value(i, "--socket");
        } else if (arg == "--store") {
            opt.service.store_dir = need_value(i, "--store");
        } else if (arg == "--jobs") {
            if (!parse_size("--jobs", need_value(i, "--jobs"), opt.service.jobs)) return 2;
        } else if (arg == "--queue") {
            if (!parse_size("--queue", need_value(i, "--queue"), opt.service.queue_capacity))
                return 2;
            if (opt.service.queue_capacity == 0) {
                std::fprintf(stderr, "asynth serve: --queue must be at least 1\n");
                return 2;
            }
        } else if (arg == "--report") {
            opt.report_file = need_value(i, "--report");
        } else if (arg == "--trace") {
            opt.trace_dir = need_value(i, "--trace");
        } else if (arg == "--log-level") {
            if (!parse_log_level(need_value(i, "--log-level"), log_lvl)) return 2;
        } else if (arg == "--log-file") {
            log_file = need_value(i, "--log-file");
        } else if (arg == "--slow-ms") {
            double t = 0;
            if (!parse_double(need_value(i, "--slow-ms"), t) || !(t > 0)) {
                std::fprintf(stderr, "asynth serve: --slow-ms expects milliseconds > 0\n");
                return 2;
            }
            opt.service.slow_ms = t;
        } else if (arg == "--high-water") {
            if (!parse_size("--high-water", need_value(i, "--high-water"),
                            opt.service.ready_high_water))
                return 2;
            if (opt.service.ready_high_water == 0) {
                std::fprintf(stderr, "asynth serve: --high-water must be at least 1\n");
                return 2;
            }
        } else if (arg == "-q" || arg == "--quiet") {
            opt.verbose = false;
        } else {
            std::fprintf(stderr, "asynth serve: unknown option '%s' (see --help)\n", arg.c_str());
            return 2;
        }
    }
    if (opt.service.ready_high_water > opt.service.queue_capacity) {
        std::fprintf(stderr, "asynth serve: --high-water cannot exceed --queue\n");
        return 2;
    }
    if (!configure_logging(log_lvl, log_file)) return 2;
    return service::run_server(opt);
}

/// `asynth client`: builds one protocol line, sends it, prints the response.
int run_client_cli(int argc, char** argv) {
    service::client_options opt;
    std::string op = "synth", corpus_name, input_file, name, out_file, req_id;
    std::size_t id = 0;
    bool quiet = false, no_store = false;
    double w = -1.0;
    std::string strategy;

    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "asynth client: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            print_usage(stdout);
            return 0;
        } else if (arg == "--socket") {
            opt.socket_path = need_value(i, "--socket");
        } else if (arg == "--op") {
            op = need_value(i, "--op");
        } else if (arg == "--corpus") {
            corpus_name = need_value(i, "--corpus");
        } else if (arg == "--name") {
            name = need_value(i, "--name");
        } else if (arg == "--id") {
            if (!parse_size("--id", need_value(i, "--id"), id)) return 2;
        } else if (arg == "--req-id") {
            req_id = need_value(i, "--req-id");
            if (req_id.empty() || req_id.size() > 128) {
                std::fprintf(stderr, "asynth client: --req-id must be 1..128 characters\n");
                return 2;
            }
        } else if (arg == "--w") {
            if (!parse_double(need_value(i, "--w"), w) || w < 0 || w > 1) {
                std::fprintf(stderr, "asynth client: --w expects a number in [0,1]\n");
                return 2;
            }
        } else if (arg == "--strategy") {
            strategy = need_value(i, "--strategy");
        } else if (arg == "--out") {
            out_file = need_value(i, "--out");
        } else if (arg == "--no-store") {
            no_store = true;
        } else if (arg == "--timeout") {
            double t = 0;
            if (!parse_double(need_value(i, "--timeout"), t) || !(t > 0)) {
                std::fprintf(stderr, "asynth client: --timeout expects seconds > 0\n");
                return 2;
            }
            opt.response_timeout_seconds = t;
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asynth client: unknown option '%s' (see --help)\n",
                         arg.c_str());
            return 2;
        } else if (input_file.empty()) {
            input_file = arg;
        } else {
            std::fprintf(stderr, "asynth client: more than one input file\n");
            return 2;
        }
    }

    // Every synth request carries a correlation id (user-chosen or generated)
    // so its log lines, spans and response can be joined; other ops only echo
    // an explicit --req-id.
    if (req_id.empty() && op == "synth") req_id = generate_req_id();

    service::json_line line;
    line.field("op", op);
    if (id != 0) line.field("id", static_cast<std::uint64_t>(id));
    if (!req_id.empty()) line.field("req_id", req_id);
    if (op == "synth") {
        std::string spec_text;
        if (input_file.empty() == corpus_name.empty()) {
            std::fprintf(stderr,
                         "asynth client: op synth needs exactly one of <spec.g> or --corpus\n");
            return 2;
        }
        if (!corpus_name.empty()) {
            const benchmarks::corpus_entry* entry = nullptr;
            for (const auto& e : benchmarks::corpus_table())
                if (corpus_name == e.name) entry = &e;
            if (!entry) {
                std::fprintf(stderr, "asynth client: unknown corpus entry '%s'\n",
                             corpus_name.c_str());
                return 2;
            }
            spec_text = write_astg(entry->make());
            if (name.empty()) name = corpus_name;
        } else {
            std::ifstream in(input_file);
            if (!in) {
                std::fprintf(stderr, "asynth client: cannot open '%s'\n", input_file.c_str());
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            spec_text = text.str();
        }
        line.field("spec", spec_text);
        if (!name.empty()) line.field("name", name);
        if (w >= 0.0) line.field("w", w);
        if (!strategy.empty()) line.field("strategy", strategy);
        if (no_store) line.field("no_store", true);
        if (!out_file.empty()) line.field("astg", true);
    } else if (!out_file.empty()) {
        std::fprintf(stderr, "asynth client: --out only applies to op synth\n");
        return 2;
    }

    std::string response;
    const int code = service::run_client(opt, std::move(line).finish(), response);
    if (code == 2) {
        std::fprintf(stderr, "asynth client: %s\n", response.c_str());
        return 2;
    }
    if (code == 0 && !out_file.empty()) {
        const auto parsed = service::json_parse(response);
        const service::json_value* astg = parsed ? parsed->find("astg") : nullptr;
        if (!astg || astg->k != service::json_value::kind::string || astg->str.empty()) {
            std::fprintf(stderr,
                         "asynth client: response carries no recovered STG "
                         "(daemon running with recovery disabled?)\n");
            return 1;
        }
        std::ofstream out(out_file);
        out << astg->str;
        if (!out) {
            std::fprintf(stderr, "asynth client: cannot write '%s'\n", out_file.c_str());
            return 1;
        }
    }
    // op metrics carries a Prometheus text exposition escaped inside the
    // JSON line; print it raw so the output pipes straight into a scrape
    // file or promtool.
    if (code == 0 && op == "metrics") {
        const auto parsed = service::json_parse(response);
        const service::json_value* text = parsed ? parsed->find("text") : nullptr;
        if (!text || text->k != service::json_value::kind::string) {
            std::fprintf(stderr, "asynth client: response carries no metrics text\n");
            return 1;
        }
        if (!quiet) std::fputs(text->str.c_str(), stdout);
        return 0;
    }
    if (!quiet) std::printf("%s\n", response.c_str());
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::strcmp(argv[1], "batch") == 0) return run_batch_cli(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "fuzz") == 0) return run_fuzz_cli(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) return run_serve_cli(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "client") == 0) return run_client_cli(argc, argv);
    pipeline_options opt;
    std::string input_file, corpus_name, out_file, dot_file, trace_file, log_file;
    obs::log_level log_lvl = obs::log_level::warn;
    std::vector<std::string> emit_backends;
    bool quiet = false, print_spec = false;

    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "asynth: %s requires a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            print_usage(stdout);
            return 0;
        } else if (arg == "--list-corpus") {
            for (const auto& e : benchmarks::corpus_table())
                std::printf("%-12s %s\n", e.name, e.blurb);
            return 0;
        } else if (arg == "--corpus") {
            corpus_name = need_value(i, "--corpus");
        } else if (arg == "--strategy") {
            const std::string v = need_value(i, "--strategy");
            if (v == "none")
                opt.strategy = reduction_strategy::none;
            else if (v == "beam")
                opt.strategy = reduction_strategy::beam;
            else if (v == "full")
                opt.strategy = reduction_strategy::full;
            else {
                std::fprintf(stderr, "asynth: unknown strategy '%s'\n", v.c_str());
                return 2;
            }
        } else if (arg == "--engine") {
            if (!parse_engine(need_value(i, "--engine"), opt.search.engine)) return 2;
        } else if (arg == "--minimizer") {
            if (!parse_minimizer(need_value(i, "--minimizer"), opt.search.minimizer)) return 2;
        } else if (arg == "--quality") {
            if (!parse_quality(need_value(i, "--quality"), opt.search.quality)) return 2;
        } else if (arg == "--deadline") {
            if (!parse_size("--deadline", need_value(i, "--deadline"), opt.search.deadline_ms))
                return 2;
        } else if (arg == "--search-jobs") {
            if (!parse_size("--search-jobs", need_value(i, "--search-jobs"), opt.search.jobs))
                return 2;
            // 0 = all hardware cores, mirroring the batch subcommand's --jobs.
            if (opt.search.jobs == 0)
                opt.search.jobs = std::max(1u, std::thread::hardware_concurrency());
        } else if (arg == "--w") {
            if (!parse_double(need_value(i, "--w"), opt.search.cost.w) || opt.search.cost.w < 0 ||
                opt.search.cost.w > 1) {
                std::fprintf(stderr, "asynth: --w expects a number in [0,1]\n");
                return 2;
            }
        } else if (arg == "--frontier") {
            if (!parse_size("--frontier", need_value(i, "--frontier"), opt.search.size_frontier))
                return 2;
            if (opt.search.size_frontier == 0) {
                std::fprintf(stderr, "asynth: --frontier must be at least 1\n");
                return 2;
            }
        } else if (arg == "--max-levels") {
            if (!parse_size("--max-levels", need_value(i, "--max-levels"), opt.search.max_levels))
                return 2;
        } else if (arg == "--phases") {
            const std::string v = need_value(i, "--phases");
            if (v != "2" && v != "4") {
                std::fprintf(stderr, "asynth: --phases expects 2 or 4\n");
                return 2;
            }
            opt.expand.phases = v == "2" ? 2 : 4;
        } else if (arg == "--csc-signals") {
            if (!parse_size("--csc-signals", need_value(i, "--csc-signals"), opt.csc.max_signals))
                return 2;
        } else if (arg == "--no-perf") {
            opt.run_performance = false;
        } else if (arg == "--no-recover") {
            opt.recover_stg = false;
        } else if (arg == "--verify-impl") {
            opt.verify_impl = true;
        } else if (arg == "--emit") {
            const char* v = need_value(i, "--emit");
            if (!find_backend(v)) {
                std::fprintf(stderr, "asynth: unknown --emit backend '%s' (verilog | cmodel)\n",
                             v);
                return 2;
            }
            emit_backends.push_back(v);
        } else if (arg == "--out") {
            out_file = need_value(i, "--out");
        } else if (arg == "--dot") {
            dot_file = need_value(i, "--dot");
        } else if (arg == "--trace") {
            trace_file = need_value(i, "--trace");
        } else if (arg == "--log-level") {
            if (!parse_log_level(need_value(i, "--log-level"), log_lvl)) return 2;
        } else if (arg == "--log-file") {
            log_file = need_value(i, "--log-file");
        } else if (arg == "--print-spec") {
            print_spec = true;
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asynth: unknown option '%s' (see --help)\n", arg.c_str());
            return 2;
        } else if (input_file.empty()) {
            input_file = arg;
        } else {
            std::fprintf(stderr, "asynth: more than one input file\n");
            return 2;
        }
    }

    if (input_file.empty() == corpus_name.empty()) {
        std::fprintf(stderr, "asynth: exactly one of <spec.g> or --corpus is required\n\n");
        print_usage(stderr);
        return 2;
    }
    if (opt.search.deadline_ms > 0 && opt.search.quality != search_quality::anytime) {
        std::fprintf(stderr, "asynth: --deadline requires --quality anytime\n");
        return 2;
    }
    // --out needs the recovered STG, so it overrides --no-recover.
    if (!out_file.empty()) opt.recover_stg = true;
    if (!configure_logging(log_lvl, log_file)) return 2;

    obs::trace_session session;
    if (!trace_file.empty()) {
        obs::name_thread("main");
        session.start();
    }

    pipeline_result result;
    if (!corpus_name.empty()) {
        const benchmarks::corpus_entry* entry = nullptr;
        for (const auto& e : benchmarks::corpus_table())
            if (corpus_name == e.name) entry = &e;
        if (!entry) {
            std::fprintf(stderr, "asynth: unknown corpus entry '%s' (try --list-corpus)\n",
                         corpus_name.c_str());
            return 2;
        }
        stg spec = entry->make();
        if (print_spec && !quiet) std::printf("%s\n", write_astg(spec).c_str());
        result = run_pipeline(spec, opt);
    } else {
        std::ifstream in(input_file);
        if (!in) {
            std::fprintf(stderr, "asynth: cannot open '%s'\n", input_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        if (print_spec && !quiet) std::printf("%s\n", text.str().c_str());
        result = run_pipeline_text(text.str(), opt);
    }

    if (!trace_file.empty()) {
        session.stop();
        std::ofstream tout(trace_file, std::ios::binary);
        tout << session.chrome_json();
        tout.close();
        if (!tout) {
            std::fprintf(stderr, "asynth: cannot write '%s'\n", trace_file.c_str());
            return 1;
        }
        if (!quiet) {
            std::fputs(session.flamegraph().c_str(), stdout);
            std::printf("wrote %s\n", trace_file.c_str());
        }
    }

    if (!quiet) std::fputs(pipeline_summary(result).c_str(), stdout);
    // A structured stage failure always reaches stderr and exits nonzero --
    // scripts must never mistake a failed run for a verdict.
    if (!result.completed)
        std::fprintf(stderr, "asynth: stage %s failed: %s\n",
                     result.failed ? stage_name(*result.failed) : "?", result.message.c_str());

    auto write_file = [&](const std::string& path, const std::string& content) {
        std::ofstream out(path);
        out << content;
        out.close();
        if (!out) {
            std::fprintf(stderr, "asynth: cannot write '%s'\n", path.c_str());
            return false;
        }
        if (!quiet) std::printf("wrote %s\n", path.c_str());
        return true;
    };
    // Requested emissions go to stdout even under -q: the flag exists so the
    // netlist can be piped into other tools.
    if (!emit_backends.empty()) {
        if (result.impl_model.nets.empty()) {
            std::fprintf(stderr, "asynth: no circuit to emit (%s)\n",
                         result.completed ? "spec completed without a circuit"
                                          : result.message.c_str());
            return 1;
        }
        for (const auto& b : emit_backends)
            std::fputs((b == "verilog" ? result.verilog : result.cmodel).c_str(), stdout);
    }
    if (!out_file.empty()) {
        if (!result.recovered.ok) {
            std::fprintf(stderr, "asynth: no recovered STG to write (%s)\n",
                         result.recovered.message.c_str());
            return 1;
        }
        if (!write_file(out_file, write_astg(result.recovered.net))) return 1;
    }
    // A valid reduced subgraph always keeps the initial state live; after a
    // reduce-stage failure it is a default view with no base to render.
    if (!dot_file.empty() && result.base_sg && result.reduced.live_states().size() > 0) {
        if (!write_file(dot_file, write_dot(result.reduced))) return 1;
    }
    return result.completed ? 0 : 1;
}
