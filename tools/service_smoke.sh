#!/usr/bin/env bash
# End-to-end smoke of the synthesis service: start `asynth serve` with a
# result store, fire N concurrent client requests twice (distinct specs per
# request), assert the second pass is >= 90% store hits, demonstrate
# request correlation (one --req-id greps identically from the response,
# the daemon's --log-file and the trace spans), probe health/readiness
# before and during a SIGTERM drain, then assert the daemon drains cleanly
# (exit 0, socket removed).
#
# Usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]
#
# The same script backs the CTest `service_smoke` target (concurrency 4) and
# the CI service-smoke job (concurrency 8, store uploaded as an artifact).
set -u

ASYNTH=${1:?usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]}
WORKDIR=${2:?usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]}
N=${3:-8}

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

# Absolutise the binary: the script cds into WORKDIR (callers may pass
# ./build/asynth).
[ -x "$ASYNTH" ] || fail "not an executable: $ASYNTH"
ASYNTH=$(cd "$(dirname "$ASYNTH")" && pwd)/$(basename "$ASYNTH")
TOOLS_DIR=$(cd "$(dirname "$0")" && pwd)

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"
cd "$WORKDIR" || fail "cannot enter $WORKDIR"
SOCKET=svc.sock   # relative: AF_UNIX paths are length-limited

# Eight distinct specs: the embedded corpus, cycled if N > 8.
CORPUS=(fig1 lr qmodule lr_full fig6 par par_manual mmu)

"$ASYNTH" serve --socket "$SOCKET" --store store --jobs 2 --queue 64 \
    --log-file serve_events.log --trace traces \
    --report serve_report.json > serve.log 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null' EXIT

run_pass() {  # $1 = pass index; writes resp_<pass>_<i>.json
    local pass=$1 pids=() i rc=0
    for ((i = 0; i < N; i++)); do
        "$ASYNTH" client --socket "$SOCKET" --corpus "${CORPUS[i % 8]}" \
            --id $((pass * 1000 + i)) > "resp_${pass}_${i}.json" &
        pids+=($!)
    done
    for p in "${pids[@]}"; do wait "$p" || rc=1; done
    return $rc
}

run_pass 1 || fail "first pass had failing requests"
run_pass 2 || fail "second pass had failing requests"

# Every response must be completed; the second pass must be >= 90% hits.
hits=0
for ((i = 0; i < N; i++)); do
    grep -q '"completed":true' "resp_1_${i}.json" || fail "pass 1 request $i not completed: $(cat "resp_1_${i}.json")"
    grep -q '"completed":true' "resp_2_${i}.json" || fail "pass 2 request $i not completed: $(cat "resp_2_${i}.json")"
    grep -q '"store":"hit"' "resp_2_${i}.json" && hits=$((hits + 1))
done
[ $((hits * 10)) -ge $((N * 9)) ] || fail "second pass: only $hits/$N store hits (need >= 90%)"

# Stats must agree that the store served the second pass.
"$ASYNTH" client --socket "$SOCKET" --op stats > stats.json || fail "stats request failed"
grep -q '"store_enabled":true' stats.json || fail "store not enabled: $(cat stats.json)"

# The metrics op returns Prometheus text exposition with the store and
# queue-wait series the daemon accumulated (docs/OBSERVABILITY.md).
"$ASYNTH" client --socket "$SOCKET" --op metrics > metrics.txt || fail "metrics request failed"
grep -q '^asynth_store_hits_total [0-9]' metrics.txt \
    || fail "metrics exposition lacks asynth_store_hits_total: $(head -5 metrics.txt)"
grep -q '^asynth_store_misses_total [0-9]' metrics.txt \
    || fail "metrics exposition lacks asynth_store_misses_total"
grep -q '^asynth_service_queue_wait_ms_bucket{le="' metrics.txt \
    || fail "metrics exposition lacks the queue-wait histogram"
grep -q '^asynth_service_requests_total' metrics.txt \
    || fail "metrics exposition lacks asynth_service_requests_total"

# Liveness and readiness while healthy: health always answers with the
# process fingerprint; ready's exit code is the verdict (0 = ready).
"$ASYNTH" client --socket "$SOCKET" --op health > health.json || fail "health request failed"
grep -q '"ok":true' health.json || fail "health not ok: $(cat health.json)"
grep -q '"version":"' health.json || fail "health lacks version: $(cat health.json)"
grep -q '"uptime_s":' health.json || fail "health lacks uptime_s: $(cat health.json)"
grep -q '"pid":' health.json || fail "health lacks pid: $(cat health.json)"
"$ASYNTH" client --socket "$SOCKET" --op ready > ready.json || fail "daemon not ready while idle"
grep -q '"ready":true' ready.json || fail "ready not true: $(cat ready.json)"
"$ASYNTH" client --socket "$SOCKET" --op ping > ping.json || fail "ping request failed"
grep -q '"version":"' ping.json || fail "ping lacks version: $(cat ping.json)"
grep -q '"uptime_s":' ping.json || fail "ping lacks uptime_s: $(cat ping.json)"

# End-to-end request correlation: one request with a known --req-id must be
# greppable from its response, from the daemon's structured log and from the
# service.request span args of the daemon's trace capture.
"$ASYNTH" client --socket "$SOCKET" --corpus fig1 --req-id smoke-corr-1 \
    > resp_corr.json || fail "correlated request failed"
grep -q '"req_id":"smoke-corr-1"' resp_corr.json \
    || fail "response does not echo the req_id: $(cat resp_corr.json)"
grep -q '"req_id":"smoke-corr-1"' serve_events.log \
    || fail "no log line carries req_id smoke-corr-1"
sleep 0.3  # the dispatcher writes the trace file after the batch drains
grep -ql 'smoke-corr-1' traces/trace_batch_*.json 2>/dev/null \
    || fail "no trace span carries req_id smoke-corr-1"

# Every log line must parse as one self-contained JSON object with the
# schema fields, and every response req_id must appear in the log.
if command -v python3 > /dev/null 2>&1; then
    python3 "$TOOLS_DIR/check_log_lines.py" serve_events.log --responses resp_*.json \
        || fail "check_log_lines rejected serve_events.log"
else
    echo "service_smoke: python3 not found; skipping check_log_lines.py" >&2
fi

# A synthesis client with --out must land the recovered STG on disk.
"$ASYNTH" client --socket "$SOCKET" --corpus lr --out lr_recovered.g -q \
    || fail "client --out request failed"
[ -s lr_recovered.g ] || fail "client --out wrote no recovered STG"
grep -q '^\.model' lr_recovered.g || fail "recovered STG is not ASTG text: $(head -1 lr_recovered.g)"

# Graceful drain on SIGTERM with work in flight: the listen socket stays
# open, so health keeps answering ok:true while ready flips to false until
# the backlog finishes.  --no-store keeps the backlog slow enough to probe.
DRAIN_PIDS=()
for ((i = 0; i < 8; i++)); do
    "$ASYNTH" client --socket "$SOCKET" --corpus mmu --no-store -q &
    DRAIN_PIDS+=($!)
done
sleep 0.3  # let the requests reach the daemon's queue
kill -TERM $SERVER_PID
"$ASYNTH" client --socket "$SOCKET" --op ready > ready_drain.json
READY_RC=$?
[ "$READY_RC" = "1" ] || fail "ready during drain: exit $READY_RC, want 1 ($(cat ready_drain.json))"
grep -q '"ready":false' ready_drain.json || fail "ready not false during drain: $(cat ready_drain.json)"
grep -q '"reason":"draining"' ready_drain.json || fail "ready lacks the drain reason: $(cat ready_drain.json)"
"$ASYNTH" client --socket "$SOCKET" --op health > health_drain.json \
    || fail "health stopped answering during drain: $(cat health_drain.json)"
grep -q '"ok":true' health_drain.json || fail "health not ok during drain: $(cat health_drain.json)"
grep -q '"draining":true' health_drain.json || fail "health does not report draining: $(cat health_drain.json)"
for p in "${DRAIN_PIDS[@]}"; do wait "$p" || fail "in-flight request failed during drain"; done

# Graceful drain on SIGTERM: exit code 0, socket gone, drain line logged.
SERVER_RC=-1
for _ in $(seq 1 100); do
    if ! kill -0 $SERVER_PID 2>/dev/null; then wait $SERVER_PID; SERVER_RC=$?; break; fi
    sleep 0.1
done
trap - EXIT
[ "$SERVER_RC" = "0" ] || fail "server exit code $SERVER_RC after SIGTERM (log: $(cat serve.log))"
[ ! -e "$SOCKET" ] || fail "socket not removed on drain"
grep -q "drained cleanly" serve.log || fail "no clean-drain line in serve.log: $(cat serve.log)"
# The structured journal tells the same lifecycle story.
for ev in server.start server.drain_begin server.drained; do
    grep -q "\"event\":\"$ev\"" serve_events.log || fail "no $ev event in serve_events.log"
done
[ -s serve_report.json ] || fail "drain report not written"
grep -q '"schema_version": 5' serve_report.json || fail "drain report is not schema v5"
grep -q '"counters": {' serve_report.json || fail "drain report lacks the counters block"
# Exact-mode service runs must declare a zero aggregate gap (schema v5).
grep -q '"max_bound_gap": 0' serve_report.json || fail "drain report gap is not zero"

# The store survives the daemon and is shared across tools: a batch sweep
# over the embedded corpus against the same store must hit every spec the
# service already synthesised (batch and service use one key discipline).
"$ASYNTH" batch --count 0 --store store --report batch_resume.json -q \
    || fail "batch resume against the service store failed"
want=$((N < 8 ? N : 8))
got=$(grep -o '"store_hits": [0-9]*' batch_resume.json | head -1 | grep -o '[0-9]*$')
[ "${got:-0}" -ge "$want" ] || fail "batch resume: $got corpus hits (need >= $want)"

echo "service_smoke: OK ($hits/$N second-pass hits; $got batch-resume hits; artifacts in $WORKDIR)"
exit 0
