#!/usr/bin/env bash
# End-to-end smoke of the synthesis service: start `asynth serve` with a
# result store, fire N concurrent client requests twice (distinct specs per
# request), assert the second pass is >= 90% store hits, then SIGTERM the
# daemon and assert it drains cleanly (exit 0, socket removed).
#
# Usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]
#
# The same script backs the CTest `service_smoke` target (concurrency 4) and
# the CI service-smoke job (concurrency 8, store uploaded as an artifact).
set -u

ASYNTH=${1:?usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]}
WORKDIR=${2:?usage: service_smoke.sh <asynth-binary> <workdir> [concurrency]}
N=${3:-8}

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

# Absolutise the binary: the script cds into WORKDIR (callers may pass
# ./build/asynth).
[ -x "$ASYNTH" ] || fail "not an executable: $ASYNTH"
ASYNTH=$(cd "$(dirname "$ASYNTH")" && pwd)/$(basename "$ASYNTH")

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"
cd "$WORKDIR" || fail "cannot enter $WORKDIR"
SOCKET=svc.sock   # relative: AF_UNIX paths are length-limited

# Eight distinct specs: the embedded corpus, cycled if N > 8.
CORPUS=(fig1 lr qmodule lr_full fig6 par par_manual mmu)

"$ASYNTH" serve --socket "$SOCKET" --store store --jobs 2 --queue 64 \
    --report serve_report.json > serve.log 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null' EXIT

run_pass() {  # $1 = pass index; writes resp_<pass>_<i>.json
    local pass=$1 pids=() i rc=0
    for ((i = 0; i < N; i++)); do
        "$ASYNTH" client --socket "$SOCKET" --corpus "${CORPUS[i % 8]}" \
            --id $((pass * 1000 + i)) > "resp_${pass}_${i}.json" &
        pids+=($!)
    done
    for p in "${pids[@]}"; do wait "$p" || rc=1; done
    return $rc
}

run_pass 1 || fail "first pass had failing requests"
run_pass 2 || fail "second pass had failing requests"

# Every response must be completed; the second pass must be >= 90% hits.
hits=0
for ((i = 0; i < N; i++)); do
    grep -q '"completed":true' "resp_1_${i}.json" || fail "pass 1 request $i not completed: $(cat "resp_1_${i}.json")"
    grep -q '"completed":true' "resp_2_${i}.json" || fail "pass 2 request $i not completed: $(cat "resp_2_${i}.json")"
    grep -q '"store":"hit"' "resp_2_${i}.json" && hits=$((hits + 1))
done
[ $((hits * 10)) -ge $((N * 9)) ] || fail "second pass: only $hits/$N store hits (need >= 90%)"

# Stats must agree that the store served the second pass.
"$ASYNTH" client --socket "$SOCKET" --op stats > stats.json || fail "stats request failed"
grep -q '"store_enabled":true' stats.json || fail "store not enabled: $(cat stats.json)"

# The metrics op returns Prometheus text exposition with the store and
# queue-wait series the daemon accumulated (docs/OBSERVABILITY.md).
"$ASYNTH" client --socket "$SOCKET" --op metrics > metrics.txt || fail "metrics request failed"
grep -q '^asynth_store_hits_total [0-9]' metrics.txt \
    || fail "metrics exposition lacks asynth_store_hits_total: $(head -5 metrics.txt)"
grep -q '^asynth_store_misses_total [0-9]' metrics.txt \
    || fail "metrics exposition lacks asynth_store_misses_total"
grep -q '^asynth_service_queue_wait_ms_bucket{le="' metrics.txt \
    || fail "metrics exposition lacks the queue-wait histogram"
grep -q '^asynth_service_requests_total' metrics.txt \
    || fail "metrics exposition lacks asynth_service_requests_total"

# A synthesis client with --out must land the recovered STG on disk.
"$ASYNTH" client --socket "$SOCKET" --corpus lr --out lr_recovered.g -q \
    || fail "client --out request failed"
[ -s lr_recovered.g ] || fail "client --out wrote no recovered STG"
grep -q '^\.model' lr_recovered.g || fail "recovered STG is not ASTG text: $(head -1 lr_recovered.g)"

# Graceful drain on SIGTERM: exit code 0, socket gone, drain line logged.
kill -TERM $SERVER_PID
SERVER_RC=-1
for _ in $(seq 1 100); do
    if ! kill -0 $SERVER_PID 2>/dev/null; then wait $SERVER_PID; SERVER_RC=$?; break; fi
    sleep 0.1
done
trap - EXIT
[ "$SERVER_RC" = "0" ] || fail "server exit code $SERVER_RC after SIGTERM (log: $(cat serve.log))"
[ ! -e "$SOCKET" ] || fail "socket not removed on drain"
grep -q "drained cleanly" serve.log || fail "no clean-drain line in serve.log: $(cat serve.log)"
[ -s serve_report.json ] || fail "drain report not written"
grep -q '"schema_version": 5' serve_report.json || fail "drain report is not schema v5"
grep -q '"counters": {' serve_report.json || fail "drain report lacks the counters block"
# Exact-mode service runs must declare a zero aggregate gap (schema v5).
grep -q '"max_bound_gap": 0' serve_report.json || fail "drain report gap is not zero"

# The store survives the daemon and is shared across tools: a batch sweep
# over the embedded corpus against the same store must hit every spec the
# service already synthesised (batch and service use one key discipline).
"$ASYNTH" batch --count 0 --store store --report batch_resume.json -q \
    || fail "batch resume against the service store failed"
want=$((N < 8 ? N : 8))
got=$(grep -o '"store_hits": [0-9]*' batch_resume.json | head -1 | grep -o '[0-9]*$')
[ "${got:-0}" -ge "$want" ] || fail "batch resume: $got corpus hits (need >= $want)"

echo "service_smoke: OK ($hits/$N second-pass hits; $got batch-resume hits; artifacts in $WORKDIR)"
exit 0
