#!/usr/bin/env python3
"""Check that fenced help-text blocks in the docs match the binary.

Markdown files may annotate a fenced code block with a marker comment:

    <!-- check-cli-docs: asynth --help -->
    ```
    usage: asynth [options] <spec.g>
    ...
    ```

For every marker this tool runs the named command (resolving `asynth`
against --bin-dir) and diffs its output byte-for-byte against the fence
contents.  Any mismatch prints a unified diff and fails the run, so
docs/CLI.md can never drift from what the CLI actually prints.

Usage:
    tools/check_cli_docs.py [--bin-dir build] [files...]

With no files, every *.md under docs/ plus README.md is scanned.  Files
without markers are fine (scanned, nothing to check).  Exit codes:
0 all blocks match, 1 a block differs or a command failed, 2 usage error.
"""

import argparse
import difflib
import os
import re
import subprocess
import sys

MARKER = re.compile(r"^<!--\s*check-cli-docs:\s*(.+?)\s*-->\s*$")
FENCE = re.compile(r"^```")


def find_blocks(text, path):
    """Yields (lineno, command, block_text) for each marked fence."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = MARKER.match(lines[i])
        if not m:
            i += 1
            continue
        command = m.group(1)
        # The fence must open on the next non-blank line.
        j = i + 1
        while j < len(lines) and not lines[j].strip():
            j += 1
        if j >= len(lines) or not FENCE.match(lines[j]):
            die(f"error: {path}:{i + 1}: marker not followed by a fenced block")
        body = []
        k = j + 1
        while k < len(lines) and not FENCE.match(lines[k]):
            body.append(lines[k])
            k += 1
        if k >= len(lines):
            die(f"error: {path}:{j + 1}: unterminated fenced block")
        yield i + 1, command, "\n".join(body) + "\n"
        i = k + 1


def die(message):
    print(message, file=sys.stderr)
    sys.exit(1)


def run_command(command, bin_dir):
    """Runs `command` with bin_dir prepended to PATH; returns its output."""
    env = dict(os.environ)
    env["PATH"] = os.path.abspath(bin_dir) + os.pathsep + env.get("PATH", "")
    try:
        proc = subprocess.run(
            command, shell=True, env=env, capture_output=True, text=True, timeout=60
        )
    except subprocess.TimeoutExpired:
        return None, f"timed out after 60s"
    if proc.returncode != 0:
        return None, f"exited {proc.returncode}: {proc.stderr.strip()}"
    return proc.stdout, None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bin-dir",
        default="build",
        help="directory holding the asynth binary (prepended to PATH)",
    )
    parser.add_argument("files", nargs="*", help="markdown files to scan")
    args = parser.parse_args()

    files = args.files
    if not files:
        files = sorted(
            os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md")
        )
        if os.path.exists("README.md"):
            files.append("README.md")

    checked = 0
    failures = 0
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            die(f"error: cannot read {path}: {exc}")
        for lineno, command, expected in find_blocks(text, path):
            checked += 1
            actual, err = run_command(command, args.bin_dir)
            if err is not None:
                print(f"FAIL {path}:{lineno}: `{command}` {err}")
                failures += 1
                continue
            if actual == expected:
                print(f"ok   {path}:{lineno}: `{command}`")
                continue
            failures += 1
            print(f"FAIL {path}:{lineno}: `{command}` output differs from the doc:")
            diff = difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"{path} (documented)",
                tofile=f"{command} (actual)",
            )
            sys.stdout.writelines(diff)
    if checked == 0:
        print("warning: no check-cli-docs markers found", file=sys.stderr)
    if failures:
        print(f"{failures} of {checked} block(s) out of sync", file=sys.stderr)
        return 1
    print(f"all {checked} documented block(s) match the binary")
    return 0


if __name__ == "__main__":
    sys.exit(main())
