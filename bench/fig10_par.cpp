// Fig. 10: the PAR component case study.
//
// Paper claims reproduced here:
//  * the tool performs the 4-phase expansion automatically (Fig 10.b);
//  * a direct implementation of the maximally concurrent behaviour is about
//    twice as complex as the reduced one (extra encoding logic);
//  * reduction preserving b? || c? finds an *asymmetric* solution
//    (one channel's handshake chained behind the other's);
//  * comparison against the manual Tangram-style design (Fig 10.c/f).
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_figure() {
    std::printf("\n=== Fig. 10: PAR component ===\n");
    auto par = benchmarks::par_component();
    auto expanded = expand_handshakes(par);
    auto sg = state_graph::generate(expanded).graph;
    std::printf("4-phase expansion: %zu states, %zu concurrent event pairs\n", sg.state_count(),
                count_concurrent_pairs(subgraph::full(sg)));

    flow_options direct;
    direct.strategy = reduction_strategy::none;
    direct.csc.max_signals = 6;
    auto max_rep = run_flow_from_sg(sg, direct);
    print_header("PAR implementations");
    print_row("max concurrency", max_rep);

    std::vector<std::pair<sg_event, sg_event>> keep = {
        {sg_event{signal_id(sg, "bi"), edge::plus}, sg_event{signal_id(sg, "ci"), edge::plus}}};
    auto red_rep = chained_flow(sg, keep);
    print_row("reduced (b? || c?)", red_rep);

    flow_options manual;
    manual.strategy = reduction_strategy::none;
    auto man_rep =
        run_flow_from_sg(state_graph::generate(benchmarks::par_manual()).graph, manual);
    print_row("manual (Tangram)", man_rep);

    if (max_rep.synth.ok && red_rep.synth.ok && man_rep.synth.ok) {
        std::printf("\nmax-conc / reduced area ratio: %.2fx (paper: ~2x)\n",
                    max_rep.area() / red_rep.area());
        std::printf("reduced / manual area ratio:   %.2fx (paper: 0.88x)\n",
                    red_rep.area() / man_rep.area());
        std::printf("\nreduced circuit (asymmetric, cf. paper's observation):\n");
        for (const auto& i : red_rep.synth.ckt.impls)
            std::printf("    %s\n", i.equation.c_str());
        std::printf("manual circuit:\n");
        for (const auto& i : man_rep.synth.ckt.impls)
            std::printf("    %s\n", i.equation.c_str());
    }
}

void bm_par_expansion_flow(benchmark::State& state) {
    auto par = benchmarks::par_component();
    for (auto _ : state) {
        auto e = expand_handshakes(par);
        auto g = state_graph::generate(e);
        benchmark::DoNotOptimize(g.graph.state_count());
    }
}
BENCHMARK(bm_par_expansion_flow);

void bm_par_chained_reduction(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    std::vector<std::pair<sg_event, sg_event>> keep = {
        {sg_event{signal_id(sg, "bi"), edge::plus}, sg_event{signal_id(sg, "ci"), edge::plus}}};
    for (auto _ : state) {
        auto rep = chained_flow(sg, keep);
        benchmark::DoNotOptimize(rep.area());
    }
}
BENCHMARK(bm_par_chained_reduction);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
