// Figs. 7 and 8: the forward-reduction operation on the SG fragment with a
// choice (d | e) concurrent with event a.  Reproduces the paper's exact
// numbers: the original fragment has 9 states and 11 arcs; FwdRed(a, d)
// removes the a-arcs of s1 and s2, prunes s6 and s7, and leaves a 7-state
// 6-arc SG where a is ordered after b, d and e.
#include "bench_util.hpp"
#include "core/reduce.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

er_component component_of(const subgraph& g, int32_t signal) {
    auto ev = *g.base().find_event(signal, edge::plus);
    return excitation_regions(g, ev).at(0);
}

void print_figure() {
    std::printf("\n=== Fig. 8: FwdRed on the choice fragment ===\n");
    auto base = benchmarks::fig8_fragment();
    auto g = subgraph::full(base);
    std::printf("original: %zu states, %zu arcs (paper: 9 states, 11 arcs)\n",
                g.live_state_count(), g.live_arc_count());
    enum : int32_t { A, B, C, D, E };
    fwdred_stats st;
    auto red = forward_reduction(g, component_of(g, A), component_of(g, D), fwdred_options{},
                                 &st);
    if (!red) {
        std::printf("unexpected: reduction rejected\n");
        return;
    }
    std::printf("FwdRed(a,d): removed %zu arcs, pruned %zu states\n", st.arcs_removed,
                st.states_removed);
    std::printf("reduced: %zu states, %zu arcs (paper: 7 states, 6 arcs)\n",
                red->live_state_count(), red->live_arc_count());
    auto ev = [&](int32_t s) { return *base.find_event(s, edge::plus); };
    std::printf("a || b: %s, a || d: %s, a || e: %s (paper: all ordered)\n",
                concurrent_by_diamond(*red, ev(A), ev(B)) ? "yes" : "no",
                concurrent_by_diamond(*red, ev(A), ev(D)) ? "yes" : "no",
                concurrent_by_diamond(*red, ev(A), ev(E)) ? "yes" : "no");
    // The fragment is acyclic, so s5/s8 are terminal in the original too:
    // validity requires no *new* deadlocks.
    std::printf("validity: output-persistent=%s, new deadlocks=%zu\n",
                check_speed_independence(*red).output_persistent ? "yes" : "no",
                deadlock_states(*red).size() - deadlock_states(g).size());
}

void bm_fwdred_single(benchmark::State& state) {
    auto base = benchmarks::fig8_fragment();
    auto g = subgraph::full(base);
    auto a = component_of(g, 0);
    auto d = component_of(g, 3);
    for (auto _ : state) {
        auto red = forward_reduction(g, a, d);
        benchmark::DoNotOptimize(red.has_value());
    }
}
BENCHMARK(bm_fwdred_single);

void bm_fwdred_enumeration(benchmark::State& state) {
    // All-pairs reduction attempt on a larger SG (expanded MMU).
    auto sg = state_graph::generate(expand_handshakes(benchmarks::mmu_controller())).graph;
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto comps = excitation_regions(g);
        std::size_t accepted = 0;
        for (const auto& a : comps) {
            if (g.base().is_input_event(a.event)) continue;
            for (const auto& b : comps) {
                if (&a == &b || a.event == b.event) continue;
                if (!concurrent(a, b)) continue;
                if (forward_reduction(g, a, b)) ++accepted;
            }
        }
        benchmark::DoNotOptimize(accepted);
    }
}
BENCHMARK(bm_fwdred_enumeration);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
