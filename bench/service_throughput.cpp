// Synthesis-service throughput: requests/second through service::engine
// (the transport-free core of `asynth serve`) with a cold versus a warm
// result store, at 1, half and all hardware cores.
//
// "Cold" re-opens a fresh store directory every iteration, so each request
// pays full synthesis plus the record write; "warm" pre-fills the store once
// and every request is a content-addressed hit -- the amortisation the store
// exists for.  The off/cold/warm split at a fixed job count isolates the
// store's own cost: `off` vs `cold` is the write+lookup overhead, `cold` vs
// `warm` is the synthesis work saved per request.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include <unistd.h>

#include "batch/pool.hpp"
#include "benchmarks/generate.hpp"
#include "petri/astg_io.hpp"
#include "service/service.hpp"

namespace {

using namespace asynth;
namespace fs = std::filesystem;

/// A fixed 16-request workload (size-3 handshake specs, ~mmu scale), built
/// once; each element is a ready-to-execute synth request.
const std::vector<service::request>& workload() {
    static const std::vector<service::request> reqs = [] {
        benchmarks::generator_options opt;
        opt.size = 3;
        std::vector<service::request> out;
        for (const auto& spec : benchmarks::generate_workload(1, 16, opt)) {
            service::request r;
            r.op = "synth";
            r.spec_name = spec.name;
            r.spec_text = write_astg(spec.net);
            r.options = pipeline_options{};
            out.push_back(std::move(r));
        }
        return out;
    }();
    return reqs;
}

std::string bench_dir(const char* tag) {
    return (fs::temp_directory_path() /
            (std::string("asynth_bench_store_") + tag + "_" + std::to_string(::getpid())))
        .string();
}

/// Runs every request of the workload once over a pool of `jobs` workers.
void run_requests(service::engine& eng, std::size_t jobs) {
    const auto& reqs = workload();
    batch::work_stealing_pool pool(jobs);
    pool.run(reqs.size(), [&](std::size_t i) {
        const std::string resp = eng.execute(reqs[i], 0.0);
        benchmark::DoNotOptimize(resp.data());
    });
}

enum class mode { off, cold, warm };

void bm_service_throughput(benchmark::State& state, mode m) {
    const auto jobs = static_cast<std::size_t>(state.range(0));
    const std::string dir = bench_dir(m == mode::cold ? "cold" : "warm");

    service::service_options opt;
    opt.jobs = jobs;
    if (m != mode::off) opt.store_dir = dir;

    // Warm: one engine, store pre-filled by a priming pass outside the loop.
    fs::remove_all(dir);
    std::optional<service::engine> warm_engine;
    service::engine_stats primed{};
    if (m == mode::warm) {
        warm_engine.emplace(opt);
        run_requests(*warm_engine, jobs);
        primed = warm_engine->stats();  // baseline: exclude the priming misses
    }

    for (auto _ : state) {
        if (m == mode::warm) {
            run_requests(*warm_engine, jobs);
        } else {
            // off/cold: a fresh engine (and for cold a fresh store) per
            // iteration, so every request synthesises.
            state.PauseTiming();
            if (m == mode::cold) fs::remove_all(dir);
            service::engine eng(opt);
            state.ResumeTiming();
            run_requests(eng, jobs);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * workload().size()));
    if (m == mode::warm) {
        // Hit rate of the *timed* iterations only (the priming pass's
        // misses are subtracted out).
        const auto s = warm_engine->stats();
        const auto hits = s.store_hits - primed.store_hits;
        const auto misses = s.store_misses - primed.store_misses;
        state.counters["hit_pct"] = 100.0 * static_cast<double>(hits) /
                                    static_cast<double>(std::max<std::uint64_t>(1, hits + misses));
    }
    fs::remove_all(dir);
}

void job_counts(benchmark::internal::Benchmark* b) {
    const auto hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    b->Arg(1);
    if (hw / 2 > 1) b->Arg(hw / 2);
    if (hw > 1 && hw != hw / 2) b->Arg(hw);
    b->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK_CAPTURE(bm_service_throughput, store_off, mode::off)->Apply(job_counts);
BENCHMARK_CAPTURE(bm_service_throughput, store_cold, mode::cold)->Apply(job_counts);
BENCHMARK_CAPTURE(bm_service_throughput, store_warm, mode::warm)->Apply(job_counts);

}  // namespace

int main(int argc, char** argv) {
    std::printf("service throughput over %zu requests, %u hardware cores\n",
                workload().size(), std::thread::hardware_concurrency());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
