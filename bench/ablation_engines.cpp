// Ablation: engine choices inside the flow.
//  * exact (prime enumeration + branch-and-bound) vs heuristic (espresso
//    style) two-level minimisation for the final equations;
//  * single-pass vs multi-pass heuristic minimisation inside the search
//    cost function.
#include "bench_util.hpp"
#include "bdd/symbolic.hpp"
#include "logic/synthesis.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_symbolic_ablation() {
    std::printf("\n=== Ablation: explicit vs symbolic (BDD) reachability ===\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "spec", "explicit", "symbolic", "bdd nodes",
                "iterations");
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto expanded = expand_handshakes(spec);
        auto gen = state_graph::generate(expanded);
        std::unordered_map<dyn_bitset, bool> markings;
        for (const auto& s : gen.graph.states()) markings.emplace(s.m, true);
        auto sym = symbolic_reachable_markings(expanded);
        std::printf("%-10s %12zu %12.0f %12zu %12zu %s\n", name.c_str(), markings.size(),
                    sym.reachable_markings, sym.bdd_nodes, sym.iterations,
                    markings.size() == static_cast<std::size_t>(sym.reachable_markings)
                        ? "(agree)" : "(MISMATCH)");
    }
}

void print_ablation() {
    std::printf("\n=== Ablation: minimiser choice (exact vs heuristic) ===\n");
    std::printf("%-10s %14s %14s\n", "spec", "exact(lits)", "heuristic(lits)");
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto sg = state_graph::generate(expand_handshakes(spec)).graph;
        if (sg.state_count() > 120) {
            // CSC-encoding the largest unreduced graphs dominates the whole
            // bench run; the minimiser comparison is about the covers, so
            // the small/medium specs carry the signal.
            std::printf("%-10s %14s %14s\n", name.c_str(), "(skipped)", "-");
            continue;
        }
        auto g = subgraph::full(sg);
        auto csc = resolve_csc(g, csc_options{6, 4});
        if (!csc.solved) {
            std::printf("%-10s %14s %14s\n", name.c_str(), "csc-unsolved", "-");
            continue;
        }
        auto enc = subgraph::full(csc.graph);
        std::size_t exact_lits = 0, heur_lits = 0;
        for (uint32_t s = 0; s < csc.graph.signals().size(); ++s) {
            if (csc.graph.signals()[s].kind == signal_kind::input) continue;
            if (!csc.graph.find_event(static_cast<int32_t>(s), edge::plus)) continue;
            auto ns = derive_nextstate(enc, s);
            exact_lits += minimize_exact(ns.spec).literal_count();
            heur_lits += minimize_heuristic(ns.spec).literal_count();
        }
        std::printf("%-10s %14zu %14zu\n", name.c_str(), exact_lits, heur_lits);
    }
}

void bm_minimize_exact(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::mmu_controller())).graph;
    auto g = subgraph::full(sg);
    auto ns = derive_nextstate(g, static_cast<uint32_t>(signal_id(sg, "lo")));
    for (auto _ : state) {
        auto c = minimize_exact(ns.spec);
        benchmark::DoNotOptimize(c.literal_count());
    }
}
BENCHMARK(bm_minimize_exact);

void bm_minimize_heuristic(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::mmu_controller())).graph;
    auto g = subgraph::full(sg);
    auto ns = derive_nextstate(g, static_cast<uint32_t>(signal_id(sg, "lo")));
    for (auto _ : state) {
        auto c = minimize_heuristic(ns.spec);
        benchmark::DoNotOptimize(c.literal_count());
    }
}
BENCHMARK(bm_minimize_heuristic);

}  // namespace

void bm_explicit_reachability(benchmark::State& state) {
    auto expanded = expand_handshakes(benchmarks::mmu_controller());
    for (auto _ : state) {
        auto gen = state_graph::generate(expanded);
        benchmark::DoNotOptimize(gen.graph.state_count());
    }
}
BENCHMARK(bm_explicit_reachability);

void bm_symbolic_reachability(benchmark::State& state) {
    auto expanded = expand_handshakes(benchmarks::mmu_controller());
    for (auto _ : state) {
        auto sym = symbolic_reachable_markings(expanded);
        benchmark::DoNotOptimize(sym.reachable_markings);
    }
}
BENCHMARK(bm_symbolic_reachability);

int main(int argc, char** argv) {
    print_symbolic_ablation();
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
