// Table 2: area/performance trade-off for the MMU controller.
//
// Paper rows: original 744/2/100/4, original reduced 208/0/118/6,
// csc reduced 96/1/123/7, ||(b,l,r) 440/1/101/4, ||(b,m,r) 384/0/94/4,
// ||(b,l,m) 352/1/104/5, ||(l,m,r) 368/1/105/5.
//
// Substitution (see DESIGN.md): the exact Myers-Meng MMU STG is not
// recoverable from the paper; we use an MMU-like controller with the same
// four channels (passive r; active l, m, b in sequence) and the default
// delay model instead of [8]'s intervals.  Shape targets: reshuffling cuts
// area to well under half of the original; "original reduced" trades that
// area for a longer cycle; the ||(x,y,z) rows sit in between on both axes.
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

flow_report keep_three(const stg& spec, const char* c1, const char* c2, const char* c3) {
    auto expanded = expand_handshakes(spec);
    auto sg = state_graph::generate(expanded).graph;
    flow_options o;
    o.strategy = reduction_strategy::full;
    o.search.cost.w = 0.2;
    o.csc.max_signals = 6;
    const std::string w1 = std::string(c1) + "o", w2 = std::string(c2) + "o",
                      w3 = std::string(c3) + "o";
    keep_minus_pair(o.search, sg, w1, w2);
    keep_minus_pair(o.search, sg, w1, w3);
    keep_minus_pair(o.search, sg, w2, w3);
    auto rep = run_flow_from_sg(sg, o);
    if (rep.csc.solved) return rep;
    // The greedy full reduction can land on an encoding our insertion cannot
    // fix; the CSC-biased beam avoids those configurations.
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.1;
    o.search.size_frontier = 6;
    return run_flow_from_sg(std::move(sg), o);
}

void print_table() {
    print_header("Table 2: MMU controller (paper: original 744/2/100/4, reduced 208/0/118/6, "
                 "csc red 96/1/123/7, ||(b,m,r) 384/0/94/4)");
    auto mmu = benchmarks::mmu_controller();
    {
        flow_options o;
        o.strategy = reduction_strategy::none;
        o.csc.max_signals = 6;
        o.csc.beam_width = 3;
        print_row("original", run_flow(mmu, o));
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::full;
        o.search.cost.w = 0.2;
        print_row("original reduced", run_flow(mmu, o));
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = 0.0;  // pure CSC bias, the paper's W -> 0 regime
        o.search.size_frontier = 4;
        print_row("csc reduced", run_flow(mmu, o));
    }
    print_row("|| (b,l,r)", keep_three(mmu, "b", "l", "r"));
    print_row("|| (b,m,r)", keep_three(mmu, "b", "m", "r"));
    print_row("|| (b,l,m)", keep_three(mmu, "b", "l", "m"));
    print_row("|| (l,m,r)", keep_three(mmu, "l", "m", "r"));
}

void bm_mmu_sg_generation(benchmark::State& state) {
    auto expanded = expand_handshakes(benchmarks::mmu_controller());
    for (auto _ : state) {
        auto gen = state_graph::generate(expanded);
        benchmark::DoNotOptimize(gen.graph.state_count());
    }
}
BENCHMARK(bm_mmu_sg_generation);

void bm_mmu_full_reduction(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::mmu_controller())).graph;
    auto g = subgraph::full(sg);
    search_options so;
    so.cost.w = 0.2;
    for (auto _ : state) {
        auto res = reduce_fully(g, so);
        benchmark::DoNotOptimize(res.levels);
    }
}
BENCHMARK(bm_mmu_full_reduction);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
