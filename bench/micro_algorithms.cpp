// Raw algorithm throughput over the random handshake corpus: SG generation,
// excitation regions, FwdRed, CSC checking, region-based STG recovery, timed
// simulation, and the minimiser tiers (full heuristic minimisation vs the
// dominance filter's bound_literals).
#include "bench_util.hpp"
#include "boolfn/incremental_cover.hpp"
#include "core/reduce.hpp"
#include "logic/synthesis.hpp"
#include "perf/timing.hpp"
#include "regions/regions.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

state_graph corpus_sg(int leaves) {
    return state_graph::generate(
               expand_handshakes(benchmarks::random_handshake_spec(7, leaves)))
        .graph;
}

void bm_sg_generation(benchmark::State& state) {
    auto spec = expand_handshakes(
        benchmarks::random_handshake_spec(7, static_cast<int>(state.range(0))));
    for (auto _ : state) {
        auto gen = state_graph::generate(spec);
        benchmark::DoNotOptimize(gen.graph.state_count());
    }
    state.counters["states"] = static_cast<double>(state_graph::generate(spec).graph.state_count());
}
BENCHMARK(bm_sg_generation)->Arg(2)->Arg(4)->Arg(6);

void bm_excitation_regions(benchmark::State& state) {
    auto sg = corpus_sg(static_cast<int>(state.range(0)));
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto comps = excitation_regions(g);
        benchmark::DoNotOptimize(comps.size());
    }
}
BENCHMARK(bm_excitation_regions)->Arg(2)->Arg(4)->Arg(6);

void bm_csc_check(benchmark::State& state) {
    auto sg = corpus_sg(static_cast<int>(state.range(0)));
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto rep = check_csc(g, 0);
        benchmark::DoNotOptimize(rep.conflict_pairs);
    }
}
BENCHMARK(bm_csc_check)->Arg(2)->Arg(4)->Arg(6);

void bm_speed_independence(benchmark::State& state) {
    auto sg = corpus_sg(static_cast<int>(state.range(0)));
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto rep = check_speed_independence(g);
        benchmark::DoNotOptimize(rep.ok());
    }
}
BENCHMARK(bm_speed_independence)->Arg(2)->Arg(4);

void bm_region_recovery(benchmark::State& state) {
    auto sg = corpus_sg(static_cast<int>(state.range(0)));
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto res = recover_stg(g);
        benchmark::DoNotOptimize(res.ok);
    }
}
BENCHMARK(bm_region_recovery)->Arg(2)->Arg(3);

void bm_timed_simulation(benchmark::State& state) {
    auto sg = corpus_sg(static_cast<int>(state.range(0)));
    auto g = subgraph::full(sg);
    delay_model dm;
    for (auto _ : state) {
        auto rep = analyze_performance(g, dm);
        benchmark::DoNotOptimize(rep.cycle_time);
    }
}
BENCHMARK(bm_timed_simulation)->Arg(2)->Arg(4);

/// Next-state specs of every estimated signal of a corpus SG -- the exact
/// input population the search's literal estimates run on.
std::vector<sop_spec> nextstate_specs(const state_graph& sg) {
    auto g = subgraph::full(sg);
    std::vector<sop_spec> specs;
    for (uint32_t s = 0; s < sg.signals().size(); ++s) {
        if (sg.signals()[s].kind == signal_kind::input) continue;
        auto ns = derive_nextstate(g, s);
        if (!ns.spec.on.empty()) specs.push_back(std::move(ns.spec));
    }
    return specs;
}

void bm_minimize_heuristic_tier(benchmark::State& state) {
    auto specs = nextstate_specs(corpus_sg(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        std::size_t lits = 0;
        for (const auto& s : specs) lits += minimize_heuristic(s).literal_count();
        benchmark::DoNotOptimize(lits);
    }
}
BENCHMARK(bm_minimize_heuristic_tier)->Arg(2)->Arg(4);

void bm_bound_literals_tier(benchmark::State& state) {
    auto specs = nextstate_specs(corpus_sg(static_cast<int>(state.range(0))));
    // Warm covers as the search would have them: the parent's minimised SOP.
    std::vector<cover> warm;
    warm.reserve(specs.size());
    for (const auto& s : specs) warm.push_back(minimize_heuristic(s));
    for (auto _ : state) {
        std::size_t lits = 0;
        for (std::size_t i = 0; i < specs.size(); ++i)
            lits += bound_literals(specs[i], warm[i]).lower;
        benchmark::DoNotOptimize(lits);
    }
}
BENCHMARK(bm_bound_literals_tier)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
