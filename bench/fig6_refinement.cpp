// Figs. 5 and 6: structural 2-phase and 4-phase refinement of the mixed
// example (channel a, partially specified signal b, complete signal c).
// Reproduces: the 2-phase refinement relabels a?/a! to wire toggles and
// keeps b single-transition; the 4-phase refinement inserts the rdy/rtz
// return-to-zero structure for b and the req/ack/p_rtz/a_rtz structure for
// the channel, with the dead role copies pruned by the token game.
#include "bench_util.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_figure() {
    std::printf("\n=== Fig. 6: refinement of the mixed example ===\n");
    auto spec = benchmarks::fig6_mixed();
    std::printf("-- original specification (Fig 6.a):\n%s", write_astg(spec).c_str());
    {
        expand_options o;
        o.phases = 2;
        auto e = expand_handshakes(spec, o);
        auto sg = state_graph::generate(e).graph;
        std::printf("-- 2-phase refinement (Fig 6.b): %zu transitions, %zu states\n%s",
                    e.transitions().size(), sg.state_count(), write_astg(e).c_str());
    }
    {
        auto e = expand_handshakes(spec);
        auto sg = state_graph::generate(e).graph;
        auto g = subgraph::full(sg);
        std::printf("-- 4-phase refinement (Fig 6.c): %zu transitions, %zu states\n%s",
                    e.transitions().size(), sg.state_count(), write_astg(e).c_str());
        std::printf("channel protocol on a: %zu violations; speed-independent: %s\n",
                    check_channel_protocol(g, "a").size(),
                    check_speed_independence(g).ok() ? "yes" : "no");
    }
}

void bm_fig6_expand(benchmark::State& state) {
    auto spec = benchmarks::fig6_mixed();
    for (auto _ : state) {
        auto e = expand_handshakes(spec);
        benchmark::DoNotOptimize(e.transitions().size());
    }
}
BENCHMARK(bm_fig6_expand);

void bm_astg_roundtrip(benchmark::State& state) {
    auto e = expand_handshakes(benchmarks::fig6_mixed());
    for (auto _ : state) {
        auto text = write_astg(e);
        auto back = parse_astg(text);
        benchmark::DoNotOptimize(back.transitions().size());
    }
}
BENCHMARK(bm_astg_roundtrip);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
