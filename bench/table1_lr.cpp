// Table 1: area/performance trade-off for implementations of the LR process.
//
// Paper rows (area units from the authors' library; ours differ, shape is
// the comparison target):
//   Q-module (hand)    104  1  14  4
//   Full reduction       0  0   8  4
//   Max. concurrency   168  2  13  3
//   li || ri           144  0   9  3
//   li || ro           160  1  11  3
//   lo || ri           136  1  11  3
//   lo || ro           232  2  16  3
//
// Delay model: input events 2 units, output/internal events 1 unit, wires 0.
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_table() {
    print_header("Table 1: LR process (paper: Q-module 104/1/14/4, full red 0/0/8/4, "
                 "max conc 168/2/13/3, lo||ro worst)");
    auto lr = benchmarks::lr_process();
    {
        flow_options o;
        o.strategy = reduction_strategy::none;
        print_row("Q-module (hand)",
                  run_flow_from_sg(state_graph::generate(benchmarks::qmodule_lr()).graph, o));
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = 0.2;
        o.search.size_frontier = 6;
        print_row("Full reduction", run_flow(lr, o));
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::none;
        print_row("Max. concurrency", run_flow(lr, o));
    }
    print_row("li || ri", keep_pair_flow(lr, "li", "ri"));
    print_row("li || ro", keep_pair_flow(lr, "li", "ro"));
    print_row("lo || ri", keep_pair_flow(lr, "lo", "ri"));
    print_row("lo || ro", keep_pair_flow(lr, "lo", "ro"));
}

void bm_lr_full_flow(benchmark::State& state) {
    auto lr = benchmarks::lr_process();
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.2;
    o.search.size_frontier = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto rep = run_flow(lr, o);
        benchmark::DoNotOptimize(rep.area());
    }
}
BENCHMARK(bm_lr_full_flow)->Arg(1)->Arg(4)->Arg(8);

void bm_lr_expansion(benchmark::State& state) {
    auto lr = benchmarks::lr_process();
    for (auto _ : state) {
        auto expanded = expand_handshakes(lr);
        benchmark::DoNotOptimize(expanded.transitions().size());
    }
}
BENCHMARK(bm_lr_expansion);

void bm_lr_csc(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto res = resolve_csc(g);
        benchmark::DoNotOptimize(res.signals_inserted);
    }
}
BENCHMARK(bm_lr_csc);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
