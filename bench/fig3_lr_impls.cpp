// Fig. 3: implementations of the LR process.
//  (a) Q-module / S-element (the classic hand design; needs one CSC signal);
//  (b) full concurrency reduction: two plain wires, area 0, "does not allow
//      to decouple the left and the right sides";
//  (c)/(d) intermediate reshufflings with a CSC signal.
// We print the synthesised equations for each.
#include "bench_util.hpp"
#include "csc/csc.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_equations(const char* tag, const state_graph& sg) {
    flow_options o;
    o.strategy = reduction_strategy::none;
    auto rep = run_flow_from_sg(sg, o);
    std::printf("%s: area %.0f, %zu CSC signal(s)\n", tag, rep.area(), rep.csc_signals());
    if (rep.synth.ok)
        for (const auto& i : rep.synth.ckt.impls) std::printf("    %s\n", i.equation.c_str());
}

void print_figure() {
    std::printf("\n=== Fig. 3: LR implementations ===\n");
    print_equations("(a) Q-module", state_graph::generate(benchmarks::qmodule_lr()).graph);
    print_equations("(b) full reduction (two wires)",
                    state_graph::generate(benchmarks::lr_full_reduction()).graph);
    // (c)/(d): an automatically found intermediate reshuffling.
    auto sg = state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
    auto rep = chained_flow(sg);
    std::printf("(c) automatic reshuffling: area %.0f, %zu CSC signal(s)\n", rep.area(),
                rep.csc_signals());
    if (rep.synth.ok)
        for (const auto& i : rep.synth.ckt.impls) std::printf("    %s\n", i.equation.c_str());
    print_equations("(d) max concurrency", sg);
}

void bm_synthesize_qmodule(benchmark::State& state) {
    auto sg = state_graph::generate(benchmarks::qmodule_lr()).graph;
    auto g = subgraph::full(sg);
    auto csc = resolve_csc(g);
    auto enc = subgraph::full(csc.graph);
    for (auto _ : state) {
        auto s = synthesize(enc);
        benchmark::DoNotOptimize(s.ckt.total_area);
    }
}
BENCHMARK(bm_synthesize_qmodule);

void bm_wire_detection(benchmark::State& state) {
    auto sg = state_graph::generate(benchmarks::lr_full_reduction()).graph;
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto s = synthesize(g);
        benchmark::DoNotOptimize(s.ckt.total_area);
    }
}
BENCHMARK(bm_wire_detection);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
