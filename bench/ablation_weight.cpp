// Ablation: the cost-function weight W (paper section 7).  W -> 0 biases the
// search towards fewer CSC conflicts, W -> 1 towards smaller estimated
// logic.  Reproduced on the expanded LR, PAR and MMU specs: at W = 0 the
// search drives conflicts to zero even at the cost of literals; at W = 1 it
// minimises literals and may leave conflicts for the CSC solver.
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_ablation() {
    std::printf("\n=== Ablation: cost weight W (CSC bias vs logic bias) ===\n");
    std::printf("%-8s %6s %10s %8s %8s %10s\n", "spec", "W", "explored", "csc", "lits",
                "area");
    for (const char* which : {"lr", "par", "mmu"}) {
        stg spec = std::string(which) == "lr"    ? benchmarks::lr_process()
                   : std::string(which) == "par" ? benchmarks::par_component()
                                                 : benchmarks::mmu_controller();
        auto sg = state_graph::generate(expand_handshakes(spec)).graph;
        for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            flow_options o;
            o.strategy = reduction_strategy::beam;
            o.search.cost.w = w;
            o.search.size_frontier = 4;
            o.csc.max_signals = 6;
            auto rep = run_flow_from_sg(sg, o);
            std::printf("%-8s %6.2f %10zu %8zu %8zu %10.0f\n", which, w, rep.search.explored,
                        rep.reduced_cost.csc_pairs, rep.reduced_cost.literals, rep.area());
        }
    }
}

void bm_cost_estimation(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::mmu_controller())).graph;
    auto g = subgraph::full(sg);
    cost_params p;
    for (auto _ : state) {
        auto c = estimate_cost(g, p);
        benchmark::DoNotOptimize(c.value);
    }
}
BENCHMARK(bm_cost_estimation);

}  // namespace

int main(int argc, char** argv) {
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
