// Fig. 1: the simple memory/processor controller.  Reproduces the paper's
// observations: the SG has five states, is consistent and output-persistent,
// Req+ and Ack- are concurrent (their ERs intersect), and CSC fails on the
// code pair 11* / 1*1.  Also demonstrates that the conflict cannot be fixed
// by state-signal insertion alone (the conflicting states are separated only
// by input events) -- the paper uses this controller precisely as the
// motivating CSC illustration.
#include "bench_util.hpp"
#include "csc/csc.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_figure() {
    std::printf("\n=== Fig. 1: simple asynchronous controller ===\n");
    auto net = benchmarks::fig1_controller();
    auto gen = state_graph::generate(net);
    auto g = subgraph::full(gen.graph);
    std::printf("states: %zu (paper: 5), arcs: %zu\n", g.live_state_count(), g.live_arc_count());
    std::printf("initial state: %s (paper: 0*1)\n",
                gen.graph.state_code_string(gen.graph.initial()).c_str());
    auto si = check_speed_independence(g);
    std::printf("speed-independent: %s\n", si.ok() ? "yes" : "no");
    auto rep = check_csc(g, 4);
    std::printf("CSC conflict pairs: %zu (paper: 1, codes 11* vs 1*1)\n", rep.conflict_pairs);
    for (const auto& c : rep.examples)
        std::printf("  conflict: %s vs %s\n", gen.graph.state_code_string(c.state_a).c_str(),
                    gen.graph.state_code_string(c.state_b).c_str());
    auto reqp = gen.graph.find_event(signal_id(gen.graph, "Req"), edge::plus);
    auto ackm = gen.graph.find_event(signal_id(gen.graph, "Ack"), edge::minus);
    std::printf("Req+ || Ack-: %s (paper: concurrent, ERs intersect)\n",
                concurrent_by_diamond(g, *reqp, *ackm) ? "concurrent" : "ordered");
    auto csc = resolve_csc(g);
    std::printf("insertion-only CSC resolution: %s (%s)\n", csc.solved ? "solved" : "impossible",
                csc.solved ? "" : "conflict states separated only by input events");
}

void bm_fig1_generate(benchmark::State& state) {
    auto net = benchmarks::fig1_controller();
    for (auto _ : state) {
        auto gen = state_graph::generate(net);
        benchmark::DoNotOptimize(gen.graph.state_count());
    }
}
BENCHMARK(bm_fig1_generate);

void bm_fig1_csc_check(benchmark::State& state) {
    auto gen = state_graph::generate(benchmarks::fig1_controller());
    auto g = subgraph::full(gen.graph);
    for (auto _ : state) {
        auto rep = check_csc(g, 0);
        benchmark::DoNotOptimize(rep.conflict_pairs);
    }
}
BENCHMARK(bm_fig1_csc_check);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
