// Batch-engine throughput: specs/second of run_batch() over a generated
// workload at 1, half and all hardware cores.  The per-spec records are
// independent of the job count (the pipeline is pure over its inputs), so
// this measures pure scheduling + parallel speedup; items_per_second is the
// corpus sweep rate that BENCH_pipeline.json records as `specs_per_second`.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "batch/batch.hpp"
#include "benchmarks/generate.hpp"

namespace {

using namespace asynth;

/// A fixed 16-spec workload, small enough that one sweep stays in the
/// millisecond range at every job count (size 3 ~ the mmu scale).
const std::vector<benchmarks::named_spec>& workload() {
    static const std::vector<benchmarks::named_spec> specs = [] {
        benchmarks::generator_options opt;
        opt.size = 3;
        return benchmarks::generate_workload(1, 16, opt);
    }();
    return specs;
}

void bm_batch_throughput(benchmark::State& state) {
    batch::batch_options opt;
    opt.jobs = static_cast<std::size_t>(state.range(0));
    const auto& specs = workload();
    std::size_t completed = 0;
    for (auto _ : state) {
        auto rep = batch::run_batch(specs, opt);
        completed = rep.completed;
        benchmark::DoNotOptimize(completed);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * specs.size()));
    state.counters["completed"] = static_cast<double>(completed);
}

void job_counts(benchmark::internal::Benchmark* b) {
    const auto hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    b->Arg(1);
    if (hw / 2 > 1) b->Arg(hw / 2);
    if (hw > 1 && hw != hw / 2) b->Arg(hw);
    b->Unit(benchmark::kMillisecond)->UseRealTime();
}
BENCHMARK(bm_batch_throughput)->Apply(job_counts);

}  // namespace

int main(int argc, char** argv) {
    std::printf("batch throughput over %zu generated specs, %u hardware cores\n",
                workload().size(), std::thread::hardware_concurrency());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
