// Ablation: width of the exploration frontier (the paper's size_frontier
// parameter, Fig. 9).  A width of 1 is greedy hill-climbing; wider frontiers
// explore more configurations and find better reshufflings at higher cost.
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_ablation() {
    std::printf("\n=== Ablation: size_frontier (Fig. 9 beam width) ===\n");
    std::printf("%-8s %-10s %12s %10s %8s %8s\n", "spec", "frontier", "explored", "cost",
                "csc", "lits");
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        stg expanded = expand_handshakes(spec);
        auto sg = state_graph::generate(expanded).graph;
        auto g = subgraph::full(sg);
        for (std::size_t width : {1u, 2u, 4u, 8u}) {
            search_options so;
            so.cost.w = 0.5;
            so.size_frontier = width;
            so.keep_concurrent = keepconc_events(expanded);
            auto res = reduce_concurrency(g, so);
            std::printf("%-8s %-10zu %12zu %10.1f %8zu %8zu\n", name.c_str(), width,
                        res.explored, res.best_cost.value, res.best_cost.csc_pairs,
                        res.best_cost.literals);
        }
    }
}

void bm_search_width(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    auto g = subgraph::full(sg);
    search_options so;
    so.cost.w = 0.5;
    so.size_frontier = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto res = reduce_concurrency(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
    state.counters["explored"] = static_cast<double>(reduce_concurrency(g, so).explored);
}
BENCHMARK(bm_search_width)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
