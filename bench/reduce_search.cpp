// Reference vs incremental Fig. 9 engines over the embedded corpus and
// generated size-4/5 specs: per-spec wall-clock, speedup, and a result-
// equality check (the engines must agree bit-for-bit -- "MISMATCH" in this
// table means a bug, and tests/test_explore.cpp fails with it).
//
// The last column is why the incremental engine exists: the reference
// engine's per-candidate cost re-derives every analysis from scratch, while
// the incremental engine delta-evaluates against memoised per-node caches
// (src/explore/).  The reshuffling cost function is minimisation-bound, so
// the boolfn word-parallel kernels contribute to both engines equally; the
// residual gap is the cache reuse.
#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "benchmarks/generate.hpp"
#include "explore/engine.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

double run_ms(const std::function<search_result()>& body, search_result& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void print_engine_comparison() {
    std::printf("\n=== Fig. 9 search: reference vs incremental engine ===\n");
    std::printf("%-14s %8s %9s %12s %12s %8s  %s\n", "spec", "states", "explored", "ref ms",
                "incr ms", "speedup", "agree");

    std::vector<benchmarks::named_spec> specs = benchmarks::corpus_specs();
    benchmarks::generator_options g4;
    g4.size = 4;
    for (auto& s : benchmarks::generate_workload(1, 2, g4)) specs.push_back(std::move(s));
    benchmarks::generator_options g5;
    g5.size = 5;
    for (auto& s : benchmarks::generate_workload(1, 2, g5)) specs.push_back(std::move(s));

    double ref_total = 0, incr_total = 0;
    for (const auto& [name, spec] : specs) {
        auto base = state_graph::generate(expand_handshakes(spec)).graph;
        auto g = subgraph::full(base);
        search_options so;
        so.cost.w = 0.5;
        so.keep_concurrent = keepconc_events(expand_handshakes(spec));

        search_result ref, incr;
        const double ref_ms = run_ms([&] { return reduce_concurrency(g, so); }, ref);
        const double incr_ms =
            run_ms([&] { return explore::reduce_concurrency_incremental(g, so); }, incr);
        ref_total += ref_ms;
        incr_total += incr_ms;
        const bool agree = ref.best_cost.value == incr.best_cost.value &&
                           ref.best.live_states() == incr.best.live_states() &&
                           ref.best.live_arcs() == incr.best.live_arcs() &&
                           ref.explored == incr.explored;
        std::printf("%-14s %8zu %9zu %12.2f %12.2f %7.1fx  %s\n", name.c_str(),
                    base.state_count(), incr.explored, ref_ms, incr_ms,
                    incr_ms > 0 ? ref_ms / incr_ms : 0.0, agree ? "yes" : "MISMATCH");
    }
    std::printf("%-14s %8s %9s %12.2f %12.2f %7.1fx\n", "total", "", "", ref_total, incr_total,
                incr_total > 0 ? ref_total / incr_total : 0.0);
}

void print_minimizer_comparison() {
    std::printf("\n=== incremental engine: exact vs dominance-filtered minimizer ===\n");
    std::printf("%-14s %8s %9s %9s %12s %12s %8s  %s\n", "spec", "states", "explored", "pruned",
                "exact ms", "dom ms", "speedup", "agree");

    std::vector<benchmarks::named_spec> specs = benchmarks::corpus_specs();
    benchmarks::generator_options g5;
    g5.size = 5;
    for (auto& s : benchmarks::generate_workload(1, 3, g5)) specs.push_back(std::move(s));

    double exact_total = 0, dom_total = 0;
    for (const auto& [name, spec] : specs) {
        auto base = state_graph::generate(expand_handshakes(spec)).graph;
        auto g = subgraph::full(base);
        search_options so;
        so.cost.w = 0.5;
        so.keep_concurrent = keepconc_events(expand_handshakes(spec));
        so.minimizer = minimizer_mode::exact;
        search_options dom_so = so;
        dom_so.minimizer = minimizer_mode::incremental;

        search_result exact, dom;
        const double exact_ms =
            run_ms([&] { return explore::reduce_concurrency_incremental(g, so); }, exact);
        const double dom_ms =
            run_ms([&] { return explore::reduce_concurrency_incremental(g, dom_so); }, dom);
        exact_total += exact_ms;
        dom_total += dom_ms;
        const bool agree = exact.best_cost.value == dom.best_cost.value &&
                           exact.best.live_states() == dom.best.live_states() &&
                           exact.best.live_arcs() == dom.best.live_arcs() &&
                           exact.explored == dom.explored;
        std::printf("%-14s %8zu %9zu %9zu %12.2f %12.2f %7.1fx  %s\n", name.c_str(),
                    base.state_count(), dom.explored, dom.pruned, exact_ms, dom_ms,
                    dom_ms > 0 ? exact_ms / dom_ms : 0.0, agree ? "yes" : "MISMATCH");
    }
    std::printf("%-14s %8s %9s %9s %12.2f %12.2f %7.1fx\n", "total", "", "", "", exact_total,
                dom_total, dom_total > 0 ? exact_total / dom_total : 0.0);
}

state_graph size4_sg() {
    benchmarks::generator_options go;
    go.size = 4;
    auto specs = benchmarks::generate_workload(1, 1, go);
    return state_graph::generate(expand_handshakes(specs[0].net)).graph;
}

void bm_reduce_reference(benchmark::State& state) {
    auto base = size4_sg();
    auto g = subgraph::full(base);
    search_options so;
    for (auto _ : state) {
        auto res = reduce_concurrency(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
}
BENCHMARK(bm_reduce_reference)->Unit(benchmark::kMillisecond);

void bm_reduce_incremental(benchmark::State& state) {
    auto base = size4_sg();
    auto g = subgraph::full(base);
    search_options so;
    for (auto _ : state) {
        auto res = explore::reduce_concurrency_incremental(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
}
BENCHMARK(bm_reduce_incremental)->Unit(benchmark::kMillisecond);

void bm_reduce_incremental_par(benchmark::State& state) {
    auto base = size4_sg();
    auto g = subgraph::full(base);
    search_options so;
    so.jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto res = explore::reduce_concurrency_incremental(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
}
BENCHMARK(bm_reduce_incremental_par)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_reduce_minimizer_exact(benchmark::State& state) {
    auto base = size4_sg();
    auto g = subgraph::full(base);
    search_options so;
    so.minimizer = minimizer_mode::exact;
    for (auto _ : state) {
        auto res = explore::reduce_concurrency_incremental(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
}
BENCHMARK(bm_reduce_minimizer_exact)->Unit(benchmark::kMillisecond);

void bm_reduce_minimizer_dominance(benchmark::State& state) {
    auto base = size4_sg();
    auto g = subgraph::full(base);
    search_options so;
    so.minimizer = minimizer_mode::incremental;
    for (auto _ : state) {
        auto res = explore::reduce_concurrency_incremental(g, so);
        benchmark::DoNotOptimize(res.best_cost.value);
    }
}
BENCHMARK(bm_reduce_minimizer_dominance)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_engine_comparison();
    print_minimizer_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
