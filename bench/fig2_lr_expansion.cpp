// Fig. 2: handshake expansions of the LR process.
//  (d) relabelled partial STG -- only the rising transitions;
//  (e) maximal concurrency with *independent* signals: violates the channel
//      protocol (li can reset before lo acknowledges);
//  (f) maximal concurrency under interface constraints: the valid expansion.
// We reproduce the contrast: the unconstrained expansion fails the 4-phase
// protocol check, the constrained one passes it and keeps the reset events
// maximally concurrent.
#include "bench_util.hpp"

using namespace asynth;
using namespace bench_util;

namespace {

void print_figure() {
    std::printf("\n=== Fig. 2: LR-process handshake expansion ===\n");
    auto lr = benchmarks::lr_process();

    {
        expand_options o;
        o.phases = 2;
        auto e = expand_handshakes(lr, o);
        auto sg = state_graph::generate(e).graph;
        std::printf("2-phase expansion: %zu transitions, %zu states (all toggles)\n",
                    e.transitions().size(), sg.state_count());
    }
    {
        expand_options o;
        o.channel_interface = false;
        auto e = expand_handshakes(lr, o);
        auto sg = state_graph::generate(e).graph;
        auto g = subgraph::full(sg);
        auto viol = check_four_phase_protocol(g, static_cast<uint32_t>(signal_id(sg, "li")),
                                              static_cast<uint32_t>(signal_id(sg, "lo")), true);
        std::printf("4-phase, no interface constraints (Fig 2.e): %zu states, "
                    "%zu protocol violations on port l (paper: invalid)\n",
                    sg.state_count(), viol.size());
        if (!viol.empty()) std::printf("  e.g. %s\n", viol.front().description.c_str());
    }
    {
        auto e = expand_handshakes(lr);
        auto sg = state_graph::generate(e).graph;
        auto g = subgraph::full(sg);
        std::printf("4-phase with interface constraints (Fig 2.f): %zu states, "
                    "port l violations: %zu, port r violations: %zu\n",
                    sg.state_count(), check_channel_protocol(g, "l").size(),
                    check_channel_protocol(g, "r").size());
        auto ev = [&](const char* s, edge d) {
            return *sg.find_event(signal_id(sg, s), d);
        };
        std::printf("  reset concurrency: ro- || lo+ : %s, li- || ro- : %s (maximal)\n",
                    concurrent_by_diamond(g, ev("ro", edge::minus), ev("lo", edge::plus))
                        ? "yes" : "no",
                    concurrent_by_diamond(g, ev("li", edge::minus), ev("ro", edge::minus))
                        ? "yes" : "no");
        std::printf("  functional chain stays ordered: li+ -> ro+ : %s\n",
                    concurrent_by_diamond(g, ev("li", edge::plus), ev("ro", edge::plus))
                        ? "no" : "yes");
    }
}

void bm_expand_four_phase(benchmark::State& state) {
    auto lr = benchmarks::lr_process();
    for (auto _ : state) {
        auto e = expand_handshakes(lr);
        benchmark::DoNotOptimize(e.places().size());
    }
}
BENCHMARK(bm_expand_four_phase);

void bm_expand_two_phase(benchmark::State& state) {
    auto lr = benchmarks::lr_process();
    expand_options o;
    o.phases = 2;
    for (auto _ : state) {
        auto e = expand_handshakes(lr, o);
        benchmark::DoNotOptimize(e.places().size());
    }
}
BENCHMARK(bm_expand_two_phase);

void bm_protocol_check(benchmark::State& state) {
    auto sg = state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
    auto g = subgraph::full(sg);
    for (auto _ : state) {
        auto v = check_channel_protocol(g, "l");
        benchmark::DoNotOptimize(v.size());
    }
}
BENCHMARK(bm_protocol_check);

}  // namespace

int main(int argc, char** argv) {
    print_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
