// Shared helpers for the reproduction benches: canonical flow configurations
// for every row of Tables 1 and 2 and the Fig. 10 case study, plus table
// printing.  Each bench binary prints the reproduced table first and then
// runs its google-benchmark micro timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "benchmarks/corpus.hpp"
#include "core/flow.hpp"
#include "core/protocol.hpp"
#include "sg/analysis.hpp"

namespace bench_util {

using namespace asynth;

inline void print_header(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-22s %10s %10s %10s %12s\n", "circuit", "area", "#CSC sign.", "cr.cycle",
                "inp.events");
}

inline void print_row(const std::string& name, const flow_report& r) {
    if (r.synth.ok)
        std::printf("%-22s %10.0f %10zu %10.1f %12zu\n", name.c_str(), r.area(),
                    r.csc_signals(), r.cycle(), r.input_events());
    else
        std::printf("%-22s %10s %10zu %10s %12s  (%s)\n", name.c_str(), "-", r.csc_signals(),
                    "-", "-", r.synth.message.c_str());
}

inline int32_t signal_id(const state_graph& g, const std::string& name) {
    for (uint32_t s = 0; s < g.signals().size(); ++s)
        if (g.signals()[s].name == name) return static_cast<int32_t>(s);
    return -1;
}

/// Keep the falling edges of two wires concurrent.
inline void keep_minus_pair(search_options& so, const state_graph& g, const std::string& a,
                            const std::string& b) {
    so.keep_concurrent.push_back(
        {sg_event{signal_id(g, a), edge::minus}, sg_event{signal_id(g, b), edge::minus}});
}

/// The flow used for "keep this pair, serialise the rest" table rows.
inline flow_report keep_pair_flow(const stg& spec, const std::string& wire_a,
                                  const std::string& wire_b) {
    auto expanded = expand_handshakes(spec);
    auto sg = state_graph::generate(expanded).graph;
    flow_options o;
    o.strategy = reduction_strategy::full;
    o.search.cost.w = 0.2;
    keep_minus_pair(o.search, sg, wire_a, wire_b);
    return run_flow_from_sg(std::move(sg), o);
}

/// Beam (logic-biased) followed by greedy completion -- the configuration
/// that finds the asymmetric PAR solution and the LR wires.
inline flow_report chained_flow(state_graph sg,
                                std::vector<std::pair<sg_event, sg_event>> keep = {}) {
    auto base = std::make_shared<const state_graph>(std::move(sg));
    search_options so;
    so.cost.w = 1.0;
    so.size_frontier = 8;
    so.keep_concurrent = keep;
    auto beam = reduce_concurrency(subgraph::full(*base), so);
    search_options so2 = so;
    so2.cost.w = 0.5;
    auto full = reduce_fully(beam.best, so2);

    flow_options fo;
    fo.strategy = reduction_strategy::none;
    auto rep = run_flow_from_sg(full.best.materialize(), fo);
    return rep;
}

}  // namespace bench_util
