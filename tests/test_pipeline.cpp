// End-to-end pipeline integration: the Fig. 1 and MMU corpus entries through
// the full parse -> expand -> sg -> reduce -> csc -> logic -> perf -> recover
// flow, with cost monotonicity, per-stage timing bookkeeping and structured
// error reporting.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"

using namespace asynth;

namespace {

// The timings vector must hold exactly the executed stages, in order, with
// non-negative wall-clock readings summing to total_seconds.
void check_timings(const pipeline_result& r, const std::vector<pipeline_stage>& expected) {
    ASSERT_EQ(r.timings.size(), expected.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(r.timings[i].stage, expected[i]) << "stage " << i;
        EXPECT_GE(r.timings[i].seconds, 0.0);
        sum += r.timings[i].seconds;
    }
    EXPECT_DOUBLE_EQ(r.total_seconds, sum);
}

}  // namespace

TEST(pipeline, fig1_completes_with_csc_verdict) {
    // Fig. 1 is the paper's motivating *unsynthesisable* example: the CSC
    // conflict states are separated only by input events, so neither
    // insertion nor (input-preserving) reduction can fix it.  The pipeline
    // must complete and report that verdict, not crash.
    auto r = run_pipeline(benchmarks::fig1_controller());
    EXPECT_TRUE(r.completed) << r.message;
    EXPECT_FALSE(r.failed.has_value());
    EXPECT_FALSE(r.synthesized());
    EXPECT_FALSE(r.csc.solved);
    EXPECT_FALSE(r.csc.message.empty());
    EXPECT_EQ(r.area(), -1.0);
    check_timings(r, {pipeline_stage::expand, pipeline_stage::state_graph, pipeline_stage::reduce,
                      pipeline_stage::csc, pipeline_stage::logic, pipeline_stage::perf,
                      pipeline_stage::recover});
    // Cost monotonicity: the Fig. 9 search only keeps improvements.
    EXPECT_LE(r.reduced_cost.value, r.initial_cost.value);
    // The paper's numbers for the unreduced controller.
    ASSERT_NE(r.base_sg, nullptr);
    EXPECT_EQ(r.base_sg->state_count(), 5u);
    EXPECT_EQ(r.base_sg->arc_count(), 6u);
}

TEST(pipeline, mmu_synthesizes_end_to_end) {
    pipeline_options opt;
    opt.csc.max_signals = 6;
    opt.csc.beam_width = 3;
    auto r = run_pipeline(benchmarks::mmu_controller(), opt);
    ASSERT_TRUE(r.completed) << r.message;
    EXPECT_TRUE(r.synthesized()) << r.csc.message << " / " << r.synth.message;
    EXPECT_GT(r.area(), 0.0);
    EXPECT_GE(r.csc.signals_inserted, 2u);
    EXPECT_TRUE(r.perf.periodic);
    EXPECT_GT(r.cycle(), 0.0);
    EXPECT_TRUE(r.recovered.ok) << r.recovered.message;
    EXPECT_LE(r.reduced_cost.value, r.initial_cost.value);
    EXPECT_GE(r.search.explored, 1u);
    // Per-stage accessor agrees with the raw vector.
    EXPECT_EQ(r.stage_seconds(pipeline_stage::parse), 0.0);
    EXPECT_GT(r.total_seconds, 0.0);
}

TEST(pipeline, lr_beam_reaches_wire_solution) {
    pipeline_options opt;
    opt.search.cost.w = 0.2;
    opt.search.size_frontier = 6;
    auto r = run_pipeline(benchmarks::lr_process(), opt);
    ASSERT_TRUE(r.completed) << r.message;
    ASSERT_TRUE(r.synthesized());
    EXPECT_EQ(r.area(), 0.0);  // Table 1: two wires
    EXPECT_DOUBLE_EQ(r.cycle(), 8.0);
    EXPECT_LE(r.reduced_cost.value, r.initial_cost.value);
}

TEST(pipeline, beam_reduction_cost_monotone_on_suite) {
    // The Fig. 9 search returns the best configuration over *all* explored
    // SGs, so its cost can never exceed the initial one.  (reduce_fully is
    // deliberately not monotone: it reduces to minimal concurrency even when
    // the cost worsens.)
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto expanded = expand_handshakes(spec);
        if (state_graph::generate(expanded).graph.state_count() > 120) continue;
        pipeline_options opt;
        opt.search.cost.w = 0.2;
        opt.run_performance = false;
        opt.recover_stg = false;
        auto r = run_pipeline(spec, opt);
        EXPECT_TRUE(r.completed) << name << ": " << r.message;
        EXPECT_LE(r.reduced_cost.value, r.initial_cost.value) << name;
    }
}

TEST(pipeline, text_entry_runs_parse_stage) {
    auto text = write_astg(benchmarks::fig1_controller());
    auto r = run_pipeline_text(text, pipeline_options{});
    EXPECT_TRUE(r.completed) << r.message;
    ASSERT_FALSE(r.timings.empty());
    EXPECT_EQ(r.timings.front().stage, pipeline_stage::parse);
    EXPECT_EQ(r.base_sg->state_count(), 5u);
}

TEST(pipeline, parse_failure_is_structured) {
    auto r = run_pipeline_text(".model broken\n.inputs a\n.graph\nnonsense here\n.end\n",
                               pipeline_options{});
    EXPECT_FALSE(r.completed);
    ASSERT_TRUE(r.failed.has_value());
    EXPECT_EQ(*r.failed, pipeline_stage::parse);
    EXPECT_FALSE(r.message.empty());
    // Only the failing stage was timed.
    check_timings(r, {pipeline_stage::parse});
}

TEST(pipeline, expansion_failure_is_structured) {
    // A partial signal with both polarities cannot be expanded.
    stg bad;
    auto a = static_cast<int32_t>(bad.add_signal("a", signal_kind::output, /*partial=*/true));
    auto tp = bad.add_transition({a, edge::plus, 0});
    auto tm = bad.add_transition({a, edge::minus, 0});
    bad.connect(tp, tm);
    bad.connect(tm, tp, 1);
    auto r = run_pipeline(bad, pipeline_options{});
    EXPECT_FALSE(r.completed);
    ASSERT_TRUE(r.failed.has_value());
    EXPECT_EQ(*r.failed, pipeline_stage::expand);
    EXPECT_NE(r.message.find("expand"), std::string::npos);
}

TEST(pipeline, optional_stages_can_be_disabled) {
    pipeline_options opt;
    opt.search.cost.w = 0.2;
    opt.run_performance = false;
    opt.recover_stg = false;
    auto r = run_pipeline(benchmarks::lr_process(), opt);
    ASSERT_TRUE(r.completed) << r.message;
    // Emission is not optional: it always follows a synthesised circuit.
    check_timings(r, {pipeline_stage::expand, pipeline_stage::state_graph, pipeline_stage::reduce,
                      pipeline_stage::csc, pipeline_stage::logic, pipeline_stage::emit});
    EXPECT_FALSE(r.perf.periodic);
    EXPECT_FALSE(r.recovered.ok);
}

TEST(pipeline, summary_mentions_stages_and_outcome) {
    pipeline_options opt;
    opt.search.cost.w = 0.2;
    opt.search.size_frontier = 6;
    auto r = run_pipeline(benchmarks::lr_process(), opt);
    auto s = pipeline_summary(r);
    EXPECT_NE(s.find("stage timings"), std::string::npos);
    EXPECT_NE(s.find("expand"), std::string::npos);
    EXPECT_NE(s.find("state graph"), std::string::npos);
    EXPECT_NE(s.find("(ok)"), std::string::npos);

    auto bad = run_pipeline_text("garbage", pipeline_options{});
    auto sbad = pipeline_summary(bad);
    EXPECT_NE(sbad.find("FAILED"), std::string::npos);
}
