// State-graph generation and analyses, validated on the paper's Fig. 1
// controller (memory/processor example, section 2).
#include <gtest/gtest.h>

#include "petri/astg_io.hpp"
#include "petri/stg.hpp"
#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

// Fig. 1: Req input, Ack output.  Initial state 0*1 (Ack=0 excited, Req=1).
stg fig1_controller() {
    stg n;
    n.model_name = "fig1";
    auto ack = static_cast<int32_t>(n.add_signal("Ack", signal_kind::output));
    auto req = static_cast<int32_t>(n.add_signal("Req", signal_kind::input));
    auto ackp = n.add_transition({ack, edge::plus, 0});
    auto ackm = n.add_transition({ack, edge::minus, 0});
    auto reqp = n.add_transition({req, edge::plus, 0});
    auto reqm = n.add_transition({req, edge::minus, 0});
    auto pa = n.add_place("pa", 1);
    auto pb = n.add_place("pb");
    auto pc = n.add_place("pc");
    auto pd = n.add_place("pd", 1);
    auto pe = n.add_place("pe", 1);
    auto pack = n.add_place("pack");
    // Ack+: {pd,pe} -> {pack};  Req-: {pa,pack} -> {pb,pc}
    // Req+: {pb} -> {pa,pe};    Ack-: {pc} -> {pd}
    n.add_arc_pt(pd, ackp);
    n.add_arc_pt(pe, ackp);
    n.add_arc_tp(ackp, pack);
    n.add_arc_pt(pa, reqm);
    n.add_arc_pt(pack, reqm);
    n.add_arc_tp(reqm, pb);
    n.add_arc_tp(reqm, pc);
    n.add_arc_pt(pb, reqp);
    n.add_arc_tp(reqp, pa);
    n.add_arc_tp(reqp, pe);
    n.add_arc_pt(pc, ackm);
    n.add_arc_tp(ackm, pd);
    // Req starts high; Ack starts low.  Req's first transition is Req- so
    // polarity deduction yields Req=1 automatically.
    return n;
}

}  // namespace

TEST(sg, fig1_has_five_states_six_arcs) {
    auto res = state_graph::generate(fig1_controller());
    EXPECT_EQ(res.graph.state_count(), 5u);
    EXPECT_EQ(res.graph.arc_count(), 6u);
    for (bool f : res.transition_fired) EXPECT_TRUE(f);
}

TEST(sg, fig1_initial_code_is_ack0_req1) {
    auto res = state_graph::generate(fig1_controller());
    const auto& g = res.graph;
    EXPECT_FALSE(g.states()[g.initial()].code.test(0));  // Ack = 0
    EXPECT_TRUE(g.states()[g.initial()].code.test(1));   // Req = 1
    EXPECT_EQ(g.state_code_string(g.initial()), "0*1");
}

TEST(sg, fig1_is_consistent_and_speed_independent) {
    auto res = state_graph::generate(fig1_controller());
    auto g = subgraph::full(res.graph);
    EXPECT_TRUE(check_consistency(g));
    auto si = check_speed_independence(g);
    EXPECT_TRUE(si.ok()) << (si.violations.empty() ? "" : si.violations[0]);
}

TEST(sg, fig1_has_exactly_one_csc_conflict) {
    // Paper: binary codes 11* and 1*1 correspond to different states.
    auto res = state_graph::generate(fig1_controller());
    auto rep = check_csc(subgraph::full(res.graph));
    EXPECT_EQ(rep.usc_pairs, 1u);
    EXPECT_EQ(rep.conflict_pairs, 1u);
    ASSERT_EQ(rep.examples.size(), 1u);
    auto code_str = [&](uint32_t s) { return res.graph.state_code_string(s); };
    std::string a = code_str(rep.examples[0].state_a);
    std::string b = code_str(rep.examples[0].state_b);
    EXPECT_TRUE((a == "11*" && b == "1*1") || (a == "1*1" && b == "11*")) << a << " vs " << b;
}

TEST(sg, fig1_req_plus_concurrent_with_ack_minus) {
    auto res = state_graph::generate(fig1_controller());
    auto g = subgraph::full(res.graph);
    const auto& b = res.graph;
    auto reqp = b.find_event(1, edge::plus);
    auto ackm = b.find_event(0, edge::minus);
    ASSERT_TRUE(reqp && ackm);
    auto er_reqp = excitation_regions(g, *reqp);
    auto er_ackm = excitation_regions(g, *ackm);
    ASSERT_EQ(er_reqp.size(), 1u);
    ASSERT_EQ(er_ackm.size(), 1u);
    EXPECT_EQ(er_reqp[0].states.count(), 2u);  // {1*0*, 00*}
    EXPECT_EQ(er_ackm[0].states.count(), 2u);  // {1*0*, 1*1}
    EXPECT_TRUE(concurrent(er_reqp[0], er_ackm[0]));
    EXPECT_TRUE(concurrent_by_diamond(g, *reqp, *ackm));
    // Req+ is NOT concurrent with Ack+.
    auto ackp = b.find_event(0, edge::plus);
    EXPECT_FALSE(concurrent_by_diamond(g, *reqp, *ackp));
}

TEST(sg, subgraph_kill_and_prune) {
    auto res = state_graph::generate(fig1_controller());
    auto g = subgraph::full(res.graph);
    // Kill the arc into one state; pruning should drop it.
    const auto& b = res.graph;
    // Find state with code 1*1 (Ack=1, Req=1, only Ack- enabled).
    uint32_t victim = UINT32_MAX;
    for (uint32_t s = 0; s < b.state_count(); ++s)
        if (b.state_code_string(s) == "1*1") victim = s;
    ASSERT_NE(victim, UINT32_MAX);
    for (uint32_t a : b.in_arcs(victim)) g.kill_arc(a);
    EXPECT_EQ(g.prune_unreachable(), 1u);
    EXPECT_FALSE(g.state_live(victim));
    EXPECT_EQ(g.live_state_count(), 4u);
    auto mat = g.materialize();
    EXPECT_EQ(mat.state_count(), 4u);
    EXPECT_TRUE(lts_equivalent(subgraph::full(mat), g));
}

TEST(sg, lts_equivalence_detects_differences) {
    auto res = state_graph::generate(fig1_controller());
    auto full = subgraph::full(res.graph);
    auto reduced = full;
    // Remove the Req+ arc from state 1*0* (keeping the one from 00*).
    const auto& b = res.graph;
    for (uint32_t s = 0; s < b.state_count(); ++s) {
        if (b.state_code_string(s) == "1*0*") {
            auto a = reduced.arc_from(s, *b.find_event(1, edge::plus));
            ASSERT_TRUE(a.has_value());
            reduced.kill_arc(*a);
        }
    }
    reduced.prune_unreachable();
    std::string diag;
    EXPECT_FALSE(lts_equivalent(full, reduced, &diag));
    EXPECT_FALSE(diag.empty());
    EXPECT_TRUE(lts_equivalent(full, full));
}

TEST(sg, inconsistent_stg_rejected) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    auto t1 = n.add_transition({a, edge::plus, 0});
    auto t2 = n.add_transition({a, edge::plus, 0});  // a+ twice in a row
    n.connect(t1, t2);
    n.connect(t2, t1, 1);
    EXPECT_THROW((void)state_graph::generate(n), error);
}

TEST(sg, toggle_signals_use_declared_initial_value) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    n.signal_at(0).initial_value = true;
    auto t1 = n.add_transition({a, edge::toggle, 0});
    auto t2 = n.add_transition({a, edge::toggle, 0});
    n.connect(t1, t2);
    n.connect(t2, t1, 1);
    auto res = state_graph::generate(n);
    EXPECT_EQ(res.graph.state_count(), 2u);
    EXPECT_TRUE(res.graph.states()[res.graph.initial()].code.test(0));
    EXPECT_TRUE(check_consistency(subgraph::full(res.graph)));
}

TEST(sg, unsafe_net_rejected) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    auto b = static_cast<int32_t>(n.add_signal("b", signal_kind::output));
    auto ta = n.add_transition({a, edge::plus, 0});
    auto tb = n.add_transition({b, edge::plus, 0});
    auto p = n.add_place("p", 1);
    auto q = n.add_place("q", 1);
    n.add_arc_pt(p, ta);
    n.add_arc_tp(ta, q);  // q already marked -> unsafe
    n.add_arc_pt(q, tb);
    EXPECT_THROW((void)state_graph::generate(n), error);
}
