// The incremental exploration engine (src/explore/) against its oracle, the
// reference engine in core/search:
//  * analysis_cache full builds reproduce estimate_cost bit-for-bit;
//  * apply_move accepts/rejects exactly the moves forward_reduction does and
//    produces the identical child subgraphs;
//  * derived (delta) caches equal full rebuilds after arbitrary move chains;
//  * the whole search is equivalent on every embedded corpus spec, the spec
//    suite and generated workloads -- identical best subgraph, best cost,
//    exploration count, depth and per-level trace -- and the dominance
//    -filtered scorer (--minimizer incremental) equals the exact oracle path
//    corpus-wide, with bound_move/finish_score matching score_move move by
//    move;
//  * results are independent of the expander's job count; and the signature
//    tie-break makes beam selection reproducible (pinning the stable-sort
//    satellite fix in the reference engine too);
//  * the quality dial keeps its contracts corpus-wide: exact is bit-identical
//    to the reference oracle, bounded never lands further from the exact
//    result than its declared gap, and anytime with a generous deadline is
//    exact search under another name.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "benchmarks/generate.hpp"
#include "core/expand.hpp"
#include "core/flow.hpp"
#include "core/reduce.hpp"
#include "core/search.hpp"
#include "explore/engine.hpp"
#include "explore/move.hpp"
#include "pipeline/pipeline.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

namespace {

/// Every spec the equivalence battery sweeps: the embedded paper corpus, the
/// property-test suite and a few generated random specs.
std::vector<benchmarks::named_spec> equivalence_specs() {
    auto specs = benchmarks::corpus_specs();
    for (auto& [name, spec] : benchmarks::spec_suite())
        specs.push_back({"suite_" + name, spec});
    for (auto& s : benchmarks::generate_workload(7, 3, benchmarks::generator_options{}))
        specs.push_back(std::move(s));
    return specs;
}

state_graph make_sg(const stg& spec) {
    return state_graph::generate(expand_handshakes(spec)).graph;
}

void expect_equal_results(const search_result& ref, const search_result& inc,
                          const std::string& name) {
    EXPECT_EQ(ref.best_cost.value, inc.best_cost.value) << name;
    EXPECT_EQ(ref.best_cost.csc_pairs, inc.best_cost.csc_pairs) << name;
    EXPECT_EQ(ref.best_cost.literals, inc.best_cost.literals) << name;
    EXPECT_EQ(ref.best.live_states(), inc.best.live_states()) << name;
    EXPECT_EQ(ref.best.live_arcs(), inc.best.live_arcs()) << name;
    EXPECT_EQ(ref.explored, inc.explored) << name;
    EXPECT_EQ(ref.levels, inc.levels) << name;
    EXPECT_EQ(ref.level_best, inc.level_best) << name;
}

void expect_equal_caches(const explore::analysis_cache& a, const explore::analysis_cache& b,
                         const std::string& ctx_name) {
    EXPECT_EQ(a.rows, b.rows) << ctx_name;
    EXPECT_EQ(a.event_arcs, b.event_arcs) << ctx_name;
    ASSERT_EQ(a.er.size(), b.er.size()) << ctx_name;
    for (std::size_t e = 0; e < a.er.size(); ++e) {
        ASSERT_EQ(a.er[e].size(), b.er[e].size()) << ctx_name << " event " << e;
        for (std::size_t k = 0; k < a.er[e].size(); ++k) {
            EXPECT_EQ(a.er[e][k].event, b.er[e][k].event) << ctx_name;
            EXPECT_EQ(a.er[e][k].states, b.er[e][k].states) << ctx_name;
        }
        EXPECT_EQ(a.er_union[e], b.er_union[e]) << ctx_name;
    }
    ASSERT_EQ(a.groups.size(), b.groups.size()) << ctx_name;
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
        EXPECT_EQ(a.groups[g].states, b.groups[g].states) << ctx_name;
        EXPECT_EQ(a.groups[g].conflict_pairs, b.groups[g].conflict_pairs) << ctx_name;
    }
    EXPECT_EQ(a.csc_pairs, b.csc_pairs) << ctx_name;
    ASSERT_EQ(a.signals.size(), b.signals.size()) << ctx_name;
    for (std::size_t s = 0; s < a.signals.size(); ++s) {
        EXPECT_EQ(a.signals[s].estimated, b.signals[s].estimated) << ctx_name;
        if (!a.signals[s].estimated) continue;
        EXPECT_EQ(a.signals[s].key, b.signals[s].key) << ctx_name << " signal " << s;
        EXPECT_EQ(a.signals[s].literals, b.signals[s].literals) << ctx_name << " signal " << s;
    }
    EXPECT_EQ(a.cost.value, b.cost.value) << ctx_name;
}

}  // namespace

TEST(analysis_cache, full_build_matches_estimate_cost) {
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        auto g = subgraph::full(base);
        cost_params p;
        p.w = 0.5;
        auto ctx = explore::make_context(base, p);
        auto cache = explore::build_cache(ctx, g);
        auto oracle = estimate_cost(g, p);
        EXPECT_EQ(cache.cost.value, oracle.value) << name;
        EXPECT_EQ(cache.cost.csc_pairs, oracle.csc_pairs) << name;
        EXPECT_EQ(cache.cost.literals, oracle.literals) << name;
        EXPECT_EQ(cache.cost.states, oracle.states) << name;
    }
}

TEST(move, apply_matches_forward_reduction_exhaustively) {
    // Every ER component pair of several graphs: the move layer must accept
    // exactly the pairs forward_reduction accepts, with identical children.
    std::size_t accepted = 0, rejected = 0;
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        if (base.state_count() > 600) continue;  // keep the sweep fast
        auto g = subgraph::full(base);
        cost_params p;
        auto ctx = explore::make_context(base, p);
        auto cache = explore::build_cache(ctx, g);
        auto comps = excitation_regions(g);
        for (const auto& a : comps) {
            if (base.is_input_event(a.event)) continue;
            for (const auto& b : comps) {
                if (&a == &b || a.event == b.event) continue;
                auto oracle = forward_reduction(g, a, b);
                auto am = explore::apply_move(ctx, g, cache, a, b);
                ASSERT_EQ(oracle.has_value(), am.has_value())
                    << name << " FwdRed(" << base.event_name(a.event) << ", "
                    << base.event_name(b.event) << ")";
                if (!oracle) {
                    ++rejected;
                    continue;
                }
                ++accepted;
                EXPECT_EQ(oracle->live_states(), am->child.live_states()) << name;
                EXPECT_EQ(oracle->live_arcs(), am->child.live_arcs()) << name;
            }
        }
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(move, delta_score_and_derived_cache_match_full_rebuild) {
    // Walk a greedy chain of moves; at every step the delta score and the
    // derived cache must equal a from-scratch rebuild of the child.
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        if (base.state_count() > 600) continue;
        auto g = subgraph::full(base);
        cost_params p;
        p.w = 0.3;
        auto ctx = explore::make_context(base, p);
        auto cache = explore::build_cache(ctx, g);
        explore::literal_memo memo;
        for (int step = 0; step < 4; ++step) {
            auto comps = excitation_regions(g);
            std::optional<explore::applied_move> am;
            for (const auto& a : comps) {
                if (base.is_input_event(a.event)) continue;
                for (const auto& b : comps) {
                    if (&a == &b || a.event == b.event) continue;
                    am = explore::apply_move(ctx, g, cache, a, b);
                    if (am) break;
                }
                if (am) break;
            }
            if (!am) break;
            auto score = explore::score_move(ctx, g, cache, *am, memo);
            auto oracle = estimate_cost(am->child, p);
            ASSERT_EQ(score.cost.value, oracle.value) << name << " step " << step;
            ASSERT_EQ(score.cost.csc_pairs, oracle.csc_pairs) << name << " step " << step;
            ASSERT_EQ(score.cost.literals, oracle.literals) << name << " step " << step;
            auto derived = explore::derive_cache(ctx, g, cache, *am, score);
            auto rebuilt = explore::build_cache(ctx, am->child);
            expect_equal_caches(derived, rebuilt, name + " step " + std::to_string(step));
            g = am->child;
            cache = std::move(derived);
        }
    }
}

// INSTANTIATE_TEST_SUITE_P below pins the sweep width; this test fails the
// moment equivalence_specs() grows so a new spec cannot silently escape the
// cross-engine battery.
TEST(engine_equivalence_coverage, range_matches_spec_count) {
    EXPECT_EQ(equivalence_specs().size(), 19u)
        << "equivalence_specs() changed: update the Range(0, N) instantiation "
           "of engine_equivalence to match";
}

class engine_equivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(engine_equivalence, incremental_equals_reference) {
    auto specs = equivalence_specs();
    ASSERT_LT(GetParam(), specs.size());
    const auto& [name, spec] = specs[GetParam()];
    auto base = make_sg(spec);
    auto g = subgraph::full(base);
    search_options so;
    so.cost.w = 0.5;
    so.size_frontier = 4;
    so.keep_concurrent = keepconc_events(expand_handshakes(spec));
    auto ref = reduce_concurrency(g, so);
    auto inc = explore::reduce_concurrency_incremental(g, so);
    expect_equal_results(ref, inc, name);

    // The dominance-filtered scorer (the default) against the exact oracle
    // path: identical winners, costs, exploration counts and traces.
    search_options so_exact = so;
    so_exact.minimizer = minimizer_mode::exact;
    auto exact = explore::reduce_concurrency_incremental(g, so_exact);
    expect_equal_results(exact, inc, name + "/minimizer");
    EXPECT_EQ(exact.pruned, 0u) << name;

    // A second configuration (CSC-biased, narrow beam) for coverage of ties.
    search_options so2 = so;
    so2.cost.w = 0.2;
    so2.size_frontier = 2;
    expect_equal_results(reduce_concurrency(g, so2),
                         explore::reduce_concurrency_incremental(g, so2), name + "/w02");
    search_options so2_exact = so2;
    so2_exact.minimizer = minimizer_mode::exact;
    expect_equal_results(explore::reduce_concurrency_incremental(g, so2_exact),
                         explore::reduce_concurrency_incremental(g, so2),
                         name + "/w02-minimizer");
}

// 8 corpus + 8 suite + 3 generated = 19 specs (pinned by
// engine_equivalence_coverage.range_matches_spec_count above).
INSTANTIATE_TEST_SUITE_P(corpus, engine_equivalence, ::testing::Range<std::size_t>(0, 19));

TEST(move, bound_and_finish_match_score) {
    // Along greedy move chains: bound_move's optimistic cost must floor the
    // exact score, finish_score(bound_move(...)) must equal score_move(...)
    // bit for bit (same cost, same updates), and the CSC term is exact in
    // both.  A separate memo drives the bound path so a warm score-side memo
    // cannot mask a bound-side bug.
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        if (base.state_count() > 600) continue;
        auto g = subgraph::full(base);
        cost_params p;
        p.w = 0.5;
        auto ctx = explore::make_context(base, p);
        explore::literal_memo score_memo, bound_memo;
        auto cache = explore::build_cache(ctx, g, &bound_memo);
        for (int step = 0; step < 4; ++step) {
            auto comps = excitation_regions(g);
            std::optional<explore::applied_move> am;
            for (const auto& a : comps) {
                if (base.is_input_event(a.event)) continue;
                for (const auto& b : comps) {
                    if (&a == &b || a.event == b.event) continue;
                    am = explore::apply_move(ctx, g, cache, a, b);
                    if (am) break;
                }
                if (am) break;
            }
            if (!am) break;
            auto score = explore::score_move(ctx, g, cache, *am, score_memo);
            auto eval = explore::bound_move(ctx, g, cache, *am, bound_memo);
            EXPECT_EQ(eval.csc, score.cost.csc_pairs) << name << " step " << step;
            EXPECT_EQ(eval.states, score.cost.states) << name << " step " << step;
            EXPECT_LE(eval.lits_lo, score.cost.literals) << name << " step " << step;
            EXPECT_LE(eval.value_lo, score.cost.value) << name << " step " << step;
            auto fin = explore::finish_score(ctx, cache, *am, std::move(eval), bound_memo);
            EXPECT_EQ(fin.cost.value, score.cost.value) << name << " step " << step;
            EXPECT_EQ(fin.cost.csc_pairs, score.cost.csc_pairs) << name << " step " << step;
            EXPECT_EQ(fin.cost.literals, score.cost.literals) << name << " step " << step;
            ASSERT_EQ(fin.updates.size(), score.updates.size()) << name << " step " << step;
            for (std::size_t u = 0; u < fin.updates.size(); ++u) {
                EXPECT_EQ(fin.updates[u].signal, score.updates[u].signal) << name;
                EXPECT_TRUE(fin.updates[u].key == score.updates[u].key) << name;
                EXPECT_EQ(fin.updates[u].literals, score.updates[u].literals) << name;
            }
            auto derived = explore::derive_cache(ctx, g, cache, *am, fin);
            g = am->child;
            cache = std::move(derived);
        }
    }
}

TEST(engine, dominance_filter_actually_prunes) {
    // On a spec with a wide candidate set the default minimizer must discard
    // a nonzero number of candidates unminimised -- otherwise the filter is
    // dead code -- while returning the exact path's results (pinned corpus
    // -wide by engine_equivalence).
    auto base = make_sg(benchmarks::mmu_controller());
    auto g = subgraph::full(base);
    search_options so;
    so.cost.w = 0.5;
    auto inc = explore::reduce_concurrency_incremental(g, so);
    EXPECT_GT(inc.pruned, 0u);
    EXPECT_LT(inc.pruned, inc.explored);
}

TEST(engine, results_independent_of_job_count) {
    auto base = make_sg(benchmarks::mmu_controller());
    auto g = subgraph::full(base);
    search_options so;
    so.cost.w = 0.5;
    so.jobs = 1;
    auto serial = explore::reduce_concurrency_incremental(g, so);
    so.jobs = 4;
    auto parallel = explore::reduce_concurrency_incremental(g, so);
    expect_equal_results(serial, parallel, "mmu jobs 1 vs 4");
}

TEST(engine, beam_selection_is_reproducible) {
    // The signature tie-break (satellite fix in the reference engine) makes
    // the selected best *subgraph*, not just its cost, stable run-to-run and
    // across engines -- even on symmetric specs where costs tie.
    auto spec = benchmarks::par_component();
    auto base = make_sg(spec);
    auto g = subgraph::full(base);
    search_options so;
    so.cost.w = 0.5;
    auto first = reduce_concurrency(g, so);
    auto second = reduce_concurrency(g, so);
    EXPECT_EQ(first.best.live_states(), second.best.live_states());
    EXPECT_EQ(first.best.live_arcs(), second.best.live_arcs());
    auto inc = explore::reduce_concurrency_incremental(g, so);
    EXPECT_EQ(first.best.live_states(), inc.best.live_states());
    EXPECT_EQ(first.best.live_arcs(), inc.best.live_arcs());
}

TEST(engine, keepconc_pairs_respected) {
    auto spec = benchmarks::lr_process();
    auto base = make_sg(spec);
    auto g = subgraph::full(base);
    auto sig = [&](const char* n) {
        for (uint32_t s = 0; s < base.signals().size(); ++s)
            if (base.signals()[s].name == n) return static_cast<int32_t>(s);
        return int32_t{-1};
    };
    search_options so;
    so.cost.w = 0.2;
    so.keep_concurrent.push_back(
        {sg_event{sig("li"), edge::minus}, sg_event{sig("ri"), edge::minus}});
    auto inc = explore::reduce_concurrency_incremental(g, so);
    auto ref = reduce_concurrency(g, so);
    expect_equal_results(ref, inc, "lr keepconc");
    auto lim = *base.find_event(sig("li"), edge::minus);
    auto rim = *base.find_event(sig("ri"), edge::minus);
    EXPECT_TRUE(concurrent_by_diamond(inc.best, lim, rim));
}

TEST(engine, pipeline_defaults_to_incremental_and_finds_lr_wires) {
    // The pipeline wiring: default engine is incremental and reproduces the
    // headline LR result (two wires).
    pipeline_options opt;
    EXPECT_EQ(opt.search.engine, search_engine::incremental);
    opt.search.cost.w = 0.2;
    opt.search.size_frontier = 6;
    auto r = run_pipeline(benchmarks::lr_process(), opt);
    ASSERT_TRUE(r.completed) << r.message;
    EXPECT_TRUE(r.synthesized());
    EXPECT_EQ(r.reduced_cost.csc_pairs, 0u);
    EXPECT_EQ(r.reduced_cost.literals, 2u);
}

TEST(engine, zero_frontier_is_clamped_not_crashing) {
    auto base = make_sg(benchmarks::lr_process());
    auto g = subgraph::full(base);
    search_options so;
    so.size_frontier = 0;  // would read fresh.front() after resize(0) unclamped
    auto ref = reduce_concurrency(g, so);
    auto inc = explore::reduce_concurrency_incremental(g, so);
    expect_equal_results(ref, inc, "lr frontier 0");
    EXPECT_GT(ref.explored, 1u);
}

TEST(engine, non_persistent_input_falls_back_to_reference) {
    // The delta validity checks assume an output-persistent root; a
    // hand-built SG violating that must still match the reference engine
    // (the incremental engine detects it and delegates).
    std::vector<signal_decl> sigs = {{"x", signal_kind::output, false, false},
                                     {"y", signal_kind::output, false, false}};
    std::vector<sg_event> events = {{0, edge::plus}, {1, edge::plus}};
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(2);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    std::vector<sg_state> states = {{marking{}, code({})},
                                    {marking{}, code({0})},
                                    {marking{}, code({1})}};
    // s0 -x-> s1, s0 -y-> s2: firing x disables y (and vice versa).
    std::vector<sg_arc> arcs = {{0, 1, 0}, {0, 2, 1}};
    auto base = state_graph::build(std::move(sigs), std::move(events), std::move(states),
                                   std::move(arcs), 0);
    auto g = subgraph::full(base);
    ASSERT_FALSE(check_speed_independence(g).output_persistent);
    search_options so;
    expect_equal_results(reduce_concurrency(g, so),
                         explore::reduce_concurrency_incremental(g, so), "non-persistent");
}

// ---- the quality dial -------------------------------------------------------

TEST(quality, exact_mode_is_bit_identical_to_the_reference_oracle) {
    // `--quality exact` IS the pre-dial behaviour: corpus-wide, the result
    // equals the unmodified reference engine bit for bit and carries no gap
    // machinery at all.
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        auto g = subgraph::full(base);
        search_options so;
        so.cost.w = 0.5;
        so.size_frontier = 2;
        so.keep_concurrent = keepconc_events(expand_handshakes(spec));
        so.quality = search_quality::exact;
        auto inc = explore::reduce_concurrency_incremental(g, so);
        expect_equal_results(reduce_concurrency(g, so), inc, name);
        EXPECT_EQ(inc.quality, search_quality::exact) << name;
        EXPECT_EQ(inc.bound_gap, 0.0) << name;
        EXPECT_TRUE(inc.level_gap.empty()) << name;
        EXPECT_FALSE(inc.deadline_hit) << name;
    }
}

TEST(quality, bounded_gap_is_respected_corpus_wide) {
    // Bounded search refines its provisional lower-bound beam lazily to the
    // no-displacement fixpoint, so corpus-wide the result must land within
    // the declared gap of the exact oracle -- and because the fixpoint makes
    // the selection exact, the achieved gap itself must be 0 on every level
    // (a nonzero entry would mean an unsound bound).  Pruning must still
    // really happen: the certificate is not bought by refining everything.
    std::size_t total_pruned = 0;
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        auto g = subgraph::full(base);
        search_options so;
        so.cost.w = 0.5;
        so.size_frontier = 2;
        so.keep_concurrent = keepconc_events(expand_handshakes(spec));
        auto exact = explore::reduce_concurrency_incremental(g, so);
        search_options so_b = so;
        so_b.quality = search_quality::bounded;
        auto b = explore::reduce_concurrency_incremental(g, so_b);
        EXPECT_EQ(b.quality, search_quality::bounded) << name;
        ASSERT_EQ(b.level_gap.size(), b.levels) << name;
        for (double gap : b.level_gap) EXPECT_EQ(gap, 0.0) << name;
        EXPECT_EQ(b.bound_gap, 0.0) << name;
        // The headline contract: within the declared gap of the exact
        // oracle.  With a zero achieved gap that means equality, which the
        // full-trace comparison below pins field by field.
        EXPECT_LE(b.best_cost.value, exact.best_cost.value + b.bound_gap + 1e-9) << name;
        expect_equal_results(exact, b, name);
        total_pruned += b.pruned;
    }
    EXPECT_GT(total_pruned, 0u);
}

TEST(quality, anytime_with_generous_deadline_equals_exact) {
    // A deadline the search cannot miss changes nothing: same admission path,
    // same result, no gap -- "anytime" only costs something when it fires.
    for (const auto& [name, spec] : equivalence_specs()) {
        auto base = make_sg(spec);
        auto g = subgraph::full(base);
        search_options so;
        so.cost.w = 0.5;
        so.size_frontier = 2;
        so.keep_concurrent = keepconc_events(expand_handshakes(spec));
        auto exact = explore::reduce_concurrency_incremental(g, so);
        search_options so_a = so;
        so_a.quality = search_quality::anytime;
        so_a.deadline_ms = 3'600'000;  // one hour: unmissable
        auto a = explore::reduce_concurrency_incremental(g, so_a);
        expect_equal_results(exact, a, name);
        EXPECT_EQ(a.quality, search_quality::anytime) << name;
        EXPECT_FALSE(a.deadline_hit) << name;
        EXPECT_EQ(a.bound_gap, 0.0) << name;
    }
}

TEST(quality, anytime_tiny_deadline_returns_a_valid_best_so_far) {
    // With a 1 ms deadline on the widest corpus spec the search either hits
    // the deadline (then it must say so, return a sound best-so-far and the
    // trivial gap bound) or it finished inside 1 ms (then it must equal the
    // exact run).  Either way the caller gets a usable, honestly labelled
    // result -- never a crash, never a silent approximation.
    auto base = make_sg(benchmarks::mmu_controller());
    auto g = subgraph::full(base);
    search_options so;
    so.cost.w = 0.5;
    so.size_frontier = 8;
    auto exact = explore::reduce_concurrency_incremental(g, so);
    search_options so_a = so;
    so_a.quality = search_quality::anytime;
    so_a.deadline_ms = 1;
    auto a = explore::reduce_concurrency_incremental(g, so_a);
    EXPECT_EQ(a.quality, search_quality::anytime);
    if (a.deadline_hit) {
        EXPECT_EQ(a.bound_gap, a.best_cost.value);
        EXPECT_LE(a.levels, exact.levels);
        EXPECT_GE(a.best_cost.value, exact.best_cost.value);
        EXPECT_GT(a.best.live_states().count(), 0u);
    } else {
        expect_equal_results(exact, a, "mmu anytime finished early");
    }
}

TEST(quality, non_exact_quality_overrides_the_reference_engine) {
    // `--engine reference` pins the exactness oracle, so the qualities that
    // only exist in the incremental engine take precedence over it: asking
    // the reference engine for bounded search gets the incremental engine.
    auto base = make_sg(benchmarks::lr_process());
    auto g = subgraph::full(base);
    search_options so;
    so.engine = search_engine::reference;
    so.quality = search_quality::bounded;
    auto r = run_reduction(g, reduction_strategy::beam, so, nullptr);
    EXPECT_EQ(r.quality, search_quality::bounded);
    ASSERT_EQ(r.level_gap.size(), r.levels);
}

TEST(signature128, distinguishes_subgraphs_and_is_stable) {
    auto base = benchmarks::fig8_fragment();
    auto g = subgraph::full(base);
    auto s1 = g.signature128();
    EXPECT_EQ(s1, subgraph::full(base).signature128());
    auto h = g;
    h.kill_arc(0);
    EXPECT_FALSE(s1 == h.signature128());
    EXPECT_TRUE(s1 < h.signature128() || h.signature128() < s1);
}
