// Timed simulation: hand-computed cycle times on small systems, overlap of
// concurrent chains, delay overrides, and the Table 1 headline timings.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "perf/timing.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;

namespace {

state_graph sg_of(const stg& net) { return state_graph::generate(net).graph; }

}  // namespace

TEST(perf, two_signal_ring) {
    // a+ -> b+ -> a- -> b- -> a+ ... with unit delays: period 4.
    auto net = parse_astg(R"(.model ring
.outputs a b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
)");
    auto sg = sg_of(net);
    delay_model dm;
    auto rep = analyze_performance(subgraph::full(sg), dm);
    ASSERT_TRUE(rep.periodic) << rep.message;
    EXPECT_DOUBLE_EQ(rep.cycle_time, 4.0);
    EXPECT_EQ(rep.events_on_cycle, 4u);
    EXPECT_EQ(rep.input_events_on_cycle, 0u);
}

TEST(perf, input_delays_are_heavier) {
    // Same ring but with a as an input: 2 + 2 + 1 + 1 = 6.
    auto net = parse_astg(R"(.model ring2
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
)");
    auto rep = analyze_performance(subgraph::full(sg_of(net)), delay_model{});
    ASSERT_TRUE(rep.periodic);
    EXPECT_DOUBLE_EQ(rep.cycle_time, 6.0);
    EXPECT_EQ(rep.input_events_on_cycle, 2u);
}

TEST(perf, concurrent_chains_overlap) {
    // fork into two parallel chains of different lengths, join:
    //   t+ -> (a+ ; a-) || (b+)  -> t-   all outputs, unit delays.
    // Critical path runs through the longer chain: t+ a+ a- t- = 4 per lap.
    auto net = parse_astg(R"(.model forkjoin
.outputs t a b
.graph
t+ a+ b+
a+ a-
a- t-
b+ t-
t- b-
b- t+
.marking { <b-,t+> }
.end
)");
    auto rep = analyze_performance(subgraph::full(sg_of(net)), delay_model{});
    ASSERT_TRUE(rep.periodic) << rep.message;
    // Critical path per lap: t+ a+ a- t- b- = 5 unit delays; the short
    // branch (b+) overlaps with the long one and does not serialise.
    EXPECT_DOUBLE_EQ(rep.cycle_time, 5.0);
    // Serialised, the lap would cost 6: concurrency is visible in the model.
    EXPECT_LT(rep.cycle_time, 6.0);
}

TEST(perf, overrides_take_precedence) {
    auto net = parse_astg(R"(.model ring
.outputs a b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
)");
    delay_model dm;
    dm.overrides.emplace_back("a", 5.0);
    auto rep = analyze_performance(subgraph::full(sg_of(net)), dm);
    ASSERT_TRUE(rep.periodic);
    EXPECT_DOUBLE_EQ(rep.cycle_time, 5.0 + 1.0 + 5.0 + 1.0);
}

TEST(perf, deadlock_is_reported) {
    auto net = parse_astg(R"(.model dead
.outputs a b
.graph
pa a+
a+ b+
.marking { pa }
.end
)");
    // a+ then b+ fire once and the net is stuck: the simulation must stop
    // and report the deadlock instead of spinning.
    auto sg = sg_of(net);
    auto rep = analyze_performance(subgraph::full(sg), delay_model{});
    EXPECT_FALSE(rep.periodic);
    EXPECT_NE(rep.message.find("deadlock"), std::string::npos);
}

TEST(perf, lr_full_reduction_matches_table1) {
    // Table 1: full reduction has critical cycle 8 with 4 input events
    // (the two outputs are wires -> zero delay).
    auto sg = sg_of(benchmarks::lr_full_reduction());
    delay_model dm;
    dm.overrides.emplace_back("lo", 0.0);
    dm.overrides.emplace_back("ro", 0.0);
    auto rep = analyze_performance(subgraph::full(sg), dm);
    ASSERT_TRUE(rep.periodic);
    EXPECT_DOUBLE_EQ(rep.cycle_time, 8.0);
    EXPECT_EQ(rep.input_events_on_cycle, 4u);
}

TEST(perf, qmodule_matches_table1) {
    // Table 1: Q-module critical cycle 14 with 4 input events (8 for the
    // four input edges + 6 for the four output edges and two CSC edges).
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto csc = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(csc.solved);
    auto rep = analyze_performance(subgraph::full(csc.graph), delay_model{});
    ASSERT_TRUE(rep.periodic);
    EXPECT_DOUBLE_EQ(rep.cycle_time, 14.0);
    EXPECT_EQ(rep.input_events_on_cycle, 4u);
}

TEST(perf, max_concurrency_is_faster_than_full_reduction_pre_encoding) {
    // More concurrency -> shorter cycle before CSC signals are added.
    auto maxc = sg_of(expand_handshakes(benchmarks::lr_process()));
    auto full = sg_of(benchmarks::lr_full_reduction());
    auto r1 = analyze_performance(subgraph::full(maxc), delay_model{});
    auto r2 = analyze_performance(subgraph::full(full), delay_model{});
    ASSERT_TRUE(r1.periodic && r2.periodic);
    EXPECT_LT(r1.cycle_time, r2.cycle_time);
}

TEST(perf, per_kind_defaults) {
    auto net = parse_astg(R"(.model kinds
.inputs i
.outputs o
.internal x
.graph
i+ o+
o+ x+
x+ i-
i- o-
o- x-
x- i+
.marking { <x-,i+> }
.end
)");
    auto sg = sg_of(net);
    delay_model dm;
    dm.input_delay = 3.0;
    dm.output_delay = 2.0;
    dm.internal_delay = 1.0;
    auto rep = analyze_performance(subgraph::full(sg), dm);
    ASSERT_TRUE(rep.periodic);
    EXPECT_DOUBLE_EQ(rep.cycle_time, 2 * (3.0 + 2.0 + 1.0));
}

class perf_corpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(perf_corpus, all_expansions_reach_a_periodic_regime) {
    auto suite = benchmarks::spec_suite();
    const auto& [name, spec] = suite.at(GetParam());
    auto sg = sg_of(expand_handshakes(spec));
    auto rep = analyze_performance(subgraph::full(sg), delay_model{});
    EXPECT_TRUE(rep.periodic) << name << ": " << rep.message;
    EXPECT_GT(rep.cycle_time, 0.0) << name;
    EXPECT_GT(rep.input_events_on_cycle, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(corpus, perf_corpus, ::testing::Range<std::size_t>(0, 7));
