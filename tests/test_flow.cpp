// End-to-end integration of the Fig. 4 flow, with the paper's headline
// shape assertions on the LR process, the PAR component and the MMU.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/flow.hpp"
#include "petri/astg_io.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

TEST(flow, lr_beam_flow_reaches_the_wire_solution) {
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.2;
    o.search.size_frontier = 6;
    o.recover = true;
    auto rep = run_flow(benchmarks::lr_process(), o);
    ASSERT_TRUE(rep.synth.ok) << rep.synth.message;
    EXPECT_EQ(rep.area(), 0.0);             // Table 1: full reduction, area 0
    EXPECT_EQ(rep.csc_signals(), 0u);       // no state signals
    EXPECT_DOUBLE_EQ(rep.cycle(), 8.0);     // Table 1: cr. cycle 8
    EXPECT_EQ(rep.input_events(), 4u);      // Table 1: 4 input events
    EXPECT_TRUE(rep.recovered.ok);
}

TEST(flow, lr_max_concurrency_costs_two_state_signals) {
    flow_options o;
    o.strategy = reduction_strategy::none;
    auto rep = run_flow(benchmarks::lr_process(), o);
    ASSERT_TRUE(rep.synth.ok) << rep.synth.message;
    EXPECT_EQ(rep.csc_signals(), 2u);  // Table 1: max concurrency, 2 CSC signals
    EXPECT_GT(rep.area(), 0.0);
    EXPECT_EQ(rep.input_events(), 3u);
}

TEST(flow, reduction_shrinks_area_on_every_spec) {
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        // Encoding the *unreduced* graph of the largest specs is the most
        // expensive CSC instance in the repo; cap this comparison to the
        // small/medium entries (the large ones are covered by the reduced
        // flows below and by the dedicated MMU test).
        auto expanded = expand_handshakes(spec);
        if (state_graph::generate(expanded).graph.state_count() > 120) continue;

        flow_options max_opts;
        max_opts.strategy = reduction_strategy::none;
        max_opts.csc.max_signals = 6;
        max_opts.csc.beam_width = 2;
        auto maxc = run_flow(spec, max_opts);

        flow_options red_opts = max_opts;
        red_opts.strategy = reduction_strategy::beam;
        red_opts.search.cost.w = 0.2;
        auto red = run_flow(spec, red_opts);

        if (maxc.synth.ok && red.synth.ok) {
            EXPECT_LE(red.area(), maxc.area()) << name;
        }
        EXPECT_TRUE(red.synth.ok) << name << ": " << red.synth.message;
    }
}

TEST(flow, reduced_graphs_always_stay_valid) {
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        flow_options o;
        o.strategy = reduction_strategy::full;
        o.search.cost.w = 0.2;
        auto rep = run_flow(spec, o);
        auto si = check_speed_independence(rep.reduced);
        EXPECT_TRUE(si.ok()) << name;
        EXPECT_TRUE(deadlock_states(rep.reduced).empty()) << name;
        EXPECT_TRUE(check_consistency(rep.reduced)) << name;
    }
}

TEST(flow, mmu_reduction_cuts_area_to_under_half) {
    // Table 2 headline: "reshuffling can yield an area reduction to less
    // than one half" of the original.
    flow_options orig;
    orig.strategy = reduction_strategy::none;
    orig.csc.max_signals = 6;
    orig.csc.beam_width = 3;
    auto rep_orig = run_flow(benchmarks::mmu_controller(), orig);
    ASSERT_TRUE(rep_orig.synth.ok) << rep_orig.synth.message;

    flow_options red;
    red.strategy = reduction_strategy::full;
    red.search.cost.w = 0.2;
    auto rep_red = run_flow(benchmarks::mmu_controller(), red);
    ASSERT_TRUE(rep_red.synth.ok) << rep_red.synth.message;

    EXPECT_LT(rep_red.area(), 0.5 * rep_orig.area());
}

TEST(flow, par_direct_implementation_at_least_twice_the_reduced) {
    // Fig. 10: direct implementation of the maximally concurrent behaviour
    // is about twice as complex as the reduced one.
    auto sg = state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    flow_options direct;
    direct.strategy = reduction_strategy::none;
    direct.csc.max_signals = 6;
    auto maxc = run_flow_from_sg(sg, direct);
    ASSERT_TRUE(maxc.synth.ok) << maxc.synth.message;

    flow_options red;
    red.strategy = reduction_strategy::beam;
    red.search.cost.w = 0.5;
    red.search.size_frontier = 4;
    auto reduced = run_flow_from_sg(sg, red);
    ASSERT_TRUE(reduced.synth.ok) << reduced.synth.message;

    EXPECT_GE(maxc.area(), 2.0 * reduced.area());
}

TEST(flow, wire_outputs_get_zero_delay) {
    flow_options o;
    o.strategy = reduction_strategy::none;
    auto rep = run_flow_from_sg(state_graph::generate(benchmarks::lr_full_reduction()).graph, o);
    ASSERT_TRUE(rep.synth.ok);
    // 4 input edges x 2 units; the two wires contribute nothing.
    EXPECT_DOUBLE_EQ(rep.cycle(), 8.0);
}

TEST(flow, report_survives_moves) {
    // The reduced view must stay valid after the report is moved around
    // (regression test for the shared_ptr base).
    std::vector<flow_report> reports;
    for (int i = 0; i < 3; ++i) {
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = 0.2;
        reports.push_back(run_flow(benchmarks::lr_process(), o));
    }
    for (auto& rep : reports) {
        EXPECT_EQ(count_concurrent_pairs(rep.reduced), 0u);
        EXPECT_EQ(rep.reduced.live_state_count(), 8u);
    }
}

TEST(flow, recovered_stg_roundtrips_through_text) {
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.2;
    o.recover = true;
    auto rep = run_flow(benchmarks::lr_process(), o);
    ASSERT_TRUE(rep.recovered.ok) << rep.recovered.message;
    auto text = write_astg(rep.recovered.net);
    auto parsed = parse_astg(text);
    auto regen = state_graph::generate(parsed);
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), rep.reduced));
}

class flow_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(flow_random, random_specs_run_end_to_end) {
    auto spec = benchmarks::random_handshake_spec(GetParam(), 3);
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.3;
    o.search.size_frontier = 2;
    o.csc.max_signals = 6;
    auto rep = run_flow(spec, o);
    EXPECT_TRUE(rep.synth.ok) << rep.synth.message;
    EXPECT_TRUE(rep.perf.periodic) << rep.perf.message;
    EXPECT_GE(rep.area(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(seeds, flow_random, ::testing::Range<uint64_t>(0, 8));
