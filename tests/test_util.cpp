// dyn_bitset and PRNG substrate tests, including brute-force cross-checks
// against std::vector<bool> reference implementations.
#include <gtest/gtest.h>

#include <vector>

#include "util/dyn_bitset.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

using namespace asynth;

TEST(dyn_bitset, construction_and_size) {
    dyn_bitset empty;
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_TRUE(empty.none());
    dyn_bitset zeros(100);
    EXPECT_EQ(zeros.size(), 100u);
    EXPECT_TRUE(zeros.none());
    EXPECT_EQ(zeros.count(), 0u);
    dyn_bitset ones(100, true);
    EXPECT_EQ(ones.count(), 100u);
}

TEST(dyn_bitset, set_reset_flip) {
    dyn_bitset b(130);
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_EQ(b.count(), 3u);
    b.reset(64);
    EXPECT_FALSE(b.test(64));
    b.flip(64);
    EXPECT_TRUE(b.test(64));
    b.assign(0, false);
    EXPECT_FALSE(b.test(0));
}

TEST(dyn_bitset, padding_bits_stay_clear) {
    dyn_bitset b(65, true);
    EXPECT_EQ(b.count(), 65u);
    b.set_all();
    EXPECT_EQ(b.count(), 65u);
    dyn_bitset c(65);
    c.set(64);
    EXPECT_EQ((b & c).count(), 1u);
}

TEST(dyn_bitset, find_first_and_next) {
    dyn_bitset b(200);
    EXPECT_EQ(b.find_first(), dyn_bitset::npos);
    b.set(3);
    b.set(77);
    b.set(199);
    EXPECT_EQ(b.find_first(), 3u);
    EXPECT_EQ(b.find_next(3), 77u);
    EXPECT_EQ(b.find_next(77), 199u);
    EXPECT_EQ(b.find_next(199), dyn_bitset::npos);
}

TEST(dyn_bitset, ones_iteration) {
    dyn_bitset b(150);
    std::vector<std::size_t> expect = {0, 63, 64, 65, 149};
    for (auto i : expect) b.set(i);
    std::vector<std::size_t> got;
    for (auto i : b.ones()) got.push_back(i);
    EXPECT_EQ(got, expect);
}

TEST(dyn_bitset, boolean_operations) {
    dyn_bitset a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(65);
    b.set(2);
    EXPECT_EQ((a | b).count(), 3u);
    EXPECT_EQ((a & b).count(), 1u);
    EXPECT_EQ((a ^ b).count(), 2u);
    dyn_bitset c = a;
    c.and_not(b);
    EXPECT_TRUE(c.test(1));
    EXPECT_FALSE(c.test(65));
}

TEST(dyn_bitset, subset_and_intersection) {
    dyn_bitset a(100), b(100);
    a.set(10);
    b.set(10);
    b.set(20);
    EXPECT_TRUE(a.is_subset_of(b));
    EXPECT_FALSE(b.is_subset_of(a));
    EXPECT_TRUE(a.intersects(b));
    dyn_bitset c(100);
    c.set(30);
    EXPECT_FALSE(a.intersects(c));
    EXPECT_TRUE(dyn_bitset(100).is_subset_of(a));  // empty set
}

TEST(dyn_bitset, equality_and_hash) {
    dyn_bitset a(90), b(90);
    a.set(42);
    b.set(42);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.set(43);
    EXPECT_NE(a, b);
}

TEST(dyn_bitset, to_string) {
    dyn_bitset b(4);
    b.set(1);
    b.set(3);
    EXPECT_EQ(b.to_string(), "0101");
}

class dyn_bitset_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(dyn_bitset_random, matches_reference_implementation) {
    xorshift64 rng(GetParam() * 1234567 + 1);
    const std::size_t n = 1 + rng.next_below(300);
    dyn_bitset a(n), b(n);
    std::vector<bool> ra(n), rb(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.next_bool()) a.set(i), ra[i] = true;
        if (rng.next_bool()) b.set(i), rb[i] = true;
    }
    // count
    std::size_t expect_count = 0;
    for (bool v : ra) expect_count += v;
    EXPECT_EQ(a.count(), expect_count);
    // or / and / xor / andnot
    auto check = [&](const dyn_bitset& got, auto op) {
        for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got.test(i), op(ra[i], rb[i]));
    };
    check(a | b, [](bool x, bool y) { return x || y; });
    check(a & b, [](bool x, bool y) { return x && y; });
    check(a ^ b, [](bool x, bool y) { return x != y; });
    dyn_bitset d = a;
    d.and_not(b);
    check(d, [](bool x, bool y) { return x && !y; });
    // subset / intersects
    bool exp_inter = false, exp_sub = true;
    for (std::size_t i = 0; i < n; ++i) {
        exp_inter = exp_inter || (ra[i] && rb[i]);
        exp_sub = exp_sub && (!ra[i] || rb[i]);
    }
    EXPECT_EQ(a.intersects(b), exp_inter);
    EXPECT_EQ(a.is_subset_of(b), exp_sub);
    // iteration
    std::size_t seen = 0;
    for (auto i : a.ones()) {
        EXPECT_TRUE(ra[i]);
        ++seen;
    }
    EXPECT_EQ(seen, a.count());
}

INSTANTIATE_TEST_SUITE_P(seeds, dyn_bitset_random, ::testing::Range<uint64_t>(0, 20));

TEST(xorshift, deterministic_and_bounded) {
    xorshift64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    xorshift64 c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.next_below(13), 13u);
        const double u = c.next_unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    xorshift64 zero_seed(0);  // must not get stuck at 0
    EXPECT_NE(zero_seed.next(), 0u);
}

TEST(errors, require_throws_with_message) {
    EXPECT_NO_THROW(require(true, "fine"));
    try {
        require(false, "broken invariant");
        FAIL() << "expected throw";
    } catch (const error& e) {
        EXPECT_STREQ(e.what(), "broken invariant");
    }
    parse_error pe(17, "bad token");
    EXPECT_EQ(pe.line(), 17u);
    EXPECT_NE(std::string(pe.what()).find("17"), std::string::npos);
}

TEST(hashing, hash_combine_mixes) {
    std::size_t h1 = 0, h2 = 0;
    hash_combine(h1, 1);
    hash_combine(h2, 2);
    EXPECT_NE(h1, h2);
    std::size_t h3 = h1;
    hash_combine(h3, 2);
    EXPECT_NE(h3, h1);
}
