// CSC resolution by state-signal insertion: correctness of the product
// construction and of the solver's validity guarantees.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

namespace {

state_graph sg_of(const stg& net) { return state_graph::generate(net).graph; }

uint16_t event_of(const state_graph& g, const char* sig, edge d) {
    for (uint32_t s = 0; s < g.signals().size(); ++s)
        if (g.signals()[s].name == sig) return *g.find_event(static_cast<int32_t>(s), d);
    ADD_FAILURE() << "no signal " << sig;
    return 0;
}

}  // namespace

TEST(csc, qmodule_solved_with_one_signal) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto res = resolve_csc(subgraph::full(sg));
    EXPECT_TRUE(res.solved);
    EXPECT_EQ(res.signals_inserted, 1u);  // Table 1: "# CSC sign." = 1
    EXPECT_EQ(check_csc(subgraph::full(res.graph), 0).conflict_pairs, 0u);
}

TEST(csc, lr_max_concurrency_needs_two_signals) {
    auto sg = sg_of(expand_handshakes(benchmarks::lr_process()));
    auto res = resolve_csc(subgraph::full(sg));
    EXPECT_TRUE(res.solved);
    EXPECT_EQ(res.signals_inserted, 2u);  // Table 1: max concurrency row
}

TEST(csc, inserted_graph_keeps_all_properties) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto res = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(res.solved);
    auto g = subgraph::full(res.graph);
    std::string diag;
    EXPECT_TRUE(check_consistency(g, &diag)) << diag;
    auto si = check_speed_independence(g);
    EXPECT_TRUE(si.ok()) << (si.violations.empty() ? "" : si.violations[0]);
    EXPECT_TRUE(deadlock_states(g).empty());
    // The inserted signal is internal.
    EXPECT_EQ(res.graph.signals().back().kind, signal_kind::internal);
}

TEST(csc, insertion_preserves_projected_language) {
    // Hiding the new signal, the product must still run the original cycle:
    // check by simulating the original event sequence through the product.
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto res = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(res.solved);
    const auto& pg = res.graph;
    // Walk the deterministic 8-event Q-module cycle, skipping x transitions.
    std::vector<std::pair<const char*, edge>> cycle = {
        {"li", edge::plus},  {"ro", edge::plus},  {"ri", edge::plus},  {"ro", edge::minus},
        {"ri", edge::minus}, {"lo", edge::plus},  {"li", edge::minus}, {"lo", edge::minus}};
    auto g = subgraph::full(pg);
    uint32_t s = pg.initial();
    for (int lap = 0; lap < 2; ++lap) {
        for (auto [name, d] : cycle) {
            uint16_t want = event_of(pg, name, d);
            // Fire internal (csc) transitions until `want` becomes enabled.
            for (int guard = 0; guard < 4 && !g.enabled(s, want); ++guard) {
                bool advanced = false;
                for (uint32_t a : pg.out_arcs(s)) {
                    const auto& ev = pg.events()[pg.arcs()[a].event];
                    if (pg.signals()[static_cast<uint32_t>(ev.signal)].kind ==
                        signal_kind::internal) {
                        s = pg.arcs()[a].dst;
                        advanced = true;
                        break;
                    }
                }
                if (!advanced) break;
            }
            auto arc = g.arc_from(s, want);
            ASSERT_TRUE(arc.has_value()) << "event " << name << " blocked";
            s = pg.arcs()[*arc].dst;
        }
    }
}

TEST(csc, input_anchors_rejected) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto li_plus = event_of(sg, "li", edge::plus);
    auto lo_plus = event_of(sg, "lo", edge::plus);
    EXPECT_FALSE(insert_state_signal(sg, li_plus, lo_plus, "x").has_value());
    EXPECT_FALSE(insert_state_signal(sg, lo_plus, li_plus, "x").has_value());
    EXPECT_FALSE(insert_state_signal(sg, lo_plus, lo_plus, "x").has_value());
}

TEST(csc, concurrent_anchors_rejected) {
    // In the max-concurrency LR, ro- and lo- are concurrent: their ERs
    // intersect, so x+ and x- could be pending at once -> unusable anchors.
    auto sg = sg_of(expand_handshakes(benchmarks::lr_process()));
    auto rom = event_of(sg, "ro", edge::minus);
    auto lom = event_of(sg, "lo", edge::minus);
    auto g = subgraph::full(sg);
    if (concurrent_by_diamond(g, rom, lom)) {
        EXPECT_FALSE(insert_state_signal(sg, rom, lom, "x").has_value());
    }
}

TEST(csc, already_solved_graph_passes_through) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto res = resolve_csc(subgraph::full(sg));
    EXPECT_TRUE(res.solved);
    EXPECT_EQ(res.signals_inserted, 0u);
    EXPECT_EQ(res.graph.state_count(), sg.state_count());
}

TEST(csc, fig1_insertion_alone_cannot_help) {
    // The Fig. 1 conflict states are separated only by input events; no
    // non-input anchored insertion can distinguish them.
    auto sg = sg_of(benchmarks::fig1_controller());
    auto res = resolve_csc(subgraph::full(sg));
    EXPECT_FALSE(res.solved);
    EXPECT_FALSE(res.message.empty());
}

TEST(csc, product_code_extends_base_code) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto rom = event_of(sg, "ro", edge::minus);
    auto lom = event_of(sg, "lo", edge::minus);
    auto p = insert_state_signal(sg, rom, lom, "x");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->signals().size(), sg.signals().size() + 1);
    EXPECT_EQ(p->signals().back().name, "x");
    for (const auto& st : p->states())
        EXPECT_EQ(st.code.size(), sg.signals().size() + 1);
    // Projection: the product has at least as many states.
    EXPECT_GE(p->state_count(), sg.state_count());
}

TEST(csc, mmu_expansion_eventually_solved) {
    auto sg = sg_of(expand_handshakes(benchmarks::mmu_controller()));
    csc_options opt;
    opt.max_signals = 6;
    opt.beam_width = 3;
    auto res = resolve_csc(subgraph::full(sg), opt);
    EXPECT_TRUE(res.solved) << res.message;
    EXPECT_GE(res.signals_inserted, 2u);
    EXPECT_EQ(check_csc(subgraph::full(res.graph), 0).conflict_pairs, 0u);
}
