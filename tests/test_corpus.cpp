// The embedded corpus itself: every specification must be well-formed, and
// the paper-specific entries must have the structural properties the
// experiments rely on.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/cost.hpp"
#include "core/expand.hpp"
#include "core/protocol.hpp"
#include "petri/astg_io.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

TEST(corpus, fig1_matches_paper_numbers) {
    auto gen = state_graph::generate(benchmarks::fig1_controller());
    EXPECT_EQ(gen.graph.state_count(), 5u);
    EXPECT_EQ(gen.graph.arc_count(), 6u);
    EXPECT_EQ(gen.graph.state_code_string(gen.graph.initial()), "0*1");
}

TEST(corpus, lr_process_is_a_channel_spec) {
    auto lr = benchmarks::lr_process();
    std::size_t channels = 0;
    for (const auto& s : lr.signals())
        if (s.kind == signal_kind::channel) ++channels;
    EXPECT_EQ(channels, 2u);
    EXPECT_EQ(lr.transitions().size(), 4u);  // l? r! r? l!
}

TEST(corpus, qmodule_is_complete_and_si) {
    auto gen = state_graph::generate(benchmarks::qmodule_lr());
    auto g = subgraph::full(gen.graph);
    EXPECT_EQ(gen.graph.state_count(), 8u);
    EXPECT_TRUE(check_consistency(g));
    EXPECT_TRUE(check_speed_independence(g).ok());
    EXPECT_EQ(check_csc(g, 0).conflict_pairs, 1u);
    EXPECT_EQ(count_concurrent_pairs(g), 0u);  // fully sequential
}

TEST(corpus, lr_full_reduction_is_sequential_and_csc_clean) {
    auto gen = state_graph::generate(benchmarks::lr_full_reduction());
    auto g = subgraph::full(gen.graph);
    EXPECT_EQ(count_concurrent_pairs(g), 0u);
    EXPECT_EQ(check_csc(g, 0).conflict_pairs, 0u);
}

TEST(corpus, par_manual_is_implementable_without_state_signals) {
    auto gen = state_graph::generate(benchmarks::par_manual());
    auto g = subgraph::full(gen.graph);
    EXPECT_TRUE(check_speed_independence(g).ok());
    EXPECT_EQ(check_csc(g, 0).conflict_pairs, 0u);
}

TEST(corpus, mmu_has_four_channels) {
    auto mmu = benchmarks::mmu_controller();
    std::vector<std::string> names;
    for (const auto& s : mmu.signals())
        if (s.kind == signal_kind::channel) names.push_back(s.name);
    EXPECT_EQ(names.size(), 4u);  // r l m b -- the Table 2 row labels
}

TEST(corpus, fig8_fragment_matches_figure) {
    auto sg = benchmarks::fig8_fragment();
    EXPECT_EQ(sg.state_count(), 9u);
    EXPECT_EQ(sg.arc_count(), 11u);
    EXPECT_TRUE(check_consistency(subgraph::full(sg)));
}

TEST(corpus, spec_suite_entries_all_expand) {
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto expanded = expand_handshakes(spec);
        auto gen = state_graph::generate(expanded);
        auto g = subgraph::full(gen.graph);
        EXPECT_TRUE(check_speed_independence(g).ok()) << name;
        EXPECT_TRUE(deadlock_states(g).empty()) << name;
    }
}

namespace {

/// Order-independent canonical form: sorted signal declarations, sorted
/// arc set (by names), sorted marked-place set.
std::string canonical_astg(const stg& net) {
    std::vector<std::string> lines;
    for (const auto& s : net.signals())
        lines.push_back("sig " + s.name + " " + std::to_string(static_cast<int>(s.kind)) +
                        (s.partial ? " partial" : ""));
    auto place_key = [&](uint32_t p) {
        const auto& pl = net.places()[p];
        if (!pl.implicit) return pl.name;
        // Implicit places are identified by their unique pre/post pair.
        return "<" + net.transition_name(net.place_pre(p)[0]) + "," +
               net.transition_name(net.place_post(p)[0]) + ">";
    };
    for (uint32_t t = 0; t < net.transitions().size(); ++t) {
        for (uint32_t p : net.transitions()[t].pre)
            lines.push_back("arc " + place_key(p) + " -> " + net.transition_name(t));
        for (uint32_t p : net.transitions()[t].post)
            lines.push_back("arc " + net.transition_name(t) + " -> " + place_key(p));
    }
    for (uint32_t p = 0; p < net.places().size(); ++p)
        if (net.places()[p].tokens) lines.push_back("marked " + place_key(p));
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const auto& l : lines) out += l + "\n";
    return out;
}

}  // namespace

TEST(corpus, specs_roundtrip_through_astg_text) {
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto back = parse_astg(write_astg(spec));
        EXPECT_EQ(canonical_astg(spec), canonical_astg(back)) << name;
    }
}

class corpus_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(corpus_random, generator_is_deterministic_and_valid) {
    const uint64_t seed = GetParam();
    auto a = benchmarks::random_handshake_spec(seed, 4);
    auto b = benchmarks::random_handshake_spec(seed, 4);
    EXPECT_EQ(write_astg(a), write_astg(b));
    auto gen = state_graph::generate(expand_handshakes(a));
    EXPECT_TRUE(deadlock_states(subgraph::full(gen.graph)).empty());
    for (const auto& sig : a.signals()) {
        if (sig.kind != signal_kind::channel) continue;
        auto g = subgraph::full(gen.graph);
        EXPECT_TRUE(check_channel_protocol(g, sig.name).empty()) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, corpus_random, ::testing::Range<uint64_t>(0, 12));
