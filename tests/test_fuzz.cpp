// The differential fuzz harness: the pinned counterexample corpus must
// replay clean through every oracle, the fuzzing loop must be deterministic
// and green on the current code, the shrinker must minimise without escaping
// the failing bug class, and an injected engine bug must be caught, shrunk
// and written out as a replayable counterexample (mutation testing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/corpus.hpp"
#include "benchmarks/generate.hpp"
#include "fuzz/fuzz.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"

using namespace asynth;
using benchmarks::spec_node;
using node_kind = spec_node::kind;
namespace fs = std::filesystem;

namespace {

std::string corpus_dir() { return std::string(ASYNTH_TEST_DATA_DIR) + "/fuzz"; }

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/// The '# profile:' header of a pinned counterexample (deep when absent).
fuzz::fuzz_profile profile_of(const std::string& text) {
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        const std::string key = "# profile: ";
        if (line.rfind(key, 0) == 0)
            if (auto p = fuzz::profile_from_name(line.substr(key.size()))) return *p;
        if (!line.empty() && line[0] != '#') break;
    }
    return fuzz::fuzz_profile::deep;
}

std::vector<fs::path> corpus_files() {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(corpus_dir()))
        if (e.path().extension() == ".g") out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

spec_node call_node() { return spec_node{}; }

}  // namespace

// ---- pinned corpus ---------------------------------------------------------

TEST(fuzz_corpus, every_pinned_file_replays_clean_through_all_oracles) {
    auto files = corpus_files();
    ASSERT_GE(files.size(), 5u) << "corpus missing from " << corpus_dir();
    for (const auto& f : files) {
        std::string text = read_file(f);
        ASSERT_FALSE(text.empty()) << f;
        fs::path csp_path = f;
        csp_path.replace_extension(".csp");
        std::string csp = fs::exists(csp_path) ? read_file(csp_path) : std::string();
        std::string diag =
            fuzz::replay_text(text, csp, fuzz::all_oracles, profile_of(text));
        EXPECT_EQ(diag, "") << f.filename();
    }
}

TEST(fuzz_corpus, pinned_files_replay_clean_through_impl_vs_sg) {
    // The implementation oracle joined the rotation after the corpus was
    // pinned: every historical counterexample's emitted netlist must also
    // agree with its state graph (all_oracles above covers this too; this
    // test keeps the guarantee explicit if the mask ever changes).
    for (const auto& f : corpus_files()) {
        std::string text = read_file(f);
        std::string diag = fuzz::replay_text(
            text, "", fuzz::oracle_bit(fuzz::oracle::impl_vs_sg), profile_of(text));
        EXPECT_EQ(diag, "") << f.filename();
    }
}

TEST(fuzz_corpus, covers_both_profiles_and_a_csp_pair) {
    auto files = corpus_files();
    bool deep = false, shallow = false, csp = false;
    for (const auto& f : files) {
        auto p = profile_of(read_file(f));
        deep |= p == fuzz::fuzz_profile::deep;
        shallow |= p == fuzz::fuzz_profile::shallow;
        fs::path c = f;
        c.replace_extension(".csp");
        csp |= fs::exists(c);
    }
    EXPECT_TRUE(deep);
    EXPECT_TRUE(shallow);
    EXPECT_TRUE(csp);
}

// ---- single-spec oracle checks ---------------------------------------------

TEST(fuzz_oracles, all_pipeline_oracles_agree_on_a_corpus_entry) {
    const stg spec = benchmarks::lr_process();
    for (auto o : {fuzz::oracle::engines, fuzz::oracle::minimizers,
                   fuzz::oracle::store_roundtrip, fuzz::oracle::text_roundtrip,
                   fuzz::oracle::impl_vs_sg, fuzz::oracle::bounded_vs_exact})
        EXPECT_EQ(fuzz::check_oracle(o, spec), "") << fuzz::oracle_name(o);
}

TEST(fuzz_oracles, diff_results_finds_a_real_difference) {
    pipeline_options a;
    auto ra = run_pipeline(benchmarks::lr_process(), a);
    auto rb = run_pipeline(benchmarks::lr_process(), a);
    EXPECT_EQ(fuzz::diff_results(ra, rb, /*ignore_pruned=*/false), "");

    pipeline_options b = a;
    b.search.cost.w = 0.9;  // different weight, different reduction costs
    auto rc = run_pipeline(benchmarks::lr_process(), b);
    EXPECT_NE(fuzz::diff_results(ra, rc, /*ignore_pruned=*/true), "");
}

TEST(fuzz_oracles, names_round_trip) {
    for (std::size_t i = 0; i < fuzz::oracle_count; ++i) {
        auto o = static_cast<fuzz::oracle>(i);
        auto back = fuzz::oracle_from_name(fuzz::oracle_name(o));
        ASSERT_TRUE(back.has_value()) << fuzz::oracle_name(o);
        EXPECT_EQ(*back, o);
    }
    EXPECT_FALSE(fuzz::oracle_from_name("bogus").has_value());
    for (auto p : {fuzz::fuzz_profile::deep, fuzz::fuzz_profile::shallow}) {
        auto back = fuzz::profile_from_name(fuzz::profile_name(p));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, p);
    }
}

// ---- CSP rendering ---------------------------------------------------------

TEST(fuzz_csp, rendered_text_agrees_with_the_materialiser) {
    spec_node tree;
    tree.k = node_kind::sequence;
    spec_node par;
    par.k = node_kind::parallel;
    par.children = {call_node(), call_node()};
    tree.children = {call_node(), par};

    ASSERT_TRUE(fuzz::csp_renderable(tree));
    std::string text = fuzz::render_csp(tree, "p");
    EXPECT_NE(text.find("||"), std::string::npos);
    EXPECT_EQ(fuzz::check_csp_agreement(text, benchmarks::build_spec(tree, "p")), "");
}

TEST(fuzz_csp, counters_render_as_repeated_calls) {
    spec_node counter;
    counter.k = node_kind::counter;
    counter.repeats = 3;
    ASSERT_TRUE(fuzz::csp_renderable(counter));
    std::string text = fuzz::render_csp(counter, "p");
    EXPECT_EQ(fuzz::check_csp_agreement(text, benchmarks::build_spec(counter, "p")), "");
}

TEST(fuzz_csp, selects_and_arbitration_are_not_renderable) {
    spec_node choice;
    choice.k = node_kind::choice;
    choice.children = {call_node(), call_node()};
    EXPECT_FALSE(fuzz::csp_renderable(choice));

    spec_node arb;
    arb.k = node_kind::arbitration;
    arb.children = {call_node(), call_node()};
    EXPECT_FALSE(fuzz::csp_renderable(arb));

    spec_node seq;  // unrenderable anywhere in the tree poisons the root
    seq.k = node_kind::sequence;
    seq.children = {call_node(), choice};
    EXPECT_FALSE(fuzz::csp_renderable(seq));
}

TEST(fuzz_csp, disagreement_is_reported) {
    // A deliberately different process: the diagnosis must be nonempty.
    spec_node two;
    two.k = node_kind::sequence;
    two.children = {call_node(), call_node()};
    std::string wrong = "p = t? ; a0! ; a0? ; t!";  // one call, not two
    EXPECT_NE(fuzz::check_csp_agreement(wrong, benchmarks::build_spec(two, "p")), "");
}

// ---- shrinking -------------------------------------------------------------

TEST(fuzz_shrink, always_failing_reduces_to_a_single_call) {
    spec_node tree;
    tree.k = node_kind::sequence;
    spec_node par;
    par.k = node_kind::parallel;
    par.children = {call_node(), call_node(), call_node()};
    spec_node counter;
    counter.k = node_kind::counter;
    counter.repeats = 4;
    tree.children = {par, counter, call_node()};

    fuzz::shrink_stats stats;
    auto shrunk =
        fuzz::shrink_recipe(tree, [](const spec_node&) { return true; }, 400, &stats);
    EXPECT_EQ(shrunk.channels(), 1);
    EXPECT_EQ(shrunk.k, node_kind::call);
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_GE(stats.evaluations, stats.accepted);
}

TEST(fuzz_shrink, preserves_the_failing_class) {
    // Only recipes containing arbitration "fail": the minimum is the bare
    // two-branch arbitration, never a plain call.
    spec_node tree;
    tree.k = node_kind::sequence;
    spec_node arb;
    arb.k = node_kind::arbitration;
    arb.children = {call_node(), call_node(), call_node()};
    tree.children = {call_node(), arb, call_node()};

    auto shrunk = fuzz::shrink_recipe(
        tree, [](const spec_node& n) { return n.contains(node_kind::arbitration); });
    EXPECT_EQ(shrunk.k, node_kind::arbitration);
    ASSERT_EQ(shrunk.children.size(), 2u);  // one branch dropped
    EXPECT_EQ(shrunk.channels(), 4);        // 2 branches + 2 mutex channels
}

TEST(fuzz_shrink, nothing_accepted_when_nothing_fails) {
    spec_node tree;
    tree.k = node_kind::parallel;
    tree.children = {call_node(), call_node()};
    fuzz::shrink_stats stats;
    auto shrunk =
        fuzz::shrink_recipe(tree, [](const spec_node&) { return false; }, 400, &stats);
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_GT(stats.evaluations, 0u);
    EXPECT_EQ(shrunk.channels(), tree.channels());
}

TEST(fuzz_shrink, evaluation_cap_is_respected) {
    spec_node tree;
    tree.k = node_kind::parallel;
    tree.children = {call_node(), call_node(), call_node(), call_node()};
    fuzz::shrink_stats stats;
    (void)fuzz::shrink_recipe(tree, [](const spec_node&) { return true; }, 3, &stats);
    EXPECT_LE(stats.evaluations, 3u);
}

// ---- the fuzzing loop ------------------------------------------------------

TEST(fuzz_loop, deterministic_and_green_on_current_code) {
    fuzz::fuzz_options opt;
    opt.seed = 1;
    opt.iterations = 7;  // one check per oracle (rotation covers all seven)
    opt.max_size = 4;
    opt.jobs = 2;
    auto a = fuzz::run_fuzz(opt);
    EXPECT_TRUE(a.ok()) << a.summary();
    EXPECT_EQ(a.iterations, 7u);
    for (std::size_t i = 0; i < fuzz::oracle_count; ++i)
        EXPECT_EQ(a.oracles[i].checks, 1u) << fuzz::oracle_name(static_cast<fuzz::oracle>(i));

    // Worker count must not change what any iteration does.
    opt.jobs = 1;
    auto b = fuzz::run_fuzz(opt);
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(a.families, b.families);

    auto s = a.summary();
    EXPECT_NE(s.find("FUZZ OK"), std::string::npos);
    EXPECT_NE(s.find("oracle"), std::string::npos);
}

TEST(fuzz_loop, injected_engine_bug_is_caught_shrunk_and_written) {
    // Mutation testing: perturb the candidate side's cost weight.  The
    // engines oracle must fire, the shrinker must get the repro down to a
    // tiny spec, and the counterexample file must be a valid replayable .g.
    auto dir = fs::temp_directory_path() / "asynth_fuzz_test_cex";
    fs::remove_all(dir);

    fuzz::fuzz_options opt;
    opt.seed = 1;
    opt.iterations = 2;
    opt.max_size = 4;
    opt.oracles = fuzz::oracle_bit(fuzz::oracle::engines);
    opt.dir = dir.string();
    opt.inject = [](pipeline_options& p) { p.search.cost.w = 0.9; };

    auto report = fuzz::run_fuzz(opt);
    ASSERT_FALSE(report.ok()) << "an injected engine bug must be caught";
    for (const auto& f : report.findings) {
        EXPECT_LE(f.shrunk.channels(), 4) << "shrinking must reach a tiny spec";
        EXPECT_FALSE(f.diagnosis.empty());
        ASSERT_FALSE(f.file.empty());
        ASSERT_TRUE(fs::exists(f.file));

        std::string text = read_file(f.file);
        EXPECT_NE(text.find("# oracle: engines"), std::string::npos);
        EXPECT_NE(text.find("# repro: asynth fuzz --seed 1"), std::string::npos);
        // The file (comments and all) must parse back into the shrunk spec.
        stg parsed;
        ASSERT_NO_THROW(parsed = parse_astg(text));
        EXPECT_EQ(write_astg(parsed), f.spec_astg);
        // Without the injection the engines agree again: the bug was the
        // injected mutation, not the spec.
        EXPECT_EQ(fuzz::replay_text(text, "", opt.oracles, f.profile), "");
    }
    fs::remove_all(dir);
}

TEST(fuzz_loop, injected_netlist_bug_is_caught_by_impl_vs_sg) {
    // Netlist-level mutation testing: invert the first real gate network's
    // output after synthesis.  The impl-vs-sg oracle must report the
    // divergence, and the written counterexample must replay clean without
    // the injection (the bug was the mutation, not the spec).
    auto dir = fs::temp_directory_path() / "asynth_fuzz_test_netcex";
    fs::remove_all(dir);

    fuzz::fuzz_options opt;
    opt.seed = 1;
    opt.iterations = 3;  // one spec each from the plain/counter/arbiter families
    opt.max_size = 4;
    opt.oracles = fuzz::oracle_bit(fuzz::oracle::impl_vs_sg);
    opt.dir = dir.string();
    opt.max_shrink_evals = 60;
    opt.inject_net = [](circuit_netlist& nl) {
        for (auto& net : nl.nets) {
            netlist* t = net.kind == impl_kind::gc_element ? &net.set_net : &net.fn;
            if (t->output == -1 || t->output == -2) continue;
            t->gates.push_back(gate{gate_kind::inverter, t->output, -1});
            t->output = static_cast<int32_t>(t->gates.size() - 1);
            return;
        }
    };

    auto report = fuzz::run_fuzz(opt);
    ASSERT_FALSE(report.ok()) << "an injected netlist bug must be caught\n" << report.summary();
    for (const auto& f : report.findings) {
        EXPECT_EQ(f.o, fuzz::oracle::impl_vs_sg);
        EXPECT_NE(f.diagnosis.find("diverges"), std::string::npos) << f.diagnosis;
        ASSERT_FALSE(f.file.empty());
        std::string text = read_file(f.file);
        EXPECT_NE(text.find("# oracle: impl-vs-sg"), std::string::npos);
        EXPECT_EQ(fuzz::replay_text(text, "", opt.oracles, f.profile), "");
    }
    fs::remove_all(dir);
}

TEST(fuzz_loop, exceptions_surface_as_findings) {
    // An inject hook that poisons the options into throwing must produce a
    // finding (the pipeline promises not to throw), not a crash.
    fuzz::fuzz_options opt;
    opt.seed = 1;
    opt.iterations = 1;
    opt.max_size = 4;
    opt.oracles = fuzz::oracle_bit(fuzz::oracle::engines);
    opt.max_shrink_evals = 4;
    opt.inject = [](pipeline_options&) { throw error("injected failure"); };
    auto report = fuzz::run_fuzz(opt);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].diagnosis.find("exception"), std::string::npos);
}
