// Random-STG workload generator: determinism (same seed => byte-identical
// astg text), the size/width/choice knobs, and the safety contract -- every
// generated net must expand and yield a safe, consistently encodable state
// graph (state_graph::generate throws on any violation).
#include <gtest/gtest.h>

#include <set>

#include "benchmarks/generate.hpp"
#include "core/expand.hpp"
#include "petri/astg_io.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;
using benchmarks::generate_astg;
using benchmarks::generate_stg;
using benchmarks::generate_workload;
using benchmarks::generator_options;

TEST(generate, same_seed_is_byte_identical) {
    for (uint64_t seed : {1u, 7u, 42u}) {
        generator_options opt;
        std::string a = generate_astg(seed, opt);
        std::string b = generate_astg(seed, generator_options{});
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_FALSE(a.empty());
        // The text is a write∘parse fixpoint like every canonical .g blob.
        EXPECT_EQ(write_astg(parse_astg(a)), a) << "seed " << seed;
    }
}

TEST(generate, different_seeds_differ) {
    // Shapes repeat at small sizes, but across 16 seeds at size 6 the texts
    // cannot all collapse to one shape.
    generator_options opt;
    opt.size = 6;
    std::set<std::string> texts;
    for (uint64_t seed = 1; seed <= 16; ++seed) texts.insert(generate_astg(seed, opt));
    EXPECT_GT(texts.size(), 1u);
}

TEST(generate, size_is_the_channel_budget) {
    // Every construct pays its channels from `size`, so the net has exactly
    // size + 1 channels (body + trigger) at any seed and choice probability.
    for (int size : {1, 2, 4, 6, 8}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            generator_options opt;
            opt.size = size;
            opt.choice = 0.5;
            auto net = generate_stg(seed, opt);
            EXPECT_EQ(net.signal_count(), static_cast<std::size_t>(size) + 1)
                << "size " << size << " seed " << seed;
            for (const auto& s : net.signals()) EXPECT_EQ(s.kind, signal_kind::channel);
        }
    }
}

TEST(generate, safe_and_encodable_up_to_size) {
    // The generator's core contract: expansion succeeds and the state graph
    // generator -- which throws on unsafe markings or inconsistent codes --
    // accepts every net.  Sweep the practical size range at several seeds.
    for (int size : {1, 2, 3, 4, 5}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            generator_options opt;
            opt.size = size;
            SCOPED_TRACE("size " + std::to_string(size) + " seed " + std::to_string(seed));
            stg net;
            ASSERT_NO_THROW(net = generate_stg(seed, opt));
            stg expanded;
            ASSERT_NO_THROW(expanded = expand_handshakes(net));
            EXPECT_EQ(expanded.signal_count(), 2 * (static_cast<std::size_t>(size) + 1));
            state_graph sg;
            ASSERT_NO_THROW(sg = state_graph::generate(expanded).graph);
            EXPECT_GT(sg.state_count(), 0u);
        }
    }
}

TEST(generate, free_choice_specs_are_encodable) {
    // Force selects (choice = 1, size >= 6 so the budget affords them) and
    // check the environment-resolved branches still encode consistently.
    generator_options opt;
    opt.size = 6;
    opt.choice = 1.0;
    opt.max_width = 2;
    for (uint64_t seed : {1u, 2u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto net = generate_stg(seed, opt);
        // A select introduces a place with more than one consumer.
        bool has_branching_place = false;
        for (uint32_t p = 0; p < net.places().size(); ++p)
            has_branching_place |= net.place_post(p).size() > 1;
        EXPECT_TRUE(has_branching_place);
        state_graph sg;
        ASSERT_NO_THROW(sg = state_graph::generate(expand_handshakes(net)).graph);
        EXPECT_GT(sg.state_count(), 0u);
    }
}

TEST(generate, concurrency_degree_monotone) {
    // Width 1 forces a fully sequential body; a width-3 parallel shape of
    // the same seed/size must reach at least as many states.
    auto states_at = [](int width) {
        generator_options opt;
        opt.size = 4;
        opt.concurrency = 1.0;
        opt.choice = 0.0;
        opt.max_width = width;
        auto sg = state_graph::generate(expand_handshakes(generate_stg(5, opt)));
        return sg.graph.state_count();
    };
    EXPECT_LE(states_at(1), states_at(3));
}

TEST(generate, workload_names_are_unique_and_stable) {
    auto w = generate_workload(10, 8);
    ASSERT_EQ(w.size(), 8u);
    std::set<std::string> names;
    for (const auto& s : w) names.insert(s.name);
    EXPECT_EQ(names.size(), w.size());
    EXPECT_EQ(w.front().name, "gen_s10_n4");
    EXPECT_EQ(w.back().name, "gen_s17_n4");
    // The workload is the concatenation of the per-seed generators.
    EXPECT_EQ(write_astg(w[3].net), generate_astg(13));
}
