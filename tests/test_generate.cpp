// Random-STG workload generator: determinism (same seed => byte-identical
// astg text), the size/width/choice knobs, and the safety contract -- every
// generated net must expand and yield a safe, consistently encodable state
// graph (state_graph::generate throws on any violation).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "benchmarks/generate.hpp"
#include "core/expand.hpp"
#include "petri/astg_io.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;
using benchmarks::generate_astg;
using benchmarks::generate_stg;
using benchmarks::generate_workload;
using benchmarks::generator_options;

TEST(generate, same_seed_is_byte_identical) {
    for (uint64_t seed : {1u, 7u, 42u}) {
        generator_options opt;
        std::string a = generate_astg(seed, opt);
        std::string b = generate_astg(seed, generator_options{});
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_FALSE(a.empty());
        // The text is a write∘parse fixpoint like every canonical .g blob.
        EXPECT_EQ(write_astg(parse_astg(a)), a) << "seed " << seed;
    }
}

TEST(generate, different_seeds_differ) {
    // Shapes repeat at small sizes, but across 16 seeds at size 6 the texts
    // cannot all collapse to one shape.
    generator_options opt;
    opt.size = 6;
    std::set<std::string> texts;
    for (uint64_t seed = 1; seed <= 16; ++seed) texts.insert(generate_astg(seed, opt));
    EXPECT_GT(texts.size(), 1u);
}

TEST(generate, size_is_the_channel_budget) {
    // Every construct pays its channels from `size`, so the net has exactly
    // size + 1 channels (body + trigger) at any seed and choice probability.
    for (int size : {1, 2, 4, 6, 8}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            generator_options opt;
            opt.size = size;
            opt.choice = 0.5;
            auto net = generate_stg(seed, opt);
            EXPECT_EQ(net.signal_count(), static_cast<std::size_t>(size) + 1)
                << "size " << size << " seed " << seed;
            for (const auto& s : net.signals()) EXPECT_EQ(s.kind, signal_kind::channel);
        }
    }
}

TEST(generate, safe_and_encodable_up_to_size) {
    // The generator's core contract: expansion succeeds and the state graph
    // generator -- which throws on unsafe markings or inconsistent codes --
    // accepts every net.  Sweep the practical size range at several seeds.
    for (int size : {1, 2, 3, 4, 5}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            generator_options opt;
            opt.size = size;
            SCOPED_TRACE("size " + std::to_string(size) + " seed " + std::to_string(seed));
            stg net;
            ASSERT_NO_THROW(net = generate_stg(seed, opt));
            stg expanded;
            ASSERT_NO_THROW(expanded = expand_handshakes(net));
            EXPECT_EQ(expanded.signal_count(), 2 * (static_cast<std::size_t>(size) + 1));
            state_graph sg;
            ASSERT_NO_THROW(sg = state_graph::generate(expanded).graph);
            EXPECT_GT(sg.state_count(), 0u);
        }
    }
}

TEST(generate, free_choice_specs_are_encodable) {
    // Force selects (choice = 1, size >= 6 so the budget affords them) and
    // check the environment-resolved branches still encode consistently.
    generator_options opt;
    opt.size = 6;
    opt.choice = 1.0;
    opt.max_width = 2;
    for (uint64_t seed : {1u, 2u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto net = generate_stg(seed, opt);
        // A select introduces a place with more than one consumer.
        bool has_branching_place = false;
        for (uint32_t p = 0; p < net.places().size(); ++p)
            has_branching_place |= net.place_post(p).size() > 1;
        EXPECT_TRUE(has_branching_place);
        state_graph sg;
        ASSERT_NO_THROW(sg = state_graph::generate(expand_handshakes(net)).graph);
        EXPECT_GT(sg.state_count(), 0u);
    }
}

TEST(generate, concurrency_degree_monotone) {
    // Width 1 forces a fully sequential body; a width-3 parallel shape of
    // the same seed/size must reach at least as many states.
    auto states_at = [](int width) {
        generator_options opt;
        opt.size = 4;
        opt.concurrency = 1.0;
        opt.choice = 0.0;
        opt.max_width = width;
        auto sg = state_graph::generate(expand_handshakes(generate_stg(5, opt)));
        return sg.graph.state_count();
    };
    EXPECT_LE(states_at(1), states_at(3));
}

TEST(generate, counter_family_pinned_bytes) {
    // The counter family's output is part of the fuzz harness's repro
    // contract: the exact bytes per (seed, options) are pinned.  Multi-
    // instance transitions (c0!/2, c0?/2, ...) distinguish repeated calls on
    // one channel.
    generator_options opt;
    opt.size = 3;
    opt.counter = 1.0;
    EXPECT_EQ(generate_astg(1, opt),
              ".model gen_s1_n3\n"
              ".channels c0 c1 c2 t\n"
              ".graph\n"
              "c0! c0?\n"
              "c0? c0!/2\n"
              "c0!/2 c0?/2\n"
              "c0?/2 c0!/3\n"
              "c0!/3 c0?/3\n"
              "c0?/3 t!\n"
              "t! t?\n"
              "t? c0! c1! c2!\n"
              "c1! c1?\n"
              "c2! c2?\n"
              "c1? c1!/2\n"
              "c2? c2!/2\n"
              "c1!/2 c1?/2\n"
              "c2!/2 c2?/2\n"
              "c1?/2 c1!/3\n"
              "c2?/2 c2!/3\n"
              "c1!/3 c1?/3\n"
              "c2!/3 c2?/3\n"
              "c1?/3 c1!/4\n"
              "c2?/3 t!\n"
              "c1!/4 c1?/4\n"
              "c1?/4 t!\n"
              ".marking { <t!,t?> }\n"
              ".end\n");
}

TEST(generate, arbitration_family_pinned_bytes) {
    // Arbitration: each branch takes a private critical channel m_i guarded
    // by one shared marked mutex place -- deliberately non-free-choice.
    generator_options opt;
    opt.size = 4;
    opt.arbitration = 1.0;
    EXPECT_EQ(generate_astg(2, opt),
              ".model gen_s2_n4\n"
              ".channels a0 a1 m0 m1 t\n"
              ".graph\n"
              "a0! a0?\n"
              "a0? m0!\n"
              "m0! m0?\n"
              "m0? arb0_mutex t!\n"
              "t! t?\n"
              "t? a0! a1!\n"
              "a1! a1?\n"
              "a1? m1!\n"
              "m1! m1?\n"
              "m1? arb0_mutex t!\n"
              "arb0_mutex m0! m1!\n"
              ".marking { arb0_mutex <t!,t?> }\n"
              ".end\n");
}

TEST(generate, multiway_family_pinned_bytes) {
    // min_choice_ways = 3 forces every select to offer at least three
    // branches; size 8 is the smallest budget that affords one.
    generator_options opt;
    opt.size = 8;
    opt.choice = 1.0;
    opt.min_choice_ways = 3;
    opt.max_width = 1;
    opt.concurrency = 0.0;
    EXPECT_EQ(generate_astg(1, opt),
              ".model gen_s1_n8\n"
              ".channels a0 a1 a2 q0 q1 s0 s1 s2 t\n"
              ".graph\n"
              "a0! a0?\n"
              "a0? s0!\n"
              "s0! sel0_merge\n"
              "a1! a1?\n"
              "a1? s1!\n"
              "s1! sel0_merge\n"
              "a2! a2?\n"
              "a2? s2!\n"
              "s2! sel0_merge\n"
              "q0! q0?\n"
              "q0? sel0_split\n"
              "q1! q1?\n"
              "q1? t!\n"
              "t! t?\n"
              "t? q0!\n"
              "s0? a0!\n"
              "s1? a1!\n"
              "s2? a2!\n"
              "sel0_merge q1!\n"
              "sel0_split s0? s1? s2?\n"
              ".marking { <t!,t?> }\n"
              ".end\n");
}

TEST(generate, new_families_respect_the_channel_budget) {
    // Counters reuse one channel per leaf and arbitration pays one private
    // channel per branch, so the size = channel-budget invariant holds for
    // every knob mix.
    for (int size : {3, 4, 5}) {
        for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
            generator_options opt;
            opt.size = size;
            opt.counter = 0.6;
            if (size >= 4) opt.arbitration = 0.4;
            auto net = generate_stg(seed, opt);
            EXPECT_EQ(net.signal_count(), static_cast<std::size_t>(size) + 1)
                << "size " << size << " seed " << seed;
        }
    }
}

TEST(generate, counter_nets_are_multi_instance_and_encodable) {
    generator_options opt;
    opt.size = 2;
    opt.counter = 1.0;
    for (uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto net = generate_stg(seed, opt);
        // Some channel must carry more than one send/recv pair.
        std::size_t max_on_signal = 0;
        std::vector<std::size_t> per_signal(net.signal_count(), 0);
        for (const auto& t : net.transitions())
            max_on_signal =
                std::max(max_on_signal, ++per_signal[static_cast<uint32_t>(t.label.signal)]);
        EXPECT_GT(max_on_signal, 2u);
        state_graph sg;
        ASSERT_NO_THROW(sg = state_graph::generate(expand_handshakes(net)).graph);
        EXPECT_GT(sg.state_count(), 0u);
    }
}

TEST(generate, arbitration_nets_are_non_free_choice) {
    generator_options opt;
    opt.size = 4;
    opt.arbitration = 1.0;
    for (uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto net = generate_stg(seed, opt);
        // The mutex: an initially marked place with >= 2 consumers and
        // >= 2 producers (grant and release per branch).
        bool has_mutex = false;
        for (uint32_t p = 0; p < net.places().size(); ++p)
            has_mutex |= net.places()[p].tokens > 0 && net.place_post(p).size() >= 2 &&
                         net.place_pre(p).size() >= 2;
        EXPECT_TRUE(has_mutex);
        state_graph sg;
        ASSERT_NO_THROW(sg = state_graph::generate(expand_handshakes(net)).graph);
        EXPECT_GT(sg.state_count(), 0u);
    }
}

TEST(generate, multiway_selects_offer_min_ways_branches) {
    generator_options opt;
    opt.size = 8;
    opt.choice = 1.0;
    opt.min_choice_ways = 3;
    opt.max_width = 1;
    opt.concurrency = 0.0;
    for (uint64_t seed : {1u, 2u}) {
        auto net = generate_stg(seed, opt);
        bool has_three_way = false;
        for (uint32_t p = 0; p < net.places().size(); ++p)
            has_three_way |= net.place_post(p).size() >= 3;
        EXPECT_TRUE(has_three_way) << "seed " << seed;
    }
}

TEST(generate, recipe_and_materialiser_compose_to_generate) {
    // generate_stg is exactly build_spec ∘ generate_recipe: the two-layer
    // split (all PRNG draws in the recipe, pure materialisation after) is
    // what lets the fuzz harness shrink recipes instead of nets.
    for (uint64_t seed : {1u, 5u, 9u}) {
        generator_options opt;
        opt.size = 5;
        opt.counter = 0.4;
        opt.arbitration = 0.3;
        opt.choice = 0.3;
        auto recipe = benchmarks::generate_recipe(seed, opt);
        std::string name = "gen_s" + std::to_string(seed) + "_n" + std::to_string(opt.size);
        EXPECT_EQ(write_astg(benchmarks::build_spec(recipe, name)), generate_astg(seed, opt))
            << "seed " << seed;
    }
}

TEST(generate, impossible_combinations_are_rejected) {
    // The reject-don't-degrade contract: a knob mix the budget cannot honour
    // is a structured error before any net is built, never a silently
    // smaller/simpler spec.
    auto expect_rejected = [](generator_options opt, const char* what) {
        SCOPED_TRACE(what);
        EXPECT_THROW((void)generate_stg(1, opt), error);
        EXPECT_THROW((void)benchmarks::generate_recipe(1, opt), error);
    };
    {
        generator_options o;
        o.size = 0;
        expect_rejected(o, "size 0");
    }
    {
        generator_options o;
        o.size = 2;
        o.choice = 1.0;  // a 2-way select costs 6 channels
        expect_rejected(o, "certain choice under budget");
    }
    {
        generator_options o;
        o.min_choice_ways = 4;  // > max_fanout (3)
        expect_rejected(o, "min ways beyond fanout");
    }
    {
        generator_options o;
        o.size = 6;
        o.choice = 0.5;
        o.min_choice_ways = 3;  // a 3-way select costs 8 channels
        expect_rejected(o, "3-way demand under budget");
    }
    {
        generator_options o;
        o.size = 2;
        o.arbitration = 0.5;  // arbitration needs size >= 4
        expect_rejected(o, "arbitration under budget");
    }
    {
        generator_options o;
        o.choice = std::nan("");
        expect_rejected(o, "NaN probability");
    }
    {
        generator_options o;
        o.max_fanout = 1;
        expect_rejected(o, "fanout below 2");
    }

    // The diagnostic names the conflict, not just "bad options".
    try {
        generator_options o;
        o.size = 2;
        o.choice = 1.0;
        (void)generate_stg(1, o);
        FAIL() << "expected an error";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("select"), std::string::npos) << e.what();
    }
}

TEST(generate, workload_names_are_unique_and_stable) {
    auto w = generate_workload(10, 8);
    ASSERT_EQ(w.size(), 8u);
    std::set<std::string> names;
    for (const auto& s : w) names.insert(s.name);
    EXPECT_EQ(names.size(), w.size());
    EXPECT_EQ(w.front().name, "gen_s10_n4");
    EXPECT_EQ(w.back().name, "gen_s17_n4");
    // The workload is the concatenation of the per-seed generators.
    EXPECT_EQ(write_astg(w[3].net), generate_astg(13));
}
