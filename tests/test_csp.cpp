// The CSP-like front end: parsed processes must match the hand-written
// channel STGs of the corpus, and the parser must fail loudly (never
// crash) on the adversarial inputs the fuzz corpus can replay at it.
#include <gtest/gtest.h>

#include <string>

#include "benchmarks/corpus.hpp"
#include "benchmarks/fragment_builder.hpp"
#include "core/expand.hpp"
#include "core/flow.hpp"
#include "sg/analysis.hpp"
#include "spec/csp.hpp"

using namespace asynth;

TEST(csp, lr_process_matches_corpus_spec) {
    auto spec = parse_csp("lr = l? ; r! ; r? ; l!");
    EXPECT_EQ(spec.model_name, "lr");
    EXPECT_EQ(spec.transitions().size(), 4u);
    auto a = state_graph::generate(expand_handshakes(spec)).graph;
    auto b = state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
    EXPECT_TRUE(lts_equivalent(subgraph::full(a), subgraph::full(b)));
}

TEST(csp, par_component_matches_corpus_spec) {
    auto spec = parse_csp("par = a? ; (b! ; b?) || (c! ; c?) ; a!");
    auto a = state_graph::generate(expand_handshakes(spec)).graph;
    auto b = state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    EXPECT_TRUE(lts_equivalent(subgraph::full(a), subgraph::full(b)));
}

TEST(csp, nested_parallelism) {
    auto spec = parse_csp("x = t? ; a! ; a? || (b! ; b? ; (c! ; c?) || (d! ; d?)) ; t!");
    auto gen = state_graph::generate(expand_handshakes(spec));
    auto g = subgraph::full(gen.graph);
    EXPECT_TRUE(check_speed_independence(g).ok());
    EXPECT_TRUE(deadlock_states(g).empty());
}

TEST(csp, channels_declared_implicitly_once) {
    auto spec = parse_csp("p = a? ; a!");
    std::size_t channels = 0;
    for (const auto& s : spec.signals())
        if (s.kind == signal_kind::channel) ++channels;
    EXPECT_EQ(channels, 1u);
}

TEST(csp, syntax_errors_are_reported) {
    EXPECT_THROW((void)parse_csp("nodefinition"), parse_error);
    EXPECT_THROW((void)parse_csp("p = a"), parse_error);        // missing ?/!
    EXPECT_THROW((void)parse_csp("p = (a? ; b!"), parse_error);  // unbalanced
    EXPECT_THROW((void)parse_csp("p = a? ; ; b!"), parse_error);
    EXPECT_THROW((void)parse_csp("p = a? extra!"), parse_error);  // trailing
    EXPECT_THROW((void)parse_csp(""), parse_error);              // empty input
    EXPECT_THROW((void)parse_csp("p ="), parse_error);           // empty body
    EXPECT_THROW((void)parse_csp("p = ()"), parse_error);        // empty parens
    EXPECT_THROW((void)parse_csp("p = a? || "), parse_error);    // dangling ||
    EXPECT_THROW((void)parse_csp("= a? ; a!"), parse_error);     // nameless
}

TEST(csp, errors_carry_the_line_number) {
    try {
        (void)parse_csp("p =\n  a? ;\n  b");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        // The missing '?'/'!' is on line 3; the diagnostic must say so.
        EXPECT_NE(std::string(e.what()).find("3"), std::string::npos) << e.what();
    }
}

TEST(csp, nesting_depth_is_bounded) {
    // Recursive descent must answer pathological nesting with a parse error,
    // never a stack overflow: 64 levels parse, 65 and far beyond must throw.
    auto nested = [](int depth) {
        return "p = t? ; " + std::string(static_cast<std::size_t>(depth), '(') + "a! ; a?" +
               std::string(static_cast<std::size_t>(depth), ')') + " ; t!";
    };
    EXPECT_NO_THROW((void)parse_csp(nested(64)));
    EXPECT_THROW((void)parse_csp(nested(65)), parse_error);
    try {
        (void)parse_csp(nested(4096));
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        EXPECT_NE(std::string(e.what()).find("nested"), std::string::npos) << e.what();
    }
}

TEST(csp, channel_reuse_builds_multi_instance_transitions) {
    // Sequential reuse of one channel (the counter shape): one signal, four
    // transitions, and the expansion stays speed-independent and live.
    auto spec = parse_csp("p = t? ; a! ; a? ; a! ; a? ; t!");
    std::size_t channels = 0;
    for (const auto& s : spec.signals())
        if (s.kind == signal_kind::channel) ++channels;
    EXPECT_EQ(channels, 2u);  // a and the trigger t
    EXPECT_EQ(spec.transitions().size(), 6u);
    auto gen = state_graph::generate(expand_handshakes(spec));
    auto g = subgraph::full(gen.graph);
    EXPECT_TRUE(check_speed_independence(g).ok());
    EXPECT_TRUE(deadlock_states(g).empty());
}

TEST(csp, counter_text_matches_hand_built_fragment) {
    // The same process hand-assembled from fragment_builder primitives: the
    // front end and the generator's materialiser must agree on the LTS.
    stg net;
    auto a = static_cast<int32_t>(net.add_signal("a", signal_kind::channel));
    auto body = benchmarks::detail::counter_fragment(net, a, 3);
    auto hand = benchmarks::detail::finish_trigger(std::move(net), body, "p");

    auto parsed = parse_csp("p = t? ; a! ; a? ; a! ; a? ; a! ; a? ; t!");
    auto ga = state_graph::generate(expand_handshakes(parsed)).graph;
    auto gb = state_graph::generate(expand_handshakes(hand)).graph;
    EXPECT_TRUE(lts_equivalent(subgraph::full(ga), subgraph::full(gb)));
}

TEST(csp, parsed_process_runs_through_the_flow) {
    auto spec = parse_csp("lr = l? ; r! ; r? ; l!");
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.2;
    o.search.size_frontier = 6;
    auto rep = run_flow(spec, o);
    ASSERT_TRUE(rep.synth.ok);
    EXPECT_EQ(rep.area(), 0.0);  // the two-wire LR solution, from CSP text
}
