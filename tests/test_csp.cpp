// The CSP-like front end: parsed processes must match the hand-written
// channel STGs of the corpus.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "core/flow.hpp"
#include "sg/analysis.hpp"
#include "spec/csp.hpp"

using namespace asynth;

TEST(csp, lr_process_matches_corpus_spec) {
    auto spec = parse_csp("lr = l? ; r! ; r? ; l!");
    EXPECT_EQ(spec.model_name, "lr");
    EXPECT_EQ(spec.transitions().size(), 4u);
    auto a = state_graph::generate(expand_handshakes(spec)).graph;
    auto b = state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
    EXPECT_TRUE(lts_equivalent(subgraph::full(a), subgraph::full(b)));
}

TEST(csp, par_component_matches_corpus_spec) {
    auto spec = parse_csp("par = a? ; (b! ; b?) || (c! ; c?) ; a!");
    auto a = state_graph::generate(expand_handshakes(spec)).graph;
    auto b = state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    EXPECT_TRUE(lts_equivalent(subgraph::full(a), subgraph::full(b)));
}

TEST(csp, nested_parallelism) {
    auto spec = parse_csp("x = t? ; a! ; a? || (b! ; b? ; (c! ; c?) || (d! ; d?)) ; t!");
    auto gen = state_graph::generate(expand_handshakes(spec));
    auto g = subgraph::full(gen.graph);
    EXPECT_TRUE(check_speed_independence(g).ok());
    EXPECT_TRUE(deadlock_states(g).empty());
}

TEST(csp, channels_declared_implicitly_once) {
    auto spec = parse_csp("p = a? ; a!");
    std::size_t channels = 0;
    for (const auto& s : spec.signals())
        if (s.kind == signal_kind::channel) ++channels;
    EXPECT_EQ(channels, 1u);
}

TEST(csp, syntax_errors_are_reported) {
    EXPECT_THROW((void)parse_csp("nodefinition"), parse_error);
    EXPECT_THROW((void)parse_csp("p = a"), parse_error);        // missing ?/!
    EXPECT_THROW((void)parse_csp("p = (a? ; b!"), parse_error);  // unbalanced
    EXPECT_THROW((void)parse_csp("p = a? ; ; b!"), parse_error);
    EXPECT_THROW((void)parse_csp("p = a? extra!"), parse_error);  // trailing
}

TEST(csp, parsed_process_runs_through_the_flow) {
    auto spec = parse_csp("lr = l? ; r! ; r? ; l!");
    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = 0.2;
    o.search.size_frontier = 6;
    auto rep = run_flow(spec, o);
    ASSERT_TRUE(rep.synth.ok);
    EXPECT_EQ(rep.area(), 0.0);  // the two-wire LR solution, from CSP text
}
