// ASTG serialisation round-tripping: for every corpus entry the written text
// is a fixpoint of write_astg . parse_astg, and the reparsed net preserves
// the structural and behavioural content of the original.
#include <gtest/gtest.h>

#include <vector>

#include "benchmarks/corpus.hpp"
#include "petri/astg_io.hpp"
#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

std::vector<benchmarks::named_spec> all_corpus_entries() {
    std::vector<benchmarks::named_spec> all = {
        {"fig1", benchmarks::fig1_controller()},
        {"lr", benchmarks::lr_process()},
        {"qmodule", benchmarks::qmodule_lr()},
        {"lr_full", benchmarks::lr_full_reduction()},
        {"fig6", benchmarks::fig6_mixed()},
        {"par", benchmarks::par_component()},
        {"par_manual", benchmarks::par_manual()},
        {"mmu", benchmarks::mmu_controller()},
    };
    for (auto& [name, net] : benchmarks::spec_suite()) all.push_back({"suite/" + name, net});
    for (uint64_t seed = 1; seed <= 4; ++seed)
        all.push_back({"random/" + std::to_string(seed),
                       benchmarks::random_handshake_spec(seed, 3)});
    return all;
}

}  // namespace

TEST(astg_roundtrip, write_parse_write_is_a_fixpoint) {
    for (const auto& [name, net] : all_corpus_entries()) {
        const std::string text = write_astg(net);
        stg reparsed = parse_astg(text);
        EXPECT_EQ(write_astg(reparsed), text) << name;
    }
}

TEST(astg_roundtrip, reparsed_net_preserves_structure) {
    for (const auto& [name, net] : all_corpus_entries()) {
        stg reparsed = parse_astg(write_astg(net));
        EXPECT_EQ(reparsed.model_name, net.model_name) << name;
        ASSERT_EQ(reparsed.signal_count(), net.signal_count()) << name;
        // Signal *indices* may permute (the writer groups declarations by
        // kind); identity is by name.
        for (uint32_t s = 0; s < net.signal_count(); ++s) {
            const auto& orig = net.signal_at(s);
            auto found = reparsed.find_signal(orig.name);
            ASSERT_TRUE(found.has_value()) << name << ": " << orig.name;
            EXPECT_EQ(reparsed.signal_at(*found).kind, orig.kind) << name;
            EXPECT_EQ(reparsed.signal_at(*found).partial, orig.partial) << name;
        }
        EXPECT_EQ(reparsed.transitions().size(), net.transitions().size()) << name;
        EXPECT_EQ(reparsed.places().size(), net.places().size()) << name;
        EXPECT_EQ(reparsed.keep_concurrent.size(), net.keep_concurrent.size()) << name;
        EXPECT_EQ(reparsed.initial_marking().count(), net.initial_marking().count()) << name;
    }
}

TEST(astg_roundtrip, marked_place_without_arcs_rejected_at_write_time) {
    // An arc-less marked place has no .g representation: it would appear
    // only in .marking and the text would not reparse.  The writer must
    // fail loudly instead of emitting unreadable output.
    stg net;
    auto a = static_cast<int32_t>(net.add_signal("a", signal_kind::input));
    auto b = static_cast<int32_t>(net.add_signal("b", signal_kind::output));
    auto ta = net.add_transition({a, edge::plus, 0});
    auto tb = net.add_transition({b, edge::plus, 0});
    net.connect(ta, tb);
    net.connect(tb, ta, 1);
    net.add_place("orphan", 1);
    EXPECT_THROW((void)write_astg(net), error);
    // Without the token the place is silently dropped, which is fine.
    net.place_at(*net.find_place("orphan")).tokens = 0;
    EXPECT_EQ(write_astg(parse_astg(write_astg(net))), write_astg(net));
}

TEST(astg_roundtrip, reparsed_net_has_the_same_state_graph) {
    // Signal-level entries must generate the same SG after the round trip;
    // channel-level entries are covered by the structural checks above.
    for (const auto& [name, net] : all_corpus_entries()) {
        bool has_channel = false;
        for (const auto& s : net.signals())
            if (s.kind == signal_kind::channel || s.partial) has_channel = true;
        if (has_channel) continue;
        auto before = state_graph::generate(net);
        auto after = state_graph::generate(parse_astg(write_astg(net)));
        EXPECT_EQ(after.graph.state_count(), before.graph.state_count()) << name;
        EXPECT_EQ(after.graph.arc_count(), before.graph.arc_count()) << name;
    }
}
