// Petri-net/STG structure, token game, the astg parser/writer and their
// round-trip property.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "petri/astg_io.hpp"
#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

TEST(petri, token_game_basics) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::input));
    auto b = static_cast<int32_t>(n.add_signal("b", signal_kind::output));
    auto ta = n.add_transition({a, edge::plus, 0});
    auto tb = n.add_transition({b, edge::plus, 0});
    n.connect(ta, tb);
    n.connect(tb, ta, 1);
    auto m = n.initial_marking();
    EXPECT_TRUE(n.enabled(m, ta));
    EXPECT_FALSE(n.enabled(m, tb));
    auto m2 = n.fire(m, ta);
    EXPECT_TRUE(n.enabled(m2, tb));
    EXPECT_FALSE(n.enabled(m2, ta));
    EXPECT_THROW((void)n.fire(m, tb), error);  // disabled
}

TEST(petri, unsafe_firing_detected) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    auto t = n.add_transition({a, edge::plus, 0});
    auto p = n.add_place("p", 1);
    auto q = n.add_place("q", 1);
    n.add_arc_pt(p, t);
    n.add_arc_tp(t, q);
    EXPECT_THROW((void)n.fire(n.initial_marking(), t), error);
}

TEST(petri, instances_auto_numbered) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    auto t1 = n.add_transition({a, edge::plus, 0});
    auto t2 = n.add_transition({a, edge::plus, 0});
    EXPECT_EQ(n.transitions()[t1].label.instance, 1);
    EXPECT_EQ(n.transitions()[t2].label.instance, 2);
    EXPECT_EQ(n.transition_name(t1), "a+");
    EXPECT_EQ(n.transition_name(t2), "a+/2");
    EXPECT_THROW((void)n.add_transition({a, edge::plus, 1}), error);  // duplicate
}

TEST(petri, duplicate_names_rejected) {
    stg n;
    (void)n.add_signal("a", signal_kind::input);
    EXPECT_THROW((void)n.add_signal("a", signal_kind::output), error);
    (void)n.add_place("p");
    EXPECT_THROW((void)n.add_place("p"), error);
}

TEST(petri, label_parsing) {
    stg n;
    (void)n.add_signal("req", signal_kind::input);
    (void)n.add_signal("ch", signal_kind::channel);
    auto l1 = n.parse_label("req+");
    ASSERT_TRUE(l1.has_value());
    EXPECT_EQ(l1->dir, edge::plus);
    auto l2 = n.parse_label("req-/3");
    ASSERT_TRUE(l2.has_value());
    EXPECT_EQ(l2->instance, 3);
    auto l3 = n.parse_label("ch?");
    ASSERT_TRUE(l3.has_value());
    EXPECT_EQ(l3->dir, edge::recv);
    EXPECT_TRUE(n.parse_label("ch!").has_value());
    EXPECT_TRUE(n.parse_label("req~").has_value());
    EXPECT_FALSE(n.parse_label("unknown+").has_value());
    EXPECT_FALSE(n.parse_label("req").has_value());
    EXPECT_FALSE(n.parse_label("req+/0").has_value());
}

TEST(petri, filtered_renumbers_instances) {
    stg n;
    auto a = static_cast<int32_t>(n.add_signal("a", signal_kind::output));
    auto t1 = n.add_transition({a, edge::plus, 0});
    auto t2 = n.add_transition({a, edge::plus, 0});
    auto p = n.add_place("p", 1);
    n.add_arc_pt(p, t1);
    n.add_arc_pt(p, t2);
    dyn_bitset keep_p(n.places().size(), true);
    dyn_bitset keep_t(n.transitions().size());
    keep_t.set(t2);  // drop the first instance
    auto f = n.filtered(keep_p, keep_t);
    ASSERT_EQ(f.transitions().size(), 1u);
    EXPECT_EQ(f.transitions()[0].label.instance, 1);  // renumbered densely
    EXPECT_EQ(f.places().size(), 1u);
}

TEST(petri, place_adjacency_is_consistent) {
    auto lr = benchmarks::qmodule_lr();
    for (uint32_t p = 0; p < lr.places().size(); ++p) {
        for (uint32_t t : lr.place_post(p)) {
            const auto& pre = lr.transitions()[t].pre;
            EXPECT_NE(std::find(pre.begin(), pre.end(), p), pre.end());
        }
        for (uint32_t t : lr.place_pre(p)) {
            const auto& post = lr.transitions()[t].post;
            EXPECT_NE(std::find(post.begin(), post.end(), p), post.end());
        }
    }
}

TEST(astg, parses_the_lr_spec) {
    auto lr = benchmarks::lr_process();
    EXPECT_EQ(lr.model_name, "lr");
    EXPECT_EQ(lr.signal_count(), 2u);
    EXPECT_EQ(lr.transitions().size(), 4u);
    // One marked implicit place between l! and l?.
    std::size_t marked = 0;
    for (const auto& p : lr.places()) marked += p.tokens;
    EXPECT_EQ(marked, 1u);
}

TEST(astg, roundtrip_preserves_line_multiset) {
    // write(parse(.)) may permute lines (creation order is not part of the
    // format) but must keep exactly the same set of declarations and arcs.
    auto sorted_lines = [](const std::string& text) {
        std::vector<std::string> lines;
        std::string cur;
        for (char c : text) {
            if (c == '\n') {
                lines.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        std::sort(lines.begin(), lines.end());
        return lines;
    };
    for (const stg& net : {benchmarks::fig1_controller(), benchmarks::lr_process(),
                           benchmarks::par_component(), benchmarks::mmu_controller(),
                           benchmarks::qmodule_lr(), benchmarks::fig6_mixed()}) {
        auto text1 = write_astg(net);
        auto text2 = write_astg(parse_astg(text1));
        EXPECT_EQ(sorted_lines(text1), sorted_lines(text2));
    }
}

TEST(astg, roundtrip_preserves_semantics) {
    for (const stg& net : {benchmarks::fig1_controller(), benchmarks::qmodule_lr(),
                           benchmarks::par_manual(), benchmarks::lr_full_reduction()}) {
        auto back = parse_astg(write_astg(net));
        auto a = state_graph::generate(net);
        auto b = state_graph::generate(back);
        EXPECT_EQ(a.graph.state_count(), b.graph.state_count());
        EXPECT_EQ(a.graph.arc_count(), b.graph.arc_count());
    }
}

TEST(astg, parse_errors_carry_line_numbers) {
    // Arc line before .graph.
    try {
        (void)parse_astg(".model x\n.outputs a\na+ a-\n.graph\n.end\n");
        FAIL();
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 3u);
    }
    // Unknown directive.
    EXPECT_THROW((void)parse_astg(".model x\n.bogus\n.end\n"), parse_error);
    // Place-to-place arcs are rejected.
    EXPECT_THROW((void)parse_astg(".model x\n.graph\np q\n.end\n"), parse_error);
    // Unsupported directive.
    EXPECT_THROW((void)parse_astg(".model x\n.dummy d\n.end\n"), parse_error);
    // Marking of an unknown place.
    EXPECT_THROW((void)parse_astg(".model x\n.outputs a\n.graph\npa a+\na+ pa\n"
                                  ".marking { nosuch }\n.end\n"),
                 parse_error);
}

TEST(astg, partial_and_initial_directives) {
    auto net = parse_astg(R"(.model m
.outputs a b
.partial b
.initial a=1
.graph
a- b+
b+ a-
.marking { <b+,a-> }
.end
)");
    EXPECT_TRUE(net.signal_at(*net.find_signal("b")).partial);
    EXPECT_TRUE(net.signal_at(*net.find_signal("a")).initial_value);
    EXPECT_FALSE(net.signal_at(*net.find_signal("b")).initial_value);
}

TEST(astg, keepconc_directive) {
    auto net = parse_astg(R"(.model m
.channels x y
.graph
x? y!
y! x?
.marking { <y!,x?> }
.keepconc x? y!
.end
)");
    ASSERT_EQ(net.keep_concurrent.size(), 1u);
    EXPECT_EQ(net.label_name(net.keep_concurrent[0].first), "x?");
    EXPECT_EQ(net.label_name(net.keep_concurrent[0].second), "y!");
}

TEST(astg, explicit_places_with_fork_and_join) {
    auto net = parse_astg(R"(.model m
.outputs a b c
.graph
pa a+
a+ b+ c+
b+ pj
c+ pj
pj a-
a- b- c-
b- pa
c- pa
.marking { pa }
.end
)");
    // pj is a join place with two producers and one consumer; pa has two
    // producers (b-, c-) -- note this net is intentionally unsafe-ish but
    // structurally parseable.
    auto pj = net.find_place("pj");
    ASSERT_TRUE(pj.has_value());
    EXPECT_EQ(net.place_pre(*pj).size(), 2u);
    EXPECT_EQ(net.place_post(*pj).size(), 1u);
}

TEST(astg, dot_output_mentions_all_transitions) {
    auto lr = benchmarks::lr_process();
    auto dot = write_dot(lr);
    for (uint32_t t = 0; t < lr.transitions().size(); ++t)
        EXPECT_NE(dot.find(lr.transition_name(t)), std::string::npos);
}
