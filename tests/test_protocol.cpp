// The 4-phase channel protocol checker used to validate expansions.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "core/protocol.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

TEST(protocol, passive_and_active_roles_detected) {
    auto exp = expand_handshakes(benchmarks::lr_process());
    auto sg = state_graph::generate(exp).graph;
    auto g = subgraph::full(sg);
    // l is the passive port, r the active one; both conform.
    EXPECT_TRUE(check_channel_protocol(g, "l").empty());
    EXPECT_TRUE(check_channel_protocol(g, "r").empty());
}

TEST(protocol, violation_descriptions_are_actionable) {
    expand_options o;
    o.channel_interface = false;
    auto exp = expand_handshakes(benchmarks::lr_process(), o);
    auto sg = state_graph::generate(exp).graph;
    auto g = subgraph::full(sg);
    auto v = check_four_phase_protocol(g, *exp.find_signal("li"), *exp.find_signal("lo"), true);
    ASSERT_FALSE(v.empty());
    for (const auto& violation : v) {
        EXPECT_FALSE(violation.description.empty());
        EXPECT_LT(violation.state, sg.state_count());
    }
}

TEST(protocol, wrong_role_reports_violations) {
    auto exp = expand_handshakes(benchmarks::lr_process());
    auto sg = state_graph::generate(exp).graph;
    auto g = subgraph::full(sg);
    // Checking the passive port with the active rule must flag something.
    auto v = check_four_phase_protocol(g, *exp.find_signal("li"), *exp.find_signal("lo"),
                                       /*passive=*/false);
    EXPECT_FALSE(v.empty());
}

TEST(protocol, missing_channel_throws) {
    auto exp = expand_handshakes(benchmarks::lr_process());
    auto sg = state_graph::generate(exp).graph;
    auto g = subgraph::full(sg);
    EXPECT_THROW((void)check_channel_protocol(g, "zz"), error);
}

TEST(protocol, all_mmu_channels_conform) {
    auto exp = expand_handshakes(benchmarks::mmu_controller());
    auto sg = state_graph::generate(exp).graph;
    auto g = subgraph::full(sg);
    for (const char* c : {"r", "l", "m", "b"})
        EXPECT_TRUE(check_channel_protocol(g, c).empty()) << c;
}
