// ROBDD package: operations cross-checked against truth-table oracles on
// random functions, plus symbolic-vs-explicit reachability agreement.
#include <gtest/gtest.h>

#include <functional>

#include "bdd/bdd.hpp"
#include "bdd/symbolic.hpp"
#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "sg/state_graph.hpp"
#include "util/hash.hpp"

using namespace asynth;

namespace {

dyn_bitset point(std::size_t n, uint64_t bits) {
    dyn_bitset p(n);
    for (std::size_t i = 0; i < n; ++i)
        if (bits & (1ULL << i)) p.set(i);
    return p;
}

/// Builds a random BDD and a parallel truth-table oracle.
struct random_function {
    bdd_manager::ref f;
    std::function<bool(uint64_t)> oracle;
};

random_function build_random(bdd_manager& m, std::size_t n, xorshift64& rng, int depth) {
    if (depth == 0 || rng.next_bool(0.3)) {
        const auto v = static_cast<uint32_t>(rng.next_below(n));
        const bool pos = rng.next_bool();
        return {pos ? m.var(v) : m.nvar(v),
                [v, pos](uint64_t bits) { return ((bits >> v) & 1) == (pos ? 1u : 0u); }};
    }
    auto a = build_random(m, n, rng, depth - 1);
    auto b = build_random(m, n, rng, depth - 1);
    switch (rng.next_below(3)) {
        case 0:
            return {m.apply_and(a.f, b.f),
                    [a, b](uint64_t x) { return a.oracle(x) && b.oracle(x); }};
        case 1:
            return {m.apply_or(a.f, b.f),
                    [a, b](uint64_t x) { return a.oracle(x) || b.oracle(x); }};
        default:
            return {m.apply_xor(a.f, b.f),
                    [a, b](uint64_t x) { return a.oracle(x) != b.oracle(x); }};
    }
}

}  // namespace

TEST(bdd, terminals_and_vars) {
    bdd_manager m(3);
    EXPECT_EQ(m.zero(), 0u);
    EXPECT_EQ(m.one(), 1u);
    auto x0 = m.var(0);
    EXPECT_TRUE(m.eval(x0, point(3, 0b001)));
    EXPECT_FALSE(m.eval(x0, point(3, 0b110)));
    EXPECT_EQ(m.var(0), x0);  // unique table canonicalises
    EXPECT_EQ(m.apply_and(x0, m.negate(x0)), m.zero());
    EXPECT_EQ(m.apply_or(x0, m.negate(x0)), m.one());
}

TEST(bdd, sat_count) {
    bdd_manager m(4);
    EXPECT_DOUBLE_EQ(m.sat_count(m.one()), 16.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.zero()), 0.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.var(2)), 8.0);
    auto f = m.apply_and(m.var(0), m.var(3));
    EXPECT_DOUBLE_EQ(m.sat_count(f), 4.0);
    auto g = m.apply_xor(m.var(1), m.var(2));
    EXPECT_DOUBLE_EQ(m.sat_count(g), 8.0);
}

TEST(bdd, exists_quantification) {
    bdd_manager m(3);
    auto f = m.apply_and(m.var(0), m.var(1));
    dyn_bitset q(3);
    q.set(0);
    EXPECT_EQ(m.exists(f, q), m.var(1));
    q.set(1);
    EXPECT_EQ(m.exists(f, q), m.one());
    // Quantifying a variable outside the support is a no-op.
    dyn_bitset q2(3);
    q2.set(2);
    EXPECT_EQ(m.exists(f, q2), f);
}

TEST(bdd, rename_shifts_support) {
    bdd_manager m(4);
    auto f = m.apply_and(m.var(0), m.nvar(2));
    std::vector<uint32_t> map = {1, 1, 3, 3};  // 0->1, 2->3
    auto g = m.rename(f, map);
    EXPECT_TRUE(m.eval(g, point(4, 0b0010)));   // x1=1, x3=0
    EXPECT_FALSE(m.eval(g, point(4, 0b1010)));  // x3=1 violates
}

class bdd_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(bdd_random, matches_truth_table_oracle) {
    xorshift64 rng(GetParam() * 99991 + 7);
    const std::size_t n = 3 + rng.next_below(4);  // 3..6 vars
    bdd_manager m(static_cast<uint32_t>(n));
    auto rf = build_random(m, n, rng, 4);
    double expected_count = 0;
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
        EXPECT_EQ(m.eval(rf.f, point(n, bits)), rf.oracle(bits)) << "bits " << bits;
        expected_count += rf.oracle(bits) ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(m.sat_count(rf.f), expected_count);
    // not(not(f)) == f; f xor f == 0.
    EXPECT_EQ(m.negate(m.negate(rf.f)), rf.f);
    EXPECT_EQ(m.apply_xor(rf.f, rf.f), m.zero());
}

INSTANTIATE_TEST_SUITE_P(seeds, bdd_random, ::testing::Range<uint64_t>(0, 25));

namespace {

std::size_t distinct_markings(const state_graph& g) {
    std::unordered_map<dyn_bitset, bool> seen;
    for (const auto& s : g.states()) seen.emplace(s.m, true);
    return seen.size();
}

}  // namespace

TEST(symbolic, agrees_with_explicit_on_fig1) {
    auto net = benchmarks::fig1_controller();
    auto gen = state_graph::generate(net);
    auto sym = symbolic_reachable_markings(net);
    EXPECT_DOUBLE_EQ(sym.reachable_markings, static_cast<double>(distinct_markings(gen.graph)));
}

TEST(symbolic, agrees_with_explicit_on_expansions) {
    for (const auto& [name, spec] : benchmarks::spec_suite()) {
        auto expanded = expand_handshakes(spec);
        auto gen = state_graph::generate(expanded);
        auto sym = symbolic_reachable_markings(expanded);
        EXPECT_DOUBLE_EQ(sym.reachable_markings,
                         static_cast<double>(distinct_markings(gen.graph)))
            << name;
        EXPECT_GT(sym.iterations, 0u);
    }
}

class symbolic_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(symbolic_random, reachability_cross_check) {
    // Two leaves keep the BDDs small under the naive static variable order
    // (the package has no reordering; larger nets can blow up on unlucky
    // structures -- a known limitation documented in DESIGN.md).
    auto spec = benchmarks::random_handshake_spec(GetParam(), 2);
    auto expanded = expand_handshakes(spec);
    auto gen = state_graph::generate(expanded);
    auto sym = symbolic_reachable_markings(expanded);
    EXPECT_DOUBLE_EQ(sym.reachable_markings, static_cast<double>(distinct_markings(gen.graph)));
}

INSTANTIATE_TEST_SUITE_P(seeds, symbolic_random, ::testing::Range<uint64_t>(0, 10));
