// Handshake expansion (paper section 4) on the LR process, the Fig. 6 mixed
// example and the random series-parallel corpus.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "core/protocol.hpp"
#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

subgraph make_sg(const stg& net, state_graph& storage) {
    storage = state_graph::generate(net).graph;
    return subgraph::full(storage);
}

}  // namespace

TEST(expand, lr_four_phase_produces_all_eight_events) {
    auto expanded = expand_handshakes(benchmarks::lr_process());
    for (const char* name : {"li", "lo", "ri", "ro"}) {
        auto s = expanded.find_signal(name);
        ASSERT_TRUE(s.has_value()) << name;
    }
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_EQ(base.events().size(), 8u);  // li+- lo+- ri+- ro+-
    EXPECT_TRUE(check_consistency(g));
    auto si = check_speed_independence(g);
    EXPECT_TRUE(si.ok()) << (si.violations.empty() ? "" : si.violations[0]);
    EXPECT_TRUE(deadlock_states(g).empty());
}

TEST(expand, lr_four_phase_satisfies_channel_protocol) {
    auto expanded = expand_handshakes(benchmarks::lr_process());
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_TRUE(check_channel_protocol(g, "l").empty());
    EXPECT_TRUE(check_channel_protocol(g, "r").empty());
}

TEST(expand, lr_four_phase_has_maximum_reset_concurrency) {
    // Fig. 2.f: the reset phases of both ports run concurrently with the
    // functional chain of the other port.
    auto expanded = expand_handshakes(benchmarks::lr_process());
    state_graph base;
    auto g = make_sg(expanded, base);
    auto ev = [&](const char* sig, edge d) {
        auto s = base.signals();
        auto id = expanded.find_signal(sig);
        EXPECT_TRUE(id.has_value());
        auto e = base.find_event(static_cast<int32_t>(*id), d);
        EXPECT_TRUE(e.has_value());
        return *e;
    };
    EXPECT_TRUE(concurrent_by_diamond(g, ev("ro", edge::minus), ev("lo", edge::plus)));
    EXPECT_TRUE(concurrent_by_diamond(g, ev("li", edge::minus), ev("ro", edge::minus)));
    EXPECT_TRUE(concurrent_by_diamond(g, ev("lo", edge::minus), ev("ri", edge::minus)));
    // But the functional chain stays ordered.
    EXPECT_FALSE(concurrent_by_diamond(g, ev("li", edge::plus), ev("ro", edge::plus)));
    EXPECT_FALSE(concurrent_by_diamond(g, ev("ro", edge::plus), ev("ri", edge::plus)));
}

TEST(expand, lr_unconstrained_violates_channel_protocol) {
    // Fig. 2.e: without interface constraints the reset of li is independent
    // of lo, so the 4-phase order is violated somewhere.
    expand_options opt;
    opt.channel_interface = false;
    auto expanded = expand_handshakes(benchmarks::lr_process(), opt);
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_TRUE(check_consistency(g));
    const auto violations = check_four_phase_protocol(
        g, *expanded.find_signal("li"), *expanded.find_signal("lo"), /*passive=*/true);
    EXPECT_FALSE(violations.empty());
}

TEST(expand, lr_two_phase_uses_toggles) {
    expand_options opt;
    opt.phases = 2;
    auto expanded = expand_handshakes(benchmarks::lr_process(), opt);
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_EQ(base.events().size(), 4u);  // li~ lo~ ri~ ro~
    for (const auto& e : base.events()) EXPECT_EQ(e.dir, edge::toggle);
    EXPECT_TRUE(check_consistency(g));
    EXPECT_TRUE(check_speed_independence(g).ok());
}

TEST(expand, fig6_mixed_example_four_phase) {
    auto expanded = expand_handshakes(benchmarks::fig6_mixed());
    // Channel a becomes wires ai/ao; partial b gains its reset transition.
    ASSERT_TRUE(expanded.find_signal("ai").has_value());
    ASSERT_TRUE(expanded.find_signal("ao").has_value());
    auto b_sig = expanded.find_signal("b");
    ASSERT_TRUE(b_sig.has_value());
    std::size_t b_plus = 0, b_minus = 0;
    for (const auto& t : expanded.transitions()) {
        if (t.label.signal != static_cast<int32_t>(*b_sig)) continue;
        (t.label.dir == edge::plus ? b_plus : b_minus)++;
    }
    EXPECT_EQ(b_plus, 1u);
    EXPECT_EQ(b_minus, 1u);
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_TRUE(check_consistency(g));
    EXPECT_TRUE(check_speed_independence(g).ok());
    // Channel a is used in the active role: ao+ precedes ai+.
    EXPECT_TRUE(check_channel_protocol(g, "a").empty());
}

TEST(expand, fig6_two_phase_has_no_reset_events) {
    expand_options opt;
    opt.phases = 2;
    auto expanded = expand_handshakes(benchmarks::fig6_mixed(), opt);
    // b is partial: in 2-phase it is toggled, no extra transition inserted.
    auto b_sig = expanded.find_signal("b");
    ASSERT_TRUE(b_sig.has_value());
    std::size_t b_trans = 0;
    for (const auto& t : expanded.transitions()) {
        if (t.label.signal == static_cast<int32_t>(*b_sig)) {
            EXPECT_EQ(t.label.dir, edge::toggle);
            ++b_trans;
        }
    }
    EXPECT_EQ(b_trans, 1u);
    // c stays a completely specified +/- signal.
    auto c_sig = expanded.find_signal("c");
    for (const auto& t : expanded.transitions()) {
        if (t.label.signal == static_cast<int32_t>(*c_sig)) {
            EXPECT_NE(t.label.dir, edge::toggle);
        }
    }
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_TRUE(check_consistency(g));
}

TEST(expand, par_keeps_branch_inputs_concurrent) {
    auto spec = benchmarks::par_component();
    auto expanded = expand_handshakes(spec);
    state_graph base;
    auto g = make_sg(expanded, base);
    auto bi = base.find_event(static_cast<int32_t>(*expanded.find_signal("bi")), edge::plus);
    auto ci = base.find_event(static_cast<int32_t>(*expanded.find_signal("ci")), edge::plus);
    ASSERT_TRUE(bi && ci);
    EXPECT_TRUE(concurrent_by_diamond(g, *bi, *ci));
    EXPECT_TRUE(check_channel_protocol(g, "a").empty());
    EXPECT_TRUE(check_channel_protocol(g, "b").empty());
    EXPECT_TRUE(check_channel_protocol(g, "c").empty());
}

TEST(expand, mmu_controller_expands_cleanly) {
    auto expanded = expand_handshakes(benchmarks::mmu_controller());
    state_graph base;
    auto g = make_sg(expanded, base);
    EXPECT_TRUE(check_consistency(g));
    EXPECT_TRUE(check_speed_independence(g).ok());
    for (const char* c : {"r", "l", "m", "b"})
        EXPECT_TRUE(check_channel_protocol(g, c).empty()) << c;
}

TEST(expand, keepconc_pairs_are_translated_to_wires) {
    auto spec = benchmarks::par_component();
    spec.keep_concurrent.push_back({*spec.parse_label("b?"), *spec.parse_label("c?")});
    auto expanded = expand_handshakes(spec);
    ASSERT_EQ(expanded.keep_concurrent.size(), 1u);
    const auto& [a, b] = expanded.keep_concurrent[0];
    EXPECT_EQ(expanded.label_name(a), "bi+");
    EXPECT_EQ(expanded.label_name(b), "ci+");
}

class expand_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(expand_random, series_parallel_specs_expand_validly) {
    const uint64_t seed = GetParam();
    auto spec = benchmarks::random_handshake_spec(seed, 3 + static_cast<int>(seed % 4));
    for (int phases : {2, 4}) {
        expand_options opt;
        opt.phases = phases;
        auto expanded = expand_handshakes(spec, opt);
        state_graph base;
        auto g = make_sg(expanded, base);
        EXPECT_TRUE(check_consistency(g)) << "seed " << seed << " phases " << phases;
        auto si = check_speed_independence(g);
        EXPECT_TRUE(si.ok()) << "seed " << seed << " phases " << phases << ": "
                             << (si.violations.empty() ? "" : si.violations[0]);
        EXPECT_TRUE(deadlock_states(g).empty());
        if (phases == 4) {
            for (const auto& sig : spec.signals()) {
                if (sig.kind == signal_kind::channel) {
                    EXPECT_TRUE(check_channel_protocol(g, sig.name).empty())
                        << "seed " << seed << " channel " << sig.name;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, expand_random, ::testing::Range<uint64_t>(0, 24));
