// Logic synthesis: next-state derivation, wire/inverter/constant detection,
// complex-gate vs gC selection and the decomposition area model.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "explore/analysis_cache.hpp"
#include "logic/synthesis.hpp"
#include "pipeline/pipeline.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

state_graph sg_of(const stg& net) { return state_graph::generate(net).graph; }

}  // namespace

TEST(logic, lr_full_reduction_is_two_wires) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_EQ(res.ckt.total_area, 0.0);
    ASSERT_EQ(res.ckt.impls.size(), 2u);
    for (const auto& i : res.ckt.impls) EXPECT_EQ(i.kind, impl_kind::wire);
    // lo = ri and ro = li.
    bool saw_lo = false, saw_ro = false;
    for (const auto& i : res.ckt.impls) {
        if (i.equation == "lo = ri") saw_lo = true;
        if (i.equation == "ro = li") saw_ro = true;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_ro);
}

TEST(logic, par_manual_contains_c_element_feedback) {
    auto sg = sg_of(benchmarks::par_manual());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    const signal_impl* ao = nullptr;
    for (const auto& i : res.ckt.impls)
        if (sg.signals()[i.signal].name == "ao") ao = &i;
    ASSERT_NE(ao, nullptr);
    // ao is the classic C-element of bi and ci: either an SOP with feedback
    // or a gC implementation, never a wire.
    EXPECT_TRUE(ao->kind == impl_kind::complex_gate || ao->kind == impl_kind::gc_element);
    EXPECT_GT(ao->area, 0.0);
    // bo and co are wires driven by ai.
    std::size_t wires = 0;
    for (const auto& i : res.ckt.impls)
        if (i.kind == impl_kind::wire) ++wires;
    EXPECT_EQ(wires, 2u);
}

TEST(logic, csc_conflict_fails_with_diagnostic) {
    auto sg = sg_of(benchmarks::fig1_controller());
    auto res = synthesize(subgraph::full(sg));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.message.find("CSC"), std::string::npos);
    EXPECT_NE(res.message.find("Ack"), std::string::npos);
}

TEST(logic, toggle_signals_rejected) {
    expand_options o;
    o.phases = 2;
    auto sg = sg_of(expand_handshakes(benchmarks::lr_process(), o));
    auto res = synthesize(subgraph::full(sg));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.message.find("2-phase"), std::string::npos);
}

TEST(logic, derive_nextstate_on_and_off_partition_states) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto g = subgraph::full(sg);
    for (uint32_t s = 0; s < sg.signals().size(); ++s) {
        if (sg.signals()[s].kind == signal_kind::input) continue;
        auto ns = derive_nextstate(g, s);
        EXPECT_TRUE(ns.conflicting.empty());
        // Every reachable code lands on exactly one side.
        EXPECT_EQ(ns.spec.on.size() + ns.spec.off.size(), sg.state_count());
    }
}

TEST(logic, derive_nextstate_reports_conflicts) {
    auto sg = sg_of(benchmarks::fig1_controller());
    auto g = subgraph::full(sg);
    auto ns = derive_nextstate(g, 0);  // Ack
    EXPECT_FALSE(ns.conflicting.empty());
}

TEST(logic, decomposed_area_model) {
    gate_library lib;
    // Empty cover (constant 0): no gates.
    cover c0;
    c0.nvars = 3;
    EXPECT_EQ(decomposed_area(c0, lib), 0.0);
    // Single positive literal: a wire at the cover level -> no gates.
    cover c1;
    c1.nvars = 3;
    cube q1(3);
    q1.set_literal(0, true);
    c1.cubes.push_back(q1);
    EXPECT_EQ(decomposed_area(c1, lib), 0.0);
    // Single negative literal: one inverter.
    cover c2 = c1;
    c2.cubes[0].set_literal(0, false);
    EXPECT_EQ(decomposed_area(c2, lib), lib.inverter);
    // a b + c'd: 2 AND2 + 1 OR2 + 1 inverter.
    cover c3;
    c3.nvars = 4;
    cube qa(4), qb(4);
    qa.set_literal(0, true);
    qa.set_literal(1, true);
    qb.set_literal(2, false);
    qb.set_literal(3, true);
    c3.cubes = {qa, qb};
    EXPECT_EQ(decomposed_area(c3, lib), 3 * lib.gate2 + lib.inverter);
    // Shared inverters are counted once: a' b + a' c.
    cover c4;
    c4.nvars = 3;
    cube qc(3), qd(3);
    qc.set_literal(0, false);
    qc.set_literal(1, true);
    qd.set_literal(0, false);
    qd.set_literal(2, true);
    c4.cubes = {qc, qd};
    EXPECT_EQ(decomposed_area(c4, lib), 3 * lib.gate2 + lib.inverter);
}

TEST(logic, qmodule_after_csc_synthesises) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto csc = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(csc.solved);
    auto res = synthesize(subgraph::full(csc.graph));
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_GT(res.ckt.total_area, 0.0);
    // Three non-input signals now: lo, ro, csc0.
    EXPECT_EQ(res.ckt.impls.size(), 3u);
}

TEST(logic, exact_and_heuristic_agree_on_correctness) {
    auto sg = sg_of(expand_handshakes(benchmarks::par_component()));
    auto csc = resolve_csc(subgraph::full(sg), csc_options{6, 4});
    ASSERT_TRUE(csc.solved);
    auto enc = subgraph::full(csc.graph);
    for (uint32_t s = 0; s < csc.graph.signals().size(); ++s) {
        if (csc.graph.signals()[s].kind == signal_kind::input) continue;
        if (!csc.graph.find_event(static_cast<int32_t>(s), edge::plus)) continue;
        auto ns = derive_nextstate(enc, s);
        ASSERT_TRUE(ns.conflicting.empty());
        auto h = minimize_heuristic(ns.spec);
        auto e = minimize_exact(ns.spec);
        EXPECT_TRUE(verify_cover(h, ns.spec));
        EXPECT_TRUE(verify_cover(e, ns.spec));
        EXPECT_LE(e.cubes.size(), h.cubes.size());
    }
}

TEST(logic, gc_networks_cover_excitation_regions) {
    auto sg = sg_of(benchmarks::par_manual());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok);
    for (const auto& i : res.ckt.impls) {
        if (i.kind != impl_kind::gc_element) continue;
        EXPECT_FALSE(i.set_fn.cubes.empty());
        EXPECT_FALSE(i.reset_fn.cubes.empty());
        EXPECT_GE(i.area_gc, 16.0);  // at least the C-element
    }
}

TEST(logic, synthesis_area_is_sum_of_impl_areas) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto csc = resolve_csc(subgraph::full(sg));
    auto res = synthesize(subgraph::full(csc.graph));
    ASSERT_TRUE(res.ok);
    double sum = 0;
    for (const auto& i : res.ckt.impls) sum += i.area;
    EXPECT_DOUBLE_EQ(sum, res.ckt.total_area);
}

// ---- warm-starting the exact minimiser from the search's literal_memo ------

TEST(logic_warm, key_of_spec_matches_the_cached_signal_keys) {
    // The bridge the pipeline relies on: hashing an assembled sop_spec must
    // reproduce the key the analysis cache computed from its group structure,
    // for every estimated signal.
    auto sg = sg_of(expand_handshakes(benchmarks::lr_process()));
    auto g = subgraph::full(sg);
    const auto ctx = explore::make_context(sg, cost_params{});
    const auto cache = explore::build_cache(ctx, g);
    std::size_t checked = 0;
    for (uint32_t s = 0; s < sg.signals().size(); ++s) {
        if (!cache.signals[s].estimated) continue;
        auto ns = derive_nextstate(g, s);
        EXPECT_EQ(explore::key_of_spec(ns.spec), cache.signals[s].key) << "signal " << s;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(logic_warm, seeded_minimize_exact_equals_cold) {
    // Any valid seed -- here deliberately the 1-pass cover the search memo
    // stores, not the 2-pass default seed -- must leave the exact result
    // untouched whenever the set cover completes.
    auto sg = sg_of(expand_handshakes(benchmarks::par_component()));
    auto csc = resolve_csc(subgraph::full(sg), csc_options{6, 4});
    ASSERT_TRUE(csc.solved);
    auto enc = subgraph::full(csc.graph);
    std::size_t checked = 0;
    for (uint32_t s = 0; s < csc.graph.signals().size(); ++s) {
        if (csc.graph.signals()[s].kind == signal_kind::input) continue;
        if (!csc.graph.find_event(static_cast<int32_t>(s), edge::plus)) continue;
        auto ns = derive_nextstate(enc, s);
        const cover seed = minimize_heuristic(ns.spec, 1);
        bool cold_exact = false, warm_exact = false;
        const cover cold = minimize_exact(ns.spec, {}, &cold_exact);
        const cover warm = minimize_exact(ns.spec, {}, &warm_exact, &seed);
        ASSERT_TRUE(cold_exact);
        ASSERT_TRUE(warm_exact);
        ASSERT_EQ(warm.cubes.size(), cold.cubes.size());
        for (std::size_t c = 0; c < cold.cubes.size(); ++c)
            EXPECT_EQ(warm.cubes[c], cold.cubes[c]);

        // Equivalence must also survive a branch-and-bound *abort* (node
        // budget 1): the seeded path re-runs cold there instead of falling
        // back to the seed itself.
        const exact_limits tiny{4096, 1};
        bool cold_abort = true, warm_abort = true;
        const cover cold_t = minimize_exact(ns.spec, tiny, &cold_abort);
        const cover warm_t = minimize_exact(ns.spec, tiny, &warm_abort, &seed);
        EXPECT_EQ(cold_abort, warm_abort);
        ASSERT_EQ(warm_t.cubes.size(), cold_t.cubes.size());
        for (std::size_t c = 0; c < cold_t.cubes.size(); ++c)
            EXPECT_EQ(warm_t.cubes[c], cold_t.cubes[c]);
        ++checked;
    }
    EXPECT_GT(checked, 0u);

    // An *invalid* seed (wrong spec entirely) is ignored, not trusted.
    auto ns0 = derive_nextstate(enc, [&] {
        for (uint32_t s = 0; s < csc.graph.signals().size(); ++s)
            if (csc.graph.signals()[s].kind != signal_kind::input &&
                csc.graph.find_event(static_cast<int32_t>(s), edge::plus))
                return s;
        return 0u;
    }());
    cover bogus;
    bogus.nvars = ns0.spec.nvars;  // empty cover: covers no ON minterm
    const cover guarded = minimize_exact(ns0.spec, {}, nullptr, &bogus);
    EXPECT_TRUE(verify_cover(guarded, ns0.spec));
}

TEST(logic_warm, pipeline_warm_start_hits_and_preserves_output) {
    // End to end over several corpus entries: the default pipeline (search
    // memo wired into the logic stage) must synthesise the identical circuit
    // as a cold logic stage, and on specs where CSC inserted no signal the
    // memo must actually get hits (the specs are unchanged since the search).
    std::size_t total_hits = 0;
    for (const auto& entry : benchmarks::corpus_specs()) {
        auto warm_run = run_pipeline(entry.net);
        if (!warm_run.completed || !warm_run.synth.ok) continue;

        // Cold reference: same encoded SG, warm_cover disabled.
        auto enc = subgraph::full(warm_run.csc.graph);
        auto cold = synthesize(enc, synthesis_options{});
        ASSERT_TRUE(cold.ok) << entry.name;
        ASSERT_EQ(warm_run.synth.ckt.impls.size(), cold.ckt.impls.size()) << entry.name;
        EXPECT_EQ(warm_run.synth.ckt.total_area, cold.ckt.total_area) << entry.name;
        for (std::size_t i = 0; i < cold.ckt.impls.size(); ++i) {
            EXPECT_EQ(warm_run.synth.ckt.impls[i].equation, cold.ckt.impls[i].equation)
                << entry.name;
            EXPECT_EQ(warm_run.synth.ckt.impls[i].kind, cold.ckt.impls[i].kind) << entry.name;
        }

        EXPECT_EQ(cold.warm_lookups, 0u);
        if (warm_run.csc.signals_inserted == 0) total_hits += warm_run.synth.warm_hits;
    }
    EXPECT_GT(total_hits, 0u);
}

TEST(logic_warm, reference_engine_and_reduced_strategies_have_no_memo) {
    pipeline_options opt;
    opt.search.engine = search_engine::reference;
    auto res = run_pipeline(benchmarks::lr_process(), opt);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.search.memo, nullptr);
    EXPECT_EQ(res.synth.warm_lookups, 0u);

    pipeline_options none;
    none.strategy = reduction_strategy::none;
    auto res2 = run_pipeline(benchmarks::lr_process(), none);
    ASSERT_TRUE(res2.completed);
    EXPECT_EQ(res2.search.memo, nullptr);
}
