// Logic synthesis: next-state derivation, wire/inverter/constant detection,
// complex-gate vs gC selection and the decomposition area model.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "logic/synthesis.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

state_graph sg_of(const stg& net) { return state_graph::generate(net).graph; }

}  // namespace

TEST(logic, lr_full_reduction_is_two_wires) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_EQ(res.ckt.total_area, 0.0);
    ASSERT_EQ(res.ckt.impls.size(), 2u);
    for (const auto& i : res.ckt.impls) EXPECT_EQ(i.kind, impl_kind::wire);
    // lo = ri and ro = li.
    bool saw_lo = false, saw_ro = false;
    for (const auto& i : res.ckt.impls) {
        if (i.equation == "lo = ri") saw_lo = true;
        if (i.equation == "ro = li") saw_ro = true;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_ro);
}

TEST(logic, par_manual_contains_c_element_feedback) {
    auto sg = sg_of(benchmarks::par_manual());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    const signal_impl* ao = nullptr;
    for (const auto& i : res.ckt.impls)
        if (sg.signals()[i.signal].name == "ao") ao = &i;
    ASSERT_NE(ao, nullptr);
    // ao is the classic C-element of bi and ci: either an SOP with feedback
    // or a gC implementation, never a wire.
    EXPECT_TRUE(ao->kind == impl_kind::complex_gate || ao->kind == impl_kind::gc_element);
    EXPECT_GT(ao->area, 0.0);
    // bo and co are wires driven by ai.
    std::size_t wires = 0;
    for (const auto& i : res.ckt.impls)
        if (i.kind == impl_kind::wire) ++wires;
    EXPECT_EQ(wires, 2u);
}

TEST(logic, csc_conflict_fails_with_diagnostic) {
    auto sg = sg_of(benchmarks::fig1_controller());
    auto res = synthesize(subgraph::full(sg));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.message.find("CSC"), std::string::npos);
    EXPECT_NE(res.message.find("Ack"), std::string::npos);
}

TEST(logic, toggle_signals_rejected) {
    expand_options o;
    o.phases = 2;
    auto sg = sg_of(expand_handshakes(benchmarks::lr_process(), o));
    auto res = synthesize(subgraph::full(sg));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.message.find("2-phase"), std::string::npos);
}

TEST(logic, derive_nextstate_on_and_off_partition_states) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto g = subgraph::full(sg);
    for (uint32_t s = 0; s < sg.signals().size(); ++s) {
        if (sg.signals()[s].kind == signal_kind::input) continue;
        auto ns = derive_nextstate(g, s);
        EXPECT_TRUE(ns.conflicting.empty());
        // Every reachable code lands on exactly one side.
        EXPECT_EQ(ns.spec.on.size() + ns.spec.off.size(), sg.state_count());
    }
}

TEST(logic, derive_nextstate_reports_conflicts) {
    auto sg = sg_of(benchmarks::fig1_controller());
    auto g = subgraph::full(sg);
    auto ns = derive_nextstate(g, 0);  // Ack
    EXPECT_FALSE(ns.conflicting.empty());
}

TEST(logic, decomposed_area_model) {
    gate_library lib;
    // Empty cover (constant 0): no gates.
    cover c0;
    c0.nvars = 3;
    EXPECT_EQ(decomposed_area(c0, lib), 0.0);
    // Single positive literal: a wire at the cover level -> no gates.
    cover c1;
    c1.nvars = 3;
    cube q1(3);
    q1.set_literal(0, true);
    c1.cubes.push_back(q1);
    EXPECT_EQ(decomposed_area(c1, lib), 0.0);
    // Single negative literal: one inverter.
    cover c2 = c1;
    c2.cubes[0].set_literal(0, false);
    EXPECT_EQ(decomposed_area(c2, lib), lib.inverter);
    // a b + c'd: 2 AND2 + 1 OR2 + 1 inverter.
    cover c3;
    c3.nvars = 4;
    cube qa(4), qb(4);
    qa.set_literal(0, true);
    qa.set_literal(1, true);
    qb.set_literal(2, false);
    qb.set_literal(3, true);
    c3.cubes = {qa, qb};
    EXPECT_EQ(decomposed_area(c3, lib), 3 * lib.gate2 + lib.inverter);
    // Shared inverters are counted once: a' b + a' c.
    cover c4;
    c4.nvars = 3;
    cube qc(3), qd(3);
    qc.set_literal(0, false);
    qc.set_literal(1, true);
    qd.set_literal(0, false);
    qd.set_literal(2, true);
    c4.cubes = {qc, qd};
    EXPECT_EQ(decomposed_area(c4, lib), 3 * lib.gate2 + lib.inverter);
}

TEST(logic, qmodule_after_csc_synthesises) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto csc = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(csc.solved);
    auto res = synthesize(subgraph::full(csc.graph));
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_GT(res.ckt.total_area, 0.0);
    // Three non-input signals now: lo, ro, csc0.
    EXPECT_EQ(res.ckt.impls.size(), 3u);
}

TEST(logic, exact_and_heuristic_agree_on_correctness) {
    auto sg = sg_of(expand_handshakes(benchmarks::par_component()));
    auto csc = resolve_csc(subgraph::full(sg), csc_options{6, 4});
    ASSERT_TRUE(csc.solved);
    auto enc = subgraph::full(csc.graph);
    for (uint32_t s = 0; s < csc.graph.signals().size(); ++s) {
        if (csc.graph.signals()[s].kind == signal_kind::input) continue;
        if (!csc.graph.find_event(static_cast<int32_t>(s), edge::plus)) continue;
        auto ns = derive_nextstate(enc, s);
        ASSERT_TRUE(ns.conflicting.empty());
        auto h = minimize_heuristic(ns.spec);
        auto e = minimize_exact(ns.spec);
        EXPECT_TRUE(verify_cover(h, ns.spec));
        EXPECT_TRUE(verify_cover(e, ns.spec));
        EXPECT_LE(e.cubes.size(), h.cubes.size());
    }
}

TEST(logic, gc_networks_cover_excitation_regions) {
    auto sg = sg_of(benchmarks::par_manual());
    auto res = synthesize(subgraph::full(sg));
    ASSERT_TRUE(res.ok);
    for (const auto& i : res.ckt.impls) {
        if (i.kind != impl_kind::gc_element) continue;
        EXPECT_FALSE(i.set_fn.cubes.empty());
        EXPECT_FALSE(i.reset_fn.cubes.empty());
        EXPECT_GE(i.area_gc, 16.0);  // at least the C-element
    }
}

TEST(logic, synthesis_area_is_sum_of_impl_areas) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto csc = resolve_csc(subgraph::full(sg));
    auto res = synthesize(subgraph::full(csc.graph));
    ASSERT_TRUE(res.ok);
    double sum = 0;
    for (const auto& i : res.ckt.impls) sum += i.area;
    EXPECT_DOUBLE_EQ(sum, res.ckt.total_area);
}
