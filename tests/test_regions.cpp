// Region-based STG recovery: region legality, minimal pre-regions,
// excitation closure and the round-trip property SG == SG(recovered STG)
// across the whole corpus including reduced graphs.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "core/search.hpp"
#include "regions/regions.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

namespace {

state_graph sg_of(const stg& net) { return state_graph::generate(net).graph; }

}  // namespace

TEST(regions, is_region_on_the_fig1_controller) {
    auto sg = sg_of(benchmarks::fig1_controller());
    // The set of states with Ack = 1 is a region: Ack+ always enters it,
    // Ack- always exits it, Req+/Req- never cross it.
    dyn_bitset ack_high(sg.state_count());
    for (uint32_t s = 0; s < sg.state_count(); ++s)
        if (sg.states()[s].code.test(0)) ack_high.set(s);
    EXPECT_TRUE(is_region(sg, ack_high));
    // {initial} alone is not: Req+ both enters it (from 00*) and fires
    // entirely outside it (1*0* -> 1*1).
    dyn_bitset just_initial(sg.state_count());
    just_initial.set(sg.initial());
    EXPECT_FALSE(is_region(sg, just_initial));
    // Classical duality: r is a region iff its complement is.
    for (uint32_t s = 0; s < sg.state_count(); ++s) {
        dyn_bitset single(sg.state_count());
        single.set(s);
        dyn_bitset complement(sg.state_count(), true);
        complement.reset(s);
        EXPECT_EQ(is_region(sg, single), is_region(sg, complement)) << "state " << s;
    }
}

TEST(regions, roundtrip_qmodule) {
    auto sg = sg_of(benchmarks::qmodule_lr());
    auto res = recover_stg(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    auto regen = state_graph::generate(res.net);
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), subgraph::full(sg)));
    EXPECT_EQ(regen.graph.state_count(), sg.state_count());
}

TEST(regions, roundtrip_after_reduction) {
    // Step 5 of Fig. 4: generate a new STG for the best reduced SG.
    auto base = sg_of(expand_handshakes(benchmarks::lr_process()));
    search_options so;
    so.cost.w = 0.2;
    so.size_frontier = 6;
    auto red = reduce_concurrency(subgraph::full(base), so);
    auto res = recover_stg(red.best);
    ASSERT_TRUE(res.ok) << res.message;
    auto regen = state_graph::generate(res.net);
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), red.best));
}

TEST(regions, recovered_net_is_safe_and_live) {
    auto sg = sg_of(expand_handshakes(benchmarks::par_component()));
    auto res = recover_stg(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    // generate() enforces safety; liveness: every transition fired.
    auto regen = state_graph::generate(res.net);
    for (std::size_t t = 0; t < res.net.transitions().size(); ++t)
        EXPECT_TRUE(regen.transition_fired[t]) << res.net.transition_name(static_cast<uint32_t>(t));
}

TEST(regions, initial_marking_matches_initial_state) {
    auto sg = sg_of(benchmarks::lr_full_reduction());
    auto res = recover_stg(subgraph::full(sg));
    ASSERT_TRUE(res.ok);
    // Marked places are exactly the regions containing the initial state.
    std::size_t marked = 0;
    for (const auto& p : res.net.places()) marked += p.tokens;
    EXPECT_GT(marked, 0u);
}

TEST(regions, label_splitting_handles_multiple_er_components) {
    // After FwdRed(a,d) on the Fig. 8 fragment, event a has two single-state
    // ER components; recovery must split the label into two instances.
    auto base = benchmarks::fig8_fragment();
    auto g = subgraph::full(base);
    auto comps_a = excitation_regions(g, *base.find_event(0, edge::plus));
    ASSERT_EQ(comps_a.size(), 1u);
    // Build the reduced fragment directly (s1/s2 a-arcs removed).
    auto red = g;
    for (uint32_t a = 0; a < base.arc_count(); ++a) {
        const auto& arc = base.arcs()[a];
        if (arc.event == 0 && (arc.src == 1 || arc.src == 2)) red.kill_arc(a);
    }
    red.prune_unreachable();
    auto res = recover_stg(red);
    ASSERT_TRUE(res.ok) << res.message;
    std::size_t a_instances = 0;
    for (const auto& t : res.net.transitions())
        if (t.label.signal == 0) ++a_instances;
    EXPECT_EQ(a_instances, 2u);
    auto regen = state_graph::generate(res.net);
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), red));
}

class regions_corpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(regions_corpus, roundtrip_across_spec_suite) {
    auto suite = benchmarks::spec_suite();
    const auto& [name, spec] = suite.at(GetParam());
    auto sg = sg_of(expand_handshakes(spec));
    auto res = recover_stg(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << name << ": " << res.message;
    auto regen = state_graph::generate(res.net);
    std::string diag;
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), subgraph::full(sg), &diag))
        << name << ": " << diag;
}

INSTANTIATE_TEST_SUITE_P(corpus, regions_corpus, ::testing::Range<std::size_t>(0, 7));

class regions_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(regions_random, roundtrip_on_random_specs) {
    auto spec = benchmarks::random_handshake_spec(GetParam(), 3);
    auto sg = sg_of(expand_handshakes(spec));
    auto res = recover_stg(subgraph::full(sg));
    ASSERT_TRUE(res.ok) << res.message;
    auto regen = state_graph::generate(res.net);
    EXPECT_TRUE(lts_equivalent(subgraph::full(regen.graph), subgraph::full(sg)));
}

INSTANTIATE_TEST_SUITE_P(seeds, regions_random, ::testing::Range<uint64_t>(0, 10));
