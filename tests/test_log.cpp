// Structured logging: level names and runtime filtering, the one-fwrite-per-
// line no-torn-lines guarantee under 8 concurrent emitters, the bounded
// recent-events ring (wraparound, oldest-first snapshots, crash dump), field
// escaping, and req_id scoping -- including the nested-context restore and
// the pipeline run span picking up the bound id.
//
// The logger is process-global (one sink, one ring); every test that reads
// the sink opens its own fresh file first, and every test that reads the
// ring emits enough to own its tail.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "benchmarks/corpus.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "service/json.hpp"

using namespace asynth;

namespace {

/// A unique log-file path per test; removed on destruction.
struct temp_log {
    std::string path;
    explicit temp_log(const char* tag) {
        path = (std::filesystem::temp_directory_path() /
                (std::string("asynth_log_") + tag + "_" + std::to_string(::getpid()) + ".log"))
                   .string();
        std::filesystem::remove(path);
        std::string err;
        if (!obs::open_log_file(path, err)) throw std::runtime_error(err);
    }
    ~temp_log() { std::filesystem::remove(path); }

    [[nodiscard]] std::vector<std::string> lines() const {
        std::ifstream in(path);
        std::vector<std::string> out;
        for (std::string line; std::getline(in, line);) out.push_back(line);
        return out;
    }
};

/// Asserts @p line is one self-contained JSON object with the schema fields
/// every log line must carry, and returns the parse.
service::json_value parse_line(const std::string& line) {
    auto v = service::json_parse(line);
    EXPECT_TRUE(v.has_value()) << "unparsable log line: " << line;
    if (!v) return {};
    for (const char* key : {"ts", "mono_ms", "level", "thread", "event"})
        EXPECT_NE(v->find(key), nullptr) << "missing '" << key << "' in: " << line;
    return *v;
}

}  // namespace

TEST(obs_log, level_names_round_trip) {
    using obs::log_level;
    for (log_level l : {log_level::debug, log_level::info, log_level::warn, log_level::error,
                        log_level::off}) {
        auto back = obs::level_from_name(obs::level_name(l));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, l);
    }
    EXPECT_FALSE(obs::level_from_name("verbose").has_value());
    EXPECT_FALSE(obs::level_from_name("").has_value());
}

TEST(obs_log, filtering_drops_below_the_configured_level) {
    temp_log sink("filter");
    obs::set_log_level(obs::log_level::warn);
    EXPECT_FALSE(obs::log_enabled(obs::log_level::debug));
    EXPECT_FALSE(obs::log_enabled(obs::log_level::info));
    EXPECT_TRUE(obs::log_enabled(obs::log_level::warn));
    EXPECT_TRUE(obs::log_enabled(obs::log_level::error));

    obs::log_event(obs::log_level::debug, "dropped.debug").field("k", std::uint64_t{1});
    obs::log_event(obs::log_level::info, "dropped.info");
    obs::log_event(obs::log_level::warn, "kept.warn").field("k", std::uint64_t{2});
    obs::log_event(obs::log_level::error, "kept.error");

    obs::set_log_level(obs::log_level::off);
    obs::log_event(obs::log_level::error, "dropped.even.errors");
    obs::set_log_level(obs::log_level::warn);

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 2u);
    auto warn = parse_line(lines[0]);
    EXPECT_EQ(warn.find("event")->str, "kept.warn");
    EXPECT_EQ(warn.find("level")->str, "warn");
    EXPECT_EQ(warn.find("k")->num, 2.0);
    EXPECT_EQ(parse_line(lines[1]).find("level")->str, "error");
}

TEST(obs_log, field_types_and_escaping_survive_the_parser) {
    temp_log sink("escape");
    obs::set_log_level(obs::log_level::info);
    obs::log_event(obs::log_level::info, "typed")
        .field("s", "quote\"back\\slash\nnewline\ttab")
        .field("u", std::uint64_t{18446744073709551615ull})
        .field("i", std::int64_t{-42})
        .field("d", 2.5)
        .field("b", true);
    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 1u);
    auto v = parse_line(lines[0]);
    EXPECT_EQ(v.find("s")->str, "quote\"back\\slash\nnewline\ttab");
    EXPECT_EQ(v.find("i")->num, -42.0);
    EXPECT_EQ(v.find("d")->num, 2.5);
    EXPECT_TRUE(v.find("b")->b);
    // The thread track name is stable across lines from one thread.
    EXPECT_FALSE(v.find("thread")->str.empty());
}

TEST(obs_log, eight_thread_stress_produces_no_torn_lines) {
    temp_log sink("stress");
    obs::set_log_level(obs::log_level::info);
    constexpr int kThreads = 8, kEvents = 400;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < kEvents; ++i)
                obs::log_event(obs::log_level::info, "stress.event")
                    .field("payload", "p-" + std::to_string(t) + "-" + std::to_string(i))
                    .field("i", static_cast<std::uint64_t>(i));
        });
    for (auto& t : threads) t.join();

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), std::size_t{kThreads} * kEvents);
    std::set<std::string> payloads;
    for (const auto& line : lines) {
        // Byte-exact structure: parses as a single object, schema complete.
        auto v = parse_line(line);
        ASSERT_NE(v.find("payload"), nullptr) << line;
        payloads.insert(v.find("payload")->str);
    }
    // Every emitted payload arrived exactly once -- no interleaving ate one.
    EXPECT_EQ(payloads.size(), std::size_t{kThreads} * kEvents);
}

TEST(obs_log, ring_wraps_and_snapshots_oldest_first) {
    temp_log sink("ring");
    obs::set_log_level(obs::log_level::info);
    const std::size_t cap = obs::log_ring_capacity();
    ASSERT_GT(cap, 0u);
    const std::size_t total = cap + 44;
    for (std::size_t i = 0; i < total; ++i)
        obs::log_event(obs::log_level::info, "ring.ev")
            .field("i", static_cast<std::uint64_t>(i));

    const auto recent = obs::recent_log_lines();
    ASSERT_EQ(recent.size(), cap);
    // Oldest-first: entry 0 is event (total - cap), the last is event total-1.
    auto first = service::json_parse(recent.front());
    auto last = service::json_parse(recent.back());
    ASSERT_TRUE(first && last);
    EXPECT_EQ(first->find("i")->num, static_cast<double>(total - cap));
    EXPECT_EQ(last->find("i")->num, static_cast<double>(total - 1));
    // Ring entries are self-contained objects with no trailing newline, so
    // they can be embedded verbatim in a JSON array (the stats op does).
    for (const auto& entry : recent) {
        EXPECT_EQ(entry.find('\n'), std::string::npos);
        parse_line(entry);
    }
}

TEST(obs_log, dump_recent_log_writes_the_ring) {
    temp_log sink("dump");
    obs::set_log_level(obs::log_level::info);
    obs::log_event(obs::log_level::info, "dump.me").field("tag", "dump-tag-1");

    std::FILE* out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    obs::dump_recent_log(out);
    std::fflush(out);
    std::rewind(out);
    std::string text;
    char buf[4096];
    for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, out)) > 0;) text.append(buf, n);
    std::fclose(out);
    EXPECT_NE(text.find("dump-tag-1"), std::string::npos);
    // One line per ring entry, each a complete object.
    std::istringstream lines(text);
    std::size_t count = 0;
    for (std::string line; std::getline(lines, line); ++count) parse_line(line);
    EXPECT_GT(count, 0u);
    EXPECT_LE(count, obs::log_ring_capacity());
}

TEST(obs_log, req_id_contexts_nest_and_restore) {
    temp_log sink("ctx");
    obs::set_log_level(obs::log_level::info);
    EXPECT_EQ(obs::current_req_id(), "");
    {
        obs::log_context outer("outer-1");
        EXPECT_EQ(obs::current_req_id(), "outer-1");
        obs::log_event(obs::log_level::info, "ctx.outer");
        {
            obs::log_context inner("inner-2");
            EXPECT_EQ(obs::current_req_id(), "inner-2");
            obs::log_event(obs::log_level::info, "ctx.inner");
            {
                // An empty binding is a no-op: the inner id stays visible,
                // mirroring requests that carry no req_id.
                obs::log_context noop("");
                EXPECT_EQ(obs::current_req_id(), "inner-2");
            }
        }
        EXPECT_EQ(obs::current_req_id(), "outer-1");
        obs::log_event(obs::log_level::info, "ctx.outer.again");
    }
    EXPECT_EQ(obs::current_req_id(), "");
    obs::log_event(obs::log_level::info, "ctx.none");

    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(parse_line(lines[0]).find("req_id")->str, "outer-1");
    EXPECT_EQ(parse_line(lines[1]).find("req_id")->str, "inner-2");
    EXPECT_EQ(parse_line(lines[2]).find("req_id")->str, "outer-1");
    EXPECT_EQ(parse_line(lines[3]).find("req_id"), nullptr);
}

TEST(obs_log, contexts_are_thread_local) {
    obs::log_context mine("main-thread-id");
    std::string seen = "unset";
    std::thread other([&] { seen = obs::current_req_id(); });
    other.join();
    EXPECT_EQ(seen, "");
    EXPECT_EQ(obs::current_req_id(), "main-thread-id");
}

TEST(obs_log, pipeline_run_carries_the_bound_req_id_in_span_and_log) {
    temp_log sink("pipe");
    obs::set_log_level(obs::log_level::info);
    stg spec;
    for (const auto& e : benchmarks::corpus_table())
        if (std::string_view(e.name) == "fig1") spec = e.make();
    ASSERT_FALSE(spec.model_name.empty());

    obs::trace_session session;
    session.start();
    {
        obs::log_context ctx("it-77");
        auto result = run_pipeline(spec);
        EXPECT_TRUE(result.completed);
    }
    session.stop();

    // The run span advertises the id so trace viewers can join with logs.
    bool span_seen = false;
    for (const auto& ev : session.events())
        if (ev.name == "pipeline")
            for (const auto& a : ev.args)
                if (a.key == "req_id") {
                    EXPECT_EQ(a.value, "it-77");
                    span_seen = true;
                }
    EXPECT_TRUE(span_seen);

    // So does the pipeline.run log line.
    bool line_seen = false;
    for (const auto& line : sink.lines()) {
        auto v = service::json_parse(line);
        if (v && v->find("event") && v->find("event")->str == "pipeline.run") {
            ASSERT_NE(v->find("req_id"), nullptr) << line;
            EXPECT_EQ(v->find("req_id")->str, "it-77");
            line_seen = true;
        }
    }
    EXPECT_TRUE(line_seen);
}
