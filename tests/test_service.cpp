// The synthesis service: the JSON protocol layer, the transport-free engine
// (store-backed execution, per-request accounting, drain report) and one
// live Unix-socket daemon end-to-end (serve -> concurrent clients -> stats
// -> shutdown drain).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "benchmarks/corpus.hpp"
#include "obs/log.hpp"
#include "petri/astg_io.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace asynth;
using service::json_parse;
using service::json_value;

// ---- json -------------------------------------------------------------------

TEST(service_json, parses_the_protocol_shapes) {
    auto v = json_parse(R"({"op":"synth","id":7,"w":0.25,"flags":[true,false,null],)"
                        R"("nested":{"k":"v"},"text":"a\nb\t\"q\"A"})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->get_string("op"), "synth");
    EXPECT_EQ(v->get_number("id"), 7.0);
    EXPECT_EQ(v->get_number("w"), 0.25);
    ASSERT_NE(v->find("flags"), nullptr);
    EXPECT_EQ(v->find("flags")->arr.size(), 3u);
    EXPECT_EQ(v->find("nested")->find("k")->str, "v");
    EXPECT_EQ(v->get_string("text"), "a\nb\t\"q\"A");
    EXPECT_EQ(v->get_string("absent", "fallback"), "fallback");
}

TEST(service_json, rejects_malformed_input) {
    EXPECT_FALSE(json_parse("").has_value());
    EXPECT_FALSE(json_parse("{").has_value());
    EXPECT_FALSE(json_parse(R"({"a":1} trailing)").has_value());
    EXPECT_FALSE(json_parse(R"({"a":})").has_value());
    EXPECT_FALSE(json_parse(R"({"unterminated)").has_value());
    EXPECT_FALSE(json_parse("{\"raw\":\"\x01\"}").has_value());  // bare control char
    EXPECT_FALSE(json_parse(R"({"bad\q":1})").has_value());
    EXPECT_FALSE(json_parse("nul").has_value());
    EXPECT_FALSE(json_parse("1e999").has_value());  // non-finite
    // Depth bomb stays bounded instead of smashing the stack.
    std::string deep(2000, '[');
    deep += std::string(2000, ']');
    EXPECT_FALSE(json_parse(deep).has_value());
}

TEST(service_json, escaping_roundtrips_through_the_parser) {
    const std::string nasty = "line\nquote\"back\\slash\ttab\rcr\x02end";
    std::string out;
    service::json_append_escaped(out, nasty);
    auto v = json_parse("{\"k\":" + out + "}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->get_string("k"), nasty);
}

TEST(service_json, json_line_builds_stable_objects) {
    service::json_line line;
    line.field("op", "stats");
    line.field("ok", true);
    line.field("n", std::uint64_t{42});
    line.field("x", 1.5);
    const std::string s = std::move(line).finish();
    EXPECT_EQ(s, R"({"op":"stats","ok":true,"n":42,"x":1.5})");
    ASSERT_TRUE(json_parse(s).has_value());
}

// ---- request parsing --------------------------------------------------------

TEST(service_request, defaults_overrides_and_errors) {
    const pipeline_options defaults;
    std::string error;

    auto ping = service::parse_request(R"({"op":"ping","id":3})", defaults, error);
    ASSERT_TRUE(ping.has_value());
    EXPECT_EQ(ping->op, "ping");
    EXPECT_EQ(ping->id, 3u);

    auto synth = service::parse_request(
        R"({"spec":".model m\n.end\n","w":0.75,"strategy":"full","frontier":8})", defaults,
        error);
    ASSERT_TRUE(synth.has_value()) << error;
    EXPECT_EQ(synth->op, "synth");  // synth is the default op
    EXPECT_EQ(synth->options.search.cost.w, 0.75);
    EXPECT_EQ(synth->options.strategy, reduction_strategy::full);
    EXPECT_EQ(synth->options.search.size_frontier, 8u);
    // Untouched knobs keep the server defaults.
    EXPECT_EQ(synth->options.csc.max_signals, defaults.csc.max_signals);

    EXPECT_FALSE(service::parse_request("not json", defaults, error).has_value());
    EXPECT_FALSE(service::parse_request(R"({"op":"launch"})", defaults, error).has_value());
    EXPECT_NE(error.find("unknown op"), std::string::npos);
    // A failing request still surfaces its id, so the error response keeps
    // the correlation contract for pipelined clients.
    std::uint64_t failed_id = 0;
    EXPECT_FALSE(service::parse_request(R"({"id":7,"spec":"x","w":5})", defaults, error,
                                        &failed_id)
                     .has_value());
    EXPECT_EQ(failed_id, 7u);
    // Hostile ids (negative, huge, fractional) read as 0 instead of UB.
    for (const char* line : {R"({"op":"ping","id":-1})", R"({"op":"ping","id":1e300})",
                             R"({"op":"ping","id":3.5})"}) {
        auto hostile = service::parse_request(line, defaults, error);
        ASSERT_TRUE(hostile.has_value()) << line;
        EXPECT_EQ(hostile->id, 0u) << line;
    }
    EXPECT_FALSE(service::parse_request(R"({"op":"synth"})", defaults, error).has_value());
    EXPECT_FALSE(
        service::parse_request(R"({"spec":"x","w":1.5})", defaults, error).has_value());
    EXPECT_NE(error.find("'w'"), std::string::npos);
    EXPECT_FALSE(
        service::parse_request(R"({"spec":"x","strategy":"fast"})", defaults, error)
            .has_value());
    EXPECT_FALSE(
        service::parse_request(R"({"spec":"x","frontier":0})", defaults, error).has_value());
    EXPECT_FALSE(
        service::parse_request(R"({"spec":"x","phases":3})", defaults, error).has_value());
}

// ---- engine (transport-free) ------------------------------------------------

namespace {

struct temp_dir {
    std::string path;
    explicit temp_dir(const char* tag) {
        path = (std::filesystem::temp_directory_path() /
                (std::string("asynth_service_") + tag + "_" + std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~temp_dir() { std::filesystem::remove_all(path); }
};

service::request synth_request(const stg& net, const pipeline_options& defaults) {
    service::request req;
    req.op = "synth";
    req.spec_text = write_astg(net);
    req.spec_name = net.model_name;
    req.options = defaults;
    return req;
}

}  // namespace

TEST(service_engine, executes_misses_then_hits_with_accounting) {
    temp_dir dir("engine");
    service::service_options opt;
    opt.store_dir = dir.path;
    opt.jobs = 1;
    service::engine eng(opt);
    ASSERT_TRUE(eng.store().enabled()) << eng.store().message();

    const auto req = synth_request(benchmarks::lr_process(), opt.pipeline);
    auto first = json_parse(eng.execute(req, 1.0));
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->get_bool("ok"));
    EXPECT_TRUE(first->get_bool("synthesized"));
    EXPECT_EQ(first->get_string("store"), "miss");
    EXPECT_EQ(first->get_number("area"), 0.0);  // LR synthesises to two wires
    ASSERT_NE(first->find("equations"), nullptr);
    EXPECT_EQ(first->find("equations")->arr.size(), 2u);

    auto second = json_parse(eng.execute(req, 3.0));
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->get_string("store"), "hit");
    // The hit reports the *producing* run's synthesis cost.
    EXPECT_EQ(second->get_number("synth_seconds"), first->get_number("synth_seconds"));

    const auto s = eng.stats();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.store_hits, 1u);
    EXPECT_EQ(s.store_misses, 1u);
    EXPECT_EQ(s.queue_wait_p50_ms, 3.0);  // nearest-rank over {1,3} rounds up
    EXPECT_EQ(s.queue_wait_max_ms, 3.0);

    auto stats = json_parse(eng.stats_line());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->get_number("requests"), 2.0);
    EXPECT_EQ(stats->get_number("store_hits"), 1.0);

    const auto rep = eng.drain_report(1.0);
    EXPECT_EQ(rep.count, 2u);
    EXPECT_EQ(rep.store_hits, 1u);
    EXPECT_EQ(rep.store_misses, 1u);
    EXPECT_EQ(rep.queue_wait_max_ms, 3.0);
    const std::string json = batch::report_json(rep);
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"store_hits\": 1"), std::string::npos);
}

TEST(service_engine, astg_request_returns_the_recovered_stg) {
    // The `asynth client --out` contract: a synth request with "astg":true
    // carries the recovered STG text in the response -- on the cold miss AND
    // on the store hit (the daemon fully replaces the CLI's --out).
    temp_dir dir("astg");
    service::service_options opt;
    opt.store_dir = dir.path;
    opt.jobs = 1;
    service::engine eng(opt);

    const pipeline_options defaults;
    std::string error;
    auto req = service::parse_request(
        R"({"spec":)" + [] {
            std::string s;
            service::json_append_escaped(s, write_astg(benchmarks::lr_process()));
            return s;
        }() + R"(,"astg":true})",
        defaults, error);
    ASSERT_TRUE(req.has_value()) << error;
    EXPECT_TRUE(req->want_astg);

    for (const char* pass : {"miss", "hit"}) {
        auto resp = json_parse(eng.execute(*req, 0.0));
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->get_string("store"), pass);
        const json_value* astg = resp->find("astg");
        ASSERT_NE(astg, nullptr) << pass;
        ASSERT_EQ(astg->k, json_value::kind::string);
        // The returned text is a valid astg of the reduced model.
        stg recovered;
        ASSERT_NO_THROW(recovered = parse_astg(astg->str)) << pass;
        EXPECT_NE(recovered.model_name.find("_reduced"), std::string::npos);
    }

    // Without the flag the response stays lean: no astg field.
    req->want_astg = false;
    auto lean = json_parse(eng.execute(*req, 0.0));
    ASSERT_TRUE(lean.has_value());
    EXPECT_EQ(lean->find("astg"), nullptr);
}

TEST(service_engine, verify_override_flows_into_the_pipeline_and_response) {
    const pipeline_options defaults;
    std::string error;
    auto req = service::parse_request(R"({"spec":".model m\n.end\n","verify":true})",
                                      defaults, error);
    ASSERT_TRUE(req.has_value()) << error;
    EXPECT_TRUE(req->options.verify_impl);
    EXPECT_FALSE(service::parse_request(R"({"spec":"x","verify":1})", defaults, error)
                     .has_value());
    EXPECT_NE(error.find("'verify'"), std::string::npos);

    service::service_options opt;  // no store
    opt.jobs = 1;
    service::engine eng(opt);
    auto verified = synth_request(benchmarks::lr_process(), defaults);
    verified.options.verify_impl = true;
    auto resp = json_parse(eng.execute(verified, 0.0));
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->get_bool("ok"));
    EXPECT_TRUE(resp->get_bool("impl_checked"));
    EXPECT_GT(resp->get_number("impl_states"), 0.0);
}

TEST(service_engine, override_requests_do_not_alias_default_cache_entries) {
    temp_dir dir("alias");
    service::service_options opt;
    opt.store_dir = dir.path;
    opt.jobs = 1;
    service::engine eng(opt);

    auto req = synth_request(benchmarks::lr_process(), opt.pipeline);
    (void)eng.execute(req, 0.0);
    // Same spec, different W: a different fingerprint, so a miss -- never a
    // stale hit from the default entry.
    auto overridden = req;
    overridden.options.search.cost.w = 0.25;
    auto r = json_parse(eng.execute(overridden, 0.0));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->get_string("store"), "miss");
    EXPECT_EQ(eng.stats().store_misses, 2u);
}

TEST(service_engine, parse_failures_and_store_bypass) {
    service::service_options opt;  // no store
    opt.jobs = 1;
    service::engine eng(opt);

    service::request bad;
    bad.op = "synth";
    bad.spec_text = ".model broken\n.graph\nnonsense arc\n.end\n";
    bad.options = opt.pipeline;
    auto r = json_parse(eng.execute(bad, 0.0));
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->get_bool("ok"));
    EXPECT_NE(r->get_string("error").find("parse"), std::string::npos);

    auto good = synth_request(benchmarks::lr_process(), opt.pipeline);
    auto ok = json_parse(eng.execute(good, 0.0));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->get_string("store"), "off");
    EXPECT_EQ(eng.stats().store_hits + eng.stats().store_misses, 0u);
}

// ---- the daemon, live -------------------------------------------------------

TEST(service_server, serves_concurrent_clients_and_drains_on_shutdown) {
    temp_dir dir("daemon");
    // AF_UNIX paths are length-limited (~108); keep it short and relative.
    const std::string socket_path = "svc_test_" + std::to_string(::getpid()) + ".sock";

    service::server_options opt;
    opt.socket_path = socket_path;
    opt.service.store_dir = dir.path;
    opt.service.jobs = 2;
    opt.service.queue_capacity = 32;
    opt.verbose = false;

    int server_rc = -1;
    std::thread server([&] { server_rc = service::run_server(opt); });

    service::client_options cl;
    cl.socket_path = socket_path;

    auto request_line = [&](const stg& net) {
        service::json_line line;
        line.field("op", "synth");
        line.field("spec", write_astg(net));
        line.field("name", net.model_name);
        return std::move(line).finish();
    };

    // Wait for the daemon (run_client retries the connect inside its window).
    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"ping"})", resp), 0) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_FALSE(v->get_bool("draining"));
    }

    // Two passes of concurrent clients over distinct specs: pass 1 fills the
    // store, pass 2 must be all hits.
    const std::vector<stg> specs = {benchmarks::lr_process(), benchmarks::par_component(),
                                    benchmarks::fig6_mixed(), benchmarks::mmu_controller()};
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<std::string> responses(specs.size());
        std::vector<int> codes(specs.size(), -1);
        std::vector<std::thread> clients;
        clients.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            clients.emplace_back([&, i] {
                codes[i] = service::run_client(cl, request_line(specs[i]), responses[i]);
            });
        for (auto& t : clients) t.join();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            EXPECT_EQ(codes[i], 0) << responses[i];
            auto v = json_parse(responses[i]);
            ASSERT_TRUE(v.has_value()) << responses[i];
            EXPECT_TRUE(v->get_bool("completed")) << responses[i];
            EXPECT_EQ(v->get_string("store"), pass == 0 ? "miss" : "hit") << responses[i];
        }
    }

    // Aggregate accounting agrees with what the clients observed.
    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"stats"})", resp), 0) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->get_number("requests"), 8.0);
        EXPECT_EQ(v->get_number("store_hits"), 4.0);
        EXPECT_EQ(v->get_number("store_misses"), 4.0);
    }

    // Malformed and unknown-op lines get error responses, not hangups.
    {
        std::string resp;
        EXPECT_EQ(service::run_client(cl, "this is not json", resp), 1) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value()) << resp;
        EXPECT_FALSE(v->get_bool("ok"));
    }

    // A one-shot client that half-closes its write side after the request
    // (send; shutdown(SHUT_WR); recv -- the `nc -N` pattern) must still get
    // its response: read-EOF is not write-broken.
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
        const std::string line = std::string(R"({"op":"ping","id":99})") + "\n";
        ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
                  static_cast<ssize_t>(line.size()));
        ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
        std::string resp;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0) break;
            resp.append(buf, static_cast<std::size_t>(n));
            if (resp.find('\n') != std::string::npos) break;
        }
        ::close(fd);
        auto v = json_parse(resp.substr(0, resp.find('\n')));
        ASSERT_TRUE(v.has_value()) << "no response after half-close: '" << resp << "'";
        EXPECT_TRUE(v->get_bool("ok"));
        EXPECT_EQ(v->get_number("id"), 99.0);
    }

    // Shutdown drains and the server thread exits 0.
    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"shutdown"})", resp), 0) << resp;
    }
    server.join();
    EXPECT_EQ(server_rc, 0);
    EXPECT_FALSE(std::filesystem::exists(socket_path));  // socket removed on drain
}

// ---- request correlation, health and readiness ------------------------------

TEST(service_request, req_id_parses_validates_and_threads_through) {
    const pipeline_options defaults;
    std::string error;

    auto ping = service::parse_request(R"({"op":"ping","req_id":"abc-123"})", defaults, error);
    ASSERT_TRUE(ping.has_value()) << error;
    EXPECT_EQ(ping->req_id, "abc-123");

    for (const char* op : {"health", "ready"}) {
        auto req = service::parse_request(std::string(R"({"op":")") + op + R"("})", defaults,
                                          error);
        ASSERT_TRUE(req.has_value()) << op << ": " << error;
        EXPECT_EQ(req->op, op);
    }

    // op stats may ask for the recent-events ring.
    auto stats = service::parse_request(R"({"op":"stats","log":true})", defaults, error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_TRUE(stats->want_log);
    auto plain = service::parse_request(R"({"op":"stats"})", defaults, error);
    ASSERT_TRUE(plain.has_value()) << error;
    EXPECT_FALSE(plain->want_log);

    // Hostile req_ids are structured errors, never truncated or coerced.
    const std::string too_long(129, 'x');
    EXPECT_FALSE(service::parse_request(R"({"op":"ping","req_id":")" + too_long + R"("})",
                                        defaults, error)
                     .has_value());
    EXPECT_NE(error.find("req_id"), std::string::npos);
    EXPECT_FALSE(
        service::parse_request(R"({"op":"ping","req_id":7})", defaults, error).has_value());
}

TEST(service_engine, response_echoes_req_id_and_stats_embeds_recent_log) {
    obs::set_log_level(obs::log_level::info);
    service::service_options opt;  // no store
    opt.jobs = 1;
    service::engine eng(opt);

    auto req = synth_request(benchmarks::lr_process(), opt.pipeline);
    req.req_id = "corr-42";
    auto resp = json_parse(eng.execute(req, 0.0));
    obs::set_log_level(obs::log_level::warn);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->get_string("req_id"), "corr-42");

    // The per-request service.request event landed in the ring with the same
    // id, and stats can dump the ring as a JSON array.
    auto stats = json_parse(eng.stats_line(true));
    ASSERT_TRUE(stats.has_value());
    const service::json_value* ring = stats->find("recent_log");
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->k, service::json_value::kind::array);
    bool correlated = false;
    for (const auto& entry : ring->arr)
        if (entry.get_string("event") == "service.request" &&
            entry.get_string("req_id") == "corr-42")
            correlated = true;
    EXPECT_TRUE(correlated);
    // Without the flag the response stays lean.
    auto lean = json_parse(eng.stats_line());
    ASSERT_TRUE(lean.has_value());
    EXPECT_FALSE(lean->has("recent_log"));
}

TEST(service_server, health_ready_and_req_id_echo_over_the_socket) {
    const std::string socket_path = "svc_probe_" + std::to_string(::getpid()) + ".sock";
    service::server_options opt;
    opt.socket_path = socket_path;
    opt.service.jobs = 1;
    opt.service.queue_capacity = 8;
    opt.verbose = false;

    int server_rc = -1;
    std::thread server([&] { server_rc = service::run_server(opt); });
    service::client_options cl;
    cl.socket_path = socket_path;

    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"health","req_id":"probe-h"})", resp), 0)
            << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->get_string("req_id"), "probe-h");
        EXPECT_GE(v->get_number("uptime_s"), 0.0);
        EXPECT_FALSE(v->get_string("version").empty());
        EXPECT_GT(v->get_number("pid"), 0.0);
        EXPECT_FALSE(v->get_bool("draining", true));
    }
    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"ready"})", resp), 0) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_TRUE(v->get_bool("ready"));
        EXPECT_EQ(v->get_number("queue_depth"), 0.0);
        EXPECT_EQ(v->get_number("high_water"), 6.0);  // 3/4 of 8
        EXPECT_FALSE(v->has("reason"));
    }
    {
        // Ping carries the same fleet-fingerprint fields as health.
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"ping"})", resp), 0) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_GE(v->get_number("uptime_s"), 0.0);
        EXPECT_FALSE(v->get_string("version").empty());
        EXPECT_GT(v->get_number("pid"), 0.0);
    }
    {
        // A synth request's req_id comes back on its response.
        service::json_line line;
        line.field("op", "synth");
        line.field("req_id", "probe-s1");
        line.field("spec", write_astg(benchmarks::lr_process()));
        std::string resp;
        ASSERT_EQ(service::run_client(cl, std::move(line).finish(), resp), 0) << resp;
        auto v = json_parse(resp);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->get_string("req_id"), "probe-s1");
    }
    {
        std::string resp;
        ASSERT_EQ(service::run_client(cl, R"({"op":"shutdown"})", resp), 0) << resp;
    }
    server.join();
    EXPECT_EQ(server_rc, 0);
}
