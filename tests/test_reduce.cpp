// FwdRed on the paper's Fig. 8 fragment: event a concurrent with b and with
// the input choice (d | e).  Reducing a by d must also serialise a after b
// and after e (the paper's "reducing concurrency for a pair of events can
// also reduce concurrency for some other pairs").
#include <gtest/gtest.h>

#include "core/reduce.hpp"
#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

namespace {

enum : int32_t { A, B, C, D, E };

state_graph fig8_fragment() {
    std::vector<signal_decl> sigs = {
        {"a", signal_kind::output, false, false}, {"b", signal_kind::output, false, false},
        {"c", signal_kind::input, false, false},  {"d", signal_kind::input, false, false},
        {"e", signal_kind::input, false, false},
    };
    std::vector<sg_event> events;
    for (int32_t s = 0; s < 5; ++s) events.push_back(sg_event{s, edge::plus});
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(5);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    std::vector<sg_state> states = {
        {marking{}, code({})},           // s0
        {marking{}, code({C})},          // s1
        {marking{}, code({C, B})},       // s2
        {marking{}, code({C, B, D})},    // s3
        {marking{}, code({C, B, E})},    // s4
        {marking{}, code({C, B, D, A})}, // s5
        {marking{}, code({C, A})},       // s6
        {marking{}, code({C, A, B})},    // s7
        {marking{}, code({C, B, E, A})}, // s8
    };
    std::vector<sg_arc> arcs = {
        {0, 1, C}, {1, 6, A}, {1, 2, B}, {6, 7, B}, {2, 7, A}, {2, 3, D},
        {2, 4, E}, {7, 5, D}, {7, 8, E}, {3, 5, A}, {4, 8, A},
    };
    return state_graph::build(std::move(sigs), std::move(events), std::move(states),
                              std::move(arcs), 0);
}

er_component only_component(const subgraph& g, int32_t signal) {
    auto ev = g.base().find_event(signal, edge::plus);
    EXPECT_TRUE(ev.has_value());
    auto comps = excitation_regions(g, *ev);
    EXPECT_EQ(comps.size(), 1u);
    return comps.at(0);
}

/// Union of all ER components of an event (its excitation set).
dyn_bitset excitation_set(const subgraph& g, int32_t signal) {
    auto ev = g.base().find_event(signal, edge::plus);
    EXPECT_TRUE(ev.has_value());
    dyn_bitset out(g.base().state_count());
    for (const auto& comp : excitation_regions(g, *ev)) out |= comp.states;
    return out;
}

}  // namespace

TEST(fwdred, fig8_fragment_is_well_formed) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    EXPECT_TRUE(check_consistency(g));
    auto si = check_speed_independence(g);
    EXPECT_TRUE(si.ok()) << (si.violations.empty() ? "" : si.violations[0]);
    EXPECT_EQ(only_component(g, A).states.count(), 4u);  // ER(a) = {s1,s2,s3,s4}
}

TEST(fwdred, fig8_reduce_a_by_d_matches_paper) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    fwdred_stats stats;
    auto red = forward_reduction(g, only_component(g, A), only_component(g, D),
                                 fwdred_options{}, &stats);
    ASSERT_TRUE(red.has_value());
    // Arc removal zone = {s1, s2}; pruning kills s6 and s7.
    EXPECT_EQ(stats.arcs_removed, 2u);
    EXPECT_EQ(stats.states_removed, 2u);
    EXPECT_EQ(red->live_state_count(), 7u);
    EXPECT_EQ(red->live_arc_count(), 6u);
    EXPECT_FALSE(red->state_live(6));
    EXPECT_FALSE(red->state_live(7));
    // ER_red(a) = {s3, s4} (two single-state components after the split).
    auto es_a = excitation_set(*red, A);
    EXPECT_EQ(es_a.count(), 2u);
    EXPECT_TRUE(es_a.test(3));
    EXPECT_TRUE(es_a.test(4));
    // Concurrency (a,b), (a,d), (a,e) all gone.
    auto ev = [&](int32_t s) { return *base.find_event(s, edge::plus); };
    EXPECT_FALSE(concurrent_by_diamond(*red, ev(A), ev(B)));
    EXPECT_FALSE(concurrent_by_diamond(*red, ev(A), ev(D)));
    EXPECT_FALSE(concurrent_by_diamond(*red, ev(A), ev(E)));
    EXPECT_TRUE(check_speed_independence(*red).ok());
}

TEST(fwdred, fig8_reduce_a_by_b_keeps_choice_concurrency) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    fwdred_stats stats;
    auto red = forward_reduction(g, only_component(g, A), only_component(g, B),
                                 fwdred_options{}, &stats);
    ASSERT_TRUE(red.has_value());
    // Only s1's a-arc dies (zone = back_reach({s1}) = {s0,s1} plus ER(b)).
    EXPECT_EQ(stats.arcs_removed, 1u);
    EXPECT_EQ(stats.states_removed, 1u);  // s6
    auto es_a = excitation_set(*red, A);
    EXPECT_EQ(es_a.count(), 3u);  // {s2, s3, s4}
    auto ev = [&](int32_t s) { return *base.find_event(s, edge::plus); };
    EXPECT_FALSE(concurrent_by_diamond(*red, ev(A), ev(B)));
    EXPECT_TRUE(concurrent_by_diamond(*red, ev(A), ev(D)));
    EXPECT_TRUE(concurrent_by_diamond(*red, ev(A), ev(E)));
}

TEST(fwdred, input_events_may_not_be_delayed) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    // d is an input: FwdRed(d, a) must be rejected up front.
    auto red = forward_reduction(g, only_component(g, D), only_component(g, A));
    EXPECT_FALSE(red.has_value());
}

TEST(fwdred, reduce_b_by_a_serialises_the_other_interleaving) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    // FwdRed(b, a): b waits for a; the s2/s3/s4 branch dies but d and e
    // survive through s7, so the reduction is valid.
    fwdred_stats stats;
    auto red = forward_reduction(g, only_component(g, B), only_component(g, A),
                                 fwdred_options{}, &stats);
    ASSERT_TRUE(red.has_value());
    EXPECT_EQ(stats.states_removed, 3u);  // s2, s3, s4
    EXPECT_EQ(red->live_state_count(), 6u);
    auto ev = [&](int32_t s) { return *base.find_event(s, edge::plus); };
    EXPECT_FALSE(concurrent_by_diamond(*red, ev(A), ev(B)));
    EXPECT_TRUE(check_speed_independence(*red).ok());
}

TEST(fwdred, reductions_that_kill_events_are_rejected) {
    // A linear chain x+ -> y+ where y+ is the only y event: delaying y+ by
    // anything cannot help, but more importantly a reduction that would
    // disconnect y+ entirely must be refused.  Build a two-path SG where one
    // path is the only carrier of event z.
    std::vector<signal_decl> sigs = {{"x", signal_kind::output, false, false},
                                     {"y", signal_kind::output, false, false},
                                     {"z", signal_kind::output, false, false}};
    std::vector<sg_event> events = {{0, edge::plus}, {1, edge::plus}, {2, edge::plus}};
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(3);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    // s0 -x-> s1, s0 -y-> s2, s1 -y-> s3, s2 -x-> s3, s3 -z-> s4
    // (x ‖ y, then z).  FwdRed(x, y) keeps z alive via s2; but FwdRed with a
    // synthetic component covering all x arcs would kill z if we removed the
    // s2 arc too -- emulate by reducing y by x AND x by y in sequence: the
    // second must be rejected because x and y are no longer concurrent.
    std::vector<sg_state> states = {{marking{}, code({})},
                                    {marking{}, code({0})},
                                    {marking{}, code({1})},
                                    {marking{}, code({0, 1})},
                                    {marking{}, code({0, 1, 2})}};
    std::vector<sg_arc> arcs = {{0, 1, 0}, {0, 2, 1}, {1, 3, 1}, {2, 3, 0}, {3, 4, 2}};
    auto base = state_graph::build(std::move(sigs), std::move(events), std::move(states),
                                   std::move(arcs), 0);
    auto g = subgraph::full(base);
    auto comps_x = excitation_regions(g, 0);
    auto comps_y = excitation_regions(g, 1);
    ASSERT_EQ(comps_x.size(), 1u);
    ASSERT_EQ(comps_y.size(), 1u);
    auto red = forward_reduction(g, comps_x[0], comps_y[0]);
    ASSERT_TRUE(red.has_value());
    // After x-after-y, the pair is ordered: a second reduction is a no-op.
    auto comps_x2 = excitation_regions(*red, 0);
    auto comps_y2 = excitation_regions(*red, 1);
    ASSERT_EQ(comps_x2.size(), 1u);
    ASSERT_EQ(comps_y2.size(), 1u);
    EXPECT_FALSE(forward_reduction(*red, comps_y2[0], comps_x2[0]).has_value());
    EXPECT_FALSE(forward_reduction(*red, comps_x2[0], comps_y2[0]).has_value());
}

TEST(fwdred, nonconcurrent_pair_is_noop) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    // c is not concurrent with a (ERs do not intersect).
    auto er_a = only_component(g, A);
    auto er_c = only_component(g, C);
    EXPECT_FALSE(concurrent(er_a, er_c));
    EXPECT_FALSE(forward_reduction(g, er_a, er_c).has_value());
}

TEST(fwdred, iterated_reductions_stay_valid) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    // Apply every accepted single reduction and re-check Def 5.1 invariants.
    auto comps = excitation_regions(g);
    std::size_t accepted = 0;
    for (const auto& a : comps) {
        for (const auto& b : comps) {
            if (&a == &b) continue;
            auto red = forward_reduction(g, a, b);
            if (!red) continue;
            ++accepted;
            EXPECT_TRUE(red->live_arcs().is_subset_of(g.live_arcs()));
            EXPECT_TRUE(red->live_states().is_subset_of(g.live_states()));
            EXPECT_TRUE(red->state_live(red->initial()));
            EXPECT_TRUE(check_speed_independence(*red).output_persistent);
            EXPECT_TRUE(deadlock_states(*red).size() == deadlock_states(g).size());
        }
    }
    EXPECT_GT(accepted, 0u);
}

TEST(single_arc, subsumes_fwdred_removals) {
    // Every arc FwdRed removes is individually removable only when the
    // remaining structure stays valid; conversely, applying single-arc
    // reductions for the whole FwdRed zone one arc at a time reaches the
    // same subgraph.
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    auto red = forward_reduction(g, only_component(g, A), only_component(g, D));
    ASSERT_TRUE(red.has_value());
    // Arcs removed by FwdRed(a,d): the a-arcs of s1 and s2.
    std::vector<uint32_t> removed;
    for (uint32_t a = 0; a < base.arc_count(); ++a)
        if (g.arc_live(a) && !red->arc_live(a) && red->state_live(base.arcs()[a].src) &&
            base.arcs()[a].event == A)
            removed.push_back(a);
    // Apply them one at a time with the persistency check deferred to the
    // end (intermediate steps are not output-persistent on their own).
    fwdred_options relaxed;
    relaxed.check_output_persistency = false;
    subgraph cur = g;
    for (uint32_t a = 0; a < base.arc_count(); ++a) {
        if (red->arc_live(a) || !cur.arc_live(a)) continue;
        if (base.arcs()[a].event != A) continue;
        auto next = single_arc_reduction(cur, a, relaxed, nullptr);
        if (next) cur = *next;
    }
    EXPECT_EQ(cur.live_arcs(), red->live_arcs());
    EXPECT_EQ(cur.live_states(), red->live_states());
}

TEST(single_arc, input_arcs_rejected) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    for (uint32_t a = 0; a < base.arc_count(); ++a) {
        if (base.is_input_event(base.arcs()[a].event)) {
            EXPECT_FALSE(single_arc_reduction(g, a).has_value());
        }
    }
}

TEST(single_arc, persistency_violations_rejected) {
    // Removing only s1's a-arc-to-s6 in the fragment leaves a enabled at s2
    // but not at s6/s7... actually s1 -a-> s6 removal kills s6 and makes a
    // wait for b: valid.  Removing s2 -a-> s7 alone leaves a enabled at s1
    // whose successor s2 (after b) has no a-arc: b disables a -> rejected.
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    uint32_t s2_arc = UINT32_MAX, s1_arc = UINT32_MAX;
    for (uint32_t a = 0; a < base.arc_count(); ++a) {
        if (base.arcs()[a].event != A) continue;
        if (base.arcs()[a].src == 2) s2_arc = a;
        if (base.arcs()[a].src == 1) s1_arc = a;
    }
    ASSERT_NE(s2_arc, UINT32_MAX);
    EXPECT_FALSE(single_arc_reduction(g, s2_arc).has_value());
    EXPECT_TRUE(single_arc_reduction(g, s1_arc).has_value());
}

TEST(single_arc, dead_arc_is_noop) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    g.kill_arc(0);
    EXPECT_FALSE(single_arc_reduction(g, 0).has_value());
}

// ---- dedicated validity battery (Definition 5.1, one condition per test) ---

TEST(single_arc, out_of_range_arc_is_rejected) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    EXPECT_FALSE(single_arc_reduction(g, static_cast<uint32_t>(base.arc_count())).has_value());
    EXPECT_FALSE(single_arc_reduction(g, UINT32_MAX).has_value());
}

TEST(single_arc, event_disappearance_is_rejected) {
    // A two-state toggle x+ -> y+ -> back: each event has exactly one arc, so
    // removing any single arc erases its event (condition 3) -- and the
    // check must fire before the deadlock check can mask it.
    std::vector<signal_decl> sigs = {{"x", signal_kind::output, false, false},
                                     {"y", signal_kind::output, false, false}};
    std::vector<sg_event> events = {{0, edge::toggle}, {1, edge::toggle}};
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(2);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    std::vector<sg_state> states = {{marking{}, code({})}, {marking{}, code({0})}};
    std::vector<sg_arc> arcs = {{0, 1, 0}, {1, 0, 1}};
    auto base = state_graph::build(std::move(sigs), std::move(events), std::move(states),
                                   std::move(arcs), 0);
    auto g = subgraph::full(base);
    EXPECT_FALSE(single_arc_reduction(g, 0).has_value());
    EXPECT_FALSE(single_arc_reduction(g, 1).has_value());
}

TEST(single_arc, deadlock_introduction_is_rejected) {
    // The x/y diamond s0 -x-> s1 -y-> s3, s0 -y-> s2 -x-> s3, s3 -z-> s4.
    // Removing s2's x-arc makes s2 a fresh deadlock while every other
    // condition holds: x survives via s0's arc (condition 3), s2 stays
    // reachable through y (no pruning masks the deadlock), and the
    // persistency check is relaxed -- so condition 4 alone must fire.
    std::vector<signal_decl> sigs = {{"x", signal_kind::output, false, false},
                                     {"y", signal_kind::output, false, false},
                                     {"z", signal_kind::output, false, false}};
    std::vector<sg_event> events = {{0, edge::plus}, {1, edge::plus}, {2, edge::plus}};
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(3);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    std::vector<sg_state> states = {{marking{}, code({})},
                                    {marking{}, code({0})},
                                    {marking{}, code({1})},
                                    {marking{}, code({0, 1})},
                                    {marking{}, code({0, 1, 2})}};
    std::vector<sg_arc> arcs = {{0, 1, 0}, {0, 2, 1}, {1, 3, 1}, {2, 3, 0}, {3, 4, 2}};
    auto base = state_graph::build(std::move(sigs), std::move(events), std::move(states),
                                   std::move(arcs), 0);
    auto g = subgraph::full(base);
    fwdred_options relaxed;
    relaxed.check_output_persistency = false;
    EXPECT_FALSE(single_arc_reduction(g, 3, relaxed, nullptr).has_value());
    // Cross-check the setup: the same removal with x's other arc also gone
    // would be an event disappearance instead; here x demonstrably survives.
    EXPECT_TRUE(g.arc_live(0));
}

TEST(single_arc, valid_removal_reports_stats_and_stays_valid) {
    auto base = fig8_fragment();
    auto g = subgraph::full(base);
    uint32_t s1_arc = UINT32_MAX;
    for (uint32_t a = 0; a < base.arc_count(); ++a)
        if (base.arcs()[a].event == A && base.arcs()[a].src == 1) s1_arc = a;
    ASSERT_NE(s1_arc, UINT32_MAX);
    fwdred_stats stats;
    auto red = single_arc_reduction(g, s1_arc, fwdred_options{}, &stats);
    ASSERT_TRUE(red.has_value());
    EXPECT_EQ(stats.arcs_removed, 1u);
    EXPECT_EQ(stats.states_removed, 1u);  // s6 becomes unreachable
    EXPECT_TRUE(check_speed_independence(*red).ok());
    // The acyclic fragment ends in terminal states; no *new* deadlock appears.
    EXPECT_LE(deadlock_states(*red).size(), deadlock_states(g).size());
    EXPECT_TRUE(red->state_live(red->initial()));
}
