// Observability layer: metrics registry (counter/gauge/histogram) atomicity
// and snapshot tear-freedom under writer threads, Prometheus text exposition,
// the reservoir sampler's O(1)/bounded-memory contract over a 1M-sample
// stream, and the tracing core (session arming, span collection, nesting,
// Chrome-trace JSON invariants, flamegraph rendering).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

using namespace asynth;

// ---- counters and gauges ---------------------------------------------------

TEST(obs_counter, eight_thread_increment_stress_lands_exactly) {
    obs::registry reg;
    obs::counter& c = reg.get_counter("stress_total");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(obs_counter, add_n_and_registry_reference_stability) {
    obs::registry reg;
    obs::counter& a = reg.get_counter("a_total");
    obs::counter& again = reg.get_counter("a_total");
    EXPECT_EQ(&a, &again);  // same name -> same metric object
    a.add(41);
    again.add();
    EXPECT_EQ(a.value(), 42u);
}

TEST(obs_gauge, set_add_and_concurrent_adds_sum_exactly) {
    obs::registry reg;
    obs::gauge& g = reg.get_gauge("depth");
    g.set(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
    // CAS-loop adds from several threads must not lose updates.  Use 1.0
    // steps: every intermediate sum is exactly representable, so the final
    // value is exact, not approximate.
    g.set(0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&g] {
            for (int i = 0; i < 10000; ++i) g.add(1.0);
        });
    for (auto& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.value(), 40000.0);
}

// ---- histograms ------------------------------------------------------------

TEST(obs_histogram, bucket_boundaries_are_le_edges) {
    obs::registry reg;
    obs::histogram& h = reg.get_histogram("lat_ms", {1.0, 10.0, 100.0});
    // Prometheus semantics: bucket i counts v <= bounds[i]; exact edge values
    // land in their own bucket, not the next one.
    h.observe(0.5);    // <= 1
    h.observe(1.0);    // <= 1 (edge)
    h.observe(1.001);  // <= 10
    h.observe(10.0);   // <= 10 (edge)
    h.observe(99.9);   // <= 100
    h.observe(1e9);    // +Inf
    const auto s = h.snapshot();
    ASSERT_EQ(s.buckets.size(), 4u);
    EXPECT_EQ(s.buckets[0], 2u);
    EXPECT_EQ(s.buckets[1], 2u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.count, 6u);
    EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.9 + 1e9);
}

TEST(obs_histogram, percentile_estimates_from_upper_edges) {
    obs::registry reg;
    obs::histogram& h = reg.get_histogram("p_ms", {1.0, 2.0, 4.0});
    for (int i = 0; i < 90; ++i) h.observe(0.5);  // first bucket
    for (int i = 0; i < 10; ++i) h.observe(3.0);  // third bucket
    const auto s = h.snapshot();
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);   // median inside bucket <= 1
    EXPECT_DOUBLE_EQ(s.percentile(0.95), 4.0);  // tail inside bucket <= 4
}

TEST(obs_histogram, invalid_bounds_throw) {
    obs::registry reg;
    EXPECT_THROW(reg.get_histogram("bad_empty", {}), error);
    EXPECT_THROW(reg.get_histogram("bad_order", {2.0, 1.0}), error);
}

TEST(obs_histogram, snapshot_while_writing_is_tear_free) {
    obs::registry reg;
    obs::histogram& h = reg.get_histogram("tear_ms", obs::default_ms_buckets());
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&h, &stop, t] {
            double v = 0.01 * (t + 1);
            while (!stop.load(std::memory_order_relaxed)) {
                h.observe(v);
                v = v > 8000.0 ? 0.01 : v * 1.7;  // walk across every bucket
            }
        });
    // Snapshots taken mid-write must always be internally consistent: the
    // count is derived from the buckets, so count == sum(buckets) exactly,
    // and successive snapshots are monotone.
    std::uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
        const auto s = h.snapshot();
        const std::uint64_t derived =
            std::accumulate(s.buckets.begin(), s.buckets.end(), std::uint64_t{0});
        ASSERT_EQ(s.count, derived);
        ASSERT_GE(s.count, last);
        last = s.count;
    }
    stop.store(true);
    for (auto& t : writers) t.join();
}

// ---- registry --------------------------------------------------------------

TEST(obs_registry, kind_mismatch_throws) {
    obs::registry reg;
    reg.get_counter("x_total");
    EXPECT_THROW(reg.get_gauge("x_total"), error);
    EXPECT_THROW(reg.get_histogram("x_total", {1.0}), error);
}

TEST(obs_registry, counter_values_are_name_sorted) {
    obs::registry reg;
    reg.get_counter("zeta_total").add(3);
    reg.get_counter("alpha_total").add(1);
    reg.get_gauge("skip_me");  // not a counter -> not listed
    const auto vals = reg.counter_values();
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0].first, "alpha_total");
    EXPECT_EQ(vals[0].second, 1u);
    EXPECT_EQ(vals[1].first, "zeta_total");
    EXPECT_EQ(vals[1].second, 3u);
}

TEST(obs_registry, prometheus_text_exposition_shape) {
    obs::registry reg;
    reg.get_counter("req_total", "requests").add(7);
    reg.get_gauge("depth", "queue depth").set(2.5);
    obs::histogram& h = reg.get_histogram("lat_ms", {1.0, 10.0}, "latency");
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
    EXPECT_NE(text.find("req_total 7\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("depth 2.5\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_ms histogram\n"), std::string::npos);
    // Histogram buckets are cumulative and end with the +Inf bucket == count.
    EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_sum 55.5\n"), std::string::npos);
}

TEST(obs_registry, global_is_a_singleton) {
    EXPECT_EQ(&obs::registry::global(), &obs::registry::global());
}

// ---- reservoir sampling ----------------------------------------------------

TEST(obs_reservoir, one_million_samples_bounded_memory_and_uniform) {
    obs::reservoir r(1024);
    constexpr std::uint64_t kStream = 1000000;
    for (std::uint64_t i = 0; i < kStream; ++i) r.offer(static_cast<double>(i));
    EXPECT_EQ(r.seen(), kStream);
    EXPECT_EQ(r.samples().size(), r.capacity());  // memory stays O(capacity)
    // Uniformity sanity: the retained sample's mean must sit near the stream
    // mean (kStream/2).  With 1024 uniform draws the standard error is about
    // kStream / sqrt(12 * 1024) ~ 9k; a 5% band is ~15 standard errors.
    const auto& s = r.samples();
    const double mean = std::accumulate(s.begin(), s.end(), 0.0) / double(s.size());
    EXPECT_NEAR(mean, kStream / 2.0, kStream * 0.05);
    // And it must retain late elements, not just the warm-up prefix.
    EXPECT_GT(*std::max_element(s.begin(), s.end()), kStream * 0.9);
}

TEST(obs_reservoir, short_streams_are_kept_verbatim) {
    obs::reservoir r(16);
    for (int i = 0; i < 10; ++i) r.offer(i);
    EXPECT_EQ(r.seen(), 10u);
    EXPECT_EQ(r.samples().size(), 10u);
}

// ---- tracing ---------------------------------------------------------------

TEST(obs_trace, spans_without_a_session_record_nothing_but_still_time) {
    obs::span sp("idle", "test");
    sp.arg("k", std::uint64_t{1});
    EXPECT_GE(sp.seconds(), 0.0);
    obs::trace_session session;
    session.start();
    session.stop();
    EXPECT_TRUE(session.events().empty());
}

TEST(obs_trace, session_collects_spans_with_args_and_nesting) {
    obs::trace_session session;
    session.start();
    {
        obs::span outer("outer", "test");
        outer.arg("spec", "lr");
        outer.arg("n", std::uint64_t{42});
        obs::span inner("inner", "test");
        inner.arg("w", 0.5);
    }
    session.stop();
    ASSERT_EQ(session.events().size(), 2u);
    // Sorted by start time: outer first, inner nested within it.
    const auto& outer = session.events()[0];
    const auto& inner = session.events()[1];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.name, "inner");
    EXPECT_LE(outer.start_ns, inner.start_ns);
    EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
    ASSERT_EQ(outer.args.size(), 2u);
    EXPECT_EQ(outer.args[0].key, "spec");
    EXPECT_EQ(outer.args[0].value, "lr");
    EXPECT_FALSE(outer.args[0].numeric);
    EXPECT_EQ(outer.args[1].value, "42");
    EXPECT_TRUE(outer.args[1].numeric);
}

TEST(obs_trace, double_arm_throws_and_dtor_disarms) {
    obs::trace_session a;
    a.start();
    obs::trace_session b;
    EXPECT_THROW(b.start(), error);
    a.stop();
    b.start();  // now fine
    b.stop();
}

TEST(obs_trace, spans_straddling_stop_are_dropped_benignly) {
    obs::trace_session session;
    auto sp = [&] {
        session.start();
        return std::make_unique<obs::span>("straddler", "test");
    }();
    session.stop();  // span still open: its event must simply vanish
    sp.reset();
    EXPECT_TRUE(session.events().empty());
    // The next session must not resurrect it either.
    session.start();
    session.stop();
    EXPECT_TRUE(session.events().empty());
}

TEST(obs_trace, chrome_json_has_matched_pairs_and_monotone_timestamps) {
    obs::trace_session session;
    session.start();
    std::thread worker([] {
        obs::name_thread("worker-1");
        obs::span sp("work", "test");
        obs::span nested("sub", "test");
    });
    worker.join();
    {
        obs::span sp("main-side", "test");
    }
    session.stop();
    const std::string json = session.chrome_json();
    EXPECT_EQ(json.find("traceEvents"), 2u);  // {"traceEvents":[...
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("worker-1"), std::string::npos);
    // Every B has its E: count occurrences of the phase markers.
    auto count = [&](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t at = json.find(needle); at != std::string::npos;
             at = json.find(needle, at + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"B\""), 3u);
    EXPECT_EQ(count("\"ph\":\"E\""), 3u);
}

TEST(obs_trace, flamegraph_renders_threads_spans_and_args) {
    obs::trace_session session;
    session.start();
    {
        obs::span sp("render-me", "test");
        sp.arg("answer", std::uint64_t{42});
        obs::span nested("nested-child", "test");
    }
    session.stop();
    const std::string fg = session.flamegraph();
    EXPECT_NE(fg.find("render-me"), std::string::npos);
    EXPECT_NE(fg.find("nested-child"), std::string::npos);
    EXPECT_NE(fg.find("answer=42"), std::string::npos);
    EXPECT_NE(fg.find("ms"), std::string::npos);
    // The nested child is indented deeper than its parent.
    EXPECT_LT(fg.find("render-me"), fg.find("nested-child"));
}

TEST(obs_trace, per_thread_buffers_collect_across_threads) {
    obs::trace_session session;
    session.start();
    constexpr int kThreads = 4, kSpans = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            obs::name_thread("t" + std::to_string(t));
            for (int i = 0; i < kSpans; ++i) obs::span sp("unit", "test");
        });
    for (auto& t : threads) t.join();
    session.stop();
    EXPECT_EQ(session.events().size(), std::size_t{kThreads} * kSpans);
    EXPECT_EQ(session.dropped(), 0u);
    // Spans landed on distinct per-thread tracks.
    std::vector<std::uint64_t> tids;
    for (const auto& ev : session.events()) tids.push_back(ev.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), std::size_t{kThreads});
}

TEST(obs_trace, buffer_overflow_counts_drops_in_session_metric_and_log) {
    // Pin the per-thread cap low so the overflow path runs without recording
    // a million spans under the sanitizer job; 0 restores the built-in cap.
    obs::detail::set_trace_buffer_cap_for_testing(64);
    obs::counter& dropped_total = obs::registry::global().get_counter(
        "asynth_trace_dropped_total", "Spans dropped at the per-thread buffer cap");
    const std::uint64_t before = dropped_total.value();

    obs::trace_session session;
    session.start();
    for (int i = 0; i < 100; ++i) obs::span sp("overflow", "test");
    session.stop();
    obs::detail::set_trace_buffer_cap_for_testing(0);

    EXPECT_EQ(session.events().size(), 64u);
    EXPECT_EQ(session.dropped(), 36u);
    // The process metric accumulated exactly the drops of this session...
    EXPECT_EQ(dropped_total.value() - before, 36u);
    // ...and the first drop emitted one warn event into the recent ring.
    bool warned = false;
    for (const auto& line : obs::recent_log_lines())
        if (line.find("\"event\":\"trace.dropped\"") != std::string::npos) warned = true;
    EXPECT_TRUE(warned);
}
