// Gate-level decomposition: simulation equivalence with the source cover
// and consistency with the closed-form area model.
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "logic/netlist.hpp"
#include "util/hash.hpp"

using namespace asynth;

namespace {

dyn_bitset point(std::size_t n, uint64_t bits) {
    dyn_bitset p(n);
    for (std::size_t i = 0; i < n; ++i)
        if (bits & (1ULL << i)) p.set(i);
    return p;
}

}  // namespace

TEST(netlist, constants) {
    cover zero;
    zero.nvars = 3;
    auto n0 = decompose_cover(zero);
    EXPECT_FALSE(n0.evaluate(point(3, 5)));
    EXPECT_EQ(n0.area(gate_library{}), 0.0);

    cover one;
    one.nvars = 3;
    one.cubes.push_back(cube(3));
    auto n1 = decompose_cover(one);
    EXPECT_TRUE(n1.evaluate(point(3, 0)));
    EXPECT_EQ(n1.gate_count(), 0u);
}

TEST(netlist, single_literal_and_inverter) {
    cover c;
    c.nvars = 2;
    cube q(2);
    q.set_literal(1, false);
    c.cubes.push_back(q);
    auto n = decompose_cover(c);
    EXPECT_TRUE(n.evaluate(point(2, 0b00)));
    EXPECT_FALSE(n.evaluate(point(2, 0b10)));
    EXPECT_EQ(n.area(gate_library{}), gate_library{}.inverter);
}

TEST(netlist, shared_inverters) {
    // a' b + a' c: the a' inverter is built once.
    cover c;
    c.nvars = 3;
    cube q1(3), q2(3);
    q1.set_literal(0, false);
    q1.set_literal(1, true);
    q2.set_literal(0, false);
    q2.set_literal(2, true);
    c.cubes = {q1, q2};
    auto n = decompose_cover(c);
    std::size_t inverters = 0;
    for (const auto& g : n.gates)
        if (g.kind == gate_kind::inverter) ++inverters;
    EXPECT_EQ(inverters, 1u);
    EXPECT_DOUBLE_EQ(n.area(gate_library{}), decomposed_area(c, gate_library{}));
}

class netlist_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(netlist_random, simulation_matches_cover_and_area_model) {
    xorshift64 rng(GetParam() * 31337 + 5);
    const std::size_t n = 2 + rng.next_below(5);  // 2..6 vars
    cover c;
    c.nvars = n;
    const std::size_t ncubes = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < ncubes; ++i) {
        cube q(n);
        bool nonempty = false;
        for (std::size_t v = 0; v < n; ++v) {
            const auto r = rng.next_below(3);
            if (r == 0) q.set_literal(v, true), nonempty = true;
            else if (r == 1) q.set_literal(v, false), nonempty = true;
        }
        if (!nonempty) q.set_literal(rng.next_below(n), true);
        c.cubes.push_back(q);
    }
    auto net = decompose_cover(c);
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
        auto p = point(n, bits);
        EXPECT_EQ(net.evaluate(p), c.covers(p)) << "bits " << bits;
    }
    EXPECT_DOUBLE_EQ(net.area(gate_library{}), decomposed_area(c, gate_library{}));
}

INSTANTIATE_TEST_SUITE_P(seeds, netlist_random, ::testing::Range<uint64_t>(0, 30));

TEST(netlist, synthesised_equations_simulate_correctly) {
    // For every synthesised complex gate of the encoded Q-module, the
    // decomposed netlist must agree with the next-state function on every
    // reachable code.
    auto sg = state_graph::generate(benchmarks::qmodule_lr()).graph;
    auto csc = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(csc.solved);
    auto enc = subgraph::full(csc.graph);
    auto res = synthesize(enc);
    ASSERT_TRUE(res.ok);
    for (const auto& impl : res.ckt.impls) {
        if (impl.kind != impl_kind::complex_gate && impl.kind != impl_kind::wire &&
            impl.kind != impl_kind::inverter)
            continue;
        auto net = decompose_cover(impl.function);
        auto ns = derive_nextstate(enc, impl.signal);
        for (const auto& code : ns.spec.on) EXPECT_TRUE(net.evaluate(code));
        for (const auto& code : ns.spec.off) EXPECT_FALSE(net.evaluate(code));
    }
}
