// Gate-level decomposition: simulation equivalence with the source cover
// and consistency with the closed-form area model.  Below that, the netlist
// backends: byte-pinned golden emissions, corpus-wide emulation against the
// encoded state graphs, and mutation tests proving the emulator catches an
// injected gate bug.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchmarks/corpus.hpp"
#include "benchmarks/generate.hpp"
#include "core/expand.hpp"
#include "csc/csc.hpp"
#include "logic/netlist.hpp"
#include "netlist/backend.hpp"
#include "netlist/emulate.hpp"
#include "pipeline/pipeline.hpp"
#include "util/hash.hpp"

using namespace asynth;

namespace {

dyn_bitset point(std::size_t n, uint64_t bits) {
    dyn_bitset p(n);
    for (std::size_t i = 0; i < n; ++i)
        if (bits & (1ULL << i)) p.set(i);
    return p;
}

}  // namespace

TEST(netlist, constants) {
    cover zero;
    zero.nvars = 3;
    auto n0 = decompose_cover(zero);
    EXPECT_FALSE(n0.evaluate(point(3, 5)));
    EXPECT_EQ(n0.area(gate_library{}), 0.0);

    cover one;
    one.nvars = 3;
    one.cubes.push_back(cube(3));
    auto n1 = decompose_cover(one);
    EXPECT_TRUE(n1.evaluate(point(3, 0)));
    EXPECT_EQ(n1.gate_count(), 0u);
}

TEST(netlist, single_literal_and_inverter) {
    cover c;
    c.nvars = 2;
    cube q(2);
    q.set_literal(1, false);
    c.cubes.push_back(q);
    auto n = decompose_cover(c);
    EXPECT_TRUE(n.evaluate(point(2, 0b00)));
    EXPECT_FALSE(n.evaluate(point(2, 0b10)));
    EXPECT_EQ(n.area(gate_library{}), gate_library{}.inverter);
}

TEST(netlist, shared_inverters) {
    // a' b + a' c: the a' inverter is built once.
    cover c;
    c.nvars = 3;
    cube q1(3), q2(3);
    q1.set_literal(0, false);
    q1.set_literal(1, true);
    q2.set_literal(0, false);
    q2.set_literal(2, true);
    c.cubes = {q1, q2};
    auto n = decompose_cover(c);
    std::size_t inverters = 0;
    for (const auto& g : n.gates)
        if (g.kind == gate_kind::inverter) ++inverters;
    EXPECT_EQ(inverters, 1u);
    EXPECT_DOUBLE_EQ(n.area(gate_library{}), decomposed_area(c, gate_library{}));
}

class netlist_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(netlist_random, simulation_matches_cover_and_area_model) {
    xorshift64 rng(GetParam() * 31337 + 5);
    const std::size_t n = 2 + rng.next_below(5);  // 2..6 vars
    cover c;
    c.nvars = n;
    const std::size_t ncubes = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < ncubes; ++i) {
        cube q(n);
        bool nonempty = false;
        for (std::size_t v = 0; v < n; ++v) {
            const auto r = rng.next_below(3);
            if (r == 0) q.set_literal(v, true), nonempty = true;
            else if (r == 1) q.set_literal(v, false), nonempty = true;
        }
        if (!nonempty) q.set_literal(rng.next_below(n), true);
        c.cubes.push_back(q);
    }
    auto net = decompose_cover(c);
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
        auto p = point(n, bits);
        EXPECT_EQ(net.evaluate(p), c.covers(p)) << "bits " << bits;
    }
    EXPECT_DOUBLE_EQ(net.area(gate_library{}), decomposed_area(c, gate_library{}));
}

INSTANTIATE_TEST_SUITE_P(seeds, netlist_random, ::testing::Range<uint64_t>(0, 30));

TEST(netlist, synthesised_equations_simulate_correctly) {
    // For every synthesised complex gate of the encoded Q-module, the
    // decomposed netlist must agree with the next-state function on every
    // reachable code.
    auto sg = state_graph::generate(benchmarks::qmodule_lr()).graph;
    auto csc = resolve_csc(subgraph::full(sg));
    ASSERT_TRUE(csc.solved);
    auto enc = subgraph::full(csc.graph);
    auto res = synthesize(enc);
    ASSERT_TRUE(res.ok);
    for (const auto& impl : res.ckt.impls) {
        if (impl.kind != impl_kind::complex_gate && impl.kind != impl_kind::wire &&
            impl.kind != impl_kind::inverter)
            continue;
        auto net = decompose_cover(impl.function);
        auto ns = derive_nextstate(enc, impl.signal);
        for (const auto& code : ns.spec.on) EXPECT_TRUE(net.evaluate(code));
        for (const auto& code : ns.spec.off) EXPECT_FALSE(net.evaluate(code));
    }
}

// ---- backends: emission ----------------------------------------------------

namespace {

/// Golden-file comparison with regeneration: ASYNTH_REGOLD=1 rewrites the
/// pinned file from the actual emission (run once, eyeball the diff, commit).
std::string golden(const std::string& name, const std::string& actual) {
    const std::string path = std::string(ASYNTH_TEST_DATA_DIR) + "/netlist/" + name;
    if (std::getenv("ASYNTH_REGOLD")) {
        std::filesystem::create_directories(std::filesystem::path(path).parent_path());
        std::ofstream out(path, std::ios::binary);
        out << actual;
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

pipeline_result run_corpus(const char* name) {
    for (const auto& e : benchmarks::corpus_table())
        if (std::string(name) == e.name) return run_pipeline(e.make(), pipeline_options{});
    throw error("no such corpus entry");
}

pipeline_result run_generated(uint64_t seed) {
    benchmarks::generator_options go;
    go.size = 3;
    auto spec = benchmarks::build_spec(benchmarks::generate_recipe(seed, go),
                                       "gen_s" + std::to_string(seed));
    return run_pipeline(spec, pipeline_options{});
}

/// The injected gate bug both mutation tests use: the first real gate
/// network's output is inverted (appending keeps the evaluation order
/// topological).  For a gC net the set network is the one the emulator
/// consults while the signal is low, so it is the one flipped.
void flip_first_gate(circuit_netlist& nl) {
    for (auto& net : nl.nets) {
        netlist* t = net.kind == impl_kind::gc_element ? &net.set_net : &net.fn;
        if (t->output == -1 || t->output == -2) continue;  // constants: skip
        t->gates.push_back(gate{gate_kind::inverter, t->output, -1});
        t->output = static_cast<int32_t>(t->gates.size() - 1);
        return;
    }
}

}  // namespace

TEST(netlist_backend, registry_order_and_lookup) {
    const auto& all = netlist_backends();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_STREQ(all[0]->name(), "verilog");
    EXPECT_STREQ(all[1]->name(), "cmodel");
    EXPECT_STREQ(all[0]->file_extension(), ".v");
    EXPECT_STREQ(all[1]->file_extension(), ".c");
    EXPECT_EQ(find_backend("verilog"), all[0]);
    EXPECT_EQ(find_backend("cmodel"), all[1]);
    EXPECT_EQ(find_backend("vhdl"), nullptr);
}

TEST(netlist_backend, identifiers_are_sanitized) {
    EXPECT_EQ(sanitize_identifier("req_1"), "req_1");
    EXPECT_EQ(sanitize_identifier("a.b-c"), "a_b_c");
    EXPECT_EQ(sanitize_identifier("1x"), "_1x");
}

TEST(netlist_backend, fig1_unsolvable_csc_emits_nothing) {
    // fig1's CSC conflict is unresolvable: the pipeline completes with a
    // verdict but synthesises no circuit, so there is nothing to emit.
    auto r = run_corpus("fig1");
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.synthesized());
    EXPECT_TRUE(r.impl_model.nets.empty());
    EXPECT_EQ(r.verilog, "");
    EXPECT_EQ(r.cmodel, "");
}

TEST(netlist_backend, golden_emissions_are_byte_pinned) {
    // One corpus entry plus three generator seeds, both backends.  The
    // emissions are deterministic functions of the synthesised model; any
    // byte drift is an intentional format change (regenerate with
    // ASYNTH_REGOLD=1) or a synthesis regression (fix it).
    struct pinned {
        std::string stem;
        pipeline_result r;
    };
    std::vector<pinned> cases;
    cases.push_back({"qmodule", run_corpus("qmodule")});
    for (uint64_t seed : {11u, 12u, 13u})
        cases.push_back({"gen_s" + std::to_string(seed), run_generated(seed)});
    for (auto& c : cases) {
        ASSERT_TRUE(c.r.synthesized()) << c.stem;
        ASSERT_FALSE(c.r.verilog.empty()) << c.stem;
        ASSERT_FALSE(c.r.cmodel.empty()) << c.stem;
        EXPECT_EQ(c.r.verilog, golden(c.stem + ".v", c.r.verilog)) << c.stem;
        EXPECT_EQ(c.r.cmodel, golden(c.stem + ".c", c.r.cmodel)) << c.stem;
    }
}

TEST(netlist_backend, emitted_c_model_is_a_valid_translation_unit) {
    // The C model promises to be self-contained: it must survive a compiler
    // front end with no includes and no support files.
    if (std::system("cc --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "no C compiler on PATH";
    auto r = run_corpus("qmodule");
    ASSERT_TRUE(r.synthesized());
    const auto dir = std::filesystem::temp_directory_path() / "asynth_cmodel_test";
    std::filesystem::create_directories(dir);
    const std::string src = (dir / "qmodule.c").string();
    std::ofstream(src, std::ios::binary) << r.cmodel;
    const std::string cmd = "cc -std=c99 -Wall -Werror -fsyntax-only " + src;
    EXPECT_EQ(std::system(cmd.c_str()), 0) << r.cmodel;
    std::filesystem::remove_all(dir);
}

// ---- backends: emulation against the state graph ---------------------------

TEST(netlist_emulate, corpus_implementations_agree_with_their_state_graphs) {
    // Every synthesisable benchmark's emitted implementation must replay
    // clean: trace containment and output readiness on every live state.
    pipeline_options opt;
    opt.verify_impl = true;
    for (const auto& e : benchmarks::corpus_table()) {
        auto r = run_pipeline(e.make(), opt);
        EXPECT_TRUE(r.completed) << e.name << ": " << r.message;
        if (!r.synthesized()) continue;  // unsolvable CSC: nothing to check
        EXPECT_TRUE(r.impl_check.ok) << e.name << ": " << r.impl_check.message;
        EXPECT_GT(r.impl_check.states_visited, 0u) << e.name;
        EXPECT_GT(r.impl_check.checks, 0u) << e.name;
        EXPECT_TRUE(r.impl_check.violations.empty()) << e.name;
    }
}

TEST(netlist_emulate, injected_gate_bug_is_caught) {
    auto r = run_corpus("qmodule");
    ASSERT_TRUE(r.synthesized());

    // Unperturbed: the implementation agrees with its state graph.
    auto clean = emulate_against_sg(r.impl_model, subgraph::full(r.csc.graph));
    ASSERT_TRUE(clean.ok) << clean.message;

    // One inverted gate output must surface as a violation with a witness
    // trace, not as silent agreement.
    circuit_netlist broken = r.impl_model;
    flip_first_gate(broken);
    auto caught = emulate_against_sg(broken, subgraph::full(r.csc.graph));
    ASSERT_FALSE(caught.ok);
    ASSERT_FALSE(caught.violations.empty());
    EXPECT_NE(caught.message.find("violated"), std::string::npos) << caught.message;
    EXPECT_LT(caught.violations.front().signal, r.impl_model.signals.size());
}

TEST(netlist_emulate, verify_stage_fails_structurally_on_a_broken_model) {
    // Through the pipeline the same bug must become a structured stage
    // failure (verify), never an exception or a silent pass -- that is what
    // `asynth batch --verify-impl` aggregates.
    auto r = run_corpus("qmodule");
    ASSERT_TRUE(r.synthesized());
    ASSERT_FALSE(r.verilog.empty());
    pipeline_options opt;
    opt.verify_impl = true;
    auto verified = run_pipeline(r.spec, opt);
    EXPECT_TRUE(verified.completed);
    EXPECT_TRUE(verified.impl_check.ok);
    ASSERT_FALSE(verified.timings.empty());
    EXPECT_EQ(verified.timings.back().stage, pipeline_stage::verify);
}
