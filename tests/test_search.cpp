// The Fig. 9 exploration: monotone termination, Keep_Conc handling, cost
// behaviour under the weight W, and the LR headline result (the search finds
// the two-wire implementation).
#include <gtest/gtest.h>

#include "benchmarks/corpus.hpp"
#include "core/expand.hpp"
#include "core/flow.hpp"
#include "core/search.hpp"
#include "sg/analysis.hpp"

using namespace asynth;

namespace {

state_graph lr_maxconc() {
    return state_graph::generate(expand_handshakes(benchmarks::lr_process())).graph;
}

int32_t sig(const state_graph& g, const char* name) {
    for (uint32_t s = 0; s < g.signals().size(); ++s)
        if (g.signals()[s].name == name) return static_cast<int32_t>(s);
    return -1;
}

}  // namespace

TEST(search, finds_the_two_wire_lr_solution) {
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.2;
    so.size_frontier = 6;
    auto res = reduce_concurrency(subgraph::full(base), so);
    EXPECT_EQ(res.best_cost.csc_pairs, 0u);
    EXPECT_EQ(res.best_cost.literals, 2u);  // lo = ri, ro = li
    EXPECT_EQ(count_concurrent_pairs(res.best), 0u);
    EXPECT_GT(res.explored, 1u);
}

TEST(search, result_is_subgraph_of_input) {
    auto base = lr_maxconc();
    auto g = subgraph::full(base);
    search_options so;
    auto res = reduce_concurrency(g, so);
    EXPECT_TRUE(res.best.live_states().is_subset_of(g.live_states()));
    EXPECT_TRUE(res.best.live_arcs().is_subset_of(g.live_arcs()));
    EXPECT_TRUE(res.best.state_live(res.best.initial()));
}

TEST(search, reduced_graph_is_still_valid) {
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.5;
    auto res = reduce_concurrency(subgraph::full(base), so);
    auto si = check_speed_independence(res.best);
    EXPECT_TRUE(si.ok());
    EXPECT_TRUE(deadlock_states(res.best).empty());
    // No event disappeared.
    dyn_bitset before(base.events().size()), after(base.events().size());
    for (const auto& a : base.arcs()) before.set(a.event);
    for (auto a : res.best.live_arcs().ones()) after.set(base.arcs()[a].event);
    EXPECT_EQ(before, after);
}

TEST(search, keepconc_pairs_survive) {
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.2;
    so.keep_concurrent.push_back(
        {sg_event{sig(base, "li"), edge::minus}, sg_event{sig(base, "ri"), edge::minus}});
    auto res = reduce_fully(subgraph::full(base), so);
    auto lim = *base.find_event(sig(base, "li"), edge::minus);
    auto rim = *base.find_event(sig(base, "ri"), edge::minus);
    EXPECT_TRUE(concurrent_by_diamond(res.best, lim, rim));
}

TEST(search, nonconcurrent_keepconc_pairs_are_ignored) {
    // li+ and ro+ are ordered in the expansion; asking to keep them
    // concurrent must not veto every reduction.
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.2;
    so.keep_concurrent.push_back(
        {sg_event{sig(base, "li"), edge::plus}, sg_event{sig(base, "ro"), edge::plus}});
    auto res = reduce_concurrency(subgraph::full(base), so);
    EXPECT_GT(res.explored, 1u);
}

TEST(search, full_reduction_leaves_no_reducible_concurrency) {
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.2;
    auto res = reduce_fully(subgraph::full(base), so);
    // No admissible reduction remains (count may be zero or only pairs whose
    // reduction would be invalid; for LR everything reduces).
    EXPECT_EQ(count_concurrent_pairs(res.best), 0u);
    EXPECT_GT(res.levels, 0u);
}

TEST(search, wider_frontier_never_worse) {
    auto base =
        state_graph::generate(expand_handshakes(benchmarks::par_component())).graph;
    double prev = 1e18;
    for (std::size_t width : {1u, 2u, 4u, 8u}) {
        search_options so;
        so.cost.w = 0.5;
        so.size_frontier = width;
        auto res = reduce_concurrency(subgraph::full(base), so);
        EXPECT_LE(res.best_cost.value, prev + 1e-9) << "width " << width;
        prev = std::min(prev, res.best_cost.value);
    }
}

TEST(search, zero_weight_drives_csc_to_minimum) {
    auto base = lr_maxconc();
    search_options so;
    so.cost.w = 0.0;
    so.size_frontier = 4;
    auto res = reduce_concurrency(subgraph::full(base), so);
    EXPECT_EQ(res.best_cost.csc_pairs, 0u);
}

TEST(search, explored_counts_distinct_configurations) {
    auto base = lr_maxconc();
    search_options so;
    so.size_frontier = 4;
    auto res = reduce_concurrency(subgraph::full(base), so);
    EXPECT_GE(res.explored, res.levels);
    EXPECT_FALSE(res.level_best.empty());
    EXPECT_EQ(res.level_best.size(), res.levels);
}

TEST(search, cost_components_are_consistent) {
    auto base = lr_maxconc();
    auto g = subgraph::full(base);
    cost_params p;
    p.w = 0.25;
    auto c = estimate_cost(g, p);
    EXPECT_NEAR(c.value,
                0.25 * static_cast<double>(c.literals) +
                    0.75 * p.csc_weight * static_cast<double>(c.csc_pairs),
                1e-9);
    EXPECT_EQ(c.states, g.live_state_count());
    // W = 1: pure literals.
    p.w = 1.0;
    EXPECT_NEAR(estimate_cost(g, p).value, static_cast<double>(c.literals), 1e-9);
}

TEST(search, keepconc_events_translate_labels) {
    auto spec = benchmarks::par_component();
    spec.keep_concurrent.push_back({*spec.parse_label("b?"), *spec.parse_label("c?")});
    auto expanded = expand_handshakes(spec);
    auto kc = keepconc_events(expanded);
    ASSERT_EQ(kc.size(), 1u);
    EXPECT_EQ(kc[0].first.dir, edge::plus);
    EXPECT_EQ(kc[0].second.dir, edge::plus);
}

class search_suite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(search_suite, every_spec_reduces_validly) {
    auto suite = benchmarks::spec_suite();
    const auto& [name, spec] = suite.at(GetParam());
    auto expanded = expand_handshakes(spec);
    auto base = state_graph::generate(expanded).graph;
    search_options so;
    so.cost.w = 0.5;
    so.size_frontier = 2;
    auto res = reduce_concurrency(subgraph::full(base), so);
    EXPECT_LE(res.best_cost.value, estimate_cost(subgraph::full(base), so.cost).value)
        << name;
    auto si = check_speed_independence(res.best);
    EXPECT_TRUE(si.ok()) << name;
    EXPECT_TRUE(deadlock_states(res.best).empty()) << name;
}

INSTANTIATE_TEST_SUITE_P(corpus, search_suite, ::testing::Range<std::size_t>(0, 7));
