// The content-addressed result store: record round-trips, key discipline,
// and -- most importantly -- the robustness battery: truncated, bit-flipped
// and version-skewed on-disk records must read as *misses* (re-synthesis),
// never crash and never return wrong data; concurrent readers and writers
// (multiple handles, as across processes) must stay torn-read free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "batch/batch.hpp"
#include "benchmarks/corpus.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"
#include "store/result_store.hpp"

using namespace asynth;
namespace fs = std::filesystem;

namespace {

/// Fresh store directory per test, removed on teardown.
struct store_test : ::testing::Test {
    std::string dir;
    void SetUp() override {
        dir = (fs::temp_directory_path() /
               ("asynth_store_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                  .string();
        fs::remove_all(dir);
    }
    void TearDown() override { fs::remove_all(dir); }
};

store::stored_record sample_record(const char* msg = "") {
    pipeline_result r = run_pipeline(benchmarks::lr_process());
    store::stored_record rec = store::record_of(r, "fp-test");
    rec.message = msg;
    return rec;
}

/// The single record file under dir/objects (fails the test when not unique).
std::string sole_object_path(const std::string& dir) {
    std::vector<std::string> found;
    for (const auto& e : fs::recursive_directory_iterator(dir + "/objects"))
        if (e.is_regular_file()) found.push_back(e.path().string());
    EXPECT_EQ(found.size(), 1u);
    return found.empty() ? std::string() : found[0];
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return std::move(text).str();
}

void spit(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

}  // namespace

// ---- record serialisation ---------------------------------------------------

TEST(store_record, roundtrips_a_real_pipeline_result) {
    pipeline_result r = run_pipeline(benchmarks::lr_process());
    ASSERT_TRUE(r.completed);
    const store::stored_record rec = store::record_of(r, "fp");
    store::stored_record back;
    ASSERT_EQ(store::parse_record(store::serialize_record(rec), back), store::parse_status::ok);

    EXPECT_EQ(back.fingerprint, "fp");
    EXPECT_EQ(back.completed, rec.completed);
    EXPECT_EQ(back.synthesized, rec.synthesized);
    EXPECT_EQ(back.csc_solved, rec.csc_solved);
    EXPECT_EQ(back.states, rec.states);
    EXPECT_EQ(back.arcs, rec.arcs);
    EXPECT_EQ(back.signals, rec.signals);
    EXPECT_EQ(back.explored, rec.explored);
    EXPECT_EQ(back.literals, rec.literals);
    EXPECT_EQ(back.initial_cost, rec.initial_cost);
    EXPECT_EQ(back.reduced_cost, rec.reduced_cost);
    EXPECT_EQ(back.area, rec.area);
    EXPECT_EQ(back.cycle, rec.cycle);
    EXPECT_EQ(back.seconds, rec.seconds);
    ASSERT_EQ(back.timings.size(), rec.timings.size());
    for (std::size_t i = 0; i < rec.timings.size(); ++i) {
        EXPECT_EQ(back.timings[i].first, rec.timings[i].first);
        EXPECT_EQ(back.timings[i].second, rec.timings[i].second);
    }
    ASSERT_EQ(back.netlist.size(), rec.netlist.size());
    for (std::size_t i = 0; i < rec.netlist.size(); ++i) {
        EXPECT_EQ(back.netlist[i].name, rec.netlist[i].name);
        EXPECT_EQ(back.netlist[i].kind, rec.netlist[i].kind);
        EXPECT_EQ(back.netlist[i].area, rec.netlist[i].area);
        EXPECT_EQ(back.netlist[i].equation, rec.netlist[i].equation);
    }
    EXPECT_EQ(back.recovered_astg, rec.recovered_astg);
    // The recovered text must itself be parseable (it re-enters the pipeline
    // when a client replays a stored result).
    ASSERT_FALSE(back.recovered_astg.empty());
    EXPECT_NO_THROW((void)parse_astg(back.recovered_astg));
    // Schema v2: the emitted netlists and the verification outcome ride
    // along (LR synthesises, so both emissions are nonempty).
    ASSERT_FALSE(rec.verilog.empty());
    ASSERT_FALSE(rec.cmodel.empty());
    EXPECT_EQ(back.verilog, rec.verilog);
    EXPECT_EQ(back.cmodel, rec.cmodel);
    EXPECT_EQ(back.impl_checked, rec.impl_checked);
    EXPECT_EQ(back.impl_states, rec.impl_states);
    // Schema v3: the quality label and bound gap ride along (a default
    // pipeline run is exact with no gap).
    EXPECT_EQ(back.quality, "exact");
    EXPECT_EQ(back.bound_gap, 0.0);
}

TEST(store_record, quality_fields_roundtrip) {
    store::stored_record rec = sample_record();
    rec.quality = "bounded";
    rec.bound_gap = 2.5;
    store::stored_record back;
    ASSERT_EQ(store::parse_record(store::serialize_record(rec), back), store::parse_status::ok);
    EXPECT_EQ(back.quality, "bounded");
    EXPECT_EQ(back.bound_gap, 2.5);
}

TEST(store_record, verification_outcome_roundtrips) {
    pipeline_options opt;
    opt.verify_impl = true;
    pipeline_result r = run_pipeline(benchmarks::lr_process(), opt);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.impl_check.ok);
    const store::stored_record rec = store::record_of(r, "fp");
    EXPECT_TRUE(rec.impl_checked);
    EXPECT_GT(rec.impl_states, 0u);
    store::stored_record back;
    ASSERT_EQ(store::parse_record(store::serialize_record(rec), back), store::parse_status::ok);
    EXPECT_TRUE(back.impl_checked);
    EXPECT_EQ(back.impl_states, rec.impl_states);
}

TEST(store_record, strings_with_newlines_and_specials_roundtrip) {
    store::stored_record rec = sample_record("line1\nline2\t\"quoted\" \\ \x01 end");
    rec.netlist.push_back({"sig with space", "complex", 12.5, "a = b' c + d\ne = f"});
    store::stored_record back;
    ASSERT_EQ(store::parse_record(store::serialize_record(rec), back), store::parse_status::ok);
    EXPECT_EQ(back.message, rec.message);
    EXPECT_EQ(back.netlist.back().name, "sig with space");
    EXPECT_EQ(back.netlist.back().equation, "a = b' c + d\ne = f");
}

TEST(store_record, truncation_at_every_boundary_is_corrupt_not_a_crash) {
    const std::string text = store::serialize_record(sample_record());
    store::stored_record out;
    // Every prefix, stepped to keep the test fast, plus the exact header/
    // payload boundaries.
    for (std::size_t keep = 0; keep < text.size();
         keep += (keep < 64 ? 1 : std::max<std::size_t>(1, text.size() / 97))) {
        EXPECT_NE(store::parse_record(std::string_view(text).substr(0, keep), out),
                  store::parse_status::ok)
            << "prefix of " << keep << " bytes parsed as a valid record";
    }
}

TEST(store_record, every_single_bit_flip_is_rejected) {
    const std::string text = store::serialize_record(sample_record("bitflip target"));
    store::stored_record out;
    std::size_t version_skews = 0;
    for (std::size_t byte = 0; byte < text.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = text;
            bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
            const auto st = store::parse_record(bad, out);
            // A flip inside the schema digits may legitimately read as a
            // *different version* -- still a miss.  Nothing may read as ok:
            // the payload is covered by the checksum and the header fields
            // are cross-checked against it.
            EXPECT_NE(st, store::parse_status::ok)
                << "bit " << bit << " of byte " << byte << " flipped undetected";
            version_skews += st == store::parse_status::version_skew ? 1 : 0;
        }
    }
    EXPECT_GT(version_skews, 0u);  // the schema-digit flips really were exercised
}

TEST(store_record, version_skew_is_detected_before_checksum) {
    std::string text = store::serialize_record(sample_record());
    const auto pos = text.find("asynth-record v3 ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + std::string("asynth-record v").size()] = '7';
    store::stored_record out;
    EXPECT_EQ(store::parse_record(text, out), store::parse_status::version_skew);
}

// ---- keys -------------------------------------------------------------------

TEST(store_record, key_separates_specs_and_result_affecting_options) {
    const pipeline_options defaults;
    pipeline_options other = defaults;
    other.search.cost.w = 0.25;

    const auto k_lr = store::key_of(benchmarks::lr_process(), defaults);
    const auto k_fig1 = store::key_of(benchmarks::fig1_controller(), defaults);
    const auto k_lr_w = store::key_of(benchmarks::lr_process(), other);
    EXPECT_NE(k_lr, k_fig1);
    EXPECT_NE(k_lr, k_lr_w);

    // Result-neutral knobs must NOT split the cache: either engine and any
    // job count provably computes the same result.
    pipeline_options neutral = defaults;
    neutral.search.engine = search_engine::reference;
    neutral.search.minimizer = minimizer_mode::exact;
    neutral.search.jobs = 7;
    EXPECT_EQ(k_lr, store::key_of(benchmarks::lr_process(), neutral));

    // The quality dial IS result-affecting: every mode (and every anytime
    // deadline) gets its own key, so approximate results can never be
    // served where an exact one was asked for.
    pipeline_options bounded = defaults;
    bounded.search.quality = search_quality::bounded;
    pipeline_options anytime = defaults;
    anytime.search.quality = search_quality::anytime;
    anytime.search.deadline_ms = 500;
    pipeline_options anytime_slower = anytime;
    anytime_slower.search.deadline_ms = 5000;
    const auto k_bounded = store::key_of(benchmarks::lr_process(), bounded);
    const auto k_anytime = store::key_of(benchmarks::lr_process(), anytime);
    EXPECT_NE(k_lr, k_bounded);
    EXPECT_NE(k_lr, k_anytime);
    EXPECT_NE(k_bounded, k_anytime);
    EXPECT_NE(k_anytime, store::key_of(benchmarks::lr_process(), anytime_slower));
}

// ---- the store on disk ------------------------------------------------------

TEST_F(store_test, miss_then_put_then_hit) {
    auto st = store::result_store::open(dir);
    ASSERT_TRUE(st.enabled()) << st.message();
    const auto key = store::key_of(benchmarks::lr_process(), pipeline_options{});

    EXPECT_FALSE(st.get(key).has_value());
    const auto rec = sample_record("verdict text");
    ASSERT_TRUE(st.put(key, rec));
    const auto got = st.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->message, "verdict text");
    EXPECT_EQ(got->area, rec.area);

    const auto s = st.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.writes, 1u);
}

TEST_F(store_test, reopened_store_sees_previous_records) {
    const auto key = store::key_of(benchmarks::mmu_controller(), pipeline_options{});
    {
        auto st = store::result_store::open(dir);
        ASSERT_TRUE(st.put(key, sample_record("persisted")));
    }
    auto st2 = store::result_store::open(dir);
    const auto got = st2.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->message, "persisted");
}

TEST_F(store_test, on_disk_corruption_degrades_to_miss_and_put_heals) {
    auto st = store::result_store::open(dir);
    const auto key = store::key_of(benchmarks::lr_process(), pipeline_options{});
    ASSERT_TRUE(st.put(key, sample_record("good")));
    const std::string path = sole_object_path(dir);
    const std::string good = slurp(path);

    // Truncate (a writer killed without the atomic-rename protocol).
    spit(path, good.substr(0, good.size() / 2));
    EXPECT_FALSE(st.get(key).has_value());
    EXPECT_EQ(st.stats().corrupt, 1u);

    // Bit-flip (disk rot).
    std::string flipped = good;
    flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x10);
    spit(path, flipped);
    EXPECT_FALSE(st.get(key).has_value());

    // Zero-length file (crash between open and write, without rename).
    spit(path, "");
    EXPECT_FALSE(st.get(key).has_value());

    // The caller's re-synthesis heals the entry in place.
    ASSERT_TRUE(st.put(key, sample_record("healed")));
    const auto got = st.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->message, "healed");
}

TEST_F(store_test, version_skewed_record_is_a_miss_not_stale_data) {
    auto st = store::result_store::open(dir);
    const auto key = store::key_of(benchmarks::lr_process(), pipeline_options{});
    ASSERT_TRUE(st.put(key, sample_record()));
    const std::string path = sole_object_path(dir);
    std::string text = slurp(path);
    text[text.find(" v3 ") + 2] = '9';
    spit(path, text);
    EXPECT_FALSE(st.get(key).has_value());
    EXPECT_EQ(st.stats().version_skew, 1u);
}

TEST_F(store_test, foreign_format_directory_disables_instead_of_crashing) {
    fs::create_directories(dir);
    spit(dir + "/format", "somebody-elses-cache v3\n");
    auto st = store::result_store::open(dir);
    EXPECT_FALSE(st.enabled());
    EXPECT_FALSE(st.message().empty());
    // Disabled handles behave as a permanently cold cache.
    const auto key = store::key_of(benchmarks::lr_process(), pipeline_options{});
    EXPECT_FALSE(st.get(key).has_value());
    EXPECT_FALSE(st.put(key, sample_record()));
    EXPECT_EQ(st.stats().write_errors, 1u);
}

TEST_F(store_test, stray_temp_files_do_not_confuse_lookups) {
    auto st = store::result_store::open(dir);
    const auto key = store::key_of(benchmarks::lr_process(), pipeline_options{});
    ASSERT_TRUE(st.put(key, sample_record("real")));
    const std::string path = sole_object_path(dir);
    // A crashed writer's leftover: same fanout directory, tmp prefix.
    spit(path.substr(0, path.find_last_of('/')) + "/.tmp-dead-1234-0", "garbage");
    const auto got = st.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->message, "real");
}

TEST_F(store_test, concurrent_readers_and_writers_never_tear) {
    // Two handles on one directory (= two processes sharing the store), four
    // writer threads re-putting K keys while four readers hammer get().
    // Every successful get must parse to the matching record -- the payload
    // checksum turns any torn/partial read into a visible failure.
    auto writer_store = store::result_store::open(dir);
    auto reader_store = store::result_store::open(dir);
    ASSERT_TRUE(writer_store.enabled());
    ASSERT_TRUE(reader_store.enabled());

    constexpr std::size_t kKeys = 4, kWriters = 4, kReaders = 4, kRounds = 60;
    std::vector<store::store_key> keys;
    std::vector<store::stored_record> recs;
    for (std::size_t k = 0; k < kKeys; ++k) {
        keys.push_back(store::key_of("spec-" + std::to_string(k), "fp"));
        auto rec = sample_record(("record for key " + std::to_string(k)).c_str());
        rec.states = 1000 + k;  // per-key sentinel the readers verify
        recs.push_back(std::move(rec));
    }

    std::atomic<std::size_t> torn{0}, hits{0};
    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (std::size_t w = 0; w < kWriters; ++w)
        threads.emplace_back([&, w] {
            for (std::size_t r = 0; r < kRounds; ++r) {
                const std::size_t k = (w + r) % kKeys;
                writer_store.put(keys[k], recs[k]);
            }
        });
    for (std::size_t rd = 0; rd < kReaders; ++rd)
        threads.emplace_back([&, rd] {
            for (std::size_t r = 0; r < kRounds * 2; ++r) {
                const std::size_t k = (rd + r) % kKeys;
                if (auto got = reader_store.get(keys[k])) {
                    ++hits;
                    if (got->states != 1000 + k ||
                        got->message != "record for key " + std::to_string(k))
                        ++torn;
                }
            }
        });
    for (auto& t : threads) t.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(hits.load(), 0u);
    // Nothing the readers saw was corrupt: rename is atomic and every read
    // is checksummed.
    EXPECT_EQ(reader_store.stats().corrupt, 0u);
}

// ---- store-backed batch sweeps ---------------------------------------------

TEST_F(store_test, batch_sweep_is_resumable_and_warm_hits_everything) {
    auto specs = benchmarks::corpus_specs();
    specs.resize(4);  // keep the test quick; any slice works

    batch::batch_options opt;
    opt.jobs = 2;
    opt.store = store::result_store::open(dir);
    ASSERT_TRUE(opt.store.enabled());

    const auto cold = batch::run_batch(specs, opt);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_EQ(cold.store_misses, specs.size());

    const auto warm = batch::run_batch(specs, opt);
    EXPECT_EQ(warm.store_hits, specs.size());
    EXPECT_EQ(warm.store_misses, 0u);

    // The warm rows replay the cold rows byte-for-byte (names, verdicts,
    // costs, even the producing run's timings) apart from the hit flag.
    ASSERT_EQ(warm.specs.size(), cold.specs.size());
    for (std::size_t i = 0; i < cold.specs.size(); ++i) {
        const auto& c = cold.specs[i];
        const auto& w = warm.specs[i];
        EXPECT_TRUE(w.store_hit);
        EXPECT_FALSE(c.store_hit);
        EXPECT_EQ(w.name, c.name);
        EXPECT_EQ(w.completed, c.completed);
        EXPECT_EQ(w.synthesized, c.synthesized);
        EXPECT_EQ(w.message, c.message);
        EXPECT_EQ(w.states, c.states);
        EXPECT_EQ(w.explored, c.explored);
        EXPECT_EQ(w.csc_signals, c.csc_signals);
        EXPECT_EQ(w.literals, c.literals);
        EXPECT_EQ(w.area, c.area);
        EXPECT_EQ(w.cycle, c.cycle);
        EXPECT_EQ(w.seconds, c.seconds);
        ASSERT_EQ(w.timings.size(), c.timings.size());
        for (std::size_t t = 0; t < c.timings.size(); ++t) {
            EXPECT_EQ(w.timings[t].stage, c.timings[t].stage);
            EXPECT_EQ(w.timings[t].seconds, c.timings[t].seconds);
        }
    }

    // A grown sweep only synthesises the new tail: resumability.
    auto more = benchmarks::corpus_specs();
    more.resize(6);
    const auto resumed = batch::run_batch(more, opt);
    EXPECT_EQ(resumed.store_hits, 4u);
    EXPECT_EQ(resumed.store_misses, 2u);
}

TEST(store_json, report_json_is_schema_version_5_with_store_fields) {
    batch::batch_report rep;
    rep.queue_wait_p90_ms = 1.5;
    rep.impl_checked = 2;
    rep.max_bound_gap = 3.25;
    const std::string json = batch::report_json(rep);
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"store_hits\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"store_misses\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_p50_ms\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_p90_ms\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"impl_checked\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"max_bound_gap\": 3.25"), std::string::npos);
}
