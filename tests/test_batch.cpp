// Batch engine: job-count independence of the per-spec records, poisoned
// specs failing in isolation, the record projection of pipeline results, the
// schema stability of the JSON report, and the persistent work-stealing
// pool's batch-reuse contract.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "batch/pool.hpp"
#include "benchmarks/corpus.hpp"
#include "benchmarks/generate.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"

using namespace asynth;
using batch::batch_options;
using batch::batch_report;
using batch::run_batch;

namespace {

/// A small mixed workload: two paper specs + four generated ones.
std::vector<benchmarks::named_spec> small_workload() {
    std::vector<benchmarks::named_spec> specs;
    specs.push_back({"fig1", benchmarks::fig1_controller()});
    specs.push_back({"lr", benchmarks::lr_process()});
    benchmarks::generator_options gen;
    gen.size = 3;
    auto more = benchmarks::generate_workload(1, 4, gen);
    specs.insert(specs.end(), more.begin(), more.end());
    return specs;
}

/// A spec that parses but fails state-graph generation (two a+ in a row).
stg poisoned_spec() {
    auto net = parse_astg(R"(.model poison
.outputs a
.graph
a+/1 p1
p1 a+/2
a+/2 p2
p2 a+/1
.marking { p2 }
.end
)");
    return net;
}

/// Everything except the wall-clock fields must match across job counts.
void expect_records_equal(const batch::spec_record& a, const batch::spec_record& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.synthesized, b.synthesized);
    EXPECT_EQ(a.failed_stage, b.failed_stage);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.arcs, b.arcs);
    EXPECT_EQ(a.signals, b.signals);
    EXPECT_EQ(a.explored, b.explored);
    EXPECT_EQ(a.csc_solved, b.csc_solved);
    EXPECT_EQ(a.csc_signals, b.csc_signals);
    EXPECT_DOUBLE_EQ(a.initial_cost, b.initial_cost);
    EXPECT_DOUBLE_EQ(a.reduced_cost, b.reduced_cost);
    EXPECT_EQ(a.literals, b.literals);
    EXPECT_DOUBLE_EQ(a.area, b.area);
    EXPECT_DOUBLE_EQ(a.cycle, b.cycle);
}

}  // namespace

TEST(pool, persistent_pool_runs_many_batches) {
    // One pool, many run() calls of varying size (the exploration engine's
    // usage: several small batches per search level): every index of every
    // batch must run exactly once, including sizes below, at and above the
    // worker count, and empty batches.
    batch::work_stealing_pool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    for (std::size_t tasks : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{64},
                              std::size_t{7}, std::size_t{1000}}) {
        std::vector<std::atomic<int>> hits(tasks);
        pool.run(tasks, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < tasks; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "batch size " << tasks << " index " << i;
    }
}

TEST(pool, single_worker_pool_is_serial) {
    batch::work_stealing_pool pool(1);
    std::vector<std::size_t> order;
    pool.run(8, [&](std::size_t i) { order.push_back(i); });  // no race: 1 worker
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(batch, records_independent_of_job_count) {
    auto specs = small_workload();
    batch_options one, many;
    one.jobs = 1;
    many.jobs = 4;
    auto a = run_batch(specs, one);
    auto b = run_batch(specs, many);
    EXPECT_EQ(a.jobs, 1u);
    EXPECT_EQ(b.jobs, 4u);
    ASSERT_EQ(a.specs.size(), specs.size());
    ASSERT_EQ(b.specs.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        expect_records_equal(a.specs[i], b.specs[i]);
        // Records land in input order regardless of which worker ran them.
        EXPECT_EQ(a.specs[i].name, specs[i].name);
    }
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.synthesized, b.synthesized);
    EXPECT_EQ(a.total_states, b.total_states);
}

TEST(batch, poisoned_spec_fails_alone) {
    auto specs = small_workload();
    specs.insert(specs.begin() + 1, {"poison", poisoned_spec()});
    batch_options opt;
    opt.jobs = 3;
    auto rep = run_batch(specs, opt);
    ASSERT_EQ(rep.specs.size(), specs.size());
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.completed, specs.size() - 1);
    const auto& bad = rep.specs[1];
    EXPECT_EQ(bad.name, "poison");
    EXPECT_FALSE(bad.completed);
    EXPECT_FALSE(bad.failed_stage.empty());
    EXPECT_FALSE(bad.message.empty());
    for (std::size_t i = 0; i < rep.specs.size(); ++i)
        if (i != 1) EXPECT_TRUE(rep.specs[i].completed) << rep.specs[i].name;
}

TEST(batch, record_projection_of_fig1) {
    auto r = run_pipeline(benchmarks::fig1_controller());
    auto rec = batch::record_of("fig1", r);
    EXPECT_EQ(rec.name, "fig1");
    EXPECT_TRUE(rec.completed);
    EXPECT_FALSE(rec.synthesized);
    EXPECT_TRUE(rec.failed_stage.empty());
    EXPECT_FALSE(rec.message.empty());  // the CSC verdict travels along
    EXPECT_EQ(rec.states, 5u);
    EXPECT_EQ(rec.arcs, 6u);
    EXPECT_FALSE(rec.csc_solved);
    EXPECT_EQ(rec.area, -1.0);
    EXPECT_EQ(rec.timings.size(), r.timings.size());
    EXPECT_DOUBLE_EQ(rec.seconds, r.total_seconds);
}

TEST(batch, aggregates_and_percentiles) {
    batch_options opt;
    opt.jobs = 2;
    auto rep = run_batch(small_workload(), opt);
    EXPECT_EQ(rep.count, rep.specs.size());
    EXPECT_EQ(rep.completed + rep.failed, rep.count);
    EXPECT_GT(rep.wall_seconds, 0.0);
    EXPECT_GT(rep.specs_per_second, 0.0);
    double cpu = 0.0;
    for (const auto& s : rep.specs) cpu += s.seconds;
    EXPECT_DOUBLE_EQ(rep.cpu_seconds, cpu);
    ASSERT_FALSE(rep.stages.empty());
    for (const auto& st : rep.stages) {
        SCOPED_TRACE(st.stage);
        // No parse stage: the sweep starts from in-memory specs.
        EXPECT_NE(st.stage, "parse");
        // emit/verify run only for specs that synthesised a circuit; every
        // other stage runs on every completed spec.
        if (st.stage == "emit" || st.stage == "verify")
            EXPECT_LE(st.runs, rep.count);
        else
            EXPECT_EQ(st.runs, rep.count);
        EXPECT_LE(st.p50_ms, st.p90_ms);
        EXPECT_LE(st.p90_ms, st.max_ms);
        EXPECT_LE(st.max_ms, st.total_ms + 1e-12);
    }
}

TEST(batch, verify_impl_sweep_checks_every_synthesised_spec) {
    batch_options opt;
    opt.jobs = 2;
    opt.pipeline.verify_impl = true;
    auto rep = run_batch(small_workload(), opt);
    EXPECT_EQ(rep.failed, 0u) << "a diverging implementation would fail its spec";
    EXPECT_GT(rep.synthesized, 0u);
    EXPECT_EQ(rep.impl_checked, rep.synthesized);
    for (const auto& s : rep.specs) {
        SCOPED_TRACE(s.name);
        EXPECT_EQ(s.impl_checked, s.synthesized);
        if (s.impl_checked) EXPECT_GT(s.impl_states, 0u);
    }
    std::string json = batch::report_json(rep);
    EXPECT_NE(json.find("\"impl_checked\": " + std::to_string(rep.impl_checked)),
              std::string::npos);
    // The verify stage's timing joins the percentile table (schema v3).
    bool saw_verify = false;
    for (const auto& st : rep.stages) saw_verify |= st.stage == "verify";
    EXPECT_TRUE(saw_verify);
}

TEST(batch, report_json_is_schema_stable) {
    batch_options opt;
    opt.jobs = 2;
    auto rep = run_batch(small_workload(), opt);
    std::string json = batch::report_json(rep);
    // Aggregate block, stage percentiles and one object per spec, with the
    // documented keys in a fixed order.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"asynth batch\""), std::string::npos);
    EXPECT_NE(json.find("\"specs_per_second\": "), std::string::npos);
    // schema_version 2: store efficiency + queue-wait aggregates are always
    // present (zero for a storeless sweep) so readers can rely on the keys.
    EXPECT_NE(json.find("\"store_hits\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"store_misses\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_p90_ms\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"store_hit\": false"), std::string::npos);
    // schema_version 3: the verification aggregate is always present (zero
    // for an unverified sweep) and every spec carries its flag.
    EXPECT_NE(json.find("\"impl_checked\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"impl_checked\": false"), std::string::npos);
    // schema_version 4: the metrics-registry counters block sits between the
    // aggregates and the stage percentiles; a real sweep always records at
    // least the pipeline run counter.
    EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
    EXPECT_NE(json.find("\"asynth_pipeline_runs_total\": "), std::string::npos);
    // schema_version 5: the quality dial -- aggregate max gap plus a
    // per-spec quality label and gap, "exact"/0 for a default sweep.
    EXPECT_NE(json.find("\"max_bound_gap\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"quality\": \"exact\""), std::string::npos);
    EXPECT_NE(json.find("\"bound_gap\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"stage_percentiles\": ["), std::string::npos);
    EXPECT_NE(json.find("\"specs\": ["), std::string::npos);
    EXPECT_LT(json.find("\"schema_version\""), json.find("\"counters\""));
    EXPECT_LT(json.find("\"counters\""), json.find("\"stage_percentiles\""));
    EXPECT_LT(json.find("\"stage_percentiles\""), json.find("\"specs\""));
    for (const auto& s : rep.specs)
        EXPECT_NE(json.find("\"name\": \"" + s.name + "\""), std::string::npos) << s.name;
    // Diagnostics are escaped, never raw (quotes/backslashes would break
    // downstream parsers).
    EXPECT_EQ(json.find("\n\""), std::string::npos);
}

// A sweep with a failing spec flushes a partial report to the checkpoint
// path (batch_options::checkpoint_file) before the sweep finishes its bookkeeping,
// so a killed run still leaves a parsable report behind.
TEST(batch, failing_spec_flushes_a_checkpoint_report) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "asynth_batch_checkpoint_test.json").string();
    fs::remove(path);

    std::vector<benchmarks::named_spec> specs;
    specs.push_back({"good", benchmarks::fig1_controller()});
    specs.push_back({"poison", poisoned_spec()});
    batch_options opt;
    opt.jobs = 1;  // deterministic order: "good" finishes before "poison" fails
    opt.checkpoint_file = path;
    auto rep = run_batch(specs, opt);
    EXPECT_EQ(rep.failed, 1u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no checkpoint written to " << path;
    std::ostringstream text;
    text << in.rdbuf();
    const std::string json = text.str();
    // The checkpoint is a normal v5 report over the rows finished so far --
    // here both rows, since the failing one flushed after its own record landed.
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"good\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"poison\""), std::string::npos);
    EXPECT_NE(json.find("\"completed\": false"), std::string::npos);
    fs::remove(path);
}

// Without a failure nothing is checkpointed: the final report is the CLI's
// job, and a clean sweep must not pay the serialisation twice.
TEST(batch, clean_sweep_writes_no_checkpoint) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "asynth_batch_no_checkpoint_test.json").string();
    fs::remove(path);
    std::vector<benchmarks::named_spec> specs;
    specs.push_back({"good", benchmarks::fig1_controller()});
    batch_options opt;
    opt.checkpoint_file = path;
    auto rep = run_batch(specs, opt);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(batch, empty_workload) {
    auto rep = run_batch({}, batch_options{});
    EXPECT_EQ(rep.count, 0u);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_TRUE(rep.specs.empty());
    std::string json = batch::report_json(rep);
    EXPECT_NE(json.find("\"specs\": []"), std::string::npos);
}
