# Inconsistent on purpose: two rising edges of `a` with no falling edge in
# between, so state-graph generation must fail with a structured error.  Used
# by the cli_fail_nonzero CTest entry to pin the CLI's nonzero exit code.
.model inconsistent
.outputs a
.graph
a+/1 p1
p1 a+/2
a+/2 p2
p2 a+/1
.marking { p2 }
.end
