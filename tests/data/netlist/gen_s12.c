/*
 * gen_s12: self-contained C simulation model (asynth netlist backend).
 * Values are 0/1; gen_s12_init() loads the power-up state; inputs are
 * driven by the caller; gen_s12_excited_<sig>() reports whether a
 * non-input signal may fire and gen_s12_step_<sig>() fires it.
 * equations:
 *   a0o = csc1 + a2i
 *   a1o = a0i csc0
 *   a2o = a1i' csc0' csc1
 *   to = a0i' csc0'
 *   csc0 = C(set: ti', reset: a1i)
 *   csc1 = C(set: ti csc0, reset: a2i)
 */

typedef struct {
    unsigned char a0i;
    unsigned char a0o;
    unsigned char a1i;
    unsigned char a1o;
    unsigned char a2i;
    unsigned char a2o;
    unsigned char ti;
    unsigned char to;
    unsigned char csc0;
    unsigned char csc1;
} gen_s12_state;

void gen_s12_init(gen_s12_state* s) {
    s->a0i = 0;
    s->a0o = 0;
    s->a1i = 0;
    s->a1o = 0;
    s->a2i = 0;
    s->a2o = 0;
    s->ti = 0;
    s->to = 0;
    s->csc0 = 1;
    s->csc1 = 0;
}

/* a0o = csc1 + a2i */
int gen_s12_next_a0o(const gen_s12_state* s) {
    const int g2 = s->csc1 || s->a2i;
    return (g2) != 0;
}
int gen_s12_excited_a0o(const gen_s12_state* s) {
    return gen_s12_next_a0o(s) != s->a0o;
}
void gen_s12_step_a0o(gen_s12_state* s) {
    s->a0o = (unsigned char)gen_s12_next_a0o(s);
}

/* a1o = a0i csc0 */
int gen_s12_next_a1o(const gen_s12_state* s) {
    const int g2 = s->a0i && s->csc0;
    return (g2) != 0;
}
int gen_s12_excited_a1o(const gen_s12_state* s) {
    return gen_s12_next_a1o(s) != s->a1o;
}
void gen_s12_step_a1o(gen_s12_state* s) {
    s->a1o = (unsigned char)gen_s12_next_a1o(s);
}

/* a2o = a1i' csc0' csc1 */
int gen_s12_next_a2o(const gen_s12_state* s) {
    const int g1 = !s->a1i;
    const int g3 = !s->csc0;
    const int g4 = g1 && g3;
    const int g6 = g4 && s->csc1;
    return (g6) != 0;
}
int gen_s12_excited_a2o(const gen_s12_state* s) {
    return gen_s12_next_a2o(s) != s->a2o;
}
void gen_s12_step_a2o(gen_s12_state* s) {
    s->a2o = (unsigned char)gen_s12_next_a2o(s);
}

/* to = a0i' csc0' */
int gen_s12_next_to(const gen_s12_state* s) {
    const int g1 = !s->a0i;
    const int g3 = !s->csc0;
    const int g4 = g1 && g3;
    return (g4) != 0;
}
int gen_s12_excited_to(const gen_s12_state* s) {
    return gen_s12_next_to(s) != s->to;
}
void gen_s12_step_to(gen_s12_state* s) {
    s->to = (unsigned char)gen_s12_next_to(s);
}

/* csc0 = C(set: ti', reset: a1i) (set/reset latch semantics) */
int gen_s12_next_csc0(const gen_s12_state* s) {
    const int set_g1 = !s->ti;
    return s->csc0 ? !(s->a1i) : (set_g1) != 0;
}
int gen_s12_excited_csc0(const gen_s12_state* s) {
    return gen_s12_next_csc0(s) != s->csc0;
}
void gen_s12_step_csc0(gen_s12_state* s) {
    s->csc0 = (unsigned char)gen_s12_next_csc0(s);
}

/* csc1 = C(set: ti csc0, reset: a2i) (set/reset latch semantics) */
int gen_s12_next_csc1(const gen_s12_state* s) {
    const int set_g2 = s->ti && s->csc0;
    return s->csc1 ? !(s->a2i) : (set_g2) != 0;
}
int gen_s12_excited_csc1(const gen_s12_state* s) {
    return gen_s12_next_csc1(s) != s->csc1;
}
void gen_s12_step_csc1(gen_s12_state* s) {
    s->csc1 = (unsigned char)gen_s12_next_csc1(s);
}
