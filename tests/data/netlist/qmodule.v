// qmodule: speed-independent gate-level implementation (asynth netlist backend)
// equations:
//   lo = ri' csc0
//   ro = li csc0'
//   csc0 = ri + li csc0
// initial state: li=0 ri=0 lo=0 ro=0 csc0=0
module qmodule (
    input  wire li,
    input  wire ri,
    output wire lo,
    output wire ro
);
    // internal state signals
    wire csc0;

    // lo = ri' csc0
    wire lo_g1 = ~ri;
    wire lo_g3 = lo_g1 & csc0;
    assign lo = lo_g3;

    // ro = li csc0'
    wire ro_g2 = ~csc0;
    wire ro_g3 = li & ro_g2;
    assign ro = ro_g3;

    // csc0 = ri + li csc0
    wire csc0_g3 = li & csc0;
    wire csc0_g4 = ri | csc0_g3;
    assign csc0 = csc0_g4;
endmodule
