// gen_s11: speed-independent gate-level implementation (asynth netlist backend)
// equations:
//   a0o = csc1 + a2o csc0' + a1i a2o + to
//   a1o = ti csc0'
//   a2o = a0i a0o
//   to = a2i csc1 + to csc0
//   csc0 = a1i + csc1 + to' csc0
//   csc1 = a0i' a1i' a2i' csc0 + ti csc1
// initial state: a0i=0 a0o=0 a1i=0 a1o=0 a2i=0 a2o=0 ti=0 to=0 csc0=0 csc1=0
module gen_s11 (
    input  wire a0i,
    output wire a0o,
    input  wire a1i,
    output wire a1o,
    input  wire a2i,
    output wire a2o,
    input  wire ti,
    output wire to
);
    // internal state signals
    wire csc0;
    wire csc1;

    // a0o = csc1 + a2o csc0' + a1i a2o + to
    wire a0o_g3 = ~csc0;
    wire a0o_g4 = a2o & a0o_g3;
    wire a0o_g6 = a1i & a2o;
    wire a0o_g8 = csc1 | a0o_g4;
    wire a0o_g9 = a0o_g8 | a0o_g6;
    wire a0o_g10 = a0o_g9 | to;
    assign a0o = a0o_g10;

    // a1o = ti csc0'
    wire a1o_g2 = ~csc0;
    wire a1o_g3 = ti & a1o_g2;
    assign a1o = a1o_g3;

    // a2o = a0i a0o
    wire a2o_g2 = a0i & a0o;
    assign a2o = a2o_g2;

    // to = a2i csc1 + to csc0
    wire to_g2 = a2i & csc1;
    wire to_g5 = to & csc0;
    wire to_g6 = to_g2 | to_g5;
    assign to = to_g6;

    // csc0 = a1i + csc1 + to' csc0
    wire csc0_g3 = ~to;
    wire csc0_g5 = csc0_g3 & csc0;
    wire csc0_g6 = a1i | csc1;
    wire csc0_g7 = csc0_g6 | csc0_g5;
    assign csc0 = csc0_g7;

    // csc1 = a0i' a1i' a2i' csc0 + ti csc1
    wire csc1_g1 = ~a0i;
    wire csc1_g3 = ~a1i;
    wire csc1_g4 = csc1_g1 & csc1_g3;
    wire csc1_g6 = ~a2i;
    wire csc1_g7 = csc1_g4 & csc1_g6;
    wire csc1_g9 = csc1_g7 & csc0;
    wire csc1_g12 = ti & csc1;
    wire csc1_g13 = csc1_g9 | csc1_g12;
    assign csc1 = csc1_g13;
endmodule
