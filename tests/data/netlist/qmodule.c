/*
 * qmodule: self-contained C simulation model (asynth netlist backend).
 * Values are 0/1; qmodule_init() loads the power-up state; inputs are
 * driven by the caller; qmodule_excited_<sig>() reports whether a
 * non-input signal may fire and qmodule_step_<sig>() fires it.
 * equations:
 *   lo = ri' csc0
 *   ro = li csc0'
 *   csc0 = ri + li csc0
 */

typedef struct {
    unsigned char li;
    unsigned char ri;
    unsigned char lo;
    unsigned char ro;
    unsigned char csc0;
} qmodule_state;

void qmodule_init(qmodule_state* s) {
    s->li = 0;
    s->ri = 0;
    s->lo = 0;
    s->ro = 0;
    s->csc0 = 0;
}

/* lo = ri' csc0 */
int qmodule_next_lo(const qmodule_state* s) {
    const int g1 = !s->ri;
    const int g3 = g1 && s->csc0;
    return (g3) != 0;
}
int qmodule_excited_lo(const qmodule_state* s) {
    return qmodule_next_lo(s) != s->lo;
}
void qmodule_step_lo(qmodule_state* s) {
    s->lo = (unsigned char)qmodule_next_lo(s);
}

/* ro = li csc0' */
int qmodule_next_ro(const qmodule_state* s) {
    const int g2 = !s->csc0;
    const int g3 = s->li && g2;
    return (g3) != 0;
}
int qmodule_excited_ro(const qmodule_state* s) {
    return qmodule_next_ro(s) != s->ro;
}
void qmodule_step_ro(qmodule_state* s) {
    s->ro = (unsigned char)qmodule_next_ro(s);
}

/* csc0 = ri + li csc0 */
int qmodule_next_csc0(const qmodule_state* s) {
    const int g3 = s->li && s->csc0;
    const int g4 = s->ri || g3;
    return (g4) != 0;
}
int qmodule_excited_csc0(const qmodule_state* s) {
    return qmodule_next_csc0(s) != s->csc0;
}
void qmodule_step_csc0(qmodule_state* s) {
    s->csc0 = (unsigned char)qmodule_next_csc0(s);
}
