/*
 * gen_s11: self-contained C simulation model (asynth netlist backend).
 * Values are 0/1; gen_s11_init() loads the power-up state; inputs are
 * driven by the caller; gen_s11_excited_<sig>() reports whether a
 * non-input signal may fire and gen_s11_step_<sig>() fires it.
 * equations:
 *   a0o = csc1 + a2o csc0' + a1i a2o + to
 *   a1o = ti csc0'
 *   a2o = a0i a0o
 *   to = a2i csc1 + to csc0
 *   csc0 = a1i + csc1 + to' csc0
 *   csc1 = a0i' a1i' a2i' csc0 + ti csc1
 */

typedef struct {
    unsigned char a0i;
    unsigned char a0o;
    unsigned char a1i;
    unsigned char a1o;
    unsigned char a2i;
    unsigned char a2o;
    unsigned char ti;
    unsigned char to;
    unsigned char csc0;
    unsigned char csc1;
} gen_s11_state;

void gen_s11_init(gen_s11_state* s) {
    s->a0i = 0;
    s->a0o = 0;
    s->a1i = 0;
    s->a1o = 0;
    s->a2i = 0;
    s->a2o = 0;
    s->ti = 0;
    s->to = 0;
    s->csc0 = 0;
    s->csc1 = 0;
}

/* a0o = csc1 + a2o csc0' + a1i a2o + to */
int gen_s11_next_a0o(const gen_s11_state* s) {
    const int g3 = !s->csc0;
    const int g4 = s->a2o && g3;
    const int g6 = s->a1i && s->a2o;
    const int g8 = s->csc1 || g4;
    const int g9 = g8 || g6;
    const int g10 = g9 || s->to;
    return (g10) != 0;
}
int gen_s11_excited_a0o(const gen_s11_state* s) {
    return gen_s11_next_a0o(s) != s->a0o;
}
void gen_s11_step_a0o(gen_s11_state* s) {
    s->a0o = (unsigned char)gen_s11_next_a0o(s);
}

/* a1o = ti csc0' */
int gen_s11_next_a1o(const gen_s11_state* s) {
    const int g2 = !s->csc0;
    const int g3 = s->ti && g2;
    return (g3) != 0;
}
int gen_s11_excited_a1o(const gen_s11_state* s) {
    return gen_s11_next_a1o(s) != s->a1o;
}
void gen_s11_step_a1o(gen_s11_state* s) {
    s->a1o = (unsigned char)gen_s11_next_a1o(s);
}

/* a2o = a0i a0o */
int gen_s11_next_a2o(const gen_s11_state* s) {
    const int g2 = s->a0i && s->a0o;
    return (g2) != 0;
}
int gen_s11_excited_a2o(const gen_s11_state* s) {
    return gen_s11_next_a2o(s) != s->a2o;
}
void gen_s11_step_a2o(gen_s11_state* s) {
    s->a2o = (unsigned char)gen_s11_next_a2o(s);
}

/* to = a2i csc1 + to csc0 */
int gen_s11_next_to(const gen_s11_state* s) {
    const int g2 = s->a2i && s->csc1;
    const int g5 = s->to && s->csc0;
    const int g6 = g2 || g5;
    return (g6) != 0;
}
int gen_s11_excited_to(const gen_s11_state* s) {
    return gen_s11_next_to(s) != s->to;
}
void gen_s11_step_to(gen_s11_state* s) {
    s->to = (unsigned char)gen_s11_next_to(s);
}

/* csc0 = a1i + csc1 + to' csc0 */
int gen_s11_next_csc0(const gen_s11_state* s) {
    const int g3 = !s->to;
    const int g5 = g3 && s->csc0;
    const int g6 = s->a1i || s->csc1;
    const int g7 = g6 || g5;
    return (g7) != 0;
}
int gen_s11_excited_csc0(const gen_s11_state* s) {
    return gen_s11_next_csc0(s) != s->csc0;
}
void gen_s11_step_csc0(gen_s11_state* s) {
    s->csc0 = (unsigned char)gen_s11_next_csc0(s);
}

/* csc1 = a0i' a1i' a2i' csc0 + ti csc1 */
int gen_s11_next_csc1(const gen_s11_state* s) {
    const int g1 = !s->a0i;
    const int g3 = !s->a1i;
    const int g4 = g1 && g3;
    const int g6 = !s->a2i;
    const int g7 = g4 && g6;
    const int g9 = g7 && s->csc0;
    const int g12 = s->ti && s->csc1;
    const int g13 = g9 || g12;
    return (g13) != 0;
}
int gen_s11_excited_csc1(const gen_s11_state* s) {
    return gen_s11_next_csc1(s) != s->csc1;
}
void gen_s11_step_csc1(gen_s11_state* s) {
    s->csc1 = (unsigned char)gen_s11_next_csc1(s);
}
