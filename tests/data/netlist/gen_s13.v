// gen_s13: speed-independent gate-level implementation (asynth netlist backend)
// equations:
//   a0o = ti csc0' csc1' + a1i
//   a1o = a0i csc0'
//   a2o = csc0 csc1
//   to = a2i' csc0' csc1
//   csc0 = C(set: a1i, reset: a2i)
//   csc1 = a0i' csc0 + ti csc1
// initial state: a0i=0 a0o=0 a1i=0 a1o=0 a2i=0 a2o=0 ti=0 to=0 csc0=0 csc1=0
module gen_s13 (
    input  wire a0i,
    output wire a0o,
    input  wire a1i,
    output wire a1o,
    input  wire a2i,
    output wire a2o,
    input  wire ti,
    output wire to
);
    // internal state signals
    wire csc0;
    wire csc1;

    // a0o = ti csc0' csc1' + a1i
    wire a0o_g2 = ~csc0;
    wire a0o_g3 = ti & a0o_g2;
    wire a0o_g5 = ~csc1;
    wire a0o_g6 = a0o_g3 & a0o_g5;
    wire a0o_g8 = a0o_g6 | a1i;
    assign a0o = a0o_g8;

    // a1o = a0i csc0'
    wire a1o_g2 = ~csc0;
    wire a1o_g3 = a0i & a1o_g2;
    assign a1o = a1o_g3;

    // a2o = csc0 csc1
    wire a2o_g2 = csc0 & csc1;
    assign a2o = a2o_g2;

    // to = a2i' csc0' csc1
    wire to_g1 = ~a2i;
    wire to_g3 = ~csc0;
    wire to_g4 = to_g1 & to_g3;
    wire to_g6 = to_g4 & csc1;
    assign to = to_g6;

    // csc0 = C(set: a1i, reset: a2i)
    asynth_gc #(.INIT(1'b0)) csc0_latch (.set(a1i), .reset(a2i), .q(csc0));

    // csc1 = a0i' csc0 + ti csc1
    wire csc1_g1 = ~a0i;
    wire csc1_g3 = csc1_g1 & csc0;
    wire csc1_g6 = ti & csc1;
    wire csc1_g7 = csc1_g3 | csc1_g6;
    assign csc1 = csc1_g7;
endmodule

// Generalized C element modelled as a set/reset latch: q rises when set
// while low, falls when reset while high, and holds otherwise -- the
// excitation semantics the asynth emulator replays.
module asynth_gc #(
    parameter INIT = 1'b0
) (
    input  wire set,
    input  wire reset,
    output reg  q
);
    initial q = INIT;
    always @(set or reset) begin
        if (!q && set) q = 1'b1;
        else if (q && reset) q = 1'b0;
    end
endmodule
