// gen_s12: speed-independent gate-level implementation (asynth netlist backend)
// equations:
//   a0o = csc1 + a2i
//   a1o = a0i csc0
//   a2o = a1i' csc0' csc1
//   to = a0i' csc0'
//   csc0 = C(set: ti', reset: a1i)
//   csc1 = C(set: ti csc0, reset: a2i)
// initial state: a0i=0 a0o=0 a1i=0 a1o=0 a2i=0 a2o=0 ti=0 to=0 csc0=1 csc1=0
module gen_s12 (
    input  wire a0i,
    output wire a0o,
    input  wire a1i,
    output wire a1o,
    input  wire a2i,
    output wire a2o,
    input  wire ti,
    output wire to
);
    // internal state signals
    wire csc0;
    wire csc1;

    // a0o = csc1 + a2i
    wire a0o_g2 = csc1 | a2i;
    assign a0o = a0o_g2;

    // a1o = a0i csc0
    wire a1o_g2 = a0i & csc0;
    assign a1o = a1o_g2;

    // a2o = a1i' csc0' csc1
    wire a2o_g1 = ~a1i;
    wire a2o_g3 = ~csc0;
    wire a2o_g4 = a2o_g1 & a2o_g3;
    wire a2o_g6 = a2o_g4 & csc1;
    assign a2o = a2o_g6;

    // to = a0i' csc0'
    wire to_g1 = ~a0i;
    wire to_g3 = ~csc0;
    wire to_g4 = to_g1 & to_g3;
    assign to = to_g4;

    // csc0 = C(set: ti', reset: a1i)
    wire csc0_s1 = ~ti;
    asynth_gc #(.INIT(1'b1)) csc0_latch (.set(csc0_s1), .reset(a1i), .q(csc0));

    // csc1 = C(set: ti csc0, reset: a2i)
    wire csc1_s2 = ti & csc0;
    asynth_gc #(.INIT(1'b0)) csc1_latch (.set(csc1_s2), .reset(a2i), .q(csc1));
endmodule

// Generalized C element modelled as a set/reset latch: q rises when set
// while low, falls when reset while high, and holds otherwise -- the
// excitation semantics the asynth emulator replays.
module asynth_gc #(
    parameter INIT = 1'b0
) (
    input  wire set,
    input  wire reset,
    output reg  q
);
    initial q = INIT;
    always @(set or reset) begin
        if (!q && set) q = 1'b1;
        else if (q && reset) q = 1'b0;
    end
endmodule
