# asynth-fuzz counterexample (minimised)
# oracle: store-roundtrip
# profile: deep
# family: counter
# diagnosis: regression: cold vs warm store re-run diverged on multi-instance nets before pipeline-entry canonicalisation
# replay: asynth fuzz --replay cex_store_roundtrip_counter.g
.model shrunk
.channels c0 t
.graph
c0! c0?
c0? c0!/2
c0!/2 c0?/2
c0?/2 c0!/3
c0!/3 c0?/3
c0?/3 t!
t! t?
t? c0!
.marking { <t!,t?> }
.end
