# asynth-fuzz counterexample (minimised)
# oracle: text-roundtrip
# profile: deep
# family: counter
# diagnosis: write_astg∘parse is not a fixpoint
# repro: asynth fuzz --seed 1 --budget 29x --oracle text-roundtrip
# replay: asynth fuzz --replay cex_text_roundtrip_counter.g
.model shrunk
.channels a0 a1 a2 c0 t
.graph
a0! a0?
a0? a2!
a2! a2?
a2? c0!
c0! c0?
c0? c0!/2
c0!/2 c0?/2
c0?/2 c0!/3
c0!/3 c0?/3
c0?/3 t!
t! t?
t? a0! a1!
a1! a1?
a1? a2!
.marking { <t!,t?> }
.end
