# asynth-fuzz counterexample (minimised)
# oracle: minimizers
# profile: shallow
# family: choice2
# diagnosis: pinned: minimal forced select through exact vs dominance minimisers
# replay: asynth fuzz --replay cex_minimizers_choice2.g
.model shrunk
.channels a0 a1 q0 q1 s0 s1 t
.graph
a0! a0?
a0? s0!
s0! sel0_merge
a1! a1?
a1? s1!
s1! sel0_merge
q0! q0?
q0? sel0_split
q1! q1?
q1? t!
t! t?
t? q0!
s0? a0!
s1? a1!
sel0_merge q1!
sel0_split s0? s1?
.marking { <t!,t?> }
.end
