# asynth-fuzz counterexample (minimised)
# oracle: csp-frontend
# profile: deep
# family: plain
# diagnosis: pinned: sequence/parallel tree vs its rendered CSP text
# replay: asynth fuzz --replay cex_csp_frontend_seqpar.g
.model shrunk
.channels a0 a1 a2 t
.graph
a0! a0?
a0? a1! a2!
a1! a1?
a2! a2?
a1? t!
a2? t!
t! t?
t? a0!
.marking { <t!,t?> }
.end
