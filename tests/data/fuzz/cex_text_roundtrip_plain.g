# asynth-fuzz counterexample (minimised)
# oracle: text-roundtrip
# profile: deep
# family: plain
# diagnosis: regression: results depended on internal transition numbering before the pipeline canonicalised its input
# replay: asynth fuzz --replay cex_text_roundtrip_plain.g
.model shrunk
.channels a0 t
.graph
a0! a0?
a0? t!
t! t?
t? a0!
.marking { <t!,t?> }
.end
