# asynth-fuzz counterexample (minimised)
# oracle: engines
# profile: deep
# family: arbiter
# diagnosis: pinned: minimal non-free-choice arbitration shape through both engines
# replay: asynth fuzz --replay cex_engines_arbiter.g
.model shrunk
.channels a0 a1 m0 m1 t
.graph
a0! a0?
a0? m0!
m0! m0?
m0? arb0_mutex t!
t! t?
t? a0! a1!
a1! a1?
a1? m1!
m1! m1?
m1? arb0_mutex t!
arb0_mutex m0! m1!
.marking { arb0_mutex <t!,t?> }
.end
