// Cube/cover algebra and the two minimisers, cross-checked against brute
// force truth tables on random functions; plus the incremental cover engine
// (restrict-and-repair, literal bounds) against a brute-force
// literal-optimal cover.
#include <gtest/gtest.h>

#include "boolfn/cover.hpp"
#include "boolfn/incremental_cover.hpp"
#include "util/hash.hpp"

using namespace asynth;

namespace {

dyn_bitset point(std::size_t n, uint64_t bits) {
    dyn_bitset p(n);
    for (std::size_t i = 0; i < n; ++i)
        if (bits & (1ULL << i)) p.set(i);
    return p;
}

/// Random partial function over n vars: each minterm is ON / OFF / DC.
sop_spec random_spec(std::size_t n, uint64_t seed, double p_on = 0.3, double p_off = 0.4) {
    xorshift64 rng(seed);
    sop_spec s;
    s.nvars = n;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
        const double r = rng.next_unit();
        if (r < p_on) s.on.push_back(point(n, m));
        else if (r < p_on + p_off) s.off.push_back(point(n, m));
    }
    return s;
}

}  // namespace

TEST(cube, literal_and_cover_basics) {
    cube c(3);
    EXPECT_EQ(c.literal_count(), 0u);
    c.set_literal(0, true);
    c.set_literal(2, false);
    EXPECT_EQ(c.literal_count(), 2u);
    EXPECT_EQ(c.literal(0), 1);
    EXPECT_EQ(c.literal(1), 0);
    EXPECT_EQ(c.literal(2), -1);
    EXPECT_TRUE(c.covers(point(3, 0b001)));   // a=1, b=0, c=0
    EXPECT_TRUE(c.covers(point(3, 0b011)));   // a=1, b=1, c=0
    EXPECT_FALSE(c.covers(point(3, 0b101)));  // c=1 violates c'
    EXPECT_FALSE(c.covers(point(3, 0b000)));  // a=0 violates a
    EXPECT_EQ(c.to_string({"a", "b", "c"}), "a c'");
}

TEST(cube, containment_and_intersection) {
    cube wide(3);
    wide.set_literal(0, true);  // a
    cube narrow(3);
    narrow.set_literal(0, true);
    narrow.set_literal(1, false);  // a b'
    EXPECT_TRUE(wide.contains(narrow));
    EXPECT_FALSE(narrow.contains(wide));
    EXPECT_TRUE(wide.intersects(narrow));
    cube other(3);
    other.set_literal(0, false);  // a'
    EXPECT_FALSE(wide.intersects(other));
    EXPECT_TRUE(cube(3).contains(wide));  // universal cube contains all
}

TEST(minimize, single_cube_function) {
    // f = a (on: a=1 minterms; off: a=0 minterms) over 3 vars.
    sop_spec s;
    s.nvars = 3;
    for (uint64_t m = 0; m < 8; ++m)
        (m & 1 ? s.on : s.off).push_back(point(3, m));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 1u);
    EXPECT_EQ(c.cubes[0].literal(0), 1);
    EXPECT_TRUE(verify_cover(c, s));
}

TEST(minimize, dont_cares_enable_merging) {
    // ON = {000}, OFF = {111}: everything else DC -> one 1-literal cube.
    sop_spec s;
    s.nvars = 3;
    s.on.push_back(point(3, 0b000));
    s.off.push_back(point(3, 0b111));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 1u);
    EXPECT_TRUE(verify_cover(c, s));
}

TEST(minimize, xor_needs_two_cubes) {
    sop_spec s;
    s.nvars = 2;
    s.on = {point(2, 0b01), point(2, 0b10)};
    s.off = {point(2, 0b00), point(2, 0b11)};
    auto h = minimize_heuristic(s);
    EXPECT_EQ(h.cubes.size(), 2u);
    EXPECT_EQ(h.literal_count(), 4u);
    EXPECT_TRUE(verify_cover(h, s));
    bool exact = false;
    auto e = minimize_exact(s, exact_limits{}, &exact);
    EXPECT_TRUE(exact);
    EXPECT_EQ(e.cubes.size(), 2u);
}

TEST(minimize, empty_on_set_gives_constant_zero) {
    sop_spec s;
    s.nvars = 4;
    s.off.push_back(point(4, 3));
    EXPECT_TRUE(minimize_heuristic(s).cubes.empty());
    EXPECT_TRUE(minimize_exact(s).cubes.empty());
}

TEST(minimize, tautology_when_off_empty) {
    sop_spec s;
    s.nvars = 3;
    for (uint64_t m = 0; m < 8; ++m) s.on.push_back(point(3, m));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 0u);  // the universal cube
}

class minimize_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(minimize_random, heuristic_and_exact_are_correct) {
    const uint64_t seed = GetParam();
    const std::size_t n = 3 + seed % 4;  // 3..6 variables
    auto spec = random_spec(n, seed * 77 + 13);
    auto h = minimize_heuristic(spec, 4);
    EXPECT_TRUE(verify_cover(h, spec)) << "heuristic broken, seed " << seed;
    bool exact = false;
    auto e = minimize_exact(spec, exact_limits{}, &exact);
    EXPECT_TRUE(verify_cover(e, spec)) << "exact broken, seed " << seed;
    // Exact never does worse than the heuristic (cube count first).
    if (exact) {
        EXPECT_LE(e.cubes.size(), h.cubes.size()) << "seed " << seed;
    }
    if (spec.on.empty()) {
        EXPECT_TRUE(h.cubes.empty());
    } else {
        EXPECT_GE(h.cubes.size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, minimize_random, ::testing::Range<uint64_t>(0, 40));

// ---- incremental covers + literal bounds -----------------------------------

namespace {

/// Minimum literal count over ALL valid covers of @p spec, by exhaustive
/// branch and bound over every cube of the (tiny) variable universe.  This is
/// the quantity literal_bounds brackets -- note it can be *smaller* than
/// minimize_exact's literal count, which optimises cube count first.
std::size_t optimal_literal_count(const sop_spec& spec) {
    if (spec.on.empty()) return 0;
    // All 3^n cubes that avoid the OFF-set and cover at least one ON minterm.
    std::vector<cube> valid;
    std::vector<uint64_t> covers_on;  // bitmask over spec.on per valid cube
    std::vector<int> digits(spec.nvars, 0);
    for (;;) {
        cube c(spec.nvars);
        for (std::size_t v = 0; v < spec.nvars; ++v)
            if (digits[v] != 0) c.set_literal(v, digits[v] == 1);
        bool hits_off = false;
        for (const auto& o : spec.off)
            if (c.covers(o)) {
                hits_off = true;
                break;
            }
        if (!hits_off) {
            uint64_t mask = 0;
            for (std::size_t m = 0; m < spec.on.size(); ++m)
                if (c.covers(spec.on[m])) mask |= uint64_t{1} << m;
            if (mask != 0) {
                valid.push_back(c);
                covers_on.push_back(mask);
            }
        }
        std::size_t v = 0;
        while (v < spec.nvars && digits[v] == 2) digits[v++] = 0;
        if (v == spec.nvars) break;
        ++digits[v];
    }
    const uint64_t all = spec.on.size() >= 64 ? ~uint64_t{0}
                                              : (uint64_t{1} << spec.on.size()) - 1;
    std::size_t best = SIZE_MAX;
    // DFS on the first uncovered minterm, bounded by the best literal total.
    auto dfs = [&](auto&& self, uint64_t covered, std::size_t lits) -> void {
        if (lits >= best) return;
        if ((covered & all) == all) {
            best = lits;
            return;
        }
        const auto pick = static_cast<std::size_t>(
            std::countr_zero(~covered & all));
        for (std::size_t c = 0; c < valid.size(); ++c)
            if (covers_on[c] & (uint64_t{1} << pick))
                self(self, covered | covers_on[c], lits + valid[c].literal_count());
    };
    dfs(dfs, 0, 0);
    return best;
}

/// Drops a pseudo-random subset of ON/OFF minterms -- the shape of spec drift
/// the search produces (pruned states leave the reachable set, so codes move
/// to the don't-care set).
sop_spec restrict_spec(const sop_spec& spec, uint64_t seed, double p_drop = 0.3) {
    xorshift64 rng(seed);
    sop_spec out;
    out.nvars = spec.nvars;
    for (const auto& m : spec.on)
        if (!rng.next_bool(p_drop)) out.on.push_back(m);
    for (const auto& m : spec.off)
        if (!rng.next_bool(p_drop)) out.off.push_back(m);
    return out;
}

}  // namespace

TEST(bounds, empty_sides_cost_nothing) {
    sop_spec none;
    none.nvars = 4;
    none.off.push_back(point(4, 5));
    EXPECT_EQ(bound_literals(none).lower, 0u);  // constant 0
    EXPECT_EQ(bound_literals(none).upper, 0u);
    sop_spec taut;
    taut.nvars = 4;
    taut.on.push_back(point(4, 5));
    EXPECT_EQ(bound_literals(taut).lower, 0u);  // the universal cube
    EXPECT_EQ(bound_literals(taut).upper, 0u);
}

TEST(bounds, forced_literals_are_detected) {
    // ON = {000}, OFF = {100, 010}: distance-1 OFF minterms force a' and b'
    // into every cube covering 000 -> lower >= 2.
    sop_spec s;
    s.nvars = 3;
    s.on.push_back(point(3, 0b000));
    s.off.push_back(point(3, 0b001));
    s.off.push_back(point(3, 0b010));
    const auto b = bound_literals(s);
    EXPECT_EQ(b.lower, 2u);
    EXPECT_EQ(optimal_literal_count(s), 2u);
    EXPECT_GE(b.upper, 2u);
}

class bounds_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(bounds_random, bracket_the_literal_optimum) {
    const uint64_t seed = GetParam();
    const std::size_t n = 3 + seed % 2;  // 3..4 variables (brute force stays tiny)
    auto spec = random_spec(n, seed * 1031 + 7);
    if (spec.on.empty()) return;
    const std::size_t optimum = optimal_literal_count(spec);
    const auto cold = bound_literals(spec);
    EXPECT_LE(cold.lower, optimum) << "seed " << seed;
    EXPECT_GE(cold.upper, optimum) << "seed " << seed;
    // Sound against every valid cover, in particular both minimisers'.
    EXPECT_LE(cold.lower, minimize_heuristic(spec, 2).literal_count()) << "seed " << seed;
    EXPECT_LE(cold.lower, minimize_exact(spec).literal_count()) << "seed " << seed;

    // Warm-start: repair the cover of a *drifted* predecessor spec; the
    // bracket must still hold and the upper bound must not loosen.
    auto warm = minimize_heuristic(random_spec(n, seed * 919 + 3), 2);
    const auto warmed = bound_literals(spec, warm);
    EXPECT_EQ(warmed.lower, cold.lower) << "seed " << seed;
    EXPECT_GE(warmed.upper, optimum) << "seed " << seed;
    EXPECT_LE(warmed.upper, cold.upper) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(seeds, bounds_random, ::testing::Range<uint64_t>(0, 30));

class rebase_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(rebase_random, repaired_cover_is_valid_and_accounted) {
    const uint64_t seed = GetParam();
    const std::size_t n = 3 + seed % 4;  // 3..6 variables
    auto before = random_spec(n, seed * 577 + 11);
    if (before.on.empty()) return;
    incremental_cover ic(minimize_heuristic(before, 2));
    const std::size_t seeded = ic.cubes().cubes.size();

    // Drift 1: a pure restriction (minterms leave both sides).  No kept cube
    // can turn invalid, so nothing is repaired, dropped or added.
    auto restricted = restrict_spec(before, seed * 13 + 1);
    auto st = ic.rebase(restricted);
    EXPECT_TRUE(verify_cover(ic.cubes(), restricted)) << "seed " << seed;
    EXPECT_EQ(st.kept, seeded) << "seed " << seed;
    EXPECT_EQ(st.repaired, 0u) << "seed " << seed;
    EXPECT_EQ(st.dropped, 0u) << "seed " << seed;
    EXPECT_EQ(st.added, 0u) << "seed " << seed;
    EXPECT_LE(ic.literal_count(), n * restricted.on.size()) << "seed " << seed;

    // Drift 2: an unrelated spec (worst case -- wholesale invalidation).
    // The repaired result must still be a valid cover, and the stats must
    // account for every seeded cube.
    auto after = random_spec(n, seed * 7919 + 5);
    const std::size_t base = ic.cubes().cubes.size();
    st = ic.rebase(after);
    EXPECT_TRUE(verify_cover(ic.cubes(), after)) << "seed " << seed;
    EXPECT_EQ(st.kept + st.repaired + st.dropped, base) << "seed " << seed;
    if (after.on.empty()) EXPECT_TRUE(ic.cubes().cubes.empty());
}

INSTANTIATE_TEST_SUITE_P(seeds, rebase_random, ::testing::Range<uint64_t>(0, 30));
