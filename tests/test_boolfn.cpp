// Cube/cover algebra and the two minimisers, cross-checked against brute
// force truth tables on random functions.
#include <gtest/gtest.h>

#include "boolfn/cover.hpp"
#include "util/hash.hpp"

using namespace asynth;

namespace {

dyn_bitset point(std::size_t n, uint64_t bits) {
    dyn_bitset p(n);
    for (std::size_t i = 0; i < n; ++i)
        if (bits & (1ULL << i)) p.set(i);
    return p;
}

/// Random partial function over n vars: each minterm is ON / OFF / DC.
sop_spec random_spec(std::size_t n, uint64_t seed, double p_on = 0.3, double p_off = 0.4) {
    xorshift64 rng(seed);
    sop_spec s;
    s.nvars = n;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
        const double r = rng.next_unit();
        if (r < p_on) s.on.push_back(point(n, m));
        else if (r < p_on + p_off) s.off.push_back(point(n, m));
    }
    return s;
}

}  // namespace

TEST(cube, literal_and_cover_basics) {
    cube c(3);
    EXPECT_EQ(c.literal_count(), 0u);
    c.set_literal(0, true);
    c.set_literal(2, false);
    EXPECT_EQ(c.literal_count(), 2u);
    EXPECT_EQ(c.literal(0), 1);
    EXPECT_EQ(c.literal(1), 0);
    EXPECT_EQ(c.literal(2), -1);
    EXPECT_TRUE(c.covers(point(3, 0b001)));   // a=1, b=0, c=0
    EXPECT_TRUE(c.covers(point(3, 0b011)));   // a=1, b=1, c=0
    EXPECT_FALSE(c.covers(point(3, 0b101)));  // c=1 violates c'
    EXPECT_FALSE(c.covers(point(3, 0b000)));  // a=0 violates a
    EXPECT_EQ(c.to_string({"a", "b", "c"}), "a c'");
}

TEST(cube, containment_and_intersection) {
    cube wide(3);
    wide.set_literal(0, true);  // a
    cube narrow(3);
    narrow.set_literal(0, true);
    narrow.set_literal(1, false);  // a b'
    EXPECT_TRUE(wide.contains(narrow));
    EXPECT_FALSE(narrow.contains(wide));
    EXPECT_TRUE(wide.intersects(narrow));
    cube other(3);
    other.set_literal(0, false);  // a'
    EXPECT_FALSE(wide.intersects(other));
    EXPECT_TRUE(cube(3).contains(wide));  // universal cube contains all
}

TEST(minimize, single_cube_function) {
    // f = a (on: a=1 minterms; off: a=0 minterms) over 3 vars.
    sop_spec s;
    s.nvars = 3;
    for (uint64_t m = 0; m < 8; ++m)
        (m & 1 ? s.on : s.off).push_back(point(3, m));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 1u);
    EXPECT_EQ(c.cubes[0].literal(0), 1);
    EXPECT_TRUE(verify_cover(c, s));
}

TEST(minimize, dont_cares_enable_merging) {
    // ON = {000}, OFF = {111}: everything else DC -> one 1-literal cube.
    sop_spec s;
    s.nvars = 3;
    s.on.push_back(point(3, 0b000));
    s.off.push_back(point(3, 0b111));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 1u);
    EXPECT_TRUE(verify_cover(c, s));
}

TEST(minimize, xor_needs_two_cubes) {
    sop_spec s;
    s.nvars = 2;
    s.on = {point(2, 0b01), point(2, 0b10)};
    s.off = {point(2, 0b00), point(2, 0b11)};
    auto h = minimize_heuristic(s);
    EXPECT_EQ(h.cubes.size(), 2u);
    EXPECT_EQ(h.literal_count(), 4u);
    EXPECT_TRUE(verify_cover(h, s));
    bool exact = false;
    auto e = minimize_exact(s, exact_limits{}, &exact);
    EXPECT_TRUE(exact);
    EXPECT_EQ(e.cubes.size(), 2u);
}

TEST(minimize, empty_on_set_gives_constant_zero) {
    sop_spec s;
    s.nvars = 4;
    s.off.push_back(point(4, 3));
    EXPECT_TRUE(minimize_heuristic(s).cubes.empty());
    EXPECT_TRUE(minimize_exact(s).cubes.empty());
}

TEST(minimize, tautology_when_off_empty) {
    sop_spec s;
    s.nvars = 3;
    for (uint64_t m = 0; m < 8; ++m) s.on.push_back(point(3, m));
    auto c = minimize_heuristic(s);
    ASSERT_EQ(c.cubes.size(), 1u);
    EXPECT_EQ(c.literal_count(), 0u);  // the universal cube
}

class minimize_random : public ::testing::TestWithParam<uint64_t> {};

TEST_P(minimize_random, heuristic_and_exact_are_correct) {
    const uint64_t seed = GetParam();
    const std::size_t n = 3 + seed % 4;  // 3..6 variables
    auto spec = random_spec(n, seed * 77 + 13);
    auto h = minimize_heuristic(spec, 4);
    EXPECT_TRUE(verify_cover(h, spec)) << "heuristic broken, seed " << seed;
    bool exact = false;
    auto e = minimize_exact(spec, exact_limits{}, &exact);
    EXPECT_TRUE(verify_cover(e, spec)) << "exact broken, seed " << seed;
    // Exact never does worse than the heuristic (cube count first).
    if (exact) {
        EXPECT_LE(e.cubes.size(), h.cubes.size()) << "seed " << seed;
    }
    if (spec.on.empty()) {
        EXPECT_TRUE(h.cubes.empty());
    } else {
        EXPECT_GE(h.cubes.size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, minimize_random, ::testing::Range<uint64_t>(0, 40));
