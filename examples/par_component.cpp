// The PAR component case study (paper section 8, Fig. 10).
//
// The Tangram PAR component starts two subprocesses in parallel when its
// passive port is activated.  This example reproduces the paper's flow:
// automatic 4-phase expansion, concurrency reduction preserving b? || c?
// (so both subprocesses still run in parallel), CSC resolution and
// synthesis -- then compares against the manual Tangram-style circuit.
#include <cstdio>

#include "benchmarks/corpus.hpp"
#include "core/flow.hpp"
#include "core/search.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;

int main() {
    auto spec = benchmarks::par_component();
    std::printf("PAR specification (passive a; active b, c):\n%s\n", write_astg(spec).c_str());

    auto expanded = expand_handshakes(spec);
    auto sg = state_graph::generate(expanded).graph;
    std::printf("4-phase expansion: %zu states, %zu concurrent event pairs\n\n",
                sg.state_count(), count_concurrent_pairs(subgraph::full(sg)));

    // Keep_Conc: the acknowledgments of both subprocesses stay concurrent.
    auto sig = [&](const char* n) {
        return static_cast<int32_t>(*expanded.find_signal(n));
    };
    std::vector<std::pair<sg_event, sg_event>> keep = {
        {sg_event{sig("bi"), edge::plus}, sg_event{sig("ci"), edge::plus}}};

    // Logic-biased beam search followed by greedy completion.
    search_options so;
    so.cost.w = 1.0;
    so.size_frontier = 8;
    so.keep_concurrent = keep;
    auto base = std::make_shared<const state_graph>(sg);
    auto beam = reduce_concurrency(subgraph::full(*base), so);
    so.cost.w = 0.5;
    auto full = reduce_fully(beam.best, so);
    std::printf("reduction: explored %zu configurations, kept b? || c? concurrent: %s\n",
                beam.explored + full.explored,
                concurrent_by_diamond(full.best, *base->find_event(sig("bi"), edge::plus),
                                      *base->find_event(sig("ci"), edge::plus))
                    ? "yes" : "no");

    flow_options fo;
    fo.strategy = reduction_strategy::none;
    fo.recover = true;
    auto rep = run_flow_from_sg(full.best.materialize(), fo);
    if (rep.synth.ok) {
        std::printf("\nautomatic circuit (area %.0f, %zu state signal(s)):\n", rep.area(),
                    rep.csc_signals());
        for (const auto& i : rep.synth.ckt.impls) std::printf("  %s\n", i.equation.c_str());
    }
    if (rep.recovered.ok)
        std::printf("\nreshuffled STG (paper Fig. 10.d):\n%s",
                    write_astg(rep.recovered.net).c_str());

    flow_options manual_opts;
    manual_opts.strategy = reduction_strategy::none;
    auto manual = run_flow_from_sg(state_graph::generate(benchmarks::par_manual()).graph,
                                   manual_opts);
    if (manual.synth.ok) {
        std::printf("\nmanual Tangram-style circuit (area %.0f):\n", manual.area());
        for (const auto& i : manual.synth.ckt.impls) std::printf("  %s\n", i.equation.c_str());
    }
    return 0;
}
