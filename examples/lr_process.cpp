// The LR process walk-through (paper sections 3 and 8, Table 1).
//
// Starting from the channel-level specification l? -> r! -> r? -> l!, this
// example runs the complete flow: 4-phase handshake expansion with maximal
// reset concurrency, Fig. 9 concurrency reduction, CSC resolution, logic
// synthesis and timing -- and contrasts three implementations:
// maximum concurrency, the automatic best, and the hand-made Q-module.
#include <cstdio>

#include "benchmarks/corpus.hpp"
#include "core/flow.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;

namespace {

void describe(const char* tag, const flow_report& rep) {
    std::printf("\n--- %s ---\n", tag);
    std::printf("reduced SG: %zu states, %zu concurrent pairs, %zu CSC conflict pairs\n",
                rep.reduced.live_state_count(), count_concurrent_pairs(rep.reduced),
                rep.reduced_cost.csc_pairs);
    std::printf("state signals inserted: %zu\n", rep.csc_signals());
    if (rep.synth.ok) {
        std::printf("area: %.0f units, critical cycle: %.1f units, %zu input events\n",
                    rep.area(), rep.cycle(), rep.input_events());
        for (const auto& i : rep.synth.ckt.impls) std::printf("  %s\n", i.equation.c_str());
    } else {
        std::printf("synthesis failed: %s\n", rep.synth.message.c_str());
    }
}

}  // namespace

int main() {
    auto spec = benchmarks::lr_process();
    std::printf("channel-level specification:\n%s", write_astg(spec).c_str());

    {
        flow_options o;
        o.strategy = reduction_strategy::none;
        describe("maximum concurrency (no reshuffling)", run_flow(spec, o));
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = 0.2;
        o.search.size_frontier = 6;
        o.recover = true;
        auto rep = run_flow(spec, o);
        describe("automatic reshuffling (beam search)", rep);
        if (rep.recovered.ok)
            std::printf("\nrecovered STG for the best reduction:\n%s",
                        write_astg(rep.recovered.net).c_str());
    }
    {
        flow_options o;
        o.strategy = reduction_strategy::none;
        describe("Q-module (hand design, for comparison)",
                 run_flow_from_sg(state_graph::generate(benchmarks::qmodule_lr()).graph, o));
    }
    return 0;
}
