// A command-line front end for the whole flow: reads an extended .g
// specification (from a file argument or stdin), expands it, reshuffles,
// resolves CSC, synthesises and prints the results.
//
//   ./custom_spec spec.g [W] [frontier]
//
// The format accepts .inputs/.outputs/.internal signal declarations plus
// the extensions .channels, .partial, .initial and .keepconc (see
// petri/astg_io.hpp).  Examples:
//
//   .model wine_shop
//   .channels shop
//   .outputs lamp
//   .partial lamp
//   .graph
//   shop? lamp+
//   lamp+ shop!
//   shop! shop?
//   .marking { <shop!,shop?> }
//   .end
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/flow.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;

int main(int argc, char** argv) {
    std::string text;
    if (argc > 1 && std::string(argv[1]) != "-") {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    } else {
        // Built-in demo spec: a wine-shop style controller.
        text = R"(.model wine_shop
.channels shop
.outputs lamp
.partial lamp
.graph
shop? lamp+
lamp+ shop!
shop! shop?
.marking { <shop!,shop?> }
.end
)";
        std::printf("(no file given; using the built-in demo spec)\n");
    }

    flow_options o;
    o.strategy = reduction_strategy::beam;
    o.search.cost.w = argc > 2 ? std::atof(argv[2]) : 0.5;
    o.search.size_frontier = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;
    o.recover = true;

    try {
        auto spec = parse_astg(text);
        auto rep = run_flow(spec, o);
        std::printf("expanded STG:\n%s\n", write_astg(rep.expanded).c_str());
        std::printf("state graph: %zu states -> reduced to %zu (cost %.1f -> %.1f)\n",
                    rep.base_sg->state_count(), rep.reduced.live_state_count(),
                    rep.initial_cost.value, rep.reduced_cost.value);
        std::printf("CSC: %zu state signal(s) inserted%s\n", rep.csc_signals(),
                    rep.csc.solved ? "" : (" [" + rep.csc.message + "]").c_str());
        if (rep.synth.ok) {
            std::printf("circuit (area %.0f, cycle %.1f):\n", rep.area(), rep.cycle());
            for (const auto& i : rep.synth.ckt.impls) std::printf("  %s\n", i.equation.c_str());
        } else {
            std::printf("synthesis failed: %s\n", rep.synth.message.c_str());
        }
        if (rep.recovered.ok)
            std::printf("\nrecovered STG:\n%s", write_astg(rep.recovered.net).c_str());
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
