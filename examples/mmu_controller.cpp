// The MMU controller exploration (paper section 8, Table 2).
//
// Demonstrates the extended .g front-end: channels and Keep_Conc pairs are
// declared directly in the specification text, and the flow explores the
// reshuffling space under different cost weights W.
#include <cstdio>

#include "core/flow.hpp"
#include "petri/astg_io.hpp"

using namespace asynth;

int main() {
    // An MMU-like controller: passive request channel r, lookup channel l,
    // then the memory (m) and bus-snoop (b) channels run in parallel.  The
    // .keepconc directive asks the reshuffler to preserve the concurrency
    // between the two parallel requests -- they are the performance-critical
    // events, exactly the designer input the paper's Fig. 9 takes.
    auto spec = parse_astg(R"(.model mmu_example
.channels r l m b
.graph
r? l!
l! l?
l? m! b!
m! m?
b! b?
m? r!
b? r!
r! r?
.marking { <r!,r?> }
.keepconc m! b!
.end
)");
    std::printf("specification:\n%s\n", write_astg(spec).c_str());

    for (double w : {0.1, 0.5, 1.0}) {
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = w;
        o.search.size_frontier = 2;
        o.csc.max_signals = 6;
        auto rep = run_flow(spec, o);
        std::printf("W = %.1f: explored %4zu SGs -> ", w, rep.search.explored);
        if (rep.synth.ok)
            std::printf("area %4.0f, %zu CSC signal(s), cycle %.0f, %zu input events\n",
                        rep.area(), rep.csc_signals(), rep.cycle(), rep.input_events());
        else
            std::printf("synthesis failed: %s\n", rep.synth.message.c_str());
    }

    // Show the initial (maximally concurrent) baseline for contrast.  The
    // CSC beam is narrowed to keep the example fast: the unreduced SG is the
    // most expensive one to encode.
    flow_options o;
    o.strategy = reduction_strategy::none;
    o.csc.max_signals = 6;
    o.csc.beam_width = 1;
    auto rep = run_flow(spec, o);
    if (rep.synth.ok)
        std::printf("no reduction: area %4.0f, %zu CSC signal(s), cycle %.0f\n", rep.area(),
                    rep.csc_signals(), rep.cycle());
    return 0;
}
