// Quickstart: build a small STG with the programmatic API, generate its
// state graph, and run the implementability checks of paper section 2.
//
// The example is the paper's Fig. 1 controller between an asynchronous
// memory and a processor: the processor raises Req, the controller answers
// with Ack, and the processor may start a new cycle without waiting for Ack
// to reset.  The resulting state graph is consistent and speed-independent
// but violates Complete State Coding -- states 11* and 1*1 share a binary
// code with different enabled outputs.
#include <cstdio>

#include "benchmarks/corpus.hpp"
#include "petri/astg_io.hpp"
#include "pipeline/pipeline.hpp"
#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"

using namespace asynth;

int main() {
    // A specification is a signal transition graph: signals + labelled
    // transitions + places.  parse_astg() accepts the petrify .g format;
    // here we use the ready-made corpus entry (see benchmarks/corpus.cpp
    // for the text).
    stg net = benchmarks::fig1_controller();
    std::printf("specification:\n%s\n", write_astg(net).c_str());

    // Token game -> state graph with binary codes.
    auto gen = state_graph::generate(net);
    const state_graph& sg = gen.graph;
    auto g = subgraph::full(sg);
    std::printf("state graph: %zu states, %zu arcs\n", sg.state_count(), sg.arc_count());
    for (uint32_t s = 0; s < sg.state_count(); ++s)
        std::printf("  s%u: %s\n", s, sg.state_code_string(s).c_str());

    // Implementability checks.
    std::printf("\nconsistent: %s\n", check_consistency(g) ? "yes" : "no");
    auto si = check_speed_independence(g);
    std::printf("speed-independent: %s\n", si.ok() ? "yes" : "no");
    auto csc = check_csc(g, 4);
    std::printf("CSC conflict pairs: %zu\n", csc.conflict_pairs);
    for (const auto& c : csc.examples)
        std::printf("  %s vs %s share a code but enable different outputs\n",
                    sg.state_code_string(c.state_a).c_str(),
                    sg.state_code_string(c.state_b).c_str());

    // Concurrency: Req+ and Ack- have intersecting excitation regions.
    auto reqp = *sg.find_event(*net.find_signal("Req"), edge::plus);
    auto ackm = *sg.find_event(*net.find_signal("Ack"), edge::minus);
    std::printf("Req+ || Ack-: %s\n",
                concurrent_by_diamond(g, reqp, ackm) ? "concurrent" : "ordered");

    // Graphviz output for inspection.
    std::printf("\nDOT rendering of the state graph:\n%s", write_dot(g).c_str());

    // All of the above (plus reduction, CSC, synthesis, timing and STG
    // recovery) is one call through the pipeline -- the same entry point the
    // asynth CLI uses.  Fig. 1 "completes with a verdict": its CSC conflict
    // is separated only by input events, the paper's motivating observation.
    std::printf("\nThe full flow in one call:\n%s",
                pipeline_summary(run_pipeline(net)).c_str());
    return 0;
}
