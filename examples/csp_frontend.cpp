// The CSP-like front end (paper section 1, design scenario 2): describe the
// behaviour as channel actions, let the tool do everything else.
//
//   ./csp_frontend                      # runs the built-in demo processes
//   ./csp_frontend "p = a? ; b! ; a!"   # or pass your own process text
#include <cstdio>

#include "core/flow.hpp"
#include "petri/astg_io.hpp"
#include "spec/csp.hpp"

using namespace asynth;

namespace {

void synthesise(const char* text) {
    std::printf("\nprocess: %s\n", text);
    try {
        auto spec = parse_csp(text);
        flow_options o;
        o.strategy = reduction_strategy::beam;
        o.search.cost.w = 0.3;
        o.search.size_frontier = 4;
        auto rep = run_flow(spec, o);
        if (!rep.synth.ok) {
            std::printf("  synthesis failed: %s\n", rep.synth.message.c_str());
            return;
        }
        std::printf("  expanded to %zu states, reduced to %zu; area %.0f, cycle %.1f\n",
                    rep.base_sg->state_count(), rep.reduced.live_state_count(), rep.area(),
                    rep.cycle());
        for (const auto& i : rep.synth.ckt.impls) std::printf("  %s\n", i.equation.c_str());
    } catch (const error& e) {
        std::printf("  error: %s\n", e.what());
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1) {
        synthesise(argv[1]);
        return 0;
    }
    // The paper's two case studies, straight from CSP-like text.
    synthesise("lr = l? ; r! ; r? ; l!");
    synthesise("par = a? ; (b! ; b?) || (c! ; c?) ; a!");
    // A three-way sequencer.
    synthesise("seq3 = t? ; a! ; a? ; b! ; b? ; c! ; c? ; t!");
    return 0;
}
