// The fuzzing loop: deterministic iteration scheduling, family/oracle
// coverage, parallel checking, shrinking and counterexample persistence.
#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "batch/pool.hpp"
#include "petri/astg_io.hpp"
#include "util/hash.hpp"

namespace asynth::fuzz {

namespace {

using benchmarks::generator_options;
using benchmarks::spec_node;

// ---- spec families ---------------------------------------------------------

struct family_def {
    const char* name;
    fuzz_profile profile;
    int min_size, max_size;
    /// Structurally CSP-renderable: sizes too small for a select to fire and
    /// no arbitration knob, so the csp-frontend oracle can use the family.
    bool csp_ok;
    generator_options base;  ///< knobs; size is drawn per iteration
};

std::vector<family_def> family_table() {
    std::vector<family_def> fams;
    {
        family_def f{"plain", fuzz_profile::deep, 2, 4, true, {}};
        fams.push_back(f);
    }
    {
        family_def f{"counter", fuzz_profile::deep, 2, 4, true, {}};
        f.base.counter = 0.6;
        fams.push_back(f);
    }
    {
        family_def f{"arbiter", fuzz_profile::deep, 4, 5, false, {}};
        f.base.arbitration = 0.7;
        f.base.concurrency = 0.7;
        fams.push_back(f);
    }
    {
        // Forced two-way selects: the smallest budget that affords one.  The
        // reduce search dwarfs every budget at these state counts, so the
        // family runs the shallow profile.
        family_def f{"choice2", fuzz_profile::shallow, 6, 6, false, {}};
        f.base.choice = 1.0;
        f.base.max_width = 2;
        fams.push_back(f);
    }
    {
        // Demanded 3-way selects need size >= 8 (~65k states): only in play
        // when --max-size raises the cap (the nightly sweep does).
        family_def f{"multiway", fuzz_profile::shallow, 8, 8, false, {}};
        f.base.choice = 1.0;
        f.base.min_choice_ways = 3;
        f.base.max_width = 1;
        f.base.concurrency = 0.0;
        fams.push_back(f);
    }
    return fams;
}

std::vector<oracle> enabled_oracles(uint32_t mask) {
    std::vector<oracle> out;
    for (std::size_t i = 0; i < oracle_count; ++i)
        if (mask & oracle_bit(static_cast<oracle>(i))) out.push_back(static_cast<oracle>(i));
    return out;
}

/// Everything one iteration decides and produces.  Deterministic in
/// (fuzz_options, i) regardless of worker scheduling.
struct iteration_outcome {
    oracle o = oracle::engines;
    fuzz_profile profile = fuzz_profile::deep;
    std::string family;
    spec_node recipe;
    std::string csp_text;   ///< csp oracle only
    std::string diagnosis;  ///< "" = oracle pair agreed
};

iteration_outcome run_one(const fuzz_options& opt, const std::vector<oracle>& oracles,
                          const std::vector<family_def>& fams, uint64_t i) {
    iteration_outcome out;
    out.o = oracles[i % oracles.size()];

    // Families compatible with this oracle and the size cap.
    std::vector<const family_def*> avail;
    for (const auto& f : fams) {
        if (f.min_size > opt.max_size) continue;
        if (out.o == oracle::csp_frontend && !f.csp_ok) continue;
        avail.push_back(&f);
    }
    // Oracle rotates fastest, family advances once per full oracle cycle:
    // every (oracle, family) combination is covered deterministically in
    // |oracles| * |families| iterations -- no drawn-index aliasing, and CI
    // coverage assertions cannot flake.
    const family_def& fam = *avail[(i / oracles.size()) % avail.size()];
    out.family = fam.name;
    out.profile = fam.profile;

    // Per-iteration PRNG stream: mixes seed and iteration so neighbouring
    // iterations and neighbouring seeds share nothing.
    xorshift64 rng(splitmix64(opt.seed * 0x9e3779b97f4a7c15ULL + i) | 1);
    generator_options go = fam.base;
    int cap = std::min(fam.max_size, opt.max_size);
    go.size = fam.min_size + static_cast<int>(rng.next_below(
                                 static_cast<uint64_t>(cap - fam.min_size + 1)));
    uint64_t spec_seed = rng.next();
    std::string name = "fuzz_i" + std::to_string(i);

    try {
        out.recipe = benchmarks::generate_recipe(spec_seed, go);
        stg spec = benchmarks::build_spec(out.recipe, name);
        if (out.o == oracle::csp_frontend) {
            out.csp_text = render_csp(out.recipe, name);
            out.diagnosis = check_csp_agreement(out.csp_text, spec);
        } else {
            out.diagnosis = check_oracle(out.o, spec, out.profile, opt.inject, opt.inject_net);
        }
    } catch (const error& e) {
        // Generation or an oracle leg threw: that is itself a finding -- the
        // generator promises every recipe materialises and the pipeline
        // promises it never throws.
        out.diagnosis = std::string("exception: ") + e.what();
    }
    return out;
}

/// Does the (shrunk candidate) recipe still fail *the same way*?  Mismatch
/// findings must keep mismatching and exception findings must keep throwing;
/// crossing between the two classes would let the shrinker walk away from
/// the original bug (shrink.hpp's contract).
bool recipe_fails(const spec_node& recipe, const iteration_outcome& ctx,
                  const fuzz_options& opt) {
    const bool want_exception = ctx.diagnosis.rfind("exception: ", 0) == 0;
    try {
        stg spec = benchmarks::build_spec(recipe, "shrunk");
        std::string diag = ctx.o == oracle::csp_frontend
                               ? check_csp_agreement(render_csp(recipe, "shrunk"), spec)
                               : check_oracle(ctx.o, spec, ctx.profile, opt.inject,
                                              opt.inject_net);
        return !want_exception && !diag.empty();
    } catch (const error&) {
        return want_exception;
    } catch (...) {
        return false;
    }
}

std::string sanitize_filename(std::string s) {
    for (char& c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
    return s;
}

/// Writes the minimised counterexample; returns the .g path ("" on failure).
std::string write_counterexample(const fuzz_options& opt, const finding& f) {
    std::error_code ec;
    std::filesystem::create_directories(opt.dir, ec);
    std::string stem = std::string("cex_") + sanitize_filename(oracle_name(f.o)) + "_s" +
                       std::to_string(opt.seed) + "_i" + std::to_string(f.iteration);
    std::string path = opt.dir + "/" + stem + ".g";
    std::string header;
    header += "# asynth-fuzz counterexample (minimised)\n";
    header += std::string("# oracle: ") + oracle_name(f.o) + "\n";
    header += std::string("# profile: ") + profile_name(f.profile) + "\n";
    header += "# family: " + f.family + "\n";
    header += "# diagnosis: " + f.diagnosis + "\n";
    header += "# repro: asynth fuzz --seed " + std::to_string(opt.seed) + " --budget " +
              std::to_string(f.iteration + 1) + "x --oracle " + oracle_name(f.o) + "\n";
    header += std::string("# replay: asynth fuzz --replay ") + stem + ".g\n";
    {
        std::ofstream out(path, std::ios::binary);
        if (!out) return "";
        out << header << f.spec_astg;
        if (!out) return "";
    }
    if (!f.csp_text.empty()) {
        std::ofstream csp(opt.dir + "/" + stem + ".csp", std::ios::binary);
        csp << f.csp_text << "\n";
    }
    return path;
}

}  // namespace

fuzz_report run_fuzz(const fuzz_options& opt) {
    fuzz_report report;
    auto oracles = enabled_oracles(opt.oracles & all_oracles);
    require(!oracles.empty(), "fuzz: no oracles enabled");
    require(opt.max_size >= 2, "fuzz: --max-size must be >= 2");
    auto fams = family_table();

    uint64_t iteration_budget = opt.iterations;
    double second_budget = opt.seconds;
    if (iteration_budget == 0 && second_budget <= 0.0) iteration_budget = 20;

    std::vector<std::pair<std::string, uint64_t>> family_counts;
    for (const auto& f : fams) family_counts.emplace_back(f.name, 0);

    batch::work_stealing_pool pool(std::max<std::size_t>(1, opt.jobs));
    auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };

    uint64_t next = 0;
    while (true) {
        if (iteration_budget != 0 && next >= iteration_budget) break;
        if (second_budget > 0.0 && elapsed() >= second_budget) break;
        std::size_t chunk = std::max<std::size_t>(1, opt.jobs);
        if (iteration_budget != 0)
            chunk = std::min<uint64_t>(chunk, iteration_budget - next);
        std::vector<iteration_outcome> outcomes(chunk);
        pool.run(chunk,
                 [&](std::size_t k) { outcomes[k] = run_one(opt, oracles, fams, next + k); });

        for (std::size_t k = 0; k < chunk; ++k) {
            auto& oc = outcomes[k];
            ++report.oracles[static_cast<std::size_t>(oc.o)].checks;
            for (auto& fc : family_counts)
                if (fc.first == oc.family) ++fc.second;
            if (oc.diagnosis.empty()) continue;

            ++report.oracles[static_cast<std::size_t>(oc.o)].mismatches;
            finding f;
            f.o = oc.o;
            f.profile = oc.profile;
            f.iteration = next + k;
            f.family = oc.family;
            f.diagnosis = oc.diagnosis;
            f.shrunk = shrink_recipe(
                oc.recipe, [&](const spec_node& cand) { return recipe_fails(cand, oc, opt); },
                opt.max_shrink_evals, &f.shrink);
            f.spec_astg = write_astg(benchmarks::build_spec(f.shrunk, "shrunk"));
            if (oc.o == oracle::csp_frontend) f.csp_text = render_csp(f.shrunk, "shrunk");
            if (!opt.dir.empty()) f.file = write_counterexample(opt, f);
            report.findings.push_back(std::move(f));
        }
        next += chunk;
    }
    report.iterations = next;
    report.seconds = elapsed();

    for (auto& fc : family_counts)
        if (fc.second > 0) report.families.push_back(fc);
    return report;
}

std::string fuzz_report::summary() const {
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf, "fuzz: %llu iterations in %.1fs\n",
                  static_cast<unsigned long long>(iterations), seconds);
    out += buf;
    for (std::size_t i = 0; i < oracle_count; ++i) {
        if (oracles[i].checks == 0) continue;
        std::snprintf(buf, sizeof buf, "  oracle %-16s checks %-6llu mismatches %llu\n",
                      oracle_name(static_cast<oracle>(i)),
                      static_cast<unsigned long long>(oracles[i].checks),
                      static_cast<unsigned long long>(oracles[i].mismatches));
        out += buf;
    }
    for (const auto& [name, count] : families) {
        std::snprintf(buf, sizeof buf, "  family %-16s specs  %llu\n", name.c_str(),
                      static_cast<unsigned long long>(count));
        out += buf;
    }
    for (const auto& f : findings) {
        std::snprintf(buf, sizeof buf, "  FINDING oracle %s iteration %llu (shrunk to %d ch): ",
                      oracle_name(f.o), static_cast<unsigned long long>(f.iteration),
                      f.shrunk.channels());
        out += buf;
        out += f.diagnosis;
        if (!f.file.empty()) out += " -> " + f.file;
        out += "\n";
    }
    out += findings.empty() ? "FUZZ OK\n" : "FUZZ FAIL\n";
    return out;
}

std::string replay_text(const std::string& astg_text, const std::string& csp_text,
                        uint32_t oracles, fuzz_profile profile) {
    stg spec = parse_astg(astg_text);
    std::string all;
    for (std::size_t i = 0; i < oracle_count; ++i) {
        auto o = static_cast<oracle>(i);
        if (!(oracles & oracle_bit(o))) continue;
        std::string diag;
        if (o == oracle::csp_frontend) {
            if (csp_text.empty()) continue;  // no paired .csp: nothing to compare
            diag = check_csp_agreement(csp_text, spec);
        } else {
            diag = check_oracle(o, spec, profile);
        }
        if (!diag.empty()) all += std::string(oracle_name(o)) + ": " + diag + "\n";
    }
    return all;
}

}  // namespace asynth::fuzz
