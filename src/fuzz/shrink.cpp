#include "fuzz/shrink.hpp"

#include <utility>
#include <vector>

namespace asynth::fuzz {

namespace {

using benchmarks::spec_node;
using node_kind = spec_node::kind;

bool is_leaf(const spec_node& n) {
    return n.k == node_kind::call || n.k == node_kind::counter;
}

spec_node* at(spec_node& root, const std::vector<std::size_t>& path) {
    spec_node* n = &root;
    for (std::size_t i : path) n = &n->children[i];
    return n;
}

/// One tree-surgery step at a path.  Ordered most-aggressive-first within a
/// node: cutting a whole subtree down to a call removes more than hoisting a
/// child, which removes more than dropping one branch or one counter step.
struct cut {
    enum class op : uint8_t { to_call, hoist, drop, shorten } o = op::to_call;
    std::vector<std::size_t> path;
    std::size_t child = 0;  ///< hoist/drop target
};

/// All cuts of @p root, preorder (root first, so the biggest subtrees are
/// tried first) and most-aggressive-first per node.
void enumerate(const spec_node& n, std::vector<std::size_t>& path, std::vector<cut>& out) {
    if (n.k == node_kind::counter) {
        // repeats 2 -> a call (to_call); longer counters lose one step first.
        if (n.repeats > 2) out.push_back({cut::op::shorten, path, 0});
        out.push_back({cut::op::to_call, path, 0});
        return;
    }
    if (!is_leaf(n)) {
        out.push_back({cut::op::to_call, path, 0});
        for (std::size_t i = 0; i < n.children.size(); ++i)
            out.push_back({cut::op::hoist, path, i});
        // Dropping keeps the node kind, so two children must survive for
        // choice/arbitration to stay well-formed; a 2-child drop is the same
        // result as hoisting the sibling, already enumerated above.
        if (n.children.size() > 2)
            for (std::size_t i = 0; i < n.children.size(); ++i)
                out.push_back({cut::op::drop, path, i});
    }
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        path.push_back(i);
        enumerate(n.children[i], path, out);
        path.pop_back();
    }
}

spec_node apply(const spec_node& root, const cut& c) {
    spec_node copy = root;
    spec_node* n = at(copy, c.path);
    switch (c.o) {
        case cut::op::to_call:
            *n = spec_node{};
            break;
        case cut::op::shorten:
            --n->repeats;
            break;
        case cut::op::hoist:
            *n = std::move(n->children[c.child]);
            break;
        case cut::op::drop:
            n->children.erase(n->children.begin() + static_cast<std::ptrdiff_t>(c.child));
            break;
    }
    return copy;
}

}  // namespace

benchmarks::spec_node shrink_recipe(
    benchmarks::spec_node failing,
    const std::function<bool(const benchmarks::spec_node&)>& still_fails,
    std::size_t max_evaluations, shrink_stats* stats) {
    shrink_stats local;
    bool progressed = true;
    while (progressed && local.evaluations < max_evaluations) {
        progressed = false;
        std::vector<cut> cuts;
        std::vector<std::size_t> path;
        enumerate(failing, path, cuts);
        for (const cut& c : cuts) {
            if (local.evaluations >= max_evaluations) break;
            spec_node candidate = apply(failing, c);
            ++local.evaluations;
            if (still_fails(candidate)) {
                failing = std::move(candidate);
                ++local.accepted;
                progressed = true;
                break;  // restart enumeration from the smaller tree
            }
        }
    }
    if (stats) *stats = local;
    return failing;
}

}  // namespace asynth::fuzz
