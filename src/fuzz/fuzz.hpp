// Deterministic differential fuzzing of the synthesis pipeline.
//
// The library now has seven pairs of "must agree" paths, each pinned
// only on the fixed BENCH corpus until this harness: the reference vs the
// incremental Fig. 9 engine, the exact vs the dominance-filtered minimiser,
// the cold vs warm result-store round trip, pipeline verdicts under
// write_astg∘parse, the CSP front end vs directly built STGs, the
// emitted implementation replayed under speed-independent semantics vs the
// encoded state graph (netlist/emulate.hpp), and bounded-quality search
// against exact search (full result equality modulo search.pruned plus the
// gap invariants -- bounded refines to the dominance fixpoint, so its gap
// certificate must be exactly 0; see docs/SEARCH.md).  run_fuzz
// drives randomly generated specifications (benchmarks/generate.hpp,
// including the arbitration / multi-way choice / counter families) through
// one oracle per iteration and reports every disagreement.
//
// Everything is deterministic in (seed, options): iteration i derives its
// own PRNG stream, picks the oracle by rotation over the enabled set and the
// spec family by draw, so any failing iteration is reproducible from the
// command line (`asynth fuzz --seed S --budget <i+1>x --oracle <o>`) no
// matter how many workers ran the sweep.  On a mismatch the harness shrinks
// the recipe (fuzz/shrink.hpp) against the same oracle and, when a
// counterexample directory is configured, writes a minimised `.g` (plus the
// rendered `.csp` for the front-end oracle) whose leading `#` comments carry
// the oracle, profile, diagnosis and both repro command lines -- the exact
// files tests/data/fuzz/ pins and tests/test_fuzz.cpp replays.
//
// Oracle checks run the full pipeline twice per iteration, so spec sizes are
// deliberately small; two fixed option profiles keep the cost bounded:
// `deep` (beam search, exact synthesis -- the default surface) for the small
// families and `shallow` (no reduction, tiny CSC budget, heuristic
// minimiser) for the large free-choice families whose reduce stage would
// otherwise dominate the budget.  Both sides of an oracle always run the
// same profile; a counterexample records which one it was found under.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "benchmarks/generate.hpp"
#include "fuzz/shrink.hpp"
#include "pipeline/pipeline.hpp"
#include "store/record.hpp"

namespace asynth::fuzz {

// ---- oracles ---------------------------------------------------------------

enum class oracle : uint8_t {
    engines = 0,      ///< reference vs incremental search engine, full result equality
    minimizers,       ///< exact vs dominance minimiser selection
    store_roundtrip,  ///< record -> serialize -> parse -> re-run equality
    text_roundtrip,   ///< pipeline verdict stability under write_astg∘parse
    csp_frontend,     ///< rendered CSP text vs directly built STG (LTS equality)
    impl_vs_sg,       ///< emitted netlist emulated against the encoded state graph
    bounded_vs_exact, ///< bounded-quality search vs exact: structure + gap invariants
};
inline constexpr std::size_t oracle_count = 7;
inline constexpr uint32_t all_oracles = (1u << oracle_count) - 1;

[[nodiscard]] constexpr uint32_t oracle_bit(oracle o) noexcept {
    return 1u << static_cast<unsigned>(o);
}
[[nodiscard]] const char* oracle_name(oracle o) noexcept;
[[nodiscard]] std::optional<oracle> oracle_from_name(std::string_view name) noexcept;

// ---- fixed pipeline-option profiles ---------------------------------------

enum class fuzz_profile : uint8_t {
    deep,     ///< beam search + exact synthesis (near-default pipeline options)
    shallow,  ///< no reduction, 1-signal CSC, heuristic minimiser, no perf/recover
};
[[nodiscard]] const char* profile_name(fuzz_profile p) noexcept;
[[nodiscard]] std::optional<fuzz_profile> profile_from_name(std::string_view name) noexcept;
/// The exact pipeline_options a profile denotes (both sides of every oracle
/// pair run these; replay must use the profile recorded in the file).
[[nodiscard]] pipeline_options profile_options(fuzz_profile p);

// ---- single-spec checks (the harness, replay and tests all call these) ----

/// Runs one pipeline-pair oracle on @p spec under @p profile.  Returns ""
/// when both sides agree, else a one-line diagnosis of the FIRST difference.
/// @p inject, when set, perturbs the second (candidate) side's options
/// before its run -- the mutation-testing hook: a perturbation that changes
/// results must be caught as a mismatch.  @p inject_net is the same hook at
/// the netlist level, consumed only by oracle::impl_vs_sg: it perturbs the
/// built circuit_netlist before emulation, and a perturbation that changes
/// behaviour must be caught as a trace-containment or readiness violation.
/// Must not be called with oracle::csp_frontend (that oracle needs the
/// recipe, not a net; see check_csp_agreement).
[[nodiscard]] std::string check_oracle(oracle o, const stg& spec,
                                       fuzz_profile profile = fuzz_profile::deep,
                                       const std::function<void(pipeline_options&)>& inject = {},
                                       const std::function<void(circuit_netlist&)>& inject_net = {});

/// The CSP-frontend oracle: parses @p csp_text and compares its expanded
/// state graph with @p direct's, by LTS language equality.  "" on agreement.
[[nodiscard]] std::string check_csp_agreement(const std::string& csp_text, const stg& direct);

/// First difference between two pipeline results ("" when equal).  Wall-clock
/// fields and the warm-start counters (memo-dependent by design) are always
/// ignored; @p ignore_pruned additionally skips search.pruned, the one field
/// the two minimiser modes legitimately disagree on.
[[nodiscard]] std::string diff_results(const pipeline_result& a, const pipeline_result& b,
                                       bool ignore_pruned);

/// First difference between two stored records ("" when equal).
/// @p ignore_wall_clock skips the seconds/timing fields (a cold and a warm
/// run of one spec agree on everything else).
[[nodiscard]] std::string diff_records(const store::stored_record& a,
                                       const store::stored_record& b, bool ignore_wall_clock);

// ---- CSP rendering ---------------------------------------------------------

/// Can @p n be expressed in the CSP grammar (spec/csp.hpp)?  True for trees
/// of calls, counters, sequences and parallels; selects and arbitration use
/// STG-level places the grammar has no words for.
[[nodiscard]] bool csp_renderable(const benchmarks::spec_node& n);

/// Renders @p n as a CSP process definition whose parse (parse_csp) must be
/// LTS-equivalent to build_spec(n, name): channel naming mirrors the
/// materialiser's depth-first order and the body is wrapped in the same
/// passive trigger loop.  Requires csp_renderable(n).
[[nodiscard]] std::string render_csp(const benchmarks::spec_node& n, const std::string& name);

// ---- the fuzzing loop ------------------------------------------------------

struct fuzz_options {
    uint64_t seed = 1;
    /// Wall-clock budget in seconds.  Exactly one of seconds/iterations
    /// should be nonzero; when both are 0, 20 iterations run.
    double seconds = 0.0;
    uint64_t iterations = 0;
    uint32_t oracles = all_oracles;  ///< bitmask of oracle_bit()
    std::size_t jobs = 1;            ///< parallel iterations (work-stealing pool)
    /// Channel-budget cap: families whose minimum size exceeds this are
    /// skipped (6 excludes the size-8 multi-way family whose state graphs
    /// cost ~20 s per run; nightly raises it).
    int max_size = 6;
    std::string dir;  ///< counterexample directory ("" = do not write files)
    std::size_t max_shrink_evals = 400;
    /// Test hook forwarded to check_oracle for every pipeline-pair oracle.
    std::function<void(pipeline_options&)> inject;
    /// Netlist-level mutation hook forwarded to the impl-vs-sg oracle.
    std::function<void(circuit_netlist&)> inject_net;
};

struct oracle_stats {
    uint64_t checks = 0;
    uint64_t mismatches = 0;
};

/// One confirmed mismatch, already shrunk.
struct finding {
    oracle o = oracle::engines;
    fuzz_profile profile = fuzz_profile::deep;
    uint64_t iteration = 0;    ///< absolute iteration index (repro: --budget (i+1)x)
    std::string family;        ///< generator family name
    std::string diagnosis;     ///< first difference, from the original spec
    benchmarks::spec_node shrunk;  ///< minimised recipe still failing the oracle
    std::string spec_astg;     ///< write_astg of the minimised spec
    std::string csp_text;      ///< rendered CSP of the minimised spec (csp oracle)
    shrink_stats shrink;
    std::string file;          ///< counterexample path written ("" when none)
};

struct fuzz_report {
    uint64_t iterations = 0;
    double seconds = 0.0;
    std::array<oracle_stats, oracle_count> oracles{};
    /// Specs generated per family name, deterministic order.
    std::vector<std::pair<std::string, uint64_t>> families;
    std::vector<finding> findings;
    [[nodiscard]] bool ok() const { return findings.empty(); }
    /// Printable multi-line summary (per-oracle check counts, per-family spec
    /// counts, findings); the CI smoke job greps it.
    [[nodiscard]] std::string summary() const;
};

/// Runs the differential fuzzing loop.  Deterministic per iteration index;
/// with a time budget only *how many* iterations run depends on wall-clock,
/// never what any iteration does.
[[nodiscard]] fuzz_report run_fuzz(const fuzz_options& opt);

/// Replays one counterexample (or any .g text) through every enabled
/// pipeline-pair oracle, honouring @p profile; when @p csp_text is nonempty
/// the CSP oracle runs too.  Returns all diagnoses ("" = everything agrees).
[[nodiscard]] std::string replay_text(const std::string& astg_text, const std::string& csp_text,
                                      uint32_t oracles, fuzz_profile profile);

}  // namespace asynth::fuzz
