// Greedy structural minimisation of a failing generator recipe.
//
// The fuzz harness works on spec_node trees (benchmarks/generate.hpp), not on
// nets: a counterexample is shrunk by surgery on the tree -- replacing whole
// subtrees with a single call, hoisting one child over its parent, dropping
// choice/arbitration branches, shortening counters -- and re-checking the
// materialised spec against the oracle after every cut.  Working above the
// net keeps every candidate well-formed by construction (no dangling places
// or half-deleted handshakes), which is what makes naive greedy shrinking
// safe here.
//
// The algorithm is first-accept-with-restart: candidates are enumerated in a
// deterministic most-aggressive-first order (cut the biggest subtree first),
// the first candidate that still fails the oracle becomes the new tree, and
// enumeration restarts from it.  Every accepted step strictly decreases the
// (channels, counter steps, nodes) measure, so the loop terminates without
// the evaluation cap; the cap only bounds oracle cost on stubborn inputs.
#pragma once

#include <cstddef>
#include <functional>

#include "benchmarks/generate.hpp"

namespace asynth::fuzz {

/// What one shrink run did (reporting/tests).
struct shrink_stats {
    std::size_t evaluations = 0;  ///< predicate calls made
    std::size_t accepted = 0;     ///< shrink steps taken
};

/// Minimises @p failing while @p still_fails holds.  The predicate receives a
/// candidate recipe and must return true when the (materialised) spec still
/// reproduces the mismatch; predicates should treat their own exceptions as
/// "does not fail" so shrinking never escapes the original bug class.
/// Deterministic: equal inputs and predicate behaviour yield equal output.
[[nodiscard]] benchmarks::spec_node shrink_recipe(
    benchmarks::spec_node failing,
    const std::function<bool(const benchmarks::spec_node&)>& still_fails,
    std::size_t max_evaluations = 400, shrink_stats* stats = nullptr);

}  // namespace asynth::fuzz
