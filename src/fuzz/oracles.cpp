// The seven differential oracles and the result/record diffing they share.
//
// Design rule: compare EVERYTHING deterministic, not just the headline cost.
// A wrong engine that happens to land on an equal-cost configuration still
// differs somewhere -- the subgraph bitsets, the exploration trace, an
// equation -- and the PAPERS.md DIMS critique is exactly about mismatches
// that summary metrics hide.  The only fields excluded are the ones two
// correct runs may legitimately not share: wall-clock, the warm-start
// counters (the reference engine has no literal memo to warm from), and --
// for the minimiser oracle only -- search.pruned, which counts how much work
// the dominance filter skipped, not what was selected.
#include <algorithm>
#include <string>
#include <type_traits>

#include "fuzz/fuzz.hpp"
#include "core/expand.hpp"
#include "petri/astg_io.hpp"
#include "sg/analysis.hpp"
#include "spec/csp.hpp"
#include "store/result_store.hpp"

namespace asynth::fuzz {

namespace {

using benchmarks::spec_node;
using node_kind = spec_node::kind;

// ---- diff plumbing ---------------------------------------------------------

/// Accumulates the FIRST difference only; later mismatches are not even
/// formatted (cheap short-circuit for the hot agreeing path).
struct differ {
    std::string out;

    template <typename T>
    void field(const char* name, const T& a, const T& b) {
        if (!out.empty() || a == b) return;
        if constexpr (std::is_same_v<T, std::string>) {
            out = std::string(name) + ": \"" + a.substr(0, 80) + "\" vs \"" + b.substr(0, 80) +
                  "\"";
        } else if constexpr (std::is_same_v<T, bool>) {
            out = std::string(name) + ": " + (a ? "true" : "false") + " vs " +
                  (b ? "true" : "false");
        } else {
            out = std::string(name) + ": " + std::to_string(a) + " vs " + std::to_string(b);
        }
    }

    void blob(const char* name, const std::string& a, const std::string& b) {
        if (!out.empty() || a == b) return;
        // Find the first differing line for a readable diagnosis.
        std::size_t i = 0, line = 1;
        while (i < a.size() && i < b.size() && a[i] == b[i]) {
            if (a[i] == '\n') ++line;
            ++i;
        }
        out = std::string(name) + ": first difference at line " + std::to_string(line) +
              " (byte " + std::to_string(i) + ")";
    }
};

void diff_cost(differ& d, const char* what, const cost_breakdown& a, const cost_breakdown& b) {
    std::string p(what);
    d.field((p + ".csc_pairs").c_str(), a.csc_pairs, b.csc_pairs);
    d.field((p + ".literals").c_str(), a.literals, b.literals);
    d.field((p + ".states").c_str(), a.states, b.states);
    d.field((p + ".value").c_str(), a.value, b.value);
}

// ---- oracle option pairs ---------------------------------------------------

struct option_pair {
    pipeline_options base;
    pipeline_options cand;
    bool ignore_pruned = false;
};

option_pair engine_pair(fuzz_profile p) {
    option_pair o{profile_options(p), profile_options(p), false};
    // Exact scoring on both sides: pruned must then agree (always 0) and any
    // difference anywhere is an engine bug, full stop.
    o.base.search.engine = search_engine::reference;
    o.base.search.minimizer = minimizer_mode::exact;
    o.cand.search.engine = search_engine::incremental;
    o.cand.search.minimizer = minimizer_mode::exact;
    return o;
}

option_pair minimizer_pair(fuzz_profile p) {
    option_pair o{profile_options(p), profile_options(p), true};
    o.base.search.engine = search_engine::incremental;
    o.base.search.minimizer = minimizer_mode::exact;
    o.cand.search.engine = search_engine::incremental;
    o.cand.search.minimizer = minimizer_mode::incremental;
    return o;
}

}  // namespace

// ---- names -----------------------------------------------------------------

const char* oracle_name(oracle o) noexcept {
    switch (o) {
        case oracle::engines: return "engines";
        case oracle::minimizers: return "minimizers";
        case oracle::store_roundtrip: return "store-roundtrip";
        case oracle::text_roundtrip: return "text-roundtrip";
        case oracle::csp_frontend: return "csp-frontend";
        case oracle::impl_vs_sg: return "impl-vs-sg";
        case oracle::bounded_vs_exact: return "bounded-vs-exact";
    }
    return "?";
}

std::optional<oracle> oracle_from_name(std::string_view name) noexcept {
    for (std::size_t i = 0; i < oracle_count; ++i) {
        auto o = static_cast<oracle>(i);
        if (name == oracle_name(o)) return o;
    }
    // Underscore spellings match the enum names in docs and error messages.
    if (name == "impl_vs_sg") return oracle::impl_vs_sg;
    if (name == "bounded_vs_exact") return oracle::bounded_vs_exact;
    return std::nullopt;
}

const char* profile_name(fuzz_profile p) noexcept {
    return p == fuzz_profile::deep ? "deep" : "shallow";
}

std::optional<fuzz_profile> profile_from_name(std::string_view name) noexcept {
    if (name == "deep") return fuzz_profile::deep;
    if (name == "shallow") return fuzz_profile::shallow;
    return std::nullopt;
}

pipeline_options profile_options(fuzz_profile p) {
    pipeline_options o;
    if (p == fuzz_profile::deep) {
        // Near-default Fig. 4 flow; a slimmer beam keeps two full runs per
        // check affordable at the fuzz spec sizes without skipping any stage.
        o.search.size_frontier = 2;
        o.search.max_levels = 8;
    } else {
        // Large free-choice specs: the reduce search would dominate every
        // budget, so reduction is off and the late stages run in their
        // cheapest configuration.  Expansion, SG generation, cost
        // estimation, CSC and heuristic logic still execute -- verdict
        // stability across these stages is what the oracle checks.
        o.strategy = reduction_strategy::none;
        o.csc.max_signals = 1;
        o.csc.beam_width = 1;
        o.synth.exact = false;
        o.run_performance = false;
        o.recover_stg = false;
    }
    return o;
}

// ---- result / record diffing ----------------------------------------------

std::string diff_results(const pipeline_result& a, const pipeline_result& b, bool ignore_pruned) {
    differ d;
    d.field("completed", a.completed, b.completed);
    d.field("failed_stage", std::string(a.failed ? stage_name(*a.failed) : ""),
            std::string(b.failed ? stage_name(*b.failed) : ""));
    d.field("message", a.message, b.message);
    if (!d.out.empty()) return d.out;

    d.blob("spec", write_astg(a.spec), write_astg(b.spec));
    d.blob("expanded", write_astg(a.expanded), write_astg(b.expanded));
    d.field("base_sg.states", a.base_sg ? a.base_sg->state_count() : 0,
            b.base_sg ? b.base_sg->state_count() : 0);
    if (!d.out.empty()) return d.out;

    if (a.reduced.live_states() != b.reduced.live_states()) return "reduced.live_states differ";
    if (a.reduced.live_arcs() != b.reduced.live_arcs()) return "reduced.live_arcs differ";
    diff_cost(d, "initial_cost", a.initial_cost, b.initial_cost);
    diff_cost(d, "reduced_cost", a.reduced_cost, b.reduced_cost);

    if (d.out.empty() && a.search.best.live_states() != b.search.best.live_states())
        return "search.best.live_states differ";
    if (d.out.empty() && a.search.best.live_arcs() != b.search.best.live_arcs())
        return "search.best.live_arcs differ";
    diff_cost(d, "search.best_cost", a.search.best_cost, b.search.best_cost);
    d.field("search.explored", a.search.explored, b.search.explored);
    d.field("search.levels", a.search.levels, b.search.levels);
    d.field("search.level_best.size", a.search.level_best.size(), b.search.level_best.size());
    if (d.out.empty())
        for (std::size_t i = 0; i < a.search.level_best.size(); ++i)
            d.field(("search.level_best[" + std::to_string(i) + "]").c_str(),
                    a.search.level_best[i], b.search.level_best[i]);
    if (!ignore_pruned) d.field("search.pruned", a.search.pruned, b.search.pruned);

    d.field("csc.solved", a.csc.solved, b.csc.solved);
    d.field("csc.signals_inserted", a.csc.signals_inserted, b.csc.signals_inserted);
    d.field("csc.message", a.csc.message, b.csc.message);
    d.field("csc.graph.states", a.csc.graph.state_count(), b.csc.graph.state_count());
    d.field("csc.anchors.size", a.csc.anchors.size(), b.csc.anchors.size());
    if (d.out.empty())
        for (std::size_t i = 0; i < a.csc.anchors.size(); ++i)
            d.field(("csc.anchors[" + std::to_string(i) + "]").c_str(), a.csc.anchors[i],
                    b.csc.anchors[i]);

    d.field("synth.ok", a.synth.ok, b.synth.ok);
    d.field("synth.message", a.synth.message, b.synth.message);
    d.field("synth.total_area", a.synth.ckt.total_area, b.synth.ckt.total_area);
    d.field("synth.impls.size", a.synth.ckt.impls.size(), b.synth.ckt.impls.size());
    if (d.out.empty())
        for (std::size_t i = 0; i < a.synth.ckt.impls.size(); ++i) {
            const auto& x = a.synth.ckt.impls[i];
            const auto& y = b.synth.ckt.impls[i];
            std::string p = "synth.impls[" + std::to_string(i) + "].";
            d.field((p + "signal").c_str(), x.signal, y.signal);
            d.field((p + "kind").c_str(), static_cast<int>(x.kind), static_cast<int>(y.kind));
            d.field((p + "has_feedback").c_str(), x.has_feedback, y.has_feedback);
            d.field((p + "area").c_str(), x.area, y.area);
            d.field((p + "equation").c_str(), x.equation, y.equation);
        }
    // synth.warm_lookups / warm_hits deliberately excluded: the reference
    // engine publishes no literal memo, so warm-start traffic differs while
    // results must not.

    d.field("perf.periodic", a.perf.periodic, b.perf.periodic);
    d.field("perf.cycle_time", a.perf.cycle_time, b.perf.cycle_time);
    d.field("perf.events_on_cycle", a.perf.events_on_cycle, b.perf.events_on_cycle);
    d.field("perf.input_events_on_cycle", a.perf.input_events_on_cycle,
            b.perf.input_events_on_cycle);
    d.field("perf.firings_simulated", a.perf.firings_simulated, b.perf.firings_simulated);
    d.field("perf.message", a.perf.message, b.perf.message);

    d.field("recovered.ok", a.recovered.ok, b.recovered.ok);
    d.field("recovered.regions_found", a.recovered.regions_found, b.recovered.regions_found);
    d.field("recovered.message", a.recovered.message, b.recovered.message);
    if (d.out.empty() && a.recovered.ok)
        d.blob("recovered.net", write_astg(a.recovered.net), write_astg(b.recovered.net));
    return d.out;
}

std::string diff_records(const store::stored_record& a, const store::stored_record& b,
                         bool ignore_wall_clock) {
    differ d;
    d.field("fingerprint", a.fingerprint, b.fingerprint);
    d.field("completed", a.completed, b.completed);
    d.field("synthesized", a.synthesized, b.synthesized);
    d.field("csc_solved", a.csc_solved, b.csc_solved);
    d.field("failed_stage", a.failed_stage, b.failed_stage);
    d.field("message", a.message, b.message);
    d.field("states", a.states, b.states);
    d.field("arcs", a.arcs, b.arcs);
    d.field("signals", a.signals, b.signals);
    d.field("explored", a.explored, b.explored);
    d.field("csc_signals", a.csc_signals, b.csc_signals);
    d.field("literals", a.literals, b.literals);
    d.field("initial_cost", a.initial_cost, b.initial_cost);
    d.field("reduced_cost", a.reduced_cost, b.reduced_cost);
    d.field("area", a.area, b.area);
    d.field("cycle", a.cycle, b.cycle);
    if (!ignore_wall_clock) {
        d.field("seconds", a.seconds, b.seconds);
        d.field("timings.size", a.timings.size(), b.timings.size());
        if (d.out.empty())
            for (std::size_t i = 0; i < a.timings.size(); ++i) {
                d.field("timings.stage", a.timings[i].first, b.timings[i].first);
                d.field("timings.seconds", a.timings[i].second, b.timings[i].second);
            }
    } else {
        // Even a warm run must execute the same stages in the same order.
        d.field("timings.size", a.timings.size(), b.timings.size());
        if (d.out.empty())
            for (std::size_t i = 0; i < a.timings.size(); ++i)
                d.field("timings.stage", a.timings[i].first, b.timings[i].first);
    }
    d.field("netlist.size", a.netlist.size(), b.netlist.size());
    if (d.out.empty())
        for (std::size_t i = 0; i < a.netlist.size(); ++i) {
            std::string p = "netlist[" + std::to_string(i) + "].";
            d.field((p + "name").c_str(), a.netlist[i].name, b.netlist[i].name);
            d.field((p + "kind").c_str(), a.netlist[i].kind, b.netlist[i].kind);
            d.field((p + "area").c_str(), a.netlist[i].area, b.netlist[i].area);
            d.field((p + "equation").c_str(), a.netlist[i].equation, b.netlist[i].equation);
        }
    d.blob("recovered_astg", a.recovered_astg, b.recovered_astg);
    d.blob("verilog", a.verilog, b.verilog);
    d.blob("cmodel", a.cmodel, b.cmodel);
    d.field("impl_checked", a.impl_checked, b.impl_checked);
    d.field("impl_states", a.impl_states, b.impl_states);
    return d.out;
}

// ---- the oracle checks -----------------------------------------------------

std::string check_oracle(oracle o, const stg& spec, fuzz_profile profile,
                         const std::function<void(pipeline_options&)>& inject,
                         const std::function<void(circuit_netlist&)>& inject_net) {
    switch (o) {
        case oracle::engines:
        case oracle::minimizers: {
            option_pair p = o == oracle::engines ? engine_pair(profile) : minimizer_pair(profile);
            if (inject) inject(p.cand);
            auto ra = run_pipeline(spec, p.base);
            auto rb = run_pipeline(spec, p.cand);
            return diff_results(ra, rb, p.ignore_pruned);
        }
        case oracle::store_roundtrip: {
            pipeline_options opt = profile_options(profile);
            std::string fp = store::options_fingerprint(opt);
            auto r1 = run_pipeline(spec, opt);
            auto rec1 = store::record_of(r1, fp);
            // Leg 1: the exact bytes put() writes must parse back field-equal
            // (including wall-clock: %.17g round-trips every double).
            std::string bytes = store::serialize_record(rec1);
            store::stored_record rec2;
            auto st = store::parse_record(bytes, rec2);
            if (st != store::parse_status::ok)
                return std::string("serialized record failed to parse (") +
                       (st == store::parse_status::corrupt ? "corrupt" : "version skew") + ")";
            if (auto d = diff_records(rec1, rec2, false); !d.empty())
                return "serialize/parse round trip: " + d;
            // Leg 2: the content address must survive canonicalisation --
            // a spec read back from its own .g text is the same cache entry.
            stg reparsed = parse_astg(write_astg(spec));
            if (!(store::key_of(spec, opt) == store::key_of(reparsed, opt)))
                return "store key changed under write_astg∘parse";
            // Leg 3: cold vs warm -- a re-run on the reparsed spec must
            // produce the same record apart from wall-clock.
            pipeline_options opt2 = opt;
            if (inject) inject(opt2);
            auto r2 = run_pipeline(reparsed, opt2);
            auto rec3 = store::record_of(r2, fp);
            if (auto d = diff_records(rec1, rec3, true); !d.empty())
                return "cold vs warm re-run: " + d;
            return "";
        }
        case oracle::text_roundtrip: {
            pipeline_options opt = profile_options(profile);
            std::string text = write_astg(spec);
            if (write_astg(parse_astg(text)) != text) return "write_astg∘parse is not a fixpoint";
            auto r1 = run_pipeline(spec, opt);
            pipeline_options opt2 = opt;
            if (inject) inject(opt2);
            auto r2 = run_pipeline_text(text, opt2);
            return diff_results(r1, r2, false);
        }
        case oracle::impl_vs_sg: {
            // Not a two-run pair: the "sides" are the emitted implementation
            // and the encoded state graph it was synthesised from.  Specs
            // whose pipeline fails or whose CSC is unsolvable produce no
            // circuit -- nothing to emulate, vacuously agreeing (the other
            // oracles already cover verdict stability).
            pipeline_options opt = profile_options(profile);
            if (inject) inject(opt);
            auto r = run_pipeline(spec, opt);
            if (!r.synthesized()) return "";
            auto nl = build_circuit_netlist(r.synth.ckt, r.csc.graph, r.spec.model_name);
            if (inject_net) inject_net(nl);
            auto em = emulate_against_sg(nl, subgraph::full(r.csc.graph));
            return em.ok ? "" : "implementation diverges from state graph: " + em.message;
        }
        case oracle::bounded_vs_exact: {
            // Bounded quality refines lazily to the no-displacement fixpoint,
            // so when its lower bounds are sound the selected beam -- and
            // with it the whole pipeline result -- equals exact search's,
            // with bound_gap 0 as the certificate (docs/SEARCH.md).  The
            // oracle asserts exactly that: full result equality modulo
            // search.pruned (which counts skipped work, not what was
            // selected), no gap machinery on the exact run, and a correctly
            // labelled, internally consistent, zero gap on the bounded run.
            // An under-estimating bound surfaces here twice over: as a
            // result difference and as a nonzero gap.
            pipeline_options ex = profile_options(profile);
            pipeline_options bd = profile_options(profile);
            bd.search.quality = search_quality::bounded;
            if (inject) inject(bd);
            auto ra = run_pipeline(spec, ex);
            auto rb = run_pipeline(spec, bd);
            if (auto d = diff_results(ra, rb, /*ignore_pruned=*/true); !d.empty()) return d;

            const search_result& se = ra.search;
            const search_result& sb = rb.search;
            if (se.bound_gap != 0.0 || !se.level_gap.empty() || se.deadline_hit)
                return "exact run reported gap machinery (bound_gap " +
                       std::to_string(se.bound_gap) + ", " +
                       std::to_string(se.level_gap.size()) + " level gaps)";
            if (sb.deadline_hit) return "bounded run reports a deadline hit";
            if (sb.quality == search_quality::exact)
                // Non-beam profiles (shallow: reduction off) and the
                // non-output-persistent fallback answer through the exact
                // path whatever quality was asked for; sound, but then no
                // gap machinery may appear either.
                return sb.bound_gap == 0.0 && sb.level_gap.empty()
                           ? ""
                           : "exact-labelled result carries gap machinery";
            if (sb.quality != search_quality::bounded)
                return std::string("bounded run labelled ") + quality_name(sb.quality);
            if (sb.level_gap.size() != sb.levels)
                return "gap bookkeeping out of step: " + std::to_string(sb.level_gap.size()) +
                       " level gaps for " + std::to_string(sb.levels) + " levels";
            for (double g : sb.level_gap)
                if (g != 0.0) return "nonzero per-level gap " + std::to_string(g);
            if (sb.bound_gap != 0.0)
                return "nonzero bound_gap " + std::to_string(sb.bound_gap);
            return "";
        }
        case oracle::csp_frontend:
            return "check_oracle cannot run the CSP oracle from a net alone; "
                   "use check_csp_agreement";
    }
    return "";
}

std::string check_csp_agreement(const std::string& csp_text, const stg& direct) {
    stg parsed;
    try {
        parsed = parse_csp(csp_text);
    } catch (const error& e) {
        return std::string("rendered CSP failed to parse: ") + e.what();
    }
    state_graph a, b;
    try {
        a = state_graph::generate(expand_handshakes(parsed)).graph;
        b = state_graph::generate(expand_handshakes(direct)).graph;
    } catch (const error& e) {
        return std::string("expansion/SG failed: ") + e.what();
    }
    std::string diag;
    if (!lts_equivalent(subgraph::full(a), subgraph::full(b), &diag))
        return "CSP and direct STG disagree: " + diag;
    return "";
}

// ---- CSP rendering ---------------------------------------------------------

bool csp_renderable(const benchmarks::spec_node& n) {
    if (n.k == node_kind::choice || n.k == node_kind::arbitration) return false;
    for (const auto& c : n.children)
        if (!csp_renderable(c)) return false;
    return true;
}

namespace {

/// Sequence-level text of @p n.  Children of a parallel are wrapped in
/// parens (the grammar's atoms); sequence children inline flat -- a nested
/// sequence flattens and a parallel child is a valid par-group as-is.
std::string render_node(const spec_node& n, int& next_call, int& next_counter) {
    switch (n.k) {
        case node_kind::call: {
            std::string c = "a" + std::to_string(next_call++);
            return c + "! ; " + c + "?";
        }
        case node_kind::counter: {
            std::string c = "c" + std::to_string(next_counter++);
            std::string out;
            for (int i = 0; i < std::max(1, n.repeats); ++i) {
                if (!out.empty()) out += " ; ";
                out += c + "! ; " + c + "?";
            }
            return out;
        }
        case node_kind::sequence: {
            std::string out;
            for (const auto& c : n.children) {
                if (!out.empty()) out += " ; ";
                out += render_node(c, next_call, next_counter);
            }
            return out;
        }
        case node_kind::parallel: {
            std::string out;
            for (const auto& c : n.children) {
                if (!out.empty()) out += " || ";
                out += "(" + render_node(c, next_call, next_counter) + ")";
            }
            return out;
        }
        default:
            throw error("render_csp: node kind has no CSP form");
    }
}

}  // namespace

std::string render_csp(const benchmarks::spec_node& n, const std::string& name) {
    require(csp_renderable(n), "render_csp: recipe contains choice/arbitration");
    int next_call = 0, next_counter = 0;
    std::string body = render_node(n, next_call, next_counter);
    return name + " = t? ; " + body + " ; t!";
}

}  // namespace asynth::fuzz
