// Two-level logic: cubes, covers and minimisation.
//
// Specifications arrive as explicit ON/OFF minterm lists (state codes from
// the SG); the don't-care set is implicitly everything else (unreachable
// codes), which is what makes concurrency reduction shrink logic: fewer
// reachable states -> larger DC-set -> cheaper covers (paper section 7).
//
// Two minimisers are provided: a fast espresso-flavoured heuristic
// (expand-against-OFF + irredundant greedy cover, multi-pass) used inside
// the reshuffling cost function, and an exact prime-enumeration/branch-and-
// bound minimiser used for final equations and as a test oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/dyn_bitset.hpp"

namespace asynth {

/// A product term over n boolean variables.  Per variable the cube stores
/// whether value 1 is allowed (pos) and whether value 0 is allowed (neg):
/// pos&neg = don't care, pos only = positive literal, neg only = negative
/// literal, neither = empty cube.
class cube {
public:
    cube() = default;
    /// The universal cube (all variables don't-care).
    explicit cube(std::size_t nvars) : pos_(nvars, true), neg_(nvars, true) {}
    /// The minterm cube of @p point.
    static cube minterm(const dyn_bitset& point);

    [[nodiscard]] std::size_t nvars() const noexcept { return pos_.size(); }

    void set_literal(std::size_t var, bool positive) {
        pos_.assign(var, positive);
        neg_.assign(var, !positive);
    }
    void set_dc(std::size_t var) {
        pos_.set(var);
        neg_.set(var);
    }

    /// +1 = positive literal, -1 = negative literal, 0 = don't care.
    [[nodiscard]] int literal(std::size_t var) const {
        const bool p = pos_.test(var), n = neg_.test(var);
        if (p && n) return 0;
        return p ? +1 : -1;
    }
    [[nodiscard]] bool is_dc(std::size_t var) const { return pos_.test(var) && neg_.test(var); }
    [[nodiscard]] std::size_t literal_count() const;

    [[nodiscard]] bool covers(const dyn_bitset& point) const;
    /// True iff every point of @p o is also covered by this cube.
    [[nodiscard]] bool contains(const cube& o) const;
    [[nodiscard]] bool intersects(const cube& o) const;

    [[nodiscard]] bool operator==(const cube&) const = default;
    [[nodiscard]] std::size_t hash() const noexcept;

    /// "a b' c" style rendering with the given variable names.
    [[nodiscard]] std::string to_string(const std::vector<std::string>& names) const;

private:
    dyn_bitset pos_, neg_;
};

/// A sum of cubes.
struct cover {
    std::size_t nvars = 0;    ///< variable count shared by all cubes
    std::vector<cube> cubes;  ///< the product terms (empty = constant 0)

    [[nodiscard]] bool covers(const dyn_bitset& point) const;
    [[nodiscard]] std::size_t literal_count() const;
    [[nodiscard]] std::string to_string(const std::vector<std::string>& names) const;
};

/// ON/OFF minterm specification; DC = complement of (on u off).
struct sop_spec {
    std::size_t nvars = 0;
    std::vector<dyn_bitset> on, off;
};

/// Espresso-flavoured heuristic minimiser.
[[nodiscard]] cover minimize_heuristic(const sop_spec& spec, unsigned passes = 2);

struct exact_limits {
    std::size_t max_primes = 4096;
    std::size_t max_branch_nodes = 200000;
};

/// Exact minimiser (all primes + branch-and-bound set cover).  Falls back to
/// the heuristic result when the limits are exceeded; `*was_exact` reports
/// which happened.
///
/// @p heuristic_seed, when non-null and a valid cover of @p spec, substitutes
/// for the internal minimize_heuristic() call that seeds the branch-and-bound
/// incumbent -- the warm-start hook the logic stage feeds from the search's
/// literal_memo.  The result is identical for every valid seed: a completed
/// set cover is bound-independent (the incumbent update is strict), and a
/// search that hits the node budget is re-run cold, so only the saved
/// heuristic pass -- never the answer -- depends on the seed.  An invalid
/// seed is ignored.
[[nodiscard]] cover minimize_exact(const sop_spec& spec, const exact_limits& lim = {},
                                   bool* was_exact = nullptr,
                                   const cover* heuristic_seed = nullptr);

/// True iff the cover includes every ON minterm and excludes every OFF one.
[[nodiscard]] bool verify_cover(const cover& c, const sop_spec& spec);

// ---- minimiser building blocks (shared with boolfn/incremental_cover) ------
// The espresso-flavoured passes are built from two kernels that the
// incremental cover engine reuses for its targeted repairs; they live here so
// the repair path cannot drift from the minimiser's semantics.

namespace detail {

/// Expands @p c by dropping literals (in @p order) while it stays disjoint
/// from every OFF minterm.
[[nodiscard]] cube expand_against_off(cube c, const std::vector<dyn_bitset>& off,
                                      const std::vector<std::size_t>& order);

/// Greedy irredundant cover of the ON minterms by the candidate cubes:
/// essentials first, then maximum uncovered gain (ties towards fewer
/// literals, then lower index).
[[nodiscard]] std::vector<cube> greedy_cover(const std::vector<cube>& candidates,
                                             const std::vector<dyn_bitset>& on);

}  // namespace detail

}  // namespace asynth
