#include "boolfn/incremental_cover.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <unordered_set>

namespace asynth {

repair_stats incremental_cover::rebase(const sop_spec& spec) {
    repair_stats st;
    std::vector<cube> candidates;
    candidates.reserve(c_.cubes.size());

    for (const auto& q : c_.cubes) {
        if (q.nvars() != spec.nvars) {
            ++st.dropped;  // seed from a different universe: unusable
            continue;
        }
        bool hits = false;
        for (const auto& o : spec.off)
            if (q.covers(o)) {
                hits = true;
                break;
            }
        if (!hits) {
            ++st.kept;
            candidates.push_back(q);
            continue;
        }
        // Narrow-repair: for each OFF minterm still covered, set one
        // don't-care variable to the literal every covered ON minterm agrees
        // on (binary values: they agree iff none matches the OFF value).
        std::vector<const dyn_bitset*> covered_on;
        for (const auto& m : spec.on)
            if (q.covers(m)) covered_on.push_back(&m);
        if (covered_on.empty()) {
            ++st.dropped;  // covers no ON minterm: repairing is pointless
            continue;
        }
        cube r = q;
        bool ok = true;
        for (const auto& o : spec.off) {
            if (!r.covers(o)) continue;
            std::size_t fix = spec.nvars;
            for (std::size_t v = 0; v < spec.nvars && fix == spec.nvars; ++v) {
                if (!r.is_dc(v)) continue;
                const bool ov = o.test(v);
                bool agree = true;
                for (const auto* m : covered_on)
                    if (m->test(v) == ov) {
                        agree = false;
                        break;
                    }
                if (agree) fix = v;
            }
            if (fix == spec.nvars) {
                ok = false;  // no narrowing excludes o without losing an ON
                break;
            }
            r.set_literal(fix, !o.test(fix));
        }
        if (!ok) {
            ++st.dropped;
            continue;
        }
        ++st.repaired;
        candidates.push_back(std::move(r));
    }

    // Fresh expansions for ON minterms the surviving cubes no longer cover.
    std::vector<std::size_t> order(spec.nvars);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::unordered_set<std::size_t> seen;
    for (const auto& q : candidates) seen.insert(q.hash());
    for (const auto& m : spec.on) {
        bool covered = false;
        for (const auto& q : candidates)
            if (q.covers(m)) {
                covered = true;
                break;
            }
        if (covered) continue;
        cube c = detail::expand_against_off(cube::minterm(m), spec.off, order);
        if (seen.insert(c.hash()).second) {
            ++st.added;
            candidates.push_back(std::move(c));
        }
    }

    cover next;
    next.nvars = spec.nvars;
    next.cubes = detail::greedy_cover(candidates, spec.on);
    c_ = std::move(next);
    return st;
}

namespace {

/// Forced-literal clique lower bound on the literal count of any cover.
///
/// For an ON minterm m, an OFF minterm o at Hamming distance 1 (differing
/// only in v) forces the literal v = m[v] into every cube covering m: a cube
/// that is don't-care at v and covers m also covers o.  Collecting those
/// variables gives a forced mask F(m), and a per-cube floor of
/// max(1, |F(m)|) literals (1 because a literal-free cube is the universal
/// cube, which hits the non-empty OFF-set).  Two ON minterms whose codes
/// differ inside F(m1) | F(m2) can never share a cube, so a greedy clique of
/// pairwise-incompatible minterms needs one distinct cube each and the sum
/// of their floors is a sound lower bound.
std::size_t clique_lower_bound(const sop_spec& spec) {
    const std::size_t non = spec.on.size();
    const std::size_t nw = spec.on[0].words().size();

    std::vector<std::vector<uint64_t>> forced(non, std::vector<uint64_t>(nw, 0));
    std::vector<std::size_t> floor_lits(non, 1);
    for (std::size_t i = 0; i < non; ++i) {
        const auto& mw = spec.on[i].words();
        for (const auto& o : spec.off) {
            const auto& ow = o.words();
            std::size_t pc = 0, lw = 0;
            uint64_t lbits = 0;
            for (std::size_t w = 0; w < nw && pc <= 1; ++w) {
                const uint64_t d = mw[w] ^ ow[w];
                if (d == 0) continue;
                pc += static_cast<std::size_t>(std::popcount(d));
                lw = w;
                lbits = d;
            }
            if (pc == 1) forced[i][lw] |= lbits;
        }
        std::size_t f = 0;
        for (uint64_t w : forced[i]) f += static_cast<std::size_t>(std::popcount(w));
        floor_lits[i] = std::max<std::size_t>(1, f);
    }

    // Greedy clique, visiting minterms by descending floor (deterministic:
    // stable sort, index tie-break) so the most constrained cubes count.
    std::vector<std::size_t> order(non);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return floor_lits[a] > floor_lits[b]; });
    std::vector<std::size_t> clique;
    std::size_t lower = 0;
    for (std::size_t i : order) {
        const auto& mi = spec.on[i].words();
        bool incompatible_with_all = true;
        for (std::size_t j : clique) {
            const auto& mj = spec.on[j].words();
            bool conflict = false;
            for (std::size_t w = 0; w < nw; ++w)
                if (((mi[w] ^ mj[w]) & (forced[i][w] | forced[j][w])) != 0) {
                    conflict = true;
                    break;
                }
            if (!conflict) {
                incompatible_with_all = false;
                break;
            }
        }
        if (incompatible_with_all) {
            clique.push_back(i);
            lower += floor_lits[i];
        }
    }
    return lower;
}

}  // namespace

literal_bounds bound_literals(const sop_spec& spec) {
    literal_bounds b;
    // ON empty: constant 0 (empty cover).  OFF empty: the universal cube.
    // Both cost zero literals exactly.
    if (spec.on.empty() || spec.off.empty()) return b;
    b.lower = clique_lower_bound(spec);
    // Trivial valid cover: every ON minterm as its own full cube.
    b.upper = spec.on.size() * spec.nvars;
    return b;
}

literal_bounds bound_literals(const sop_spec& spec, const cover& warm) {
    literal_bounds b = bound_literals(spec);
    if (spec.on.empty() || spec.off.empty()) return b;
    incremental_cover ic(warm);
    ic.rebase(spec);
    b.upper = std::min(b.upper, ic.literal_count());
    return b;
}

}  // namespace asynth
