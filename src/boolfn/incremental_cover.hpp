// Incremental two-level covers: restrict-and-repair maintenance of a
// minimised cover under a drifting ON/OFF specification, plus cheap sound
// literal bounds that avoid running the minimiser at all.
//
// The Fig. 9 search re-minimises a signal whenever a candidate reduction
// changes its next-state spec, and that exact re-minimisation is the
// wall-clock floor of the whole exploration (ROADMAP: "reduce remains
// minimisation-bound at scale").  The cost function (paper Def. 5.2) only
// needs a *ranking* of candidates, though, so most candidates never need an
// exact literal count -- a bound that proves "this move cannot beat the
// beam's admission cost" suffices.  This header provides the two tools the
// dominance filter in src/explore is built from:
//
//  * incremental_cover -- a mutable cube set that follows the spec: rebase()
//    keeps every cube still disjoint from the new OFF-set, repairs the
//    violated ones by narrowing (targeted literal re-insertion), expands
//    fresh cubes only for ON minterms that fell out of coverage, and finishes
//    with the minimiser's own greedy irredundant pass.  The repaired cover is
//    a *valid* cover of the new spec, so its literal count is a sound upper
//    bound on the optimum -- typically within a literal or two of a
//    from-scratch minimisation at a fraction of the cost.
//
//  * bound_literals() -- sound lower/upper bounds on the minimum literal
//    count of ANY valid cover.  The lower bound is a forced-literal clique
//    argument: an OFF minterm at Hamming distance 1 from an ON minterm m
//    forces a specific literal into every cube covering m, and ON minterms
//    whose forced literals disagree can never share a cube, so a greedy
//    clique of pairwise-incompatible ON minterms yields a per-cube literal
//    sum no cover can beat.  Cost is O(|ON| * |OFF| + |ON|^2) word
//    operations -- no expansion, no covering.
//
// Soundness contract (pinned by tests/test_boolfn.cpp against a brute-force
// literal-optimal cover): lower <= L_min <= upper, where L_min is the
// minimum literal count over all covers of the spec.  Note the heuristic
// minimiser may return MORE than `upper` literals (it optimises cube count
// first); the dominance filter therefore only ever prunes on the lower
// bound, never on the upper (see src/explore/engine.cpp).
#pragma once

#include "boolfn/cover.hpp"

namespace asynth {

/// Sound bounds on the minimum SOP literal count over all covers of a spec.
struct literal_bounds {
    std::size_t lower = 0;  ///< no valid cover has fewer literals
    std::size_t upper = 0;  ///< some valid cover has exactly this many
};

/// What one rebase() pass did (observability + tests).
struct repair_stats {
    std::size_t kept = 0;      ///< cubes still valid against the new OFF-set
    std::size_t repaired = 0;  ///< violated cubes fixed by narrowing
    std::size_t dropped = 0;   ///< violated cubes no narrowing could fix
    std::size_t added = 0;     ///< fresh expansions for uncovered ON minterms
};

/// A mutable cover that follows a drifting specification.  Seed it with a
/// minimised cover, then rebase() it against each new spec; cubes() is always
/// a valid cover of the most recent spec (verify_cover()-clean).
class incremental_cover {
public:
    incremental_cover() = default;
    /// Adopts @p seed, assumed valid for the spec of the first rebase()'s
    /// predecessor (an invalid seed is handled too -- offending cubes are
    /// simply repaired or dropped on the next rebase()).
    explicit incremental_cover(cover seed) : c_(std::move(seed)) {}

    /// Restrict-and-repair against @p spec:
    ///  1. cubes disjoint from every OFF minterm are kept verbatim;
    ///  2. violated cubes are narrowed -- for each OFF minterm hit, set a
    ///     don't-care variable to a literal every covered ON minterm agrees
    ///     on -- and dropped only when no such variable exists;
    ///  3. ON minterms left uncovered get a fresh expand-against-OFF cube;
    ///  4. one greedy irredundant pass (the minimiser's own) drops cubes made
    ///     redundant by the repairs.
    repair_stats rebase(const sop_spec& spec);

    [[nodiscard]] const cover& cubes() const noexcept { return c_; }
    [[nodiscard]] std::size_t literal_count() const { return c_.literal_count(); }

private:
    cover c_;
};

/// Cold-start bounds: the lower bound is the forced-literal clique argument
/// described above; the upper bound is the trivial minterm cover |ON|*nvars
/// (every ON minterm as its own full cube).
[[nodiscard]] literal_bounds bound_literals(const sop_spec& spec);

/// Warm-start bounds: @p warm is a cover that was valid for a *previous*
/// spec; it is restrict-and-repaired against @p spec to obtain a much
/// tighter upper bound.  The lower bound is identical to the cold variant.
[[nodiscard]] literal_bounds bound_literals(const sop_spec& spec, const cover& warm);

}  // namespace asynth
