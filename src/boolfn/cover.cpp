#include "boolfn/cover.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace asynth {

cube cube::minterm(const dyn_bitset& point) {
    cube c(point.size());
    for (std::size_t v = 0; v < point.size(); ++v) c.set_literal(v, point.test(v));
    return c;
}

// The three cube predicates below are word-parallel: they run once per 64
// variables instead of once per variable.  expand_against_off() calls
// covers() for every (cube, variable, OFF-minterm) triple, which makes these
// kernels the hottest code of the whole Fig. 9 search -- the reshuffling
// cost function is minimisation-bound (see bench/reduce_search.cpp).

std::size_t cube::literal_count() const {
    // A variable is a literal iff it is not don't-care, i.e. not pos & neg.
    std::size_t dc = 0;
    const auto& p = pos_.words();
    const auto& n = neg_.words();
    for (std::size_t w = 0; w < p.size(); ++w)
        dc += static_cast<std::size_t>(std::popcount(p[w] & n[w]));
    return nvars() - dc;
}

bool cube::covers(const dyn_bitset& point) const {
    // Violation at v: point(v)=1 without pos(v), or point(v)=0 without neg(v).
    const auto& p = pos_.words();
    const auto& n = neg_.words();
    const auto& x = point.words();
    for (std::size_t w = 0; w < p.size(); ++w) {
        const uint64_t bad = (x[w] & ~p[w]) | (~(x[w] | n[w]) & pos_.word_mask(w));
        if (bad != 0) return false;
    }
    return true;
}

bool cube::contains(const cube& o) const {
    return o.pos_.is_subset_of(pos_) && o.neg_.is_subset_of(neg_);
}

bool cube::intersects(const cube& o) const {
    // Disjoint iff some variable admits no common value.
    const auto& p = pos_.words();
    const auto& n = neg_.words();
    const auto& op = o.pos_.words();
    const auto& on = o.neg_.words();
    for (std::size_t w = 0; w < p.size(); ++w) {
        const uint64_t common = (p[w] & op[w]) | (n[w] & on[w]);
        if ((~common & pos_.word_mask(w)) != 0) return false;
    }
    return true;
}

std::size_t cube::hash() const noexcept {
    std::size_t h = pos_.hash();
    hash_combine(h, neg_.hash());
    return h;
}

std::string cube::to_string(const std::vector<std::string>& names) const {
    std::string out;
    for (std::size_t v = 0; v < nvars(); ++v) {
        const int l = literal(v);
        if (l == 0) continue;
        if (!out.empty()) out += " ";
        out += names.at(v);
        if (l < 0) out += "'";
    }
    return out.empty() ? "1" : out;
}

bool cover::covers(const dyn_bitset& point) const {
    for (const auto& c : cubes)
        if (c.covers(point)) return true;
    return false;
}

std::size_t cover::literal_count() const {
    std::size_t n = 0;
    for (const auto& c : cubes) n += c.literal_count();
    return n;
}

std::string cover::to_string(const std::vector<std::string>& names) const {
    if (cubes.empty()) return "0";
    std::string out;
    for (const auto& c : cubes) {
        if (!out.empty()) out += " + ";
        out += c.to_string(names);
    }
    return out;
}

namespace detail {

cube expand_against_off(cube c, const std::vector<dyn_bitset>& off,
                        const std::vector<std::size_t>& order) {
    for (std::size_t v : order) {
        if (c.is_dc(v)) continue;
        const int saved = c.literal(v);
        c.set_dc(v);
        bool hits_off = false;
        for (const auto& m : off) {
            if (c.covers(m)) {
                hits_off = true;
                break;
            }
        }
        if (hits_off) c.set_literal(v, saved > 0);
    }
    return c;
}

}  // namespace detail

namespace {

/// Precomputed OFF-set geometry for the <= 64-variable fast path of minterm
/// expansion.  Shared across every ON minterm of one minimisation.
struct off_index {
    std::vector<uint64_t> words;             ///< OFF minterms as single words
    std::vector<std::vector<uint32_t>> col;  ///< [2 * v + bit]: OFF indices with o[v] == bit
    // Per-minterm scratch, reused to avoid reallocation.
    std::vector<uint64_t> diff;
    std::vector<uint8_t> cnt;
    std::vector<uint32_t> ones;

    explicit off_index(const std::vector<dyn_bitset>& off, std::size_t nvars) {
        words.reserve(off.size());
        for (const auto& o : off) words.push_back(o.words().empty() ? 0 : o.words()[0]);
        col.resize(2 * nvars);
        for (uint32_t o = 0; o < words.size(); ++o)
            for (std::size_t v = 0; v < nvars; ++v)
                col[2 * v + ((words[o] >> v) & 1U)].push_back(o);
    }
};

/// Exact fast-path equivalent of expand_against_off(minterm(m), off, order)
/// for nvars <= 64, by a counting argument: the cube `m raised on R` covers
/// OFF minterm o iff diff(o) = m XOR o is a subset of R.  Raising v is
/// therefore blocked iff some o has |diff(o) \ R| == 0 (`zeros`; ON and OFF
/// intersect) or == 1 with v as the remaining bit (`ones[v]`).  Per variable
/// the test is O(1); only *accepted* raises walk their OFF column to update
/// the counters.  This turns the minimiser's hottest loop from
/// O(vars * |off|) per minterm into roughly O(|off|) + the accepted columns.
cube expand_against_off_small(const dyn_bitset& m, std::size_t nvars, off_index& ix,
                              const std::vector<std::size_t>& order) {
    const uint64_t m_word = m.words().empty() ? 0 : m.words()[0];
    const std::size_t noff = ix.words.size();
    ix.diff.resize(noff);
    ix.cnt.resize(noff);
    ix.ones.assign(nvars, 0);
    std::size_t zeros = 0;
    for (std::size_t o = 0; o < noff; ++o) {
        const uint64_t d = m_word ^ ix.words[o];
        ix.diff[o] = d;
        const auto c = static_cast<uint8_t>(std::popcount(d));
        ix.cnt[o] = c;
        if (c == 0)
            ++zeros;
        else if (c == 1)
            ++ix.ones[static_cast<std::size_t>(std::countr_zero(d))];
    }

    uint64_t raised = 0;
    if (zeros == 0) {
        for (std::size_t v : order) {
            if (ix.ones[v] != 0) continue;
            raised |= uint64_t{1} << v;
            // o loses its diff bit v from the outside set iff o[v] != m[v].
            const auto& column = ix.col[2 * v + (((m_word >> v) & 1U) ^ 1U)];
            for (uint32_t o : column) {
                // Every o here had >= 2 outside bits: a single-bit o would
                // have put its bit v into ones[v], vetoing the raise.
                const auto c = static_cast<uint8_t>(ix.cnt[o] - 1);
                ix.cnt[o] = c;
                if (c == 1) {
                    const uint64_t rem = ix.diff[o] & ~raised;
                    ++ix.ones[static_cast<std::size_t>(std::countr_zero(rem))];
                }
            }
        }
    }

    cube out(nvars);  // universal; narrow the kept literals
    for (std::size_t v = 0; v < nvars; ++v)
        if (((raised >> v) & 1U) == 0) out.set_literal(v, (m_word >> v) & 1U);
    return out;
}

}  // namespace

namespace detail {

// Coverage is precomputed as one bitset of minterm indices per candidate, so
// every greedy round is a popcount sweep instead of re-evaluating covers();
// the selection (gains, literal tie-breaks, index tie-breaks) is unchanged.
std::vector<cube> greedy_cover(const std::vector<cube>& candidates,
                               const std::vector<dyn_bitset>& on) {
    std::vector<dyn_bitset> cand_bits(candidates.size());
    std::vector<std::size_t> cand_lits(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        cand_bits[c] = dyn_bitset(on.size());
        cand_lits[c] = candidates[c].literal_count();
        for (std::size_t m = 0; m < on.size(); ++m)
            if (candidates[c].covers(on[m])) cand_bits[c].set(m);
    }

    std::vector<bool> selected(candidates.size(), false);
    // Essential candidates: sole cover of some minterm.
    std::vector<uint32_t> cover_count(on.size(), 0), sole(on.size(), 0);
    for (std::size_t c = 0; c < candidates.size(); ++c)
        for (auto m : cand_bits[c].ones()) {
            ++cover_count[m];
            sole[m] = static_cast<uint32_t>(c);
        }
    for (std::size_t m = 0; m < on.size(); ++m)
        if (cover_count[m] == 1) selected[sole[m]] = true;

    dyn_bitset covered(on.size());
    for (std::size_t c = 0; c < candidates.size(); ++c)
        if (selected[c]) covered |= cand_bits[c];

    while (true) {
        // Pick the candidate covering the most uncovered minterms; break
        // ties toward fewer literals.
        std::size_t best = candidates.size(), best_gain = 0, best_lits = SIZE_MAX;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            if (selected[c]) continue;
            const std::size_t gain = cand_bits[c].count_and_not(covered);
            if (gain == 0) continue;
            if (gain > best_gain || (gain == best_gain && cand_lits[c] < best_lits)) {
                best = c;
                best_gain = gain;
                best_lits = cand_lits[c];
            }
        }
        if (best == candidates.size()) break;
        selected[best] = true;
        covered |= cand_bits[best];
    }

    std::vector<cube> out;
    for (std::size_t c = 0; c < candidates.size(); ++c)
        if (selected[c]) out.push_back(candidates[c]);
    return out;
}

}  // namespace detail

cover minimize_heuristic(const sop_spec& spec, unsigned passes) {
    cover best;
    best.nvars = spec.nvars;
    if (spec.on.empty()) return best;

    const bool small = spec.nvars >= 1 && spec.nvars <= 64;
    std::optional<off_index> ix;
    if (small) ix.emplace(spec.off, spec.nvars);

    std::size_t best_cost = SIZE_MAX;
    for (unsigned pass = 0; pass < std::max(1u, passes); ++pass) {
        // Literal drop order: pass 0 = ascending, pass 1 = descending, then
        // pseudo-random shuffles.
        std::vector<std::size_t> order(spec.nvars);
        for (std::size_t v = 0; v < spec.nvars; ++v) order[v] = v;
        if (pass == 1) std::reverse(order.begin(), order.end());
        if (pass >= 2) {
            xorshift64 rng(pass * 0x9e3779b97f4a7c15ULL);
            for (std::size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.next_below(i)]);
        }
        std::vector<cube> expanded;
        std::unordered_set<std::size_t> seen;
        for (const auto& m : spec.on) {
            cube c = small ? expand_against_off_small(m, spec.nvars, *ix, order)
                           : detail::expand_against_off(cube::minterm(m), spec.off, order);
            if (seen.insert(c.hash()).second) expanded.push_back(std::move(c));
        }
        cover candidate;
        candidate.nvars = spec.nvars;
        candidate.cubes = detail::greedy_cover(expanded, spec.on);
        const std::size_t cost = candidate.cubes.size() * 1000 + candidate.literal_count();
        if (cost < best_cost) {
            best_cost = cost;
            best = std::move(candidate);
        }
    }
    return best;
}

namespace {

/// Enumerates all maximal cubes (primes of ON u DC) reachable by expanding
/// the given minterm, capped at @p max_primes overall.
void enumerate_primes_from(const cube& start, const std::vector<dyn_bitset>& off,
                           std::vector<cube>& primes, std::unordered_set<std::size_t>& seen,
                           std::size_t max_primes) {
    if (primes.size() >= max_primes) return;
    bool maximal = true;
    for (std::size_t v = 0; v < start.nvars(); ++v) {
        if (start.is_dc(v)) continue;
        cube wider = start;
        wider.set_dc(v);
        bool hits_off = false;
        for (const auto& m : off)
            if (wider.covers(m)) {
                hits_off = true;
                break;
            }
        if (hits_off) continue;
        maximal = false;
        if (seen.insert(wider.hash()).second)
            enumerate_primes_from(wider, off, primes, seen, max_primes);
        if (primes.size() >= max_primes) return;
    }
    if (maximal) primes.push_back(start);
}

struct bnb_state {
    const std::vector<cube>* primes;
    const std::vector<dyn_bitset>* on;
    std::vector<std::vector<std::size_t>> covers_of;  // minterm -> prime ids
    std::vector<std::size_t> best;
    std::size_t best_cost = SIZE_MAX;
    std::size_t nodes = 0, max_nodes = 0;
    bool aborted = false;

    static std::size_t cost_of(const std::vector<cube>& primes,
                               const std::vector<std::size_t>& sel) {
        std::size_t lits = 0;
        for (std::size_t p : sel) lits += primes[p].literal_count();
        return sel.size() * 1000 + lits;
    }

    void search(std::vector<std::size_t>& chosen, std::vector<int>& covered_count,
                std::size_t uncovered) {
        if (++nodes > max_nodes) {
            aborted = true;
            return;
        }
        if (cost_of(*primes, chosen) >= best_cost) return;
        if (uncovered == 0) {
            best = chosen;
            best_cost = cost_of(*primes, chosen);
            return;
        }
        // Branch on the uncovered minterm with the fewest covering primes.
        std::size_t pick = on->size(), fewest = SIZE_MAX;
        for (std::size_t m = 0; m < on->size(); ++m) {
            if (covered_count[m] > 0) continue;
            if (covers_of[m].size() < fewest) {
                fewest = covers_of[m].size();
                pick = m;
            }
        }
        if (pick == on->size() || fewest == 0) return;  // uncoverable
        for (std::size_t p : covers_of[pick]) {
            if (aborted) return;
            chosen.push_back(p);
            std::size_t newly = 0;
            for (std::size_t m = 0; m < on->size(); ++m) {
                if ((*primes)[p].covers((*on)[m])) {
                    if (covered_count[m]++ == 0) ++newly;
                }
            }
            search(chosen, covered_count, uncovered - newly);
            for (std::size_t m = 0; m < on->size(); ++m) {
                if ((*primes)[p].covers((*on)[m])) {
                    if (--covered_count[m] == 0) {
                        // became uncovered again
                    }
                }
            }
            chosen.pop_back();
        }
    }
};

}  // namespace

cover minimize_exact(const sop_spec& spec, const exact_limits& lim, bool* was_exact,
                     const cover* heuristic_seed) {
    if (was_exact) *was_exact = true;
    cover out;
    out.nvars = spec.nvars;
    if (spec.on.empty()) return out;

    std::vector<cube> primes;
    std::unordered_set<std::size_t> seen;
    for (const auto& m : spec.on) {
        cube c = cube::minterm(m);
        if (seen.insert(c.hash()).second)
            enumerate_primes_from(c, spec.off, primes, seen, lim.max_primes);
        if (primes.size() >= lim.max_primes) break;
    }
    if (primes.size() >= lim.max_primes) {
        if (was_exact) *was_exact = false;
        return minimize_heuristic(spec);
    }
    // Deduplicate and drop contained primes.
    std::vector<cube> unique;
    for (const auto& p : primes) {
        bool dominated = false;
        for (const auto& q : primes)
            if (!(q == p) && q.contains(p)) {
                dominated = true;
                break;
            }
        if (!dominated && std::find(unique.begin(), unique.end(), p) == unique.end())
            unique.push_back(p);
    }

    bnb_state bnb;
    bnb.primes = &unique;
    bnb.on = &spec.on;
    bnb.max_nodes = lim.max_branch_nodes;
    bnb.covers_of.resize(spec.on.size());
    for (std::size_t m = 0; m < spec.on.size(); ++m)
        for (std::size_t p = 0; p < unique.size(); ++p)
            if (unique[p].covers(spec.on[m])) bnb.covers_of[m].push_back(p);

    // Seed the bound with the heuristic solution -- or with the caller's
    // warm-start cover, skipping the re-minimisation.  The bound only prunes
    // partial selections already at least as costly as the incumbent, and the
    // incumbent update is strict (<), so the first depth-first solution of
    // minimal cost wins under *any* valid seed: a completed search returns
    // the identical cover warm or cold.
    const bool seeded = heuristic_seed && verify_cover(*heuristic_seed, spec);
    cover heur = seeded ? *heuristic_seed : minimize_heuristic(spec);
    bnb.best_cost = heur.cubes.size() * 1000 + heur.literal_count() + 1;

    std::vector<std::size_t> chosen;
    std::vector<int> covered(spec.on.size(), 0);
    bnb.search(chosen, covered, spec.on.size());
    // The bound-independence argument above only holds for a *completed*
    // search: an aborted one returns whatever the node budget reached, which
    // the seed's (possibly different) bound can shift, and the abort
    // fallbacks below would hand back the seed itself instead of the cold
    // path's own heuristic.  Re-running cold on this rare path keeps
    // minimize_exact bit-identical with and without a seed on every input.
    if (seeded && bnb.aborted) return minimize_exact(spec, lim, was_exact, nullptr);
    if (bnb.aborted && bnb.best.empty()) {
        if (was_exact) *was_exact = false;
        return heur;
    }
    if (bnb.best.empty()) return heur;  // heuristic was already optimal
    if (was_exact) *was_exact = !bnb.aborted;
    for (std::size_t p : bnb.best) out.cubes.push_back(unique[p]);
    const std::size_t exact_cost = out.cubes.size() * 1000 + out.literal_count();
    const std::size_t heur_cost = heur.cubes.size() * 1000 + heur.literal_count();
    return exact_cost <= heur_cost ? out : heur;
}

bool verify_cover(const cover& c, const sop_spec& spec) {
    for (const auto& m : spec.on)
        if (!c.covers(m)) return false;
    for (const auto& m : spec.off)
        if (c.covers(m)) return false;
    return true;
}

}  // namespace asynth
