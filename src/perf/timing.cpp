#include "perf/timing.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "util/hash.hpp"

namespace asynth {

double delay_model::of(const state_graph& g, uint16_t event) const {
    const auto& ev = g.events().at(event);
    const auto& sig = g.signals().at(static_cast<uint32_t>(ev.signal));
    for (const auto& [name, d] : overrides)
        if (name == sig.name) return d;
    switch (sig.kind) {
        case signal_kind::input: return input_delay;
        case signal_kind::output: return output_delay;
        default: return internal_delay;
    }
}

namespace {

struct pending_event {
    uint16_t event;
    double enabled_at;
    std::size_t trigger;  ///< index into the firing log (SIZE_MAX = initial)
};

struct firing {
    uint16_t event;
    double end;
    std::size_t trigger;
};

}  // namespace

perf_report analyze_performance(const subgraph& g, const delay_model& dm,
                                std::size_t max_firings) {
    perf_report rep;
    const auto& b = g.base();

    uint32_t node = b.initial();
    double now = 0.0;
    std::vector<pending_event> pend;
    for (uint32_t a : b.out_arcs(node))
        if (g.arc_live(a)) pend.push_back(pending_event{b.arcs()[a].event, 0.0, SIZE_MAX});

    std::vector<firing> log;
    log.reserve(max_firings);
    // Configuration signature -> (firing count, time) for period detection.
    std::unordered_map<std::size_t, std::pair<std::size_t, double>> seen;

    while (log.size() < max_firings) {
        if (pend.empty()) {
            rep.message = "deadlock reached during timed simulation";
            return rep;
        }
        // Fire the pending event with the earliest completion time.
        std::size_t pick = 0;
        double best_end = pend[0].enabled_at + dm.of(b, pend[0].event);
        for (std::size_t i = 1; i < pend.size(); ++i) {
            const double end = pend[i].enabled_at + dm.of(b, pend[i].event);
            if (end < best_end || (end == best_end && pend[i].event < pend[pick].event)) {
                best_end = end;
                pick = i;
            }
        }
        const pending_event fired = pend[pick];
        auto arc = g.arc_from(node, fired.event);
        if (!arc) {
            rep.message = "internal error: pending event not enabled";
            return rep;
        }
        now = best_end;
        log.push_back(firing{fired.event, now, fired.trigger});
        node = b.arcs()[*arc].dst;

        // Refresh the pending set: persistent events keep their clocks.
        std::vector<pending_event> next;
        for (uint32_t a : b.out_arcs(node)) {
            if (!g.arc_live(a)) continue;
            const uint16_t e = b.arcs()[a].event;
            bool carried = false;
            for (const auto& p : pend) {
                if (p.event == e && !(p.event == fired.event && p.enabled_at == fired.enabled_at)) {
                    next.push_back(p);
                    carried = true;
                    break;
                }
            }
            if (!carried) next.push_back(pending_event{e, now, log.size() - 1});
        }
        pend = std::move(next);

        // Periodicity: hash (node, sorted (event, clock offset)).
        std::sort(pend.begin(), pend.end(), [](const pending_event& a, const pending_event& b2) {
            return a.event < b2.event;
        });
        std::size_t sig = node;
        for (const auto& p : pend) {
            hash_combine(sig, p.event);
            const double off = now - p.enabled_at;
            uint64_t bits;
            static_assert(sizeof(bits) == sizeof(off));
            std::memcpy(&bits, &off, sizeof(bits));
            hash_combine(sig, static_cast<std::size_t>(bits));
        }
        auto [it, inserted] = seen.emplace(sig, std::make_pair(log.size(), now));
        if (!inserted) {
            const double period = now - it->second.second;
            rep.periodic = true;
            rep.cycle_time = period;
            rep.firings_simulated = log.size();
            if (period <= 0) {
                rep.message = "zero-length period";
                return rep;
            }
            // Walk the trigger chain back through one period.
            std::size_t idx = log.size() - 1;
            const double horizon = now - period;
            while (idx != SIZE_MAX && log[idx].end > horizon) {
                ++rep.events_on_cycle;
                if (b.is_input_event(log[idx].event)) ++rep.input_events_on_cycle;
                idx = log[idx].trigger;
            }
            return rep;
        }
    }
    rep.message = "no periodic regime within the firing budget";
    rep.firings_simulated = log.size();
    return rep;
}

}  // namespace asynth
