// Performance estimation (paper sections 3 and 8): critical-cycle length and
// the number of input events on it.
//
// Model: a timed discrete-event simulation of the state graph with
// *persistent event clocks*.  When an event becomes excited its clock starts
// (at the completion time of the event whose firing excited it); firing
// other concurrent events does not reset the clock, so the simulation
// realises true timed-Petri-net semantics for persistent (speed-independent)
// systems -- concurrent events overlap instead of serialising, exactly what
// the paper's "critical cycle" measures.  Input choices are resolved
// earliest-completion-first (deterministic environment).
//
// The simulation runs until the configuration (SG node + relative clock
// offsets) recurs, which identifies the steady periodic regime; the period
// is the critical cycle length and walking the just-fired event's trigger
// chain back through one period counts the events (and input events) on the
// critical cycle.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace asynth {

/// Monotonic wall-clock stopwatch used for per-stage pipeline timings.
/// (Distinct from the *model* time units of delay_model below: the stopwatch
/// measures real elapsed seconds of this process.)
class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}
    /// Restarts the measurement from now.
    void restart() { start_ = clock::now(); }
    /// Elapsed wall-clock time since construction/restart, in seconds.
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Event delay assignment for the timed simulation.  All delays are in the
/// paper's abstract *time units* (Table 1 normalises an output gate delay
/// to 1); they are not wall-clock quantities.
struct delay_model {
    double input_delay = 2.0;     ///< environment response, time units (Table 1 uses 2)
    double output_delay = 1.0;    ///< output gate delay, time units
    double internal_delay = 1.0;  ///< internal/state-signal gate delay, time units
    /// Per-signal overrides by name (used by the Table 2 MMU delay set).
    std::vector<std::pair<std::string, double>> overrides;

    [[nodiscard]] double of(const state_graph& g, uint16_t event) const;
};

struct perf_report {
    bool periodic = false;      ///< steady cyclic regime found
    double cycle_time = 0.0;    ///< critical cycle length (time units)
    std::size_t events_on_cycle = 0;
    std::size_t input_events_on_cycle = 0;
    std::size_t firings_simulated = 0;
    std::string message;
};

[[nodiscard]] perf_report analyze_performance(const subgraph& g, const delay_model& dm,
                                              std::size_t max_firings = 50000);

}  // namespace asynth
