// Minimal JSON reader/writer for the synthesis service's line-delimited
// protocol (docs/SERVICE.md).
//
// The service cannot assume anything about bytes arriving on its socket, so
// json_parse() is written defensively: it never throws, it bounds recursion
// depth, and every malformed input -- truncated literals, bad escapes, stray
// bytes after the value -- yields nullopt rather than a partial value.  The
// feature set is deliberately the JSON core (objects, arrays, strings with
// escapes incl. \uXXXX, numbers, true/false/null); there is no streaming,
// comments or NaN/Infinity dialect, because the protocol needs none of them.
//
// This is a service-layer utility, not a general serialisation framework:
// the batch report writer keeps its own schema-stable emitter, and records
// in the result store use their own checksummed format (store/record.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asynth::service {

/// One parsed JSON value (tagged union kept simple on purpose; protocol
/// messages are a handful of fields, not documents).
struct json_value {
    enum class kind : uint8_t { null, boolean, number, string, array, object };
    kind k = kind::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<json_value> arr;
    /// Members in input order; duplicate keys keep the *first* occurrence
    /// (find returns it), matching the defensive reading of the protocol.
    std::vector<std::pair<std::string, json_value>> obj;

    /// Member lookup on an object; nullptr when absent or not an object.
    [[nodiscard]] const json_value* find(std::string_view key) const;

    // Typed getters with defaults, for terse protocol handling.
    [[nodiscard]] std::string get_string(std::string_view key, std::string def = "") const;
    [[nodiscard]] double get_number(std::string_view key, double def = 0.0) const;
    [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;
    [[nodiscard]] bool has(std::string_view key) const { return find(key) != nullptr; }
};

/// Parses one complete JSON value (trailing whitespace allowed, anything
/// else after it is an error).  Never throws.
[[nodiscard]] std::optional<json_value> json_parse(std::string_view text);

/// Appends the JSON string literal (quotes + escapes) of @p s to @p out.
void json_append_escaped(std::string& out, std::string_view s);

/// Incremental writer for one-line JSON objects: fixed field order, no
/// indentation -- the shape every protocol response uses.
struct json_line {
    std::string out = "{";
    bool first = true;

    void key(std::string_view k) {
        if (!first) out += ",";
        first = false;
        json_append_escaped(out, k);
        out += ":";
    }
    void field(std::string_view k, std::string_view v) { key(k), json_append_escaped(out, v); }
    void field(std::string_view k, const char* v) { field(k, std::string_view(v)); }
    void field(std::string_view k, double v);
    void field(std::string_view k, std::uint64_t v) { key(k), out += std::to_string(v); }
    void field(std::string_view k, bool v) { key(k), out += v ? "true" : "false"; }
    /// Appends pre-serialised JSON (e.g. a nested array) verbatim.
    void raw(std::string_view k, std::string_view json) { key(k), out += json; }

    [[nodiscard]] std::string finish() && { return std::move(out) + "}"; }
};

}  // namespace asynth::service
