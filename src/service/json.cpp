#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace asynth::service {

const json_value* json_value::find(std::string_view key) const {
    if (k != kind::object) return nullptr;
    for (const auto& [name, value] : obj)
        if (name == key) return &value;
    return nullptr;
}

std::string json_value::get_string(std::string_view key, std::string def) const {
    const json_value* v = find(key);
    return v && v->k == kind::string ? v->str : std::move(def);
}

double json_value::get_number(std::string_view key, double def) const {
    const json_value* v = find(key);
    return v && v->k == kind::number ? v->num : def;
}

bool json_value::get_bool(std::string_view key, bool def) const {
    const json_value* v = find(key);
    return v && v->k == kind::boolean ? v->b : def;
}

namespace {

/// Recursive-descent parser over a bounded view.  All failure paths return
/// false/nullopt; `depth` caps nesting so hostile input cannot blow the
/// stack.
struct parser {
    std::string_view text;
    std::size_t pos = 0;
    static constexpr int max_depth = 32;

    void skip_ws() {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos;
        }
    }

    [[nodiscard]] bool eat(char c) {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    [[nodiscard]] bool literal(std::string_view word) {
        if (text.substr(pos, word.size()) != word) return false;
        pos += word.size();
        return true;
    }

    /// Appends one code point as UTF-8.
    static void utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    [[nodiscard]] bool parse_string(std::string& out) {
        if (!eat('"')) return false;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos >= text.size()) return false;
                const char e = text[pos++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos + 4 > text.size()) return false;
                        unsigned cp = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text[pos++];
                            cp <<= 4;
                            if (h >= '0' && h <= '9')
                                cp |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                cp |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                cp |= static_cast<unsigned>(h - 'A' + 10);
                            else
                                return false;
                        }
                        // Surrogate pairs are not combined (the protocol never
                        // emits them); a lone surrogate decodes as-is.
                        utf8(out, cp);
                        break;
                    }
                    default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;  // raw control characters must be escaped
            } else {
                out += c;
            }
        }
        return false;  // unterminated
    }

    [[nodiscard]] bool parse_number(double& out) {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-') ++pos;
        while (pos < text.size() && ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
                                     text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
                                     text[pos] == '-'))
            ++pos;
        if (pos == start) return false;
        char buf[64];
        const std::size_t n = pos - start;
        if (n >= sizeof buf) return false;
        std::memcpy(buf, text.data() + start, n);
        buf[n] = '\0';
        char* end = nullptr;
        out = std::strtod(buf, &end);
        return end == buf + n && std::isfinite(out);
    }

    [[nodiscard]] bool parse_value(json_value& out, int depth) {
        if (depth > max_depth) return false;
        skip_ws();
        if (pos >= text.size()) return false;
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.k = json_value::kind::object;
            skip_ws();
            if (eat('}')) return true;
            for (;;) {
                skip_ws();
                std::string key;
                if (!parse_string(key)) return false;
                skip_ws();
                if (!eat(':')) return false;
                json_value member;
                if (!parse_value(member, depth + 1)) return false;
                out.obj.emplace_back(std::move(key), std::move(member));
                skip_ws();
                if (eat('}')) return true;
                if (!eat(',')) return false;
            }
        }
        if (c == '[') {
            ++pos;
            out.k = json_value::kind::array;
            skip_ws();
            if (eat(']')) return true;
            for (;;) {
                json_value item;
                if (!parse_value(item, depth + 1)) return false;
                out.arr.push_back(std::move(item));
                skip_ws();
                if (eat(']')) return true;
                if (!eat(',')) return false;
            }
        }
        if (c == '"') {
            out.k = json_value::kind::string;
            return parse_string(out.str);
        }
        if (c == 't') {
            out.k = json_value::kind::boolean;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.k = json_value::kind::boolean;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.k = json_value::kind::null;
            return literal("null");
        }
        out.k = json_value::kind::number;
        return parse_number(out.num);
    }
};

}  // namespace

std::optional<json_value> json_parse(std::string_view text) {
    parser p{text};
    json_value out;
    if (!p.parse_value(out, 0)) return std::nullopt;
    p.skip_ws();
    if (p.pos != text.size()) return std::nullopt;  // trailing garbage
    return out;
}

void json_append_escaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void json_line::field(std::string_view k, double v) {
    key(k);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

}  // namespace asynth::service
