#include "service/service.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "perf/timing.hpp"
#include "petri/astg_io.hpp"

namespace asynth::service {

namespace {

/// Process-wide service metrics, registered once (and pre-registered by the
/// engine constructor so a scrape before any traffic still sees the series).
struct service_metrics {
    obs::counter& requests;
    obs::counter& completed;
    obs::counter& failed;
    obs::histogram& queue_wait_ms;
    obs::histogram& request_ms;
};

service_metrics& svc_obs() {
    auto& reg = obs::registry::global();
    static service_metrics m{
        reg.get_counter("asynth_service_requests_total", "Synth requests executed"),
        reg.get_counter("asynth_service_completed_total", "Requests whose pipeline completed"),
        reg.get_counter("asynth_service_failed_total", "Requests that failed (parse or stage)"),
        reg.get_histogram("asynth_service_queue_wait_ms", obs::default_ms_buckets(),
                          "Time requests waited in the daemon queue (ms)"),
        reg.get_histogram("asynth_service_request_ms", obs::default_ms_buckets(),
                          "execute() wall time per request (ms)"),
    };
    return m;
}

/// Nearest-rank percentile over an ascending sample vector.
double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/// Applies the documented per-request overrides onto @p opt.  Returns false
/// and fills @p error on a bad value -- a typo must produce an error
/// response, not a silently different synthesis.
[[nodiscard]] bool apply_overrides(const json_value& msg, pipeline_options& opt,
                                   std::string& error) {
    auto bad = [&](const char* what) {
        error = what;
        return false;
    };
    if (const json_value* v = msg.find("w")) {
        if (v->k != json_value::kind::number || !(v->num >= 0.0 && v->num <= 1.0))
            return bad("'w' must be a number in [0,1]");
        opt.search.cost.w = v->num;
    }
    if (const json_value* v = msg.find("strategy")) {
        if (v->k != json_value::kind::string) return bad("'strategy' must be a string");
        if (v->str == "none") opt.strategy = reduction_strategy::none;
        else if (v->str == "beam") opt.strategy = reduction_strategy::beam;
        else if (v->str == "full") opt.strategy = reduction_strategy::full;
        else return bad("'strategy' must be none|beam|full");
    }
    auto positive_int = [&](const char* key, std::size_t& out, std::size_t min_v) {
        const json_value* v = msg.find(key);
        if (!v) return true;
        if (v->k != json_value::kind::number || v->num < static_cast<double>(min_v) ||
            v->num > 1e9 || v->num != static_cast<double>(static_cast<std::size_t>(v->num))) {
            error = std::string("'") + key + "' must be a small non-negative integer";
            return false;
        }
        out = static_cast<std::size_t>(v->num);
        return true;
    };
    if (!positive_int("frontier", opt.search.size_frontier, 1)) return false;
    if (!positive_int("max_levels", opt.search.max_levels, 0)) return false;
    if (!positive_int("csc_signals", opt.csc.max_signals, 0)) return false;
    if (const json_value* v = msg.find("phases")) {
        if (v->k != json_value::kind::number || (v->num != 2.0 && v->num != 4.0))
            return bad("'phases' must be 2 or 4");
        opt.expand.phases = static_cast<int>(v->num);
    }
    if (const json_value* v = msg.find("perf")) {
        if (v->k != json_value::kind::boolean) return bad("'perf' must be a boolean");
        opt.run_performance = v->b;
    }
    if (const json_value* v = msg.find("recover")) {
        if (v->k != json_value::kind::boolean) return bad("'recover' must be a boolean");
        opt.recover_stg = v->b;
    }
    if (const json_value* v = msg.find("verify")) {
        if (v->k != json_value::kind::boolean) return bad("'verify' must be a boolean");
        opt.verify_impl = v->b;
    }
    if (const json_value* v = msg.find("quality")) {
        if (v->k != json_value::kind::string) return bad("'quality' must be a string");
        if (v->str == "exact") opt.search.quality = search_quality::exact;
        else if (v->str == "bounded") opt.search.quality = search_quality::bounded;
        else if (v->str == "anytime") opt.search.quality = search_quality::anytime;
        else return bad("'quality' must be exact|bounded|anytime");
    }
    if (!positive_int("deadline_ms", opt.search.deadline_ms, 0)) return false;
    if (opt.search.deadline_ms > 0 && opt.search.quality != search_quality::anytime)
        return bad("'deadline_ms' requires 'quality': \"anytime\"");
    return true;
}

}  // namespace

std::optional<request> parse_request(std::string_view line, const pipeline_options& defaults,
                                     std::string& error, std::uint64_t* failed_id) {
    if (failed_id) *failed_id = 0;
    auto msg = json_parse(line);
    if (!msg || msg->k != json_value::kind::object) {
        error = "request is not a JSON object";
        return std::nullopt;
    }
    request req;
    req.op = msg->get_string("op", "synth");
    // Range-check before converting: casting a negative or huge double to
    // uint64_t is undefined behaviour, and this value arrives off a socket.
    if (const json_value* v = msg->find("id");
        v && v->k == json_value::kind::number && v->num >= 0.0 && v->num <= 9e15 &&
        v->num == static_cast<double>(static_cast<std::uint64_t>(v->num)))
        req.id = static_cast<std::uint64_t>(v->num);
    // From here on a failure can still be correlated by the client.
    if (failed_id) *failed_id = req.id;
    // The string correlation id rides along on every op and is echoed in the
    // response; its length is bounded because it lands in every log line.
    if (const json_value* v = msg->find("req_id")) {
        if (v->k != json_value::kind::string) {
            error = "'req_id' must be a string";
            return std::nullopt;
        }
        if (v->str.size() > 128) {
            error = "'req_id' must be at most 128 characters";
            return std::nullopt;
        }
        req.req_id = v->str;
    }
    if (req.op == "stats") {
        req.want_log = msg->get_bool("log", false);
        return req;
    }
    if (req.op == "metrics" || req.op == "ping" || req.op == "health" || req.op == "ready" ||
        req.op == "shutdown")
        return req;
    if (req.op != "synth") {
        error = "unknown op '" + req.op + "' (synth|stats|metrics|ping|health|ready|shutdown)";
        return std::nullopt;
    }
    req.spec_text = msg->get_string("spec");
    if (req.spec_text.empty()) {
        error = "op synth requires a non-empty 'spec' (astg text)";
        return std::nullopt;
    }
    req.spec_name = msg->get_string("name");
    req.store_bypass = msg->get_bool("no_store", false);
    req.want_astg = msg->get_bool("astg", false);
    req.options = defaults;
    if (!apply_overrides(*msg, req.options, error)) return std::nullopt;
    return req;
}

engine::engine(const service_options& opt) : opt_(opt) {
    if (opt_.jobs == 0)
        opt_.jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (!opt_.store_dir.empty()) store_ = store::result_store::open(opt_.store_dir);
    // Touch the service series and the store counters now: `metrics` must
    // expose them (at zero) before the first request arrives.
    svc_obs();
    auto& reg = obs::registry::global();
    reg.get_counter("asynth_store_hits_total", "Result-store lookups served from disk");
    reg.get_counter("asynth_store_misses_total", "Result-store lookups that required synthesis");
}

std::string engine::execute(const request& req, double queue_wait_ms) {
    // Bind the request identity first: every log line, span arg and
    // slow-request record emitted while serving this request carries it.
    obs::log_context log_ctx(req.req_id);
    obs::span sp("service.request", "service");
    sp.arg("queue_ms", queue_wait_ms);
    if (!req.req_id.empty()) sp.arg("req_id", req.req_id);
    stopwatch sw;

    // The parse stage runs inside run_pipeline_text; for the store key the
    // text must be canonicalised first (write∘parse fixpoint), so parse once
    // here and reuse the stg for the pipeline on a miss.
    std::string parse_error;
    std::optional<stg> spec;
    try {
        spec = parse_astg(req.spec_text);
    } catch (const std::exception& e) {
        parse_error = e.what();
    }

    std::optional<store::stored_record> rec;
    bool hit = false;
    std::optional<store::store_key> key;
    std::string fingerprint;
    if (spec) {
        fingerprint = store::options_fingerprint(req.options);
        if (store_.enabled() && !req.store_bypass) {
            key = store::key_of(write_astg(*spec), fingerprint);
            if (auto got = store_.get(*key)) {
                rec = std::move(got);
                hit = true;
            }
        }
        if (!rec) {
            auto result = run_pipeline(*spec, req.options);
            auto fresh = store::record_of(result, fingerprint);
            // Cache only completed runs (failures retry next time).
            if (key && result.completed) store_.put(*key, fresh);
            rec = std::move(fresh);
        }
    }

    const double service_ms = sw.seconds() * 1e3;

    // ---- response line ----------------------------------------------------
    json_line line;
    line.field("op", "synth");
    if (req.id != 0) line.field("id", req.id);
    if (!req.req_id.empty()) line.field("req_id", req.req_id);
    if (!spec) {
        line.field("ok", false);
        line.field("error", "parse: " + parse_error);
    } else {
        line.field("ok", rec->completed);
        line.field("completed", rec->completed);
        line.field("synthesized", rec->synthesized);
        line.field("csc_solved", rec->csc_solved);
        if (!rec->failed_stage.empty()) line.field("failed_stage", rec->failed_stage);
        if (!rec->message.empty()) line.field("verdict", rec->message);
        line.field("states", rec->states);
        line.field("arcs", rec->arcs);
        line.field("signals", rec->signals);
        line.field("explored", rec->explored);
        line.field("csc_signals", rec->csc_signals);
        line.field("literals", rec->literals);
        line.field("area", rec->area);
        line.field("cycle", rec->cycle);
        line.field("store", !store_.enabled() || req.store_bypass ? "off"
                                                                  : (hit ? "hit" : "miss"));
        line.field("synth_seconds", rec->seconds);
        line.field("queue_ms", queue_wait_ms);
        line.field("service_ms", service_ms);
        // Non-exact answers carry their quality label and bound gap, so a
        // caller can always tell an approximate result from an exact one.
        if (rec->quality != "exact") {
            line.field("quality", rec->quality);
            line.field("bound_gap", rec->bound_gap);
        }
        if (!rec->netlist.empty()) {
            std::string eqs = "[";
            for (std::size_t i = 0; i < rec->netlist.size(); ++i) {
                if (i) eqs += ",";
                json_append_escaped(eqs, rec->netlist[i].equation);
            }
            eqs += "]";
            line.raw("equations", eqs);
        }
        if (rec->impl_checked) {
            line.field("impl_checked", true);
            line.field("impl_states", rec->impl_states);
        }
        // The recovered STG rides along only on request: astg text dwarfs the
        // scalar fields, and most callers only want the verdict.
        if (req.want_astg) line.field("astg", rec->recovered_astg);
    }

    // ---- accounting -------------------------------------------------------
    const std::string spec_label =
        spec ? (req.spec_name.empty() ? spec->model_name : req.spec_name) : std::string();
    const char* store_state =
        !store_.enabled() || req.store_bypass ? "off" : (hit ? "hit" : "miss");
    if (spec) {
        sp.arg("spec", spec_label);
        sp.arg("store", store_state);
    }
    {
        obs::log_event ev(obs::log_level::info, "service.request");
        ev.field("spec", spec_label);
        ev.field("ok", spec && rec->completed);
        ev.field("store", store_state);
        ev.field("queue_ms", queue_wait_ms);
        ev.field("service_ms", service_ms);
        if (!spec) ev.field("error", "parse: " + parse_error);
    }
    // Requests over the slow threshold log their per-stage breakdown at warn
    // level, so a tail-latency incident can be diagnosed from the log alone.
    if (opt_.slow_ms > 0.0 && service_ms > opt_.slow_ms) {
        obs::log_event ev(obs::log_level::warn, "service.slow_request");
        ev.field("spec", spec_label);
        ev.field("store", store_state);
        ev.field("queue_ms", queue_wait_ms);
        ev.field("service_ms", service_ms);
        ev.field("slow_ms", opt_.slow_ms);
        if (spec && rec)
            for (const auto& [stage, seconds] : rec->timings)
                ev.field("stage." + stage + "_ms", seconds * 1e3);
    }
    service_metrics& sm = svc_obs();
    sm.requests.add();
    (spec && rec->completed ? sm.completed : sm.failed).add();
    sm.queue_wait_ms.observe(queue_wait_ms);
    sm.request_ms.observe(service_ms);
    {
        std::lock_guard<std::mutex> lock(m_);
        ++totals_.requests;
        totals_.busy_seconds += sw.seconds();
        if (spec && rec->completed) ++totals_.completed;
        else ++totals_.failed;
        if (store_.enabled() && spec && !req.store_bypass) {
            if (hit) ++totals_.store_hits;
            else ++totals_.store_misses;
        }
        queue_wait_.offer(queue_wait_ms);
        queue_wait_max_ms_ = std::max(queue_wait_max_ms_, queue_wait_ms);
        if (rows_.size() < max_retained && spec) {
            auto row = batch::record_of_stored(
                req.spec_name.empty() ? spec->model_name : req.spec_name, *rec);
            row.store_hit = hit;
            rows_.push_back(std::move(row));
        }
    }
    return std::move(line).finish();
}

engine_stats engine::stats() const {
    engine_stats out;
    std::vector<double> sorted;
    {
        // Snapshot under the lock, sort outside it: the sort over the full
        // reservoir is O(n log n) and must not stall the workers' accounting
        // blocks.
        std::lock_guard<std::mutex> lock(m_);
        out = totals_;
        sorted = queue_wait_.samples();
        out.queue_wait_max_ms = queue_wait_max_ms_;
    }
    std::sort(sorted.begin(), sorted.end());
    out.queue_wait_p50_ms = percentile(sorted, 0.5);
    out.queue_wait_p90_ms = percentile(sorted, 0.9);
    return out;
}

std::string engine::metrics_text() { return obs::registry::global().prometheus_text(); }

std::string engine::stats_line(bool include_recent_log) const {
    const engine_stats s = stats();
    const store::store_stats ss = store_.stats();
    json_line line;
    line.field("op", "stats");
    line.field("ok", true);
    line.field("requests", s.requests);
    line.field("completed", s.completed);
    line.field("failed", s.failed);
    line.field("store_enabled", store_.enabled());
    line.field("store_hits", s.store_hits);
    line.field("store_misses", s.store_misses);
    line.field("store_corrupt", ss.corrupt);
    line.field("store_version_skew", ss.version_skew);
    line.field("store_writes", ss.writes);
    line.field("busy_seconds", s.busy_seconds);
    line.field("queue_wait_p50_ms", s.queue_wait_p50_ms);
    line.field("queue_wait_p90_ms", s.queue_wait_p90_ms);
    line.field("queue_wait_max_ms", s.queue_wait_max_ms);
    if (include_recent_log) {
        // Every ring entry is a self-contained JSON object (obs/log.hpp), so
        // the array can be assembled verbatim.
        std::string arr = "[";
        const auto lines = obs::recent_log_lines();
        for (std::size_t i = 0; i < lines.size(); ++i) {
            if (i) arr += ",";
            arr += lines[i];
        }
        arr += "]";
        line.raw("recent_log", arr);
    }
    return std::move(line).finish();
}

batch::batch_report engine::drain_report(double wall_seconds) const {
    engine_stats s = stats();
    std::vector<batch::spec_record> rows;
    {
        std::lock_guard<std::mutex> lock(m_);
        rows = rows_;
    }
    auto rep = batch::make_report(std::move(rows), opt_.jobs, wall_seconds);
    // Absolute process totals (a daemon lifetime is one "sweep"); run_batch
    // reports deltas instead.
    rep.counters = obs::registry::global().counter_values();
    // The counters are authoritative beyond the retention cap.
    rep.store_hits = s.store_hits;
    rep.store_misses = s.store_misses;
    rep.queue_wait_p50_ms = s.queue_wait_p50_ms;
    rep.queue_wait_p90_ms = s.queue_wait_p90_ms;
    rep.queue_wait_max_ms = s.queue_wait_max_ms;
    rep.cpu_seconds = s.busy_seconds;
    return rep;
}

}  // namespace asynth::service
