// Unix-domain-socket daemon around service::engine, plus the matching
// one-shot client -- the transports behind `asynth serve` / `asynth client`.
//
// Protocol: line-delimited JSON over SOCK_STREAM (docs/SERVICE.md).  Each
// request line gets exactly one response line; a connection may pipeline any
// number of requests and responses come back as each finishes (correlate
// with the echoed "id" -- concurrent requests of one connection may complete
// out of order).
//
// Threading model (one daemon = three kinds of thread):
//
//   main        poll() over the listen socket, every connection and two
//               self-pipes; owns all fds, parses lines, answers the cheap
//               ops (ping/stats/health/ready/metrics) inline and queues
//               synth requests;
//   dispatcher  pops the bounded queue in batches and fans them out over a
//               persistent batch::work_stealing_pool;
//   workers     run engine::execute() and write the response back under the
//               connection's write mutex.
//
// The queue is bounded (service_options::queue_capacity): when it is full
// the daemon answers `{"ok":false,"error":"queue full"}` *immediately*
// instead of reading ever more requests into memory -- backpressure is the
// client's signal to retry, and an overload can never OOM the daemon.
//
// Graceful drain: SIGTERM/SIGINT (or an op:"shutdown" request) refuses new
// synth work ({"error":"draining"}) while the listen socket stays open, so
// supervisors probing {"op":"health"} / {"op":"ready"} on fresh connections
// keep getting answers (ready reports false) until everything queued or in
// flight finishes and flushes; then the daemon writes the --report file if
// asked, removes the socket and exits 0.  Because the store commits each record the moment it
// is synthesised (temp-file + rename, store/result_store.hpp), killing the
// daemon *hard* (SIGKILL) mid-request loses only the in-flight work; the
// store is never corrupted -- the robustness tests in tests/test_store.cpp
// pin the on-disk half of that claim.
#pragma once

#include <string>

#include "service/service.hpp"

namespace asynth::service {

struct server_options {
    service_options service;
    std::string socket_path = "asynth.sock";  ///< bind path (<= ~100 bytes)
    std::string report_file;  ///< drain report (BENCH_pipeline.json schema); "" = none
    std::string trace_dir;    ///< one Chrome-trace file per drained batch; "" = off
    bool verbose = true;      ///< lifecycle lines on stdout
};

/// Runs the daemon until a drain trigger; returns a process exit code
/// (0 = clean drain, 1 = setup failure such as an unbindable socket).
[[nodiscard]] int run_server(const server_options& opt);

struct client_options {
    std::string socket_path = "asynth.sock";
    double connect_timeout_seconds = 5.0;    ///< retry window while the daemon boots
    double response_timeout_seconds = 600.0; ///< synthesis can legitimately take minutes
};

/// Sends one request line and receives one response line.  Returns 0 when
/// the response says ok:true, 1 when it says ok:false, 2 on connect/timeout/
/// transport errors (@p response then holds a diagnostic, not JSON).
[[nodiscard]] int run_client(const client_options& opt, const std::string& request_line,
                             std::string& response);

}  // namespace asynth::service
