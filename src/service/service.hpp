// The synthesis service engine: protocol requests in, one-line JSON
// responses out, with the content-addressed result store in front of the
// pipeline.
//
// This layer is deliberately transport-free -- it never touches a socket --
// so the same engine serves three callers: the Unix-socket daemon
// (service/server.hpp), the in-process throughput bench
// (bench/service_throughput.cpp) and the unit tests.  The daemon owns
// connection handling and queuing; the engine owns request semantics:
//
//   parse_request   one protocol line -> typed request (op, spec, overrides)
//   execute         store lookup -> run_pipeline on miss -> store fill,
//                   with per-request wall-clock + queue-wait accounting
//   stats_line      one-line JSON counters (hits, misses, percentiles)
//   drain_report    the accumulated rows as a batch_report, so a service
//                   lifetime serialises into the same schema_version-2
//                   BENCH_pipeline.json format as a batch sweep
//
// Request options: a request may override a documented subset of
// pipeline_options (w, strategy, frontier, max_levels, phases, csc_signals,
// perf, recover, verify).  Overrides flow into the store fingerprint, so differently
// configured requests can never alias one cache entry, while the engine
// knobs (engine/minimizer/jobs) stay excluded -- they are result-neutral.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "obs/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "service/json.hpp"
#include "store/result_store.hpp"

namespace asynth::service {

/// Service-level configuration (the daemon adds transport knobs on top).
struct service_options {
    pipeline_options pipeline;     ///< defaults for every request
    std::string store_dir;         ///< result store directory; "" = no store
    std::size_t jobs = 0;          ///< synthesis workers; 0 = hardware cores
    std::size_t queue_capacity = 64;  ///< bounded request queue (daemon enforces)
    /// Requests slower than this log their per-stage breakdown at warn level
    /// ("service.slow_request"); 0 disables the slow-request log.
    double slow_ms = 0.0;
    /// Readiness high-water mark: `{"op":"ready"}` reports ready:false while
    /// the queue holds at least this many requests.  0 = 3/4 of
    /// queue_capacity (at least 1).
    std::size_t ready_high_water = 0;
};

/// One parsed protocol request.
struct request {
    std::string op;  ///< "synth" | "stats" | "metrics" | "ping" | "health" | "ready" | "shutdown"
    std::uint64_t id = 0;   ///< client-chosen correlation id, echoed back
    std::string req_id;     ///< correlation id threaded through logs, spans and the response
    std::string spec_name;  ///< optional label for reports ("" = derived)
    std::string spec_text;  ///< astg text (op == "synth")
    pipeline_options options;  ///< defaults merged with request overrides
    bool store_bypass = false;  ///< "no_store": skip lookup AND fill
    bool want_astg = false;     ///< "astg": include recovered STG text in the response
    bool want_log = false;      ///< "log" (op stats): include the recent-events ring
};

/// Parses one request line against @p defaults.  Returns nullopt and fills
/// @p error for malformed lines (unknown op, missing spec, bad option
/// values); the daemon turns that into an error response, never a drop.
/// @p failed_id, when non-null, receives the request's (validated) id even
/// on failure, so the error response can keep the id-correlation contract
/// for pipelined clients.
[[nodiscard]] std::optional<request> parse_request(std::string_view line,
                                                   const pipeline_options& defaults,
                                                   std::string& error,
                                                   std::uint64_t* failed_id = nullptr);

/// Running totals of one engine (all monotone; snapshot via stats()).
struct engine_stats {
    std::uint64_t requests = 0;       ///< synth requests executed
    std::uint64_t completed = 0;      ///< ... whose every stage ran
    std::uint64_t failed = 0;         ///< ... that failed a stage
    std::uint64_t store_hits = 0;     ///< served from the store
    std::uint64_t store_misses = 0;   ///< synthesised (store open)
    double busy_seconds = 0.0;        ///< summed execute() wall-clock
    /// Percentiles over a bounded uniform sample of every wait ever seen
    /// (reservoir sampling -- O(1) per request, O(cap) memory), plus the
    /// exact running maximum.
    double queue_wait_p50_ms = 0.0;
    double queue_wait_p90_ms = 0.0;
    double queue_wait_max_ms = 0.0;
};

/// The transport-free request executor.  Thread-safe: execute() may be
/// called from every pool worker concurrently (the store handle and the
/// accounting mutex are shared state; the pipeline itself is pure).
class engine {
public:
    explicit engine(const service_options& opt);

    [[nodiscard]] const store::result_store& store() const { return store_; }
    [[nodiscard]] const service_options& options() const { return opt_; }

    /// Executes one synth request and returns the one-line JSON response.
    /// @p queue_wait_ms is how long the daemon held the request before a
    /// worker picked it up (0 for in-process callers); it is accounted into
    /// the queue-wait percentiles.
    [[nodiscard]] std::string execute(const request& req, double queue_wait_ms);

    /// One-line JSON stats response (op "stats").  With
    /// @p include_recent_log the response embeds the logger's bounded ring of
    /// recent events as a `recent_log` array of JSON objects.
    [[nodiscard]] std::string stats_line(bool include_recent_log = false) const;

    /// Prometheus text exposition of the process-wide metrics registry
    /// (op "metrics").  The engine pre-registers the store and queue-wait
    /// series at construction, so scrapes see them even before traffic.
    [[nodiscard]] static std::string metrics_text();

    [[nodiscard]] engine_stats stats() const;

    /// The retained per-request rows aggregated as a batch report (schema
    /// shared with `asynth batch`); @p wall_seconds is the service lifetime.
    /// Row retention is capped (8192) so a long-lived daemon cannot grow
    /// without bound; the counters keep counting past the cap, and the
    /// queue-wait percentiles stay faithful to the whole stream via the
    /// reservoir.
    [[nodiscard]] batch::batch_report drain_report(double wall_seconds) const;

private:
    service_options opt_;
    store::result_store store_;

    mutable std::mutex m_;
    engine_stats totals_;
    obs::reservoir queue_wait_{8192};          ///< bounded uniform sample of all waits
    double queue_wait_max_ms_ = 0.0;           ///< exact running maximum
    std::vector<batch::spec_record> rows_;     ///< retained rows (capped)
    static constexpr std::size_t max_retained = 8192;
};

}  // namespace asynth::service
