#include "service/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "batch/pool.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/version.hpp"

namespace asynth::service {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

// ---- signal plumbing: handler writes one byte into a self-pipe -------------

int g_signal_pipe_wr = -1;

extern "C" void drain_signal_handler(int) {
    const char byte = 1;
    // write(2) is async-signal-safe; a full pipe just means a wake-up is
    // already pending.
    if (g_signal_pipe_wr >= 0) (void)!write(g_signal_pipe_wr, &byte, 1);
}

/// Per-connection state.  The main thread owns the fd lifecycle; workers
/// only write responses (under `write_m`) and flip `closed` on send errors.
/// Read-EOF and write-broken are deliberately separate states: a one-shot
/// client that half-closes its write side after the request (send;
/// shutdown(SHUT_WR); recv -- the `nc -N` pattern) must still receive its
/// response.
struct connection {
    int fd = -1;
    std::string inbuf;
    std::mutex write_m;
    std::atomic<int> pending{0};        ///< queued + in-flight synth requests
    std::atomic<bool> read_done{false}; ///< client sent EOF; no more requests
    std::atomic<bool> closed{false};    ///< write side broken; drop responses
};

/// A synth request waiting for a worker.
struct queued_request {
    std::shared_ptr<connection> conn;
    request req;
    clock_type::time_point arrival;
};

/// Sends one response line (appending '\n').  Serialised per connection so
/// concurrent completions cannot interleave bytes.  The fd is non-blocking
/// (accept4), so a full socket buffer -- a healthy client that reads slowly
/// -- reports EAGAIN: wait for writability instead of poisoning the
/// connection, and only give up on a client that stays unwritable for the
/// whole window (backpressure with an upper bound, mirroring the bounded
/// request queue on the read side).
void send_line(connection& conn, std::string line) {
    constexpr int write_stall_ms = 10'000;
    line += '\n';
    std::lock_guard<std::mutex> lock(conn.write_m);
    if (conn.closed.load(std::memory_order_relaxed)) return;
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::send(conn.fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{conn.fd, POLLOUT, 0};
                if (::poll(&pfd, 1, write_stall_ms) > 0) continue;
            }
            conn.closed.store(true, std::memory_order_relaxed);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string error_line(std::uint64_t id, const std::string& what,
                       const std::string& req_id = {}) {
    json_line line;
    line.field("op", "error");
    if (id != 0) line.field("id", id);
    if (!req_id.empty()) line.field("req_id", req_id);
    line.field("ok", false);
    line.field("error", what);
    return std::move(line).finish();
}

/// On an unhandled exception the ring of recent log events is the flight
/// recorder: dump it to stderr before dying so post-mortems see the last
/// requests, not just the abort message.
std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_recent_log() {
    std::fputs("asynth serve: terminating on unhandled exception; recent events:\n", stderr);
    obs::dump_recent_log(stderr);
    if (g_prev_terminate) g_prev_terminate();
    std::abort();
}

/// Wakes the poll loop (worker completions, queue transitions).
void poke(int pipe_wr) {
    const char byte = 1;
    (void)!write(pipe_wr, &byte, 1);
}

/// Bounds one connection's unread request bytes: a client that never sends a
/// newline must not grow daemon memory forever.
constexpr std::size_t max_inbuf = 16u << 20;

}  // namespace

int run_server(const server_options& opt) {
    const auto t_start = clock_type::now();
    obs::name_thread("main");
    g_prev_terminate = std::set_terminate(terminate_with_recent_log);

    // ---- listen socket -----------------------------------------------------
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socket_path.empty() || opt.socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "asynth serve: socket path empty or too long (max %zu): '%s'\n",
                     sizeof addr.sun_path - 1, opt.socket_path.c_str());
        return 1;
    }
    std::memcpy(addr.sun_path, opt.socket_path.c_str(), opt.socket_path.size() + 1);

    // Non-blocking: the accept loop drains until EAGAIN after each poll wake.
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (listen_fd < 0) {
        std::fprintf(stderr, "asynth serve: socket(): %s\n", std::strerror(errno));
        return 1;
    }
    // A previous daemon that died hard leaves the path bound; one daemon per
    // path is the documented contract, so reclaim it.
    ::unlink(opt.socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd, 64) != 0) {
        std::fprintf(stderr, "asynth serve: cannot bind '%s': %s\n", opt.socket_path.c_str(),
                     std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    // ---- self-pipes + signals ---------------------------------------------
    int sigpipe[2] = {-1, -1}, wakepipe[2] = {-1, -1};
    if (::pipe2(sigpipe, O_CLOEXEC | O_NONBLOCK) != 0 ||
        ::pipe2(wakepipe, O_CLOEXEC | O_NONBLOCK) != 0) {
        std::fprintf(stderr, "asynth serve: pipe2(): %s\n", std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }
    g_signal_pipe_wr = sigpipe[1];
    struct sigaction sa{};
    sa.sa_handler = drain_signal_handler;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    // ---- engine + dispatcher ----------------------------------------------
    engine eng(opt.service);
    if (opt.verbose) {
        std::printf("asynth serve: listening on %s (store: %s, jobs: %zu, queue: %zu)\n",
                    opt.socket_path.c_str(),
                    eng.store().enabled() ? eng.store().dir().c_str() : "off",
                    eng.options().jobs, opt.service.queue_capacity);
        if (!eng.store().enabled() && !opt.service.store_dir.empty())
            std::printf("asynth serve: %s\n", eng.store().message().c_str());
        std::fflush(stdout);
    }
    const std::size_t high_water =
        opt.service.ready_high_water != 0
            ? opt.service.ready_high_water
            : std::max<std::size_t>(1, opt.service.queue_capacity * 3 / 4);
    obs::log_event(obs::log_level::info, "server.start")
        .field("socket", opt.socket_path)
        .field("version", asynth::version_string)
        .field("pid", static_cast<std::int64_t>(::getpid()))
        .field("jobs", static_cast<std::uint64_t>(eng.options().jobs))
        .field("queue_capacity", static_cast<std::uint64_t>(opt.service.queue_capacity))
        .field("high_water", static_cast<std::uint64_t>(high_water))
        .field("store", eng.store().enabled() ? eng.store().dir() : std::string("off"));

    std::mutex queue_m;
    std::condition_variable queue_cv;
    std::deque<queued_request> queue;
    bool stop_dispatch = false;
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> rejected{0};

    const bool tracing = !opt.trace_dir.empty();
    if (tracing) ::mkdir(opt.trace_dir.c_str(), 0777);  // EEXIST is fine

    std::thread dispatcher([&] {
        // One persistent pool for the daemon's lifetime (PR 4's pool reuse
        // contract); each popped batch is one run() epoch.  With --trace DIR
        // each drained batch runs under its own trace session and lands as
        // one Chrome-trace file, so a slow batch can be profiled post hoc.
        batch::work_stealing_pool pool(eng.options().jobs);
        // The dispatcher participates in every run() as pool worker 0, so it
        // shows up as a span track of its own; name it for the trace viewer.
        obs::name_thread("dispatcher");
        obs::trace_session session;
        std::uint64_t batch_seq = 0;
        std::vector<queued_request> chunk;
        for (;;) {
            chunk.clear();
            {
                std::unique_lock<std::mutex> lock(queue_m);
                queue_cv.wait(lock, [&] { return stop_dispatch || !queue.empty(); });
                if (queue.empty() && stop_dispatch) return;
                // Take everything queued: the pool spreads the batch over its
                // workers and new arrivals form the next batch.
                while (!queue.empty()) {
                    chunk.push_back(std::move(queue.front()));
                    queue.pop_front();
                }
            }
            if (tracing) session.start();
            pool.run(chunk.size(), [&](std::size_t i) {
                queued_request& qr = chunk[i];
                std::string resp = eng.execute(qr.req, ms_since(qr.arrival));
                send_line(*qr.conn, std::move(resp));
                qr.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
                in_flight.fetch_sub(1, std::memory_order_acq_rel);
                poke(wakepipe[1]);
            });
            if (tracing) {
                session.stop();
                const std::string path =
                    opt.trace_dir + "/trace_batch_" + std::to_string(batch_seq++) + ".json";
                std::ofstream out(path, std::ios::binary);
                out << session.chrome_json();
            }
        }
    });

    // ---- main poll loop ----------------------------------------------------
    std::unordered_map<int, std::shared_ptr<connection>> conns;
    bool draining = false;
    bool listen_open = true;

    auto begin_drain = [&](const char* why) {
        if (draining) return;
        draining = true;
        // The listen socket stays open through the drain: supervisors keep
        // probing health/ready on fresh connections while in-flight work
        // finishes, and see ready:false instead of a connection refusal.
        // Synth requests are refused with an explicit "draining" error.
        obs::log_event(obs::log_level::info, "server.drain_begin").field("reason", why);
        if (opt.verbose) {
            std::printf("asynth serve: draining (%s)\n", why);
            std::fflush(stdout);
        }
    };

    /// One request line from one connection.
    auto handle_line = [&](const std::shared_ptr<connection>& conn, std::string_view text) {
        std::string error;
        std::uint64_t failed_id = 0;
        auto req = parse_request(text, opt.service.pipeline, error, &failed_id);
        if (!req) {
            send_line(*conn, error_line(failed_id, error));
            return;
        }
        // Inline ops answer from the poll thread: they never queue, so they
        // stay responsive while every worker is busy (or while draining).
        auto id_fields = [&](json_line& line, const char* op) {
            line.field("op", op);
            if (req->id != 0) line.field("id", req->id);
            if (!req->req_id.empty()) line.field("req_id", req->req_id);
        };
        if (req->op == "ping") {
            json_line line;
            id_fields(line, "ping");
            line.field("ok", true);
            line.field("draining", draining);
            line.field("uptime_s", ms_since(t_start) / 1e3);
            line.field("version", asynth::version_string);
            line.field("pid", static_cast<std::uint64_t>(::getpid()));
            send_line(*conn, std::move(line).finish());
            return;
        }
        if (req->op == "health") {
            // Liveness: "the process is up and answering".  Always ok:true --
            // a dead daemon answers nothing, which is the failure signal.
            json_line line;
            id_fields(line, "health");
            line.field("ok", true);
            line.field("uptime_s", ms_since(t_start) / 1e3);
            line.field("version", asynth::version_string);
            line.field("pid", static_cast<std::uint64_t>(::getpid()));
            line.field("draining", draining);
            send_line(*conn, std::move(line).finish());
            return;
        }
        if (req->op == "ready") {
            // Readiness: "send me traffic".  ok mirrors ready, so a probe can
            // use the client's exit code directly (0 = ready, 1 = not).
            std::size_t depth;
            {
                std::lock_guard<std::mutex> lock(queue_m);
                depth = queue.size();
            }
            const char* reason = draining ? "draining" : depth >= high_water ? "queue" : "";
            json_line line;
            id_fields(line, "ready");
            line.field("ok", *reason == '\0');
            line.field("ready", *reason == '\0');
            line.field("queue_depth", static_cast<std::uint64_t>(depth));
            line.field("high_water", static_cast<std::uint64_t>(high_water));
            if (*reason != '\0') line.field("reason", reason);
            send_line(*conn, std::move(line).finish());
            return;
        }
        if (req->op == "stats") {
            send_line(*conn, eng.stats_line(req->want_log));
            return;
        }
        if (req->op == "metrics") {
            // Prometheus text exposition rides inside the line protocol as an
            // escaped "text" field; `asynth client --op metrics` unwraps it.
            json_line line;
            id_fields(line, "metrics");
            line.field("ok", true);
            line.field("text", engine::metrics_text());
            send_line(*conn, std::move(line).finish());
            return;
        }
        if (req->op == "shutdown") {
            json_line line;
            id_fields(line, "shutdown");
            line.field("ok", true);
            send_line(*conn, std::move(line).finish());
            begin_drain("shutdown request");
            return;
        }
        // op == "synth"
        obs::log_context log_ctx(req->req_id);  // stamps the admission events below
        if (draining) {
            send_line(*conn, error_line(req->id, "draining", req->req_id));
            return;
        }
        {
            std::lock_guard<std::mutex> lock(queue_m);
            if (queue.size() >= opt.service.queue_capacity) {
                rejected.fetch_add(1, std::memory_order_relaxed);
                obs::log_event(obs::log_level::warn, "server.queue_full")
                    .field("queue_capacity",
                           static_cast<std::uint64_t>(opt.service.queue_capacity));
                send_line(*conn, error_line(req->id, "queue full", req->req_id));
                return;
            }
            conn->pending.fetch_add(1, std::memory_order_acq_rel);
            in_flight.fetch_add(1, std::memory_order_acq_rel);
            queue.push_back({conn, std::move(*req), clock_type::now()});
        }
        queue_cv.notify_one();
    };

    std::vector<char> rdbuf(64 * 1024);
    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({sigpipe[0], POLLIN, 0});
        fds.push_back({wakepipe[0], POLLIN, 0});
        if (listen_open) fds.push_back({listen_fd, POLLIN, 0});
        std::vector<int> conn_fds;  // parallel to fds entries after the fixed ones
        for (const auto& [fd, conn] : conns)
            // A read_done conn stays open for pending responses but is no
            // longer polled (its fd would report readable-EOF forever).
            if (!conn->closed.load(std::memory_order_relaxed) &&
                !conn->read_done.load(std::memory_order_relaxed)) {
                fds.push_back({fd, POLLIN, 0});
                conn_fds.push_back(fd);
            }

        if (::poll(fds.data(), fds.size(), -1) < 0 && errno != EINTR) break;

        // Drain both self-pipes.  The *read* result decides whether a signal
        // arrived -- when the handler interrupts poll() itself (EINTR), the
        // byte is in the pipe but revents was never filled in.
        bool signal_seen = false;
        {
            char sink[256];
            ssize_t n;
            while ((n = ::read(sigpipe[0], sink, sizeof sink)) > 0) signal_seen = true;
            while (::read(wakepipe[0], sink, sizeof sink) > 0) {}
        }
        if (signal_seen) begin_drain("signal");

        // New connections.
        if (listen_open)
            for (const auto& pfd : fds)
                if (pfd.fd == listen_fd && (pfd.revents & POLLIN)) {
                    for (;;) {
                        const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                                  SOCK_CLOEXEC | SOCK_NONBLOCK);
                        if (cfd < 0) break;
                        auto conn = std::make_shared<connection>();
                        conn->fd = cfd;
                        conns.emplace(cfd, std::move(conn));
                    }
                }

        // Readable connections.
        const std::size_t fixed = fds.size() - conn_fds.size();
        for (std::size_t i = 0; i < conn_fds.size(); ++i) {
            const auto& pfd = fds[fixed + i];
            if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) continue;
            auto it = conns.find(conn_fds[i]);
            if (it == conns.end()) continue;
            auto& conn = it->second;
            for (;;) {
                const ssize_t n = ::recv(conn->fd, rdbuf.data(), rdbuf.size(), 0);
                if (n > 0) {
                    if (conn->inbuf.size() + static_cast<std::size_t>(n) > max_inbuf) {
                        send_line(*conn, error_line(0, "request line too large"));
                        conn->closed.store(true, std::memory_order_relaxed);
                        break;
                    }
                    conn->inbuf.append(rdbuf.data(), static_cast<std::size_t>(n));
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                if (n < 0 && errno == EINTR) continue;
                if (n == 0)
                    conn->read_done.store(true, std::memory_order_relaxed);  // half-close
                else
                    conn->closed.store(true, std::memory_order_relaxed);  // hard error
                break;
            }
            std::size_t start = 0;
            for (;;) {
                const auto nl = conn->inbuf.find('\n', start);
                if (nl == std::string::npos) break;
                std::string_view text(conn->inbuf.data() + start, nl - start);
                if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
                if (!text.empty()) handle_line(conn, text);
                start = nl + 1;
            }
            conn->inbuf.erase(0, start);
        }

        // Sweep connections that are done (no more requests coming, nothing
        // owed).  A half-closed conn is only reaped after its last response
        // went out.
        for (auto it = conns.begin(); it != conns.end();) {
            auto& conn = it->second;
            const bool finished = conn->closed.load(std::memory_order_relaxed) ||
                                  conn->read_done.load(std::memory_order_relaxed);
            if (finished && conn->pending.load(std::memory_order_acquire) == 0) {
                ::close(conn->fd);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }

        if (draining && in_flight.load(std::memory_order_acquire) == 0) break;
    }

    // ---- shut the dispatcher down and report -------------------------------
    {
        std::lock_guard<std::mutex> lock(queue_m);
        stop_dispatch = true;
    }
    queue_cv.notify_all();
    dispatcher.join();

    for (auto& [fd, conn] : conns) ::close(fd);
    if (listen_open) ::close(listen_fd);
    ::unlink(opt.socket_path.c_str());
    g_signal_pipe_wr = -1;
    ::close(sigpipe[0]);
    ::close(sigpipe[1]);
    ::close(wakepipe[0]);
    ::close(wakepipe[1]);

    const double wall = ms_since(t_start) / 1e3;
    {
        const engine_stats s = eng.stats();
        obs::log_event(obs::log_level::info, "server.drained")
            .field("uptime_s", wall)
            .field("requests", s.requests)
            .field("completed", s.completed)
            .field("failed", s.failed)
            .field("rejected", rejected.load());
    }
    if (!opt.report_file.empty()) {
        std::ofstream out(opt.report_file);
        out << batch::report_json(eng.drain_report(wall));
        out.close();
        if (!out)
            std::fprintf(stderr, "asynth serve: cannot write '%s'\n", opt.report_file.c_str());
        else if (opt.verbose)
            std::printf("asynth serve: wrote %s\n", opt.report_file.c_str());
    }
    if (opt.verbose) {
        const engine_stats s = eng.stats();
        std::printf("asynth serve: drained cleanly after %.2f s: %llu requests "
                    "(%llu completed, %llu failed, %llu rejected), store %llu hits / %llu "
                    "misses, queue wait p50 %.2f ms p90 %.2f ms\n",
                    wall, static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(rejected.load()),
                    static_cast<unsigned long long>(s.store_hits),
                    static_cast<unsigned long long>(s.store_misses), s.queue_wait_p50_ms,
                    s.queue_wait_p90_ms);
        std::fflush(stdout);
    }
    std::set_terminate(g_prev_terminate);
    return 0;
}

int run_client(const client_options& opt, const std::string& request_line,
               std::string& response) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socket_path.empty() || opt.socket_path.size() >= sizeof addr.sun_path) {
        response = "socket path empty or too long";
        return 2;
    }
    std::memcpy(addr.sun_path, opt.socket_path.c_str(), opt.socket_path.size() + 1);
    ::signal(SIGPIPE, SIG_IGN);

    // Retry the connect inside the window: "start the daemon, fire clients"
    // scripts race the bind otherwise.
    const auto deadline =
        clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                                std::chrono::duration<double>(opt.connect_timeout_seconds));
    int fd = -1;
    for (;;) {
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            response = std::string("socket(): ") + std::strerror(errno);
            return 2;
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) break;
        ::close(fd);
        fd = -1;
        if (clock_type::now() >= deadline) {
            response = "cannot connect to '" + opt.socket_path + "': " + std::strerror(errno);
            return 2;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::string line = request_line;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            response = std::string("send(): ") + std::strerror(errno);
            ::close(fd);
            return 2;
        }
        off += static_cast<std::size_t>(n);
    }

    response.clear();
    char buf[64 * 1024];
    const auto resp_deadline =
        clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                                std::chrono::duration<double>(opt.response_timeout_seconds));
    for (;;) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            resp_deadline - clock_type::now());
        if (left.count() <= 0) {
            response = "timed out waiting for a response";
            ::close(fd);
            return 2;
        }
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                                           left.count(), 1000 * 60 * 60)));
        if (pr < 0 && errno == EINTR) continue;
        if (pr <= 0) continue;
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            response = "connection closed before a response";
            ::close(fd);
            return 2;
        }
        response.append(buf, static_cast<std::size_t>(n));
        const auto nl = response.find('\n');
        if (nl != std::string::npos) {
            response.resize(nl);
            break;
        }
    }
    ::close(fd);

    auto parsed = json_parse(response);
    if (!parsed) return 2;
    return parsed->get_bool("ok", false) ? 0 : 1;
}

}  // namespace asynth::service
