// End-to-end synthesis pipeline: one documented entry point that chains every
// layer of the library into the paper's Fig. 4 flow and reports what happened
// at each stage:
//
//   parse   astg text -> stg                       (petri/astg_io)
//   expand  handshake expansion                    (core/expand)
//   sg      state graph generation                 (sg/state_graph)
//   reduce  Fig. 9 concurrency-reduction search    (core/search)
//   csc     state-signal insertion                 (csc/csc)
//   logic   speed-independent logic synthesis      (logic/synthesis)
//   perf    critical-cycle timed simulation        (perf/timing)
//   recover region-based STG recovery              (regions/regions)
//   emit    netlist backends (Verilog + C model)   (netlist/backend)
//   verify  implementation-vs-SG emulation         (netlist/emulate)
//
// Unlike core/flow (which the benches drive and which aborts by exception),
// the pipeline never throws: every stage runs under a wall-clock stopwatch
// and converts asynth::error into a structured (failed stage, diagnostic)
// pair in the result, so callers -- the asynth CLI, tests, future services --
// can report failures without a try/catch of their own.
//
// Thread safety: run_pipeline is a pure function of (spec, options) -- in
// fact of (write_astg(spec), options): the expand stage canonicalises the
// spec through a write_astg/parse_astg round trip first, so nets built in
// different construction orders (and hence with different internal
// transition/place numbering) yield bit-identical results whenever their
// canonical texts match.  That equivalence is what makes the result store's
// content addressing (store/result_store.hpp) sound.  The batch engine
// (batch/batch.hpp) runs many calls concurrently on a thread pool.  Each result owns its artefacts (the base SG rides behind a
// shared_ptr so `reduced` stays valid across moves); share a result across
// threads only for reading.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cost.hpp"
#include "core/expand.hpp"
#include "core/flow.hpp"
#include "core/search.hpp"
#include "csc/csc.hpp"
#include "logic/synthesis.hpp"
#include "netlist/backend.hpp"
#include "netlist/emulate.hpp"
#include "perf/timing.hpp"
#include "petri/stg.hpp"
#include "regions/regions.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

/// The stages of the end-to-end flow, in execution order.
enum class pipeline_stage : uint8_t {
    parse,        ///< astg text -> stg (only when starting from text)
    expand,       ///< handshake expansion (core/expand)
    state_graph,  ///< reachability graph generation (sg/)
    reduce,       ///< Fig. 9 concurrency reduction (core/search)
    csc,          ///< complete state coding resolution (csc/)
    logic,        ///< logic synthesis + area (logic/)
    perf,         ///< critical-cycle analysis (perf/)
    recover,      ///< region-based STG recovery (regions/)
    emit,         ///< netlist emission, Verilog + C model (netlist/)
    verify,       ///< implementation-vs-SG emulation (netlist/emulate)
};

/// Last member of pipeline_stage; loops over all stages iterate to here.
inline constexpr pipeline_stage pipeline_stage_last = pipeline_stage::verify;

/// Short printable name of a stage ("parse", "expand", ...).
[[nodiscard]] const char* stage_name(pipeline_stage s) noexcept;

/// Wall-clock cost of one executed stage.
struct stage_timing {
    pipeline_stage stage = pipeline_stage::parse;
    double seconds = 0.0;  ///< wall-clock seconds (perf/timing stopwatch)
};

/// Everything the pipeline can be asked to do.  Defaults reproduce the
/// paper's Fig. 4 flow with the beam search of Fig. 9.
struct pipeline_options {
    expand_options expand;                                   ///< handshake expansion knobs
    reduction_strategy strategy = reduction_strategy::beam;  ///< none / beam / full
    search_options search;                                   ///< Fig. 9 search configuration
    csc_options csc;                                         ///< CSC insertion budget
    synthesis_options synth;                                 ///< gate library + minimiser
    delay_model delays;                                      ///< timed-simulation delays
    /// Wire- and constant-implemented outputs get zero delay in the timed
    /// model (a wire has no gate), matching Table 1's fully reduced rows.
    bool zero_delay_wires = true;
    bool run_performance = true;  ///< run the perf stage
    bool recover_stg = true;      ///< run the recover stage (STG of the result)
    /// Run the verify stage: emulate the emitted gate-level implementation
    /// against the encoded state graph (netlist/emulate.hpp).  A divergence
    /// is a structured *failure* (failed = verify), not a verdict: the
    /// pipeline promised a speed-independent circuit and the gates disagree.
    /// The emit stage itself always runs when synthesis succeeds.
    bool verify_impl = false;
};

/// The pipeline outcome.  Two notions of success are kept apart:
///  * `completed` -- every requested stage ran without throwing.  A spec
///    whose CSC conflict is provably unfixable (the paper's Fig. 1) still
///    *completes*: that verdict is the analysis result, not a crash.
///  * `synthesized()` -- the flow additionally produced a valid circuit.
/// When !completed, `failed` names the first failing stage and `message`
/// carries the diagnostic; artefacts up to the failure point remain valid.
struct pipeline_result {
    bool completed = false;                 ///< all requested stages ran
    std::optional<pipeline_stage> failed;   ///< first failing stage when !completed
    std::string message;                    ///< diagnostic when !completed

    stg spec;                               ///< input specification
    stg expanded;                           ///< after handshake expansion
    /// Base SG behind a shared_ptr so `reduced` (a view into it) survives
    /// moves/copies of the result struct.
    std::shared_ptr<const state_graph> base_sg;
    subgraph reduced;                       ///< best reduced configuration
    cost_breakdown initial_cost;            ///< section-7 cost before reduction
    cost_breakdown reduced_cost;            ///< section-7 cost after reduction
    search_result search;                   ///< Fig. 9 exploration trace
    csc_result csc;                         ///< CSC insertion log + encoded SG
    synthesis_result synth;                 ///< circuit + area
    perf_report perf;                       ///< critical-cycle metrics
    recovery_result recovered;              ///< STG of the reduced result
    circuit_netlist impl_model;             ///< gate-level model (emit stage)
    std::string verilog;                    ///< emitted Verilog (emit stage)
    std::string cmodel;                     ///< emitted C model (emit stage)
    emulation_result impl_check;            ///< emulation verdict (verify stage)

    std::vector<stage_timing> timings;      ///< one entry per executed stage
    double total_seconds = 0.0;             ///< sum of stage wall-clock times

    /// True when the flow produced a valid speed-independent circuit.
    [[nodiscard]] bool synthesized() const { return csc.solved && synth.ok; }
    /// Circuit area (-1 when synthesis failed).
    [[nodiscard]] double area() const { return synth.ok ? synth.ckt.total_area : -1.0; }
    /// Critical cycle length in model time units (0 when perf did not run).
    [[nodiscard]] double cycle() const { return perf.cycle_time; }
    /// Wall-clock seconds spent in @p s (0 when the stage did not run).
    [[nodiscard]] double stage_seconds(pipeline_stage s) const noexcept;
};

/// Runs the flow from an in-memory specification (no parse stage).
[[nodiscard]] pipeline_result run_pipeline(const stg& spec, const pipeline_options& opt);
[[nodiscard]] pipeline_result run_pipeline(const stg& spec);

/// Runs the flow from astg (.g) text, starting with the parse stage.
[[nodiscard]] pipeline_result run_pipeline_text(std::string_view astg_text,
                                                const pipeline_options& opt);

/// Human-readable multi-line report: per-stage wall-clock timings, state/arc
/// counts, cost trajectory, inserted CSC signals, area, equations and the
/// critical-cycle metrics.  Used verbatim by the asynth CLI.
[[nodiscard]] std::string pipeline_summary(const pipeline_result& r);

}  // namespace asynth
