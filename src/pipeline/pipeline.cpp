#include "pipeline/pipeline.hpp"

#include <cstdio>
#include <type_traits>
#include <utility>
#include <vector>

#include "explore/analysis_cache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "petri/astg_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace asynth {

const char* stage_name(pipeline_stage s) noexcept {
    switch (s) {
        case pipeline_stage::parse: return "parse";
        case pipeline_stage::expand: return "expand";
        case pipeline_stage::state_graph: return "state-graph";
        case pipeline_stage::reduce: return "reduce";
        case pipeline_stage::csc: return "csc";
        case pipeline_stage::logic: return "logic";
        case pipeline_stage::perf: return "perf";
        case pipeline_stage::recover: return "recover";
        case pipeline_stage::emit: return "emit";
        case pipeline_stage::verify: return "verify";
    }
    return "?";
}

double pipeline_result::stage_seconds(pipeline_stage s) const noexcept {
    for (const auto& t : timings)
        if (t.stage == s) return t.seconds;
    return 0.0;
}

namespace {

/// Runs @p body under a trace span (which doubles as the stage stopwatch),
/// appending the measurement to the result.  Bodies may take an `obs::span&`
/// to attach stage args (state counts, areas) that show up in trace exports.
/// Returns false when the stage threw, recording the structured failure.
template <typename Body>
bool run_stage(pipeline_result& rep, pipeline_stage stage, Body&& body) {
    obs::span sp(stage_name(stage), "pipeline");
    bool ok = true;
    try {
        if constexpr (std::is_invocable_v<Body&, obs::span&>)
            body(sp);
        else
            body();
    } catch (const error& e) {
        rep.failed = stage;
        rep.message = std::string(stage_name(stage)) + ": " + e.what();
        ok = false;
    } catch (const std::exception& e) {
        // The pipeline promises not to throw; resource exhaustion inside a
        // stage (bad_alloc, length_error) is reported the same way.
        rep.failed = stage;
        rep.message = std::string(stage_name(stage)) + ": " + e.what();
        ok = false;
    }
    rep.timings.push_back({stage, sp.seconds()});
    rep.total_seconds += rep.timings.back().seconds;
    return ok;
}

/// Process-wide pipeline counters + run-span args, recorded once per run.
void count_pipeline_run(const pipeline_result& rep, obs::span& sp) {
    auto& reg = obs::registry::global();
    static obs::counter& runs =
        reg.get_counter("asynth_pipeline_runs_total", "Pipeline invocations");
    static obs::counter& completed = reg.get_counter("asynth_pipeline_completed_total",
                                                     "Runs whose requested stages all ran");
    static obs::counter& failed =
        reg.get_counter("asynth_pipeline_failed_total", "Runs that failed at some stage");
    static obs::histogram& total_ms =
        reg.get_histogram("asynth_pipeline_total_ms", obs::default_ms_buckets(),
                          "End-to-end pipeline wall time (ms)");
    runs.add();
    (rep.completed ? completed : failed).add();
    total_ms.observe(rep.total_seconds * 1e3);
    sp.arg("spec", rep.spec.model_name);
    if (!rep.completed && rep.failed) sp.arg("failed_stage", stage_name(*rep.failed));
    // Request correlation: a bound req_id (service requests, batch specs)
    // rides on the run span and every log line below automatically.
    if (!obs::current_req_id().empty()) sp.arg("req_id", obs::current_req_id());
    obs::log_event(obs::log_level::info, "pipeline.run")
        .field("spec", rep.spec.model_name)
        .field("completed", rep.completed)
        .field("total_ms", rep.total_seconds * 1e3);
    if (!rep.completed && rep.failed) {
        obs::log_event ev(obs::log_level::warn, "pipeline.stage_failed");
        ev.field("spec", rep.spec.model_name)
            .field("failed_stage", stage_name(*rep.failed))
            .field("error", rep.message);
        // The spec hash identifies the failing input even when model names
        // collide; parse failures have no net worth hashing.
        if (*rep.failed != pipeline_stage::parse) {
            try {
                const std::string canon = write_astg(rep.spec);
                const hash128 h = hash128_bytes(canon.data(), canon.size());
                char hex[33];
                std::snprintf(hex, sizeof hex, "%016llx%016llx",
                              static_cast<unsigned long long>(h.hi),
                              static_cast<unsigned long long>(h.lo));
                ev.field("spec_hash", hex);
            } catch (const std::exception&) {
                // A spec broken enough to not serialise is logged without a hash.
            }
        }
    }
}

/// Stages after the spec has been provided/parsed.  Fills `rep` in place.
void continue_pipeline(pipeline_result& rep, const pipeline_options& opt) {
    if (!run_stage(rep, pipeline_stage::expand, [&](obs::span& sp) {
            // Canonicalise first: write_astg emits one canonical text (sorted
            // arcs) per net, and parsing it back renumbers transitions and
            // places in that text's order.  Nets built in different
            // construction orders share the canonical text but not the
            // internal numbering, and every downstream deterministic
            // tie-break (beam ordering, CSC insertion, recovery) keys off the
            // numbering.  Running all entry points through this fixpoint
            // makes the result a pure function of (canonical text, options):
            // the in-memory and text entries agree by construction, and the
            // result store's content addressing (options ++ canonical text)
            // is sound.
            rep.spec = parse_astg(write_astg(rep.spec));
            rep.expanded = expand_handshakes(rep.spec, opt.expand);
            sp.arg("spec", rep.spec.model_name);
            sp.arg("transitions", static_cast<std::uint64_t>(rep.expanded.transitions().size()));
        }))
        return;

    if (!run_stage(rep, pipeline_stage::state_graph, [&](obs::span& sp) {
            rep.base_sg = std::make_shared<const state_graph>(
                state_graph::generate(rep.expanded).graph);
            sp.arg("states", static_cast<std::uint64_t>(rep.base_sg->state_count()));
            sp.arg("arcs", static_cast<std::uint64_t>(rep.base_sg->arc_count()));
        }))
        return;

    // Keep_Conc pairs recorded in the spec ride along into the search.
    search_options search = opt.search;
    auto kc = keepconc_events(rep.expanded);
    search.keep_concurrent.insert(search.keep_concurrent.end(), kc.begin(), kc.end());

    if (!run_stage(rep, pipeline_stage::reduce, [&](obs::span& sp) {
            auto initial = subgraph::full(*rep.base_sg);
            rep.initial_cost = estimate_cost(initial, search.cost);
            rep.search = run_reduction(initial, opt.strategy, search, &rep.initial_cost);
            rep.reduced = rep.search.best;
            rep.reduced_cost = rep.search.best_cost;
            sp.arg("explored", static_cast<std::uint64_t>(rep.search.explored));
            sp.arg("live_states", static_cast<std::uint64_t>(rep.reduced.live_state_count()));
            sp.arg("cost", rep.reduced_cost.value);
        }))
        return;

    // An unsolved CSC is a *verdict*, not a crash (the paper's Fig. 1 is
    // exactly such a spec): synthesis still runs and reports its diagnostic.
    if (!run_stage(rep, pipeline_stage::csc, [&](obs::span& sp) {
            rep.csc = resolve_csc(rep.reduced, opt.csc);
            sp.arg("solved", rep.csc.solved ? "yes" : "no");
            sp.arg("inserted", static_cast<std::uint64_t>(rep.csc.signals_inserted));
        }))
        return;

    auto encoded = subgraph::full(rep.csc.graph);
    // Warm-start the exact minimiser from the search's memoised covers: when
    // CSC inserted no signal, the logic stage's per-signal specs are the
    // winning candidate's specs, so the memo has their heuristic covers
    // ready.  Key misses (inserted signals change every code) just fall back
    // to the cold path; results are identical either way (test_logic.cpp).
    synthesis_options synth = opt.synth;
    if (rep.search.memo && !synth.warm_cover) {
        auto memo = rep.search.memo;
        synth.warm_cover = [memo](const sop_spec& spec) -> std::shared_ptr<const cover> {
            if (auto hit = memo->find(explore::key_of_spec(spec)); hit && hit->cubes)
                return hit->cubes;
            return nullptr;
        };
    }
    if (!run_stage(rep, pipeline_stage::logic, [&](obs::span& sp) {
            rep.synth = synthesize(encoded, synth);
            if (rep.synth.ok) sp.arg("area", rep.synth.ckt.total_area);
        }))
        return;

    if (opt.run_performance) {
        delay_model delays = opt.delays;
        if (opt.zero_delay_wires && rep.synth.ok)
            delays = wire_zero_delays(rep.synth.ckt, rep.csc.graph, std::move(delays));
        if (!run_stage(rep, pipeline_stage::perf, [&](obs::span& sp) {
                rep.perf = analyze_performance(encoded, delays);
                sp.arg("cycle", rep.perf.cycle_time);
            }))
            return;
    }

    if (opt.recover_stg) {
        if (!run_stage(rep, pipeline_stage::recover, [&] {
                rep.recovered = recover_stg(rep.reduced);
                rep.recovered.net.model_name = rep.spec.model_name + "_reduced";
            }))
            return;
    }

    // Emission is unconditional once a circuit exists (it is a cheap, pure
    // text rendering of the gates); verification is opt-in.  Neither runs on
    // verdict-only results (no circuit -> nothing to emit or replay).
    if (rep.synthesized()) {
        if (!run_stage(rep, pipeline_stage::emit, [&](obs::span& sp) {
                rep.impl_model =
                    build_circuit_netlist(rep.synth.ckt, rep.csc.graph, rep.spec.model_name);
                rep.verilog = find_backend("verilog")->emit(rep.impl_model);
                rep.cmodel = find_backend("cmodel")->emit(rep.impl_model);
                sp.arg("gates", static_cast<std::uint64_t>(rep.impl_model.gate_count()));
            }))
            return;
        if (opt.verify_impl) {
            if (!run_stage(rep, pipeline_stage::verify, [&](obs::span& sp) {
                    rep.impl_check =
                        emulate_against_sg(rep.impl_model, subgraph::full(rep.csc.graph));
                    sp.arg("states", static_cast<std::uint64_t>(rep.impl_check.states_visited));
                    require(rep.impl_check.ok, rep.impl_check.message);
                }))
                return;
        }
    }
    rep.completed = true;
}

}  // namespace

pipeline_result run_pipeline(const stg& spec, const pipeline_options& opt) {
    obs::span sp("pipeline", "pipeline");
    pipeline_result rep;
    rep.spec = spec;
    continue_pipeline(rep, opt);
    count_pipeline_run(rep, sp);
    return rep;
}

pipeline_result run_pipeline(const stg& spec) { return run_pipeline(spec, pipeline_options{}); }

pipeline_result run_pipeline_text(std::string_view astg_text, const pipeline_options& opt) {
    obs::span sp("pipeline", "pipeline");
    pipeline_result rep;
    if (run_stage(rep, pipeline_stage::parse, [&] { rep.spec = parse_astg(astg_text); }))
        continue_pipeline(rep, opt);
    count_pipeline_run(rep, sp);
    return rep;
}

std::string pipeline_summary(const pipeline_result& r) {
    std::string out;
    auto emit = [&](const char* fmt, auto&&... args) {
        // Two-pass snprintf: equations and diagnostics can be arbitrarily
        // long, so never truncate into a fixed buffer.
        int n = std::snprintf(nullptr, 0, fmt, args...);
        if (n <= 0) return;
        std::vector<char> buf(static_cast<std::size_t>(n) + 1);
        std::snprintf(buf.data(), buf.size(), fmt, args...);
        out += buf.data();
    };

    if (!r.completed) {
        emit("pipeline: %s (FAILED)\n", r.spec.model_name.c_str());
        emit("  error: %s\n", r.message.c_str());
    } else if (r.synthesized()) {
        emit("pipeline: %s (ok)\n", r.spec.model_name.c_str());
    } else {
        emit("pipeline: %s (completed, no circuit)\n", r.spec.model_name.c_str());
        const std::string& why = !r.csc.solved ? r.csc.message : r.synth.message;
        emit("  verdict: %s\n", why.c_str());
    }

    emit("stage timings:\n");
    for (const auto& t : r.timings)
        emit("  %-12s %9.3f ms\n", stage_name(t.stage), t.seconds * 1e3);
    emit("  %-12s %9.3f ms\n", "total", r.total_seconds * 1e3);

    if (r.base_sg) {
        emit("state graph: %zu states, %zu arcs (%zu signals)\n", r.base_sg->state_count(),
             r.base_sg->arc_count(), r.base_sg->signals().size());
        emit("reduction: cost %.1f -> %.1f, %zu states / %zu arcs live, %zu SGs explored\n",
             r.initial_cost.value, r.reduced_cost.value, r.reduced.live_state_count(),
             r.reduced.live_arc_count(), r.search.explored);
        if (r.search.quality != search_quality::exact)
            emit("quality: %s, bound gap %.1f%s\n", quality_name(r.search.quality),
                 r.search.bound_gap, r.search.deadline_hit ? " (deadline hit)" : "");
    }
    if (r.csc.signals_inserted > 0 || r.csc.solved) {
        emit("csc: %s, %zu signal(s) inserted\n", r.csc.solved ? "solved" : "UNSOLVED",
             r.csc.signals_inserted);
        for (const auto& a : r.csc.anchors) emit("  %s\n", a.c_str());
    }
    if (r.synth.ok) {
        emit("circuit: area %.0f\n", r.synth.ckt.total_area);
        for (const auto& impl : r.synth.ckt.impls) emit("  %s\n", impl.equation.c_str());
    }
    if (!r.impl_model.nets.empty())
        emit("netlist: %zu gate(s) emitted (verilog %zu bytes, cmodel %zu bytes)\n",
             r.impl_model.gate_count(), r.verilog.size(), r.cmodel.size());
    if (r.impl_check.states_visited > 0)
        emit("verify: implementation trace-equivalent to the spec "
             "(%zu states, %zu checks)\n",
             r.impl_check.states_visited, r.impl_check.checks);
    if (r.perf.periodic)
        emit("performance: cycle %.1f time units, %zu events (%zu inputs) on the critical cycle\n",
             r.perf.cycle_time, r.perf.events_on_cycle, r.perf.input_events_on_cycle);
    if (r.recovered.ok)
        emit("recovered STG: %zu places, %zu transitions\n", r.recovered.net.places().size(),
             r.recovered.net.transitions().size());
    else if (!r.recovered.message.empty())
        emit("recovered STG: failed (%s)\n", r.recovered.message.c_str());
    return out;
}

}  // namespace asynth
