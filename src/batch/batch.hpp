// Batch synthesis engine: run_pipeline() over a whole corpus on a
// work-stealing thread pool, aggregated into one report.
//
// The paper's experiments (Tables 1 and 2) are statements about a *corpus*,
// not a single spec; this module makes such sweeps a first-class operation.
// run_batch() executes every spec independently -- the pipeline layers are
// pure over their inputs (see the thread-safety notes in core/flow.hpp,
// sg/state_graph.hpp and bdd/bdd.hpp) -- and the per-spec records land in
// input order, so the report is byte-for-byte independent of the job count
// apart from the timing fields.
//
// report_json() serialises the report in a schema-stable layout
// (schema_version 5) written as BENCH_pipeline.json by `asynth batch
// --report`; the checked-in BENCH_pipeline.json at the repo root is the perf
// baseline subsequent PRs measure against.  Version 2 added the result-store
// hit/miss aggregates and the service's queue-wait percentiles on top of
// version 1; version 3 added the implementation-verification coverage fields
// and the emit/verify per-stage timings; version 4 adds the "counters" block
// -- the process-wide metrics registry (src/obs/) snapshotted around the
// sweep, so BENCH runs carry explored/pruned/memo-hit/store counters, not
// just timings; version 5 adds the search-quality dial: per-spec "quality" /
// "bound_gap" fields and the aggregate "max_bound_gap" (all trivial --
// "exact" and 0 -- for exact sweeps).  tools/check_bench_regression.py reads
// all five.
//
// With batch_options::store set (CLI: --store DIR), the sweep is *resumable*:
// each spec is first looked up in the content-addressed result store
// (store/result_store.hpp) under its canonical-text + options key, hits are
// reported from the stored record without re-running the pipeline, and
// misses are synthesised and written back -- so a killed sweep re-run over
// the same corpus skips everything it already finished, and batch and the
// synthesis service share one corpus of results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "store/result_store.hpp"

namespace asynth::batch {

/// Configuration of one sweep.
struct batch_options {
    pipeline_options pipeline;  ///< applied identically to every spec
    /// Worker threads; 0 picks std::thread::hardware_concurrency().  The
    /// per-spec records do not depend on this value (only the timings do).
    std::size_t jobs = 0;
    /// Result store consulted/filled by the sweep; the default handle is
    /// disabled (every spec synthesised, nothing written).  Open one with
    /// store::result_store::open() to make sweeps resumable.
    store::result_store store;
    /// When non-empty, a partial report (the rows finished so far) is flushed
    /// to this path every time a spec *fails*, via temp-file + rename.  A
    /// sweep that aborts mid-corpus therefore still leaves a parsable report;
    /// a clean finish overwrites it with the full one (the CLI wires --report
    /// here).
    std::string checkpoint_file;
};

/// Serialisation-friendly projection of one pipeline_result.
struct spec_record {
    std::string name;           ///< spec name within the sweep
    bool completed = false;     ///< every requested stage ran
    bool synthesized = false;   ///< a valid circuit was produced
    std::string failed_stage;   ///< first failing stage name ("" when completed)
    std::string message;        ///< failure diagnostic or CSC verdict ("" when clean)
    std::size_t states = 0;     ///< base SG states explored
    std::size_t arcs = 0;       ///< base SG arcs
    std::size_t signals = 0;    ///< SG signal count after expansion
    std::size_t explored = 0;   ///< distinct SGs evaluated by the Fig. 9 search
    bool csc_solved = false;    ///< CSC verdict
    std::size_t csc_signals = 0;  ///< inserted state signals
    double initial_cost = 0.0;  ///< section-7 cost before reduction
    double reduced_cost = 0.0;  ///< section-7 cost after reduction
    std::size_t literals = 0;   ///< estimated SOP literals of the reduced SG
    double area = -1.0;         ///< circuit area in area units (-1: no circuit)
    double cycle = 0.0;         ///< critical-cycle length, model time units
    /// Pipeline wall-clock total.  For a store hit this (and `timings`) is
    /// the *producing* run's cost -- what the record says synthesis took --
    /// not this sweep's lookup time; the sweep-level wall_seconds carries
    /// the actual elapsed time.
    double seconds = 0.0;
    std::vector<stage_timing> timings;  ///< per-stage wall-clock seconds
    bool store_hit = false;     ///< record served from the result store
    bool impl_checked = false;  ///< verify stage emulated the netlist and agreed
    std::size_t impl_states = 0;  ///< states the emulation walk visited
    /// Search-quality dial (v5): the quality the search actually ran at and
    /// the bound gap it reported ("exact"/0 for exact runs -- see
    /// search_result::bound_gap for the gap semantics).
    std::string quality = "exact";
    double bound_gap = 0.0;
};

/// Wall-clock distribution of one pipeline stage across the sweep.
struct stage_stats {
    std::string stage;      ///< stage name ("expand", "state-graph", ...)
    std::size_t runs = 0;   ///< specs that executed the stage
    double p50_ms = 0.0;    ///< median stage wall-clock, milliseconds
    double p90_ms = 0.0;    ///< 90th percentile, milliseconds
    double max_ms = 0.0;    ///< worst spec, milliseconds
    double total_ms = 0.0;  ///< sum over the sweep, milliseconds
};

/// Corpus-level outcome of one sweep.
struct batch_report {
    std::size_t jobs = 1;            ///< worker threads actually used
    double wall_seconds = 0.0;       ///< sweep wall-clock (threads overlap)
    double cpu_seconds = 0.0;        ///< sum of per-spec pipeline totals
    double specs_per_second = 0.0;   ///< count / wall_seconds
    std::size_t count = 0;           ///< specs in the sweep
    std::size_t completed = 0;       ///< specs whose every stage ran
    std::size_t failed = 0;          ///< count - completed
    std::size_t synthesized = 0;     ///< specs that produced a circuit
    std::size_t csc_solved = 0;      ///< specs whose CSC was resolved
    std::size_t total_states = 0;    ///< sum of base SG states
    std::size_t total_arcs = 0;      ///< sum of base SG arcs
    std::size_t total_explored = 0;  ///< sum of search explorations
    std::size_t total_csc_signals = 0;  ///< sum of inserted state signals
    std::size_t total_literals = 0;  ///< sum of reduced-SG literal estimates
    double total_area = 0.0;         ///< sum of areas over synthesized specs
    std::size_t store_hits = 0;      ///< specs served from the result store
    std::size_t store_misses = 0;    ///< specs synthesised (store open but cold)
    /// Per-request queue-wait distribution, milliseconds.  Filled by the
    /// synthesis service (service/service.hpp), which aggregates its request
    /// accounting through this same report; always 0 for batch sweeps, where
    /// nothing queues behind a socket.
    double queue_wait_p50_ms = 0.0;
    double queue_wait_p90_ms = 0.0;
    double queue_wait_max_ms = 0.0;
    std::size_t impl_checked = 0;    ///< specs whose netlist emulated clean (v3)
    double max_bound_gap = 0.0;      ///< worst per-spec bound gap of the sweep (v5)
    /// Metrics-registry counters (v4), name-sorted.  run_batch fills deltas
    /// accumulated across the sweep; the service's drain report fills the
    /// absolute process totals.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<stage_stats> stages; ///< per-stage percentiles, stage order
    std::vector<spec_record> specs;  ///< one record per spec, input order
};

/// Flattens one pipeline outcome into a record (exposed for tests and for
/// callers that drive run_pipeline themselves).
[[nodiscard]] spec_record record_of(const std::string& name, const pipeline_result& r);

/// Flattens a stored record (a result-store hit) into the same row shape,
/// with store_hit set; shared with the service's reporting.
[[nodiscard]] spec_record record_of_stored(const std::string& name,
                                           const store::stored_record& rec);

/// Runs the pipeline over every spec on a work-stealing pool and aggregates.
/// A spec that fails -- structured pipeline error or a stray exception --
/// yields a failed record without affecting the rest of the sweep.
[[nodiscard]] batch_report run_batch(const std::vector<benchmarks::named_spec>& specs,
                                     const batch_options& opt = {});

/// Aggregates already-collected rows into a report (counts, stage
/// percentiles, specs/second).  The synthesis service drains through this so
/// its report and report_json(BENCH_pipeline.json) stay one schema.
[[nodiscard]] batch_report make_report(std::vector<spec_record> specs, std::size_t jobs,
                                       double wall_seconds);

/// Schema-stable JSON serialisation of the report (schema_version 5): fixed
/// key order, aggregate block first, then the counters block, then stage
/// percentiles, then one object per spec.  This is the BENCH_pipeline.json
/// format.  v2 = v1 plus store_hits/store_misses, the queue_wait_*
/// percentiles and per-spec store_hit flags; v3 = v2 plus the impl_checked
/// aggregates/flags and the emit/verify stage timings; v4 = v3 plus the
/// "counters" object (metrics-registry snapshot); v5 = v4 plus
/// "max_bound_gap" and the per-spec "quality"/"bound_gap" fields.  Readers
/// that index specs[] keep working across versions.
[[nodiscard]] std::string report_json(const batch_report& r);

/// Compact per-spec table plus the aggregate line, for terminal output.
[[nodiscard]] std::string report_text(const batch_report& r);

}  // namespace asynth::batch
