// Work-stealing scheduler over a fixed task list, shared by the batch engine
// (whole pipeline runs per task) and the incremental exploration engine's
// frontier expander (one candidate move per task).
//
// Each worker owns a deque seeded round-robin; it pops its own front and,
// when empty, steals from the back of the other queues.  Tasks never spawn
// tasks, so a worker that finds every queue empty can retire.  Mutex-per-
// queue keeps the implementation obviously correct; the tasks (~10 us for a
// move score up to ~s for a pipeline run) dwarf the lock cost.
//
// Determinism contract: run(body) invokes body(i) exactly once for every
// task index i, from an unspecified worker at an unspecified time.  Callers
// that write results into a preallocated slot per index (both current users)
// get jobs-independent output.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace asynth::batch {

class work_stealing_pool {
public:
    work_stealing_pool(std::size_t workers, std::size_t tasks) : queues_(workers) {
        for (std::size_t i = 0; i < tasks; ++i) queues_[i % workers].items.push_back(i);
    }

    /// Runs @p body(task_index) across all workers and joins.
    template <typename Body>
    void run(Body&& body) {
        std::vector<std::thread> threads;
        threads.reserve(queues_.size() - 1);
        for (std::size_t w = 1; w < queues_.size(); ++w)
            threads.emplace_back([this, w, &body] { work(w, body); });
        work(0, body);  // the calling thread is worker 0
        for (auto& t : threads) t.join();
    }

private:
    struct queue {
        std::deque<std::size_t> items;
        std::mutex m;
    };

    template <typename Body>
    void work(std::size_t self, Body& body) {
        for (;;) {
            std::size_t task = 0;
            if (!pop_own(self, task) && !steal(self, task)) return;
            body(task);
        }
    }

    bool pop_own(std::size_t self, std::size_t& task) {
        queue& q = queues_[self];
        std::lock_guard<std::mutex> lock(q.m);
        if (q.items.empty()) return false;
        task = q.items.front();
        q.items.pop_front();
        return true;
    }

    bool steal(std::size_t self, std::size_t& task) {
        for (std::size_t off = 1; off < queues_.size(); ++off) {
            queue& q = queues_[(self + off) % queues_.size()];
            std::lock_guard<std::mutex> lock(q.m);
            if (q.items.empty()) continue;
            task = q.items.back();
            q.items.pop_back();
            return true;
        }
        return false;
    }

    std::vector<queue> queues_;
};

}  // namespace asynth::batch
