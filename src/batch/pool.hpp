// Persistent work-stealing scheduler, shared by the batch engine (whole
// pipeline runs per task) and the incremental exploration engine's frontier
// expander (one candidate move per task).
//
// The pool spawns its workers once and reuses them across run() calls: the
// exploration engine dispatches several task batches per search level
// (apply, bound, score, derive), and constructing a fresh pool per batch --
// the original design -- spent more time in pthread_create than in the small
// batches themselves on deep searches.  Between batches the workers sleep on
// a condition variable keyed by a batch epoch.
//
// Each worker owns a deque seeded round-robin; it pops its own front and,
// when empty, steals from the back of the other queues.  Tasks never spawn
// tasks, so a worker that finds every queue empty retires to the gate and
// waits for the next epoch.  Mutex-per-queue keeps the implementation
// obviously correct; the tasks (~10 us for a move score up to ~s for a
// pipeline run) dwarf the lock cost.
//
// Determinism contract: run(tasks, body) invokes body(i) exactly once for
// every task index i in [0, tasks), from an unspecified worker at an
// unspecified time, and returns only after every invocation finished.
// Callers that write results into a preallocated slot per index (both
// current users) get jobs-independent output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace asynth::batch {

class work_stealing_pool {
public:
    /// Spawns @p workers - 1 threads (the thread calling run() is worker 0).
    /// Worker threads register named trace tracks ("pool<instance>-w<id>"),
    /// so spans recorded inside tasks render as real per-thread tracks.
    explicit work_stealing_pool(std::size_t workers)
        : queues_(std::max<std::size_t>(1, workers)) {
        static std::atomic<std::uint32_t> instances{0};
        const std::uint32_t instance = instances.fetch_add(1, std::memory_order_relaxed);
        threads_.reserve(queues_.size() - 1);
        for (std::size_t w = 1; w < queues_.size(); ++w)
            threads_.emplace_back([this, instance, w] {
                obs::name_thread("pool" + std::to_string(instance) + "-w" + std::to_string(w));
                worker_loop(w);
            });
    }

    ~work_stealing_pool() {
        {
            std::lock_guard<std::mutex> lock(gate_m_);
            stop_ = true;
        }
        gate_cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    work_stealing_pool(const work_stealing_pool&) = delete;
    work_stealing_pool& operator=(const work_stealing_pool&) = delete;

    [[nodiscard]] std::size_t workers() const noexcept { return queues_.size(); }

    /// Runs @p body(task_index) for every index in [0, tasks) across all
    /// workers and returns when the whole batch has finished.  Must not be
    /// called from inside a task (tasks never spawn tasks).
    template <typename Body>
    void run(std::size_t tasks, Body&& body) {
        if (tasks == 0) return;
        std::function<void(std::size_t)> fn = std::ref(body);
        // The previous run() returned only once no worker was draining, so
        // seeding the queues here cannot hand a task to a straggler holding
        // the previous batch's (already destroyed) body.
        for (std::size_t i = 0; i < tasks; ++i)
            queues_[i % queues_.size()].items.push_back(i);
        {
            std::lock_guard<std::mutex> lock(gate_m_);
            body_ = &fn;
            remaining_.store(tasks, std::memory_order_relaxed);
            ++epoch_;
        }
        gate_cv_.notify_all();
        drain(0, fn);
        std::unique_lock<std::mutex> lock(gate_m_);
        done_cv_.wait(lock, [&] {
            return remaining_.load(std::memory_order_acquire) == 0 && draining_ == 0;
        });
        body_ = nullptr;
    }

private:
    struct queue {
        std::deque<std::size_t> items;
        std::mutex m;
    };

    void worker_loop(std::size_t self) {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)>* body = nullptr;
            {
                std::unique_lock<std::mutex> lock(gate_m_);
                gate_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
                if (stop_) return;
                seen = epoch_;
                // body_ is already null when this worker wakes after the
                // batch fully drained (run() returned); the queues are empty
                // then and the next wait re-arms on the epoch.
                body = body_;
                if (body) ++draining_;
            }
            if (!body) continue;
            drain(self, *body);
            {
                std::lock_guard<std::mutex> lock(gate_m_);
                --draining_;
            }
            done_cv_.notify_all();
        }
    }

    template <typename Fn>
    void drain(std::size_t self, Fn& body) {
        for (;;) {
            std::size_t task = 0;
            if (!pop_own(self, task) && !steal(self, task)) return;
            body(task);
            if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(gate_m_);
                done_cv_.notify_all();
            }
        }
    }

    bool pop_own(std::size_t self, std::size_t& task) {
        queue& q = queues_[self];
        std::lock_guard<std::mutex> lock(q.m);
        if (q.items.empty()) return false;
        task = q.items.front();
        q.items.pop_front();
        return true;
    }

    bool steal(std::size_t self, std::size_t& task) {
        for (std::size_t off = 1; off < queues_.size(); ++off) {
            queue& q = queues_[(self + off) % queues_.size()];
            std::lock_guard<std::mutex> lock(q.m);
            if (q.items.empty()) continue;
            task = q.items.back();
            q.items.pop_back();
            return true;
        }
        return false;
    }

    std::vector<queue> queues_;
    std::vector<std::thread> threads_;

    std::mutex gate_m_;
    std::condition_variable gate_cv_;  ///< workers wait here between batches
    std::condition_variable done_cv_;  ///< run() waits here for the batch end
    const std::function<void(std::size_t)>* body_ = nullptr;
    std::atomic<std::size_t> remaining_{0};
    std::size_t draining_ = 0;  ///< workers currently inside drain()
    std::uint64_t epoch_ = 0;
    bool stop_ = false;
};

}  // namespace asynth::batch
