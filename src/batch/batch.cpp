#include "batch/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "batch/pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/timing.hpp"
#include "petri/astg_io.hpp"

namespace asynth::batch {

namespace {

/// Nearest-rank percentile of an ascending sample vector, in milliseconds.
double percentile_ms(const std::vector<double>& sorted_seconds, double q) {
    if (sorted_seconds.empty()) return 0.0;
    auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
    rank = std::min(rank, sorted_seconds.size() - 1);
    return sorted_seconds[rank] * 1e3;
}

void aggregate(batch_report& rep) {
    rep.count = rep.specs.size();
    for (const auto& s : rep.specs) {
        rep.completed += s.completed ? 1 : 0;
        rep.synthesized += s.synthesized ? 1 : 0;
        rep.csc_solved += s.csc_solved ? 1 : 0;
        rep.store_hits += s.store_hit ? 1 : 0;
        rep.impl_checked += s.impl_checked ? 1 : 0;
        rep.total_states += s.states;
        rep.total_arcs += s.arcs;
        rep.total_explored += s.explored;
        rep.total_csc_signals += s.csc_signals;
        rep.total_literals += s.literals;
        if (s.synthesized) rep.total_area += s.area;
        rep.cpu_seconds += s.seconds;
        rep.max_bound_gap = std::max(rep.max_bound_gap, s.bound_gap);
    }
    rep.failed = rep.count - rep.completed;
    if (rep.wall_seconds > 0.0)
        rep.specs_per_second = static_cast<double>(rep.count) / rep.wall_seconds;

    // Per-stage distributions, iterating the contiguous pipeline_stage enum
    // so a newly added stage can never silently drop out of the percentiles.
    for (uint8_t si = 0; si <= static_cast<uint8_t>(pipeline_stage_last); ++si) {
        const auto stage = static_cast<pipeline_stage>(si);
        std::vector<double> samples;
        for (const auto& s : rep.specs)
            for (const auto& t : s.timings)
                if (t.stage == stage) samples.push_back(t.seconds);
        if (samples.empty()) continue;
        std::sort(samples.begin(), samples.end());
        stage_stats st;
        st.stage = stage_name(stage);
        st.runs = samples.size();
        st.p50_ms = percentile_ms(samples, 0.5);
        st.p90_ms = percentile_ms(samples, 0.9);
        st.max_ms = samples.back() * 1e3;
        for (double v : samples) st.total_ms += v * 1e3;
        rep.stages.push_back(std::move(st));
    }
}

// ---- JSON ------------------------------------------------------------------

void json_escape(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void json_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

/// Counter deltas across a sweep: for every name in @p after, its value
/// minus the matching @p before value (0 when newly registered).  Both
/// inputs are name-sorted (registry::counter_values()), so one merge pass.
std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(after.size());
    std::size_t i = 0;
    for (const auto& [name, value] : after) {
        while (i < before.size() && before[i].first < name) ++i;
        const std::uint64_t base =
            (i < before.size() && before[i].first == name) ? before[i].second : 0;
        out.emplace_back(name, value - base);
    }
    return out;
}

/// Temp-file + rename, so a reader never sees a half-written checkpoint.
void write_report_atomically(const std::string& path, const batch_report& rep) {
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary);
    out << report_json(rep);
    out.close();
    if (!out || std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

/// Appends `"key": value` pairs with stable ordering and formatting.
struct json_object {
    std::string& out;
    bool first = true;

    void key(const char* k) {
        if (!first) out += ", ";
        first = false;
        out += '"';
        out += k;
        out += "\": ";
    }
    void field(const char* k, const std::string& v) { key(k), json_escape(out, v); }
    void field(const char* k, double v) { key(k), json_number(out, v); }
    void field(const char* k, std::size_t v) { key(k), out += std::to_string(v); }
    void field(const char* k, bool v) { key(k), out += v ? "true" : "false"; }
};

}  // namespace

spec_record record_of(const std::string& name, const pipeline_result& r) {
    spec_record out;
    out.name = name;
    out.completed = r.completed;
    out.synthesized = r.synthesized();
    if (r.failed) out.failed_stage = stage_name(*r.failed);
    if (!r.completed)
        out.message = r.message;
    else if (!r.csc.solved)
        out.message = r.csc.message;
    if (r.base_sg) {
        out.states = r.base_sg->state_count();
        out.arcs = r.base_sg->arc_count();
        out.signals = r.base_sg->signals().size();
    }
    out.explored = r.search.explored;
    out.csc_solved = r.csc.solved;
    out.csc_signals = r.csc.signals_inserted;
    out.initial_cost = r.initial_cost.value;
    out.reduced_cost = r.reduced_cost.value;
    out.literals = r.reduced_cost.literals;
    out.area = r.area();
    out.cycle = r.cycle();
    out.seconds = r.total_seconds;
    out.timings = r.timings;
    out.impl_checked = r.impl_check.ok;
    out.impl_states = r.impl_check.states_visited;
    out.quality = quality_name(r.search.quality);
    out.bound_gap = r.search.bound_gap;
    return out;
}

spec_record record_of_stored(const std::string& name, const store::stored_record& rec) {
    spec_record out;
    out.name = name;
    out.completed = rec.completed;
    out.synthesized = rec.synthesized;
    out.failed_stage = rec.failed_stage;
    out.message = rec.message;
    out.states = rec.states;
    out.arcs = rec.arcs;
    out.signals = rec.signals;
    out.explored = rec.explored;
    out.csc_solved = rec.csc_solved;
    out.csc_signals = rec.csc_signals;
    out.initial_cost = rec.initial_cost;
    out.reduced_cost = rec.reduced_cost;
    out.literals = rec.literals;
    out.area = rec.area;
    out.cycle = rec.cycle;
    out.seconds = rec.seconds;
    // Stage names round-trip through the enum; a name this build does not
    // know (newer producer) is dropped rather than misattributed.
    for (const auto& [stage, seconds] : rec.timings)
        for (uint8_t si = 0; si <= static_cast<uint8_t>(pipeline_stage_last); ++si)
            if (stage == stage_name(static_cast<pipeline_stage>(si))) {
                out.timings.push_back({static_cast<pipeline_stage>(si), seconds});
                break;
            }
    out.impl_checked = rec.impl_checked;
    out.impl_states = rec.impl_states;
    out.quality = rec.quality;
    out.bound_gap = rec.bound_gap;
    out.store_hit = true;
    return out;
}

batch_report run_batch(const std::vector<benchmarks::named_spec>& specs,
                       const batch_options& opt) {
    obs::span sweep_sp("batch.sweep", "batch");
    sweep_sp.arg("specs", static_cast<std::uint64_t>(specs.size()));
    batch_report rep;
    rep.specs.resize(specs.size());
    std::size_t jobs = opt.jobs ? opt.jobs
                                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    jobs = std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(specs.size(), 1)));
    rep.jobs = jobs;
    sweep_sp.arg("jobs", static_cast<std::uint64_t>(jobs));

    // One fingerprint per sweep: every spec runs under the same options.
    // Computed even with the store off -- the (spec, options) key doubles as
    // the per-spec correlation id on log lines and trace spans.
    const std::string fingerprint = store::options_fingerprint(opt.pipeline);

    // The v4 counter block carries what *this sweep* contributed, not the
    // process-lifetime totals (several sweeps can share one process).
    const auto counters_before = obs::registry::global().counter_values();

    stopwatch wall;
    if (!specs.empty()) {
        // done[i] tells the failure-path checkpoint which rows are safe to
        // read while other workers are still writing theirs.
        auto done = std::make_unique<std::atomic<bool>[]>(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) done[i].store(false);
        std::mutex checkpoint_m;
        auto flush_checkpoint = [&] {
            if (opt.checkpoint_file.empty()) return;
            std::lock_guard<std::mutex> lock(checkpoint_m);
            std::vector<spec_record> rows;
            for (std::size_t i = 0; i < specs.size(); ++i)
                if (done[i].load(std::memory_order_acquire)) rows.push_back(rep.specs[i]);
            write_report_atomically(opt.checkpoint_file,
                                    make_report(std::move(rows), jobs, wall.seconds()));
        };

        work_stealing_pool pool(jobs);
        pool.run(specs.size(), [&](std::size_t i) {
            // run_pipeline converts stage failures into structured errors; the
            // belt-and-braces catch keeps one poisoned spec (e.g. resource
            // exhaustion outside a stage) from sinking the whole sweep.
            [&] {
                try {
                    const auto key = store::key_of(write_astg(specs[i].net), fingerprint);
                    // Stable per-spec req_id derived from the store key: the
                    // same spec under the same options logs the same id in
                    // every sweep, so failures can be diffed across runs.
                    obs::log_context log_ctx(key.hex().substr(0, 16));
                    if (opt.store.enabled()) {
                        if (auto hit = opt.store.get(key)) {
                            rep.specs[i] = record_of_stored(specs[i].name, *hit);
                            return;
                        }
                        auto result = run_pipeline(specs[i].net, opt.pipeline);
                        // Only *completed* runs are cached: a crash-shaped
                        // failure (OOM, budget blowout) should be retried next
                        // sweep, not replayed from disk forever.  CSC "no
                        // circuit" verdicts complete and are cached -- the
                        // verdict is the result.
                        if (result.completed)
                            opt.store.put(key, store::record_of(result, fingerprint));
                        rep.specs[i] = record_of(specs[i].name, result);
                        return;
                    }
                    rep.specs[i] =
                        record_of(specs[i].name, run_pipeline(specs[i].net, opt.pipeline));
                } catch (const std::exception& e) {
                    spec_record bad;
                    bad.name = specs[i].name;
                    bad.failed_stage = "batch";
                    bad.message = e.what();
                    rep.specs[i] = std::move(bad);
                }
            }();
            done[i].store(true, std::memory_order_release);
            // A failure checkpoints everything finished so far: if the sweep
            // later dies outright, the report file still parses.
            if (!rep.specs[i].completed) flush_checkpoint();
        });
    }
    rep.wall_seconds = wall.seconds();
    aggregate(rep);
    rep.store_misses = opt.store.enabled() ? rep.count - rep.store_hits : 0;
    rep.counters = counter_delta(counters_before, obs::registry::global().counter_values());
    return rep;
}

batch_report make_report(std::vector<spec_record> specs, std::size_t jobs, double wall_seconds) {
    batch_report rep;
    rep.specs = std::move(specs);
    rep.jobs = jobs;
    rep.wall_seconds = wall_seconds;
    aggregate(rep);
    return rep;
}

std::string report_json(const batch_report& r) {
    std::string out = "{\n  ";
    json_object top{out};
    top.field("schema_version", std::size_t{5});
    top.field("tool", std::string("asynth batch"));
    top.field("jobs", r.jobs);
    top.field("count", r.count);
    top.field("completed", r.completed);
    top.field("failed", r.failed);
    top.field("synthesized", r.synthesized);
    top.field("csc_solved", r.csc_solved);
    top.field("wall_seconds", r.wall_seconds);
    top.field("cpu_seconds", r.cpu_seconds);
    top.field("specs_per_second", r.specs_per_second);
    top.field("total_states", r.total_states);
    top.field("total_arcs", r.total_arcs);
    top.field("total_explored", r.total_explored);
    top.field("total_csc_signals", r.total_csc_signals);
    top.field("total_literals", r.total_literals);
    top.field("total_area", r.total_area);
    // schema_version 2 additions: result-store efficiency and (service only)
    // the request queue-wait distribution.
    top.field("store_hits", r.store_hits);
    top.field("store_misses", r.store_misses);
    top.field("queue_wait_p50_ms", r.queue_wait_p50_ms);
    top.field("queue_wait_p90_ms", r.queue_wait_p90_ms);
    top.field("queue_wait_max_ms", r.queue_wait_max_ms);
    // schema_version 3 addition: implementation-level verification coverage
    // (the emit/verify per-stage timings appear via the generic <stage>_ms
    // mechanism and the stage_percentiles block).
    top.field("impl_checked", r.impl_checked);
    // schema_version 5 addition: the worst per-spec bound gap of the sweep
    // (0 for exact sweeps -- check_bench_regression.py asserts exactly that).
    top.field("max_bound_gap", r.max_bound_gap);

    // schema_version 4 addition: the metrics-registry counter block (sweep
    // deltas for run_batch, absolute totals for a service drain).
    out += ",\n  \"counters\": {";
    for (std::size_t i = 0; i < r.counters.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        json_escape(out, r.counters[i].first);
        out += ": " + std::to_string(r.counters[i].second);
    }
    out += r.counters.empty() ? "}" : "\n  }";

    out += ",\n  \"stage_percentiles\": [";
    for (std::size_t i = 0; i < r.stages.size(); ++i) {
        const auto& st = r.stages[i];
        out += i ? ",\n    " : "\n    ";
        out += "{";
        json_object o{out};
        o.field("stage", st.stage);
        o.field("runs", st.runs);
        o.field("p50_ms", st.p50_ms);
        o.field("p90_ms", st.p90_ms);
        o.field("max_ms", st.max_ms);
        o.field("total_ms", st.total_ms);
        out += "}";
    }
    out += r.stages.empty() ? "]" : "\n  ]";

    out += ",\n  \"specs\": [";
    for (std::size_t i = 0; i < r.specs.size(); ++i) {
        const auto& s = r.specs[i];
        out += i ? ",\n    " : "\n    ";
        out += "{";
        json_object o{out};
        o.field("name", s.name);
        o.field("completed", s.completed);
        o.field("synthesized", s.synthesized);
        if (!s.failed_stage.empty()) o.field("failed_stage", s.failed_stage);
        if (!s.message.empty()) o.field("message", s.message);
        o.field("states", s.states);
        o.field("arcs", s.arcs);
        o.field("signals", s.signals);
        o.field("explored", s.explored);
        o.field("csc_solved", s.csc_solved);
        o.field("csc_signals", s.csc_signals);
        o.field("initial_cost", s.initial_cost);
        o.field("reduced_cost", s.reduced_cost);
        o.field("literals", s.literals);
        o.field("area", s.area);
        o.field("cycle", s.cycle);
        o.field("seconds", s.seconds);
        o.field("store_hit", s.store_hit);
        o.field("impl_checked", s.impl_checked);
        if (s.impl_checked) o.field("impl_states", s.impl_states);
        // schema_version 5: the quality the search ran at and its bound gap.
        o.field("quality", s.quality);
        o.field("bound_gap", s.bound_gap);
        for (const auto& t : s.timings) {
            std::string k = std::string(stage_name(t.stage)) + "_ms";
            o.field(k.c_str(), t.seconds * 1e3);
        }
        out += "}";
    }
    out += r.specs.empty() ? "]" : "\n  ]";
    out += "\n}\n";
    return out;
}

std::string report_text(const batch_report& r) {
    std::string out;
    char line[256];
    // The gap column only appears when some spec ran at a non-exact quality:
    // exact sweeps keep the historical table byte-for-byte.
    bool any_gap = false;
    for (const auto& s : r.specs) any_gap |= s.quality != "exact";
    if (any_gap)
        std::snprintf(line, sizeof line, "%-16s %7s %7s %6s %8s %8s %9s %6s  %s\n", "spec",
                      "states", "explored", "csc", "area", "cycle", "ms", "gap", "verdict");
    else
        std::snprintf(line, sizeof line, "%-16s %7s %7s %6s %8s %8s %9s  %s\n", "spec", "states",
                      "explored", "csc", "area", "cycle", "ms", "verdict");
    out += line;
    for (const auto& s : r.specs) {
        const char* verdict = !s.completed ? "FAILED" : (s.synthesized ? "ok" : "no circuit");
        if (any_gap)
            std::snprintf(line, sizeof line,
                          "%-16s %7zu %7zu %6zu %8.0f %8.1f %9.2f %6.1f  %s%s%s%s\n",
                          s.name.c_str(), s.states, s.explored, s.csc_signals, s.area, s.cycle,
                          s.seconds * 1e3, s.bound_gap, verdict, s.store_hit ? " (store)" : "",
                          s.failed_stage.empty() ? "" : " at ", s.failed_stage.c_str());
        else
            std::snprintf(line, sizeof line, "%-16s %7zu %7zu %6zu %8.0f %8.1f %9.2f  %s%s%s%s\n",
                          s.name.c_str(), s.states, s.explored, s.csc_signals, s.area, s.cycle,
                          s.seconds * 1e3, verdict, s.store_hit ? " (store)" : "",
                          s.failed_stage.empty() ? "" : " at ", s.failed_stage.c_str());
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "batch: %zu specs, %zu completed (%zu synthesized, %zu failed), "
                  "%zu states, jobs=%zu, %.2f s wall (%.2f s cpu), %.1f specs/s\n",
                  r.count, r.completed, r.synthesized, r.failed, r.total_states, r.jobs,
                  r.wall_seconds, r.cpu_seconds, r.specs_per_second);
    out += line;
    if (any_gap) {
        std::snprintf(line, sizeof line, "quality: max bound gap %.1f\n", r.max_bound_gap);
        out += line;
    }
    if (r.store_hits + r.store_misses > 0) {
        std::snprintf(line, sizeof line, "store: %zu hits, %zu misses\n", r.store_hits,
                      r.store_misses);
        out += line;
    }
    return out;
}

}  // namespace asynth::batch
