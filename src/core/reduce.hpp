// Forward concurrency reduction -- the elementary reshuffling operation of
// the paper (section 6, Fig. 7).  FwdRed(a,b) truncates the excitation
// region of event-instance `a` so that `a` may only fire once the choice
// containing `b` has been resolved:
//
//   ER_red(a) = ER(a) - (ER(b)  U  back_reach(ER(a) /\ ER(b)))
//
// where back_reach(X) is the set of states from which X is reachable along
// paths that stay inside ER(a) -- i.e. states of the same excitation episode
// in which `b`'s choice is still unresolved.  (On cyclic SGs an unrestricted
// backward closure would cover every state and erase the event; on the
// acyclic Fig. 8 fragment both readings coincide.)  Only
// arcs labelled `a` are removed; states that become unreachable are pruned.
// The result is checked against the validity conditions of Definition 5.1:
// output persistency is preserved, no event disappears, no new deadlock
// appears, inputs are never the delayed event, and the initial state stays.
#pragma once

#include <optional>

#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

struct fwdred_stats {
    std::size_t arcs_removed = 0;
    std::size_t states_removed = 0;
};

struct fwdred_options {
    /// Reject reductions that break output persistency (or let an output
    /// disable an input).  Assumes the input subgraph satisfied them.
    bool check_output_persistency = true;
    /// Reject when the delayed event `a` is an input (condition 2a: no
    /// transition of input signals is delayed).
    bool require_noninput_target = true;
};

/// Applies FwdRed(a, b).  Returns std::nullopt when the reduction is invalid
/// or a no-op (a and b not concurrent).  `a` and `b` are ER components of the
/// same subgraph (see excitation_regions()).
[[nodiscard]] std::optional<subgraph> forward_reduction(const subgraph& g, const er_component& a,
                                                        const er_component& b,
                                                        const fwdred_options& opt,
                                                        fwdred_stats* stats = nullptr);

[[nodiscard]] std::optional<subgraph> forward_reduction(const subgraph& g, const er_component& a,
                                                        const er_component& b);

/// States from which some state of @p targets is reachable via live arcs
/// (the closure includes @p targets itself).  When @p within is non-null the
/// closure only walks through states inside that mask.
[[nodiscard]] dyn_bitset backward_reachable(const subgraph& g, const dyn_bitset& targets,
                                            const dyn_bitset* within = nullptr);

/// The more general *single-arc* concurrency reduction mentioned in the
/// paper's section 6 note (their reference [3] calls it backward reduction):
/// one arc of a non-input event is removed, unreachable states pruned, and
/// the full Definition 5.1 validity battery re-checked.  Unlike FwdRed the
/// result has no direct reading as an event ordering, so it is exposed for
/// exploration/ablation rather than used by the Fig. 9 search.
[[nodiscard]] std::optional<subgraph> single_arc_reduction(const subgraph& g, uint32_t arc,
                                                           const fwdred_options& opt,
                                                           fwdred_stats* stats = nullptr);
[[nodiscard]] std::optional<subgraph> single_arc_reduction(const subgraph& g, uint32_t arc);

}  // namespace asynth
