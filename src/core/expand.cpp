#include "core/expand.hpp"

#include <map>
#include <vector>

#include "sg/state_graph.hpp"

namespace asynth {
namespace {

struct channel_places {
    uint32_t req = 0, ack = 0, p_rtz = 0, a_rtz = 0, p_mid = 0, a_mid = 0;
};

/// Inserts the Fig. 5.a return-to-zero loop for a partially specified
/// signal: every functional edge feeds a rtz place enabling the reset
/// transition, whose firing re-arms the rdy place consumed by the
/// functional edges.
void add_partial_rtz(stg& net, uint32_t sig, const std::vector<uint32_t>& functional) {
    require(!functional.empty(),
            "partial signal '" + net.signals()[sig].name + "' has no functional events");
    edge func_dir = net.transitions()[functional.front()].label.dir;
    for (uint32_t t : functional)
        require(net.transitions()[t].label.dir == func_dir,
                "partial signal '" + net.signals()[sig].name +
                    "' mixes polarities; declare it completely instead");
    require(func_dir == edge::plus || func_dir == edge::minus,
            "partial signal '" + net.signals()[sig].name + "' must use +/- events");
    const edge reset_dir = (func_dir == edge::plus) ? edge::minus : edge::plus;

    const std::string& name = net.signals()[sig].name;
    uint32_t rtz = net.add_place("rtz_" + name, 0);
    uint32_t rdy = net.add_place("rdy_" + name, 1);
    uint32_t reset = net.add_transition({static_cast<int32_t>(sig), reset_dir, 0});
    net.add_arc_pt(rtz, reset);
    net.add_arc_tp(reset, rdy);
    for (uint32_t t : functional) {
        net.add_arc_pt(rdy, t);
        net.add_arc_tp(t, rtz);
    }
}

}  // namespace

stg expand_handshakes(const stg& spec) { return expand_handshakes(spec, expand_options{}); }

stg expand_handshakes(const stg& spec, const expand_options& opt) {
    require(opt.phases == 2 || opt.phases == 4, "expand_options::phases must be 2 or 4");
    const bool four_phase = (opt.phases == 4);

    stg out;
    out.model_name = spec.model_name + (four_phase ? "_4ph" : "_2ph");

    // ---- signal mapping ----------------------------------------------------
    const auto nsig = static_cast<uint32_t>(spec.signal_count());
    std::vector<int32_t> plain(nsig, -1), wire_in(nsig, -1), wire_out(nsig, -1);
    for (uint32_t s = 0; s < nsig; ++s) {
        const auto& decl = spec.signals()[s];
        if (decl.kind == signal_kind::channel) {
            wire_in[s] = static_cast<int32_t>(out.add_signal(decl.name + "i", signal_kind::input));
            wire_out[s] = static_cast<int32_t>(out.add_signal(decl.name + "o", signal_kind::output));
        } else {
            plain[s] = static_cast<int32_t>(out.add_signal(decl.name, decl.kind));
            out.signal_at(static_cast<uint32_t>(plain[s])).initial_value = decl.initial_value;
        }
    }

    // ---- places --------------------------------------------------------------
    std::vector<uint32_t> place_map(spec.places().size());
    for (uint32_t p = 0; p < spec.places().size(); ++p)
        place_map[p] = out.add_place(spec.places()[p].name, spec.places()[p].tokens,
                                     spec.places()[p].implicit);

    // Channel protocol structure (4-phase with interface constraints).
    std::map<uint32_t, channel_places> chan;
    if (four_phase && opt.channel_interface) {
        for (uint32_t s = 0; s < nsig; ++s) {
            if (spec.signals()[s].kind != signal_kind::channel) continue;
            const std::string& n = spec.signals()[s].name;
            channel_places cp;
            cp.req = out.add_place("req_" + n, 1);
            cp.ack = out.add_place("ack_" + n, 0);
            cp.p_rtz = out.add_place("prtz_" + n, 0);
            cp.a_rtz = out.add_place("artz_" + n, 0);
            cp.p_mid = out.add_place("pmid_" + n, 0);
            cp.a_mid = out.add_place("amid_" + n, 0);
            // Passive reset: p_rtz -> ai- -> p_mid -> ao- -> req
            uint32_t aim_p = out.add_transition({wire_in[s], edge::minus, 0});
            uint32_t aom_p = out.add_transition({wire_out[s], edge::minus, 0});
            out.add_arc_pt(cp.p_rtz, aim_p);
            out.add_arc_tp(aim_p, cp.p_mid);
            out.add_arc_pt(cp.p_mid, aom_p);
            out.add_arc_tp(aom_p, cp.req);
            // Active reset: a_rtz -> ao- -> a_mid -> ai- -> req
            uint32_t aom_a = out.add_transition({wire_out[s], edge::minus, 0});
            uint32_t aim_a = out.add_transition({wire_in[s], edge::minus, 0});
            out.add_arc_pt(cp.a_rtz, aom_a);
            out.add_arc_tp(aom_a, cp.a_mid);
            out.add_arc_pt(cp.a_mid, aim_a);
            out.add_arc_tp(aim_a, cp.req);
            chan.emplace(s, cp);
        }
    }

    // ---- transitions -----------------------------------------------------------
    // spec_copies[t] lists the out-transitions standing in for spec transition t.
    std::vector<std::vector<uint32_t>> spec_copies(spec.transitions().size());
    std::vector<std::vector<uint32_t>> functional_of_signal(out.signal_count());

    auto copy_arcs = [&](uint32_t spec_t, uint32_t new_t) {
        for (uint32_t p : spec.transitions()[spec_t].pre) out.add_arc_pt(place_map[p], new_t);
        for (uint32_t p : spec.transitions()[spec_t].post) out.add_arc_tp(new_t, place_map[p]);
    };

    for (uint32_t t = 0; t < spec.transitions().size(); ++t) {
        const auto& l = spec.transitions()[t].label;
        const auto sig = static_cast<uint32_t>(l.signal);
        const auto& decl = spec.signals()[sig];
        if (decl.kind != signal_kind::channel) {
            require(l.dir != edge::recv && l.dir != edge::send,
                    "channel action on non-channel signal '" + decl.name + "'");
            edge dir = l.dir;
            if (!four_phase && decl.partial) dir = edge::toggle;
            uint32_t nt = out.add_transition({plain[sig], dir, 0});
            copy_arcs(t, nt);
            spec_copies[t].push_back(nt);
            if (four_phase && decl.partial)
                functional_of_signal[static_cast<uint32_t>(plain[sig])].push_back(nt);
            continue;
        }
        require(l.dir == edge::recv || l.dir == edge::send,
                "signal edge on channel '" + decl.name + "'");
        const int32_t wire = (l.dir == edge::recv) ? wire_in[sig] : wire_out[sig];
        if (!four_phase) {
            uint32_t nt = out.add_transition({wire, edge::toggle, 0});
            copy_arcs(t, nt);
            spec_copies[t].push_back(nt);
        } else if (!opt.channel_interface) {
            uint32_t nt = out.add_transition({wire, edge::plus, 0});
            copy_arcs(t, nt);
            spec_copies[t].push_back(nt);
            functional_of_signal[static_cast<uint32_t>(wire)].push_back(nt);
        } else {
            const auto& cp = chan.at(sig);
            // Passive copy: a? consumes req, produces ack; a! consumes ack,
            // produces p_rtz.  Active copy: a! consumes req, produces ack;
            // a? consumes ack, produces a_rtz (Fig. 5.d/e).
            uint32_t passive = out.add_transition({wire, edge::plus, 0});
            copy_arcs(t, passive);
            uint32_t active = out.add_transition({wire, edge::plus, 0});
            copy_arcs(t, active);
            if (l.dir == edge::recv) {
                out.add_arc_pt(cp.req, passive);
                out.add_arc_tp(passive, cp.ack);
                out.add_arc_pt(cp.ack, active);
                out.add_arc_tp(active, cp.a_rtz);
            } else {
                out.add_arc_pt(cp.ack, passive);
                out.add_arc_tp(passive, cp.p_rtz);
                out.add_arc_pt(cp.req, active);
                out.add_arc_tp(active, cp.ack);
            }
            spec_copies[t].push_back(passive);
            spec_copies[t].push_back(active);
        }
    }

    // Return-to-zero loops for partially specified signals (and, in the
    // unconstrained mode, for every channel wire).
    if (four_phase) {
        for (uint32_t s = 0; s < out.signal_count(); ++s)
            if (!functional_of_signal[s].empty()) add_partial_rtz(out, s, functional_of_signal[s]);
    }

    // ---- prune dead role copies by playing the token game ---------------------
    state_graph::generation_options gen_opt;
    gen_opt.max_states = opt.max_states;
    auto gen = state_graph::generate(out, gen_opt);

    for (uint32_t t = 0; t < spec.transitions().size(); ++t) {
        bool alive = false;
        for (uint32_t c : spec_copies[t]) alive = alive || gen.transition_fired[c];
        require(alive, "event '" + spec.label_name(spec.transitions()[t].label) +
                           "' can never fire after expansion; check the channel interleaving");
    }

    dyn_bitset keep_t(out.transitions().size());
    for (uint32_t t = 0; t < out.transitions().size(); ++t)
        if (gen.transition_fired[t]) keep_t.set(t);
    dyn_bitset keep_p(out.places().size());
    for (uint32_t p = 0; p < out.places().size(); ++p)
        if (gen.place_marked[p]) keep_p.set(p);
    // Drop places whose every neighbour transition is dead.
    for (uint32_t p = 0; p < out.places().size(); ++p) {
        if (!keep_p.test(p)) continue;
        bool used = false;
        for (uint32_t t : out.place_pre(p)) used = used || keep_t.test(t);
        for (uint32_t t : out.place_post(p)) used = used || keep_t.test(t);
        if (!used && out.places()[p].tokens == 0) keep_p.reset(p);
    }
    stg pruned = out.filtered(keep_p, keep_t);

    // ---- translate Keep_Conc pairs -------------------------------------------
    auto translate = [&](const event_label& l) {
        event_label r = l;
        const auto sig = static_cast<uint32_t>(l.signal);
        if (spec.signals()[sig].kind == signal_kind::channel) {
            const std::string wire_name =
                spec.signals()[sig].name + ((l.dir == edge::recv) ? "i" : "o");
            r.signal = static_cast<int32_t>(*pruned.find_signal(wire_name));
            r.dir = four_phase ? edge::plus : edge::toggle;
        } else {
            r.signal = *pruned.find_signal(spec.signals()[sig].name);
            if (!four_phase && spec.signals()[sig].partial) r.dir = edge::toggle;
        }
        return r;
    };
    for (const auto& [a, b] : spec.keep_concurrent)
        pruned.keep_concurrent.emplace_back(translate(a), translate(b));
    return pruned;
}

}  // namespace asynth
