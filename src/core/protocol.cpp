#include "core/protocol.hpp"

#include <deque>

#include "util/error.hpp"

namespace asynth {

std::vector<protocol_violation> check_four_phase_protocol(const subgraph& g, uint32_t in_sig,
                                                          uint32_t out_sig, bool passive) {
    std::vector<protocol_violation> out;
    const auto& b = g.base();
    for (auto av : g.live_arcs().ones()) {
        const auto arc = b.arcs()[av];
        if (!g.state_live(arc.src)) continue;
        const auto& ev = b.events()[arc.event];
        const auto sig = static_cast<uint32_t>(ev.signal);
        if (sig != in_sig && sig != out_sig) continue;
        const bool vi = b.states()[arc.src].code.test(in_sig);
        const bool vo = b.states()[arc.src].code.test(out_sig);
        // Required value of the *other* wire at the moment of firing:
        //   passive: i+ needs o=0; o+ needs i=1; i- needs o=1; o- needs i=0
        //   active:  o+ needs i=0; i+ needs o=1; o- needs i=1; i- needs o=0
        bool ok = true;
        if (passive) {
            if (sig == in_sig) ok = (ev.dir == edge::plus) ? !vo : vo;
            else ok = (ev.dir == edge::plus) ? vi : !vi;
        } else {
            if (sig == out_sig) ok = (ev.dir == edge::plus) ? !vi : vi;
            else ok = (ev.dir == edge::plus) ? vo : !vo;
        }
        if (!ok)
            out.push_back(protocol_violation{
                arc.src, arc.event,
                b.event_name(arc.event) + " fires from state " + b.state_code_string(arc.src) +
                    " violating the 4-phase order"});
    }
    return out;
}

std::vector<protocol_violation> check_channel_protocol(const subgraph& g,
                                                       const std::string& channel) {
    const auto& b = g.base();
    int32_t in_sig = -1, out_sig = -1;
    for (uint32_t s = 0; s < b.signals().size(); ++s) {
        if (b.signals()[s].name == channel + "i") in_sig = static_cast<int32_t>(s);
        if (b.signals()[s].name == channel + "o") out_sig = static_cast<int32_t>(s);
    }
    require(in_sig >= 0 && out_sig >= 0, "channel wires for '" + channel + "' not found");
    // Role: in the all-zero idle phase the passive port waits for the input
    // wire.  Walk from the initial state until one of the two wires rises.
    std::deque<uint32_t> work{b.initial()};
    dyn_bitset seen(b.state_count());
    seen.set(b.initial());
    bool passive = true, decided = false;
    while (!work.empty() && !decided) {
        uint32_t s = work.front();
        work.pop_front();
        for (uint32_t a : b.out_arcs(s)) {
            if (!g.arc_live(a)) continue;
            const auto& arc = b.arcs()[a];
            const auto& ev = b.events()[arc.event];
            if (ev.dir == edge::plus && ev.signal == in_sig &&
                !b.states()[s].code.test(static_cast<uint32_t>(out_sig))) {
                passive = true;
                decided = true;
                break;
            }
            if (ev.dir == edge::plus && ev.signal == out_sig &&
                !b.states()[s].code.test(static_cast<uint32_t>(in_sig))) {
                passive = false;
                decided = true;
                break;
            }
            if (!seen.test(arc.dst)) {
                seen.set(arc.dst);
                work.push_back(arc.dst);
            }
        }
    }
    return check_four_phase_protocol(g, static_cast<uint32_t>(in_sig),
                                     static_cast<uint32_t>(out_sig), passive);
}

}  // namespace asynth
