#include "core/reduce.hpp"

#include <deque>

namespace asynth {

dyn_bitset backward_reachable(const subgraph& g, const dyn_bitset& targets,
                              const dyn_bitset* within) {
    const auto& b = g.base();
    dyn_bitset seen = targets;
    seen &= g.live_states();
    std::deque<uint32_t> work;
    for (auto s : seen.ones()) work.push_back(static_cast<uint32_t>(s));
    while (!work.empty()) {
        uint32_t s = work.front();
        work.pop_front();
        for (uint32_t a : b.in_arcs(s)) {
            if (!g.arc_live(a)) continue;
            uint32_t p = b.arcs()[a].src;
            if (!g.state_live(p) || seen.test(p)) continue;
            if (within && !within->test(p)) continue;
            seen.set(p);
            work.push_back(p);
        }
    }
    return seen;
}

std::optional<subgraph> forward_reduction(const subgraph& g, const er_component& a,
                                          const er_component& b, const fwdred_options& opt,
                                          fwdred_stats* stats) {
    const auto& base = g.base();
    if (opt.require_noninput_target && base.is_input_event(a.event)) return std::nullopt;

    dyn_bitset intersection = a.states;
    intersection &= b.states;
    if (intersection.none()) return std::nullopt;  // not concurrent: no-op

    // Removal zone: ER(b) plus every state of this excitation episode from
    // which the common states are still reachable without leaving ER(a).
    dyn_bitset zone = backward_reachable(g, intersection, &a.states);
    zone |= b.states;
    zone &= a.states;

    subgraph red = g;
    std::size_t removed_arcs = 0;
    for (auto sv : zone.ones()) {
        const auto s = static_cast<uint32_t>(sv);
        for (uint32_t arc : base.out_arcs(s)) {
            if (!red.arc_live(arc)) continue;
            if (base.arcs()[arc].event == a.event) {
                red.kill_arc(arc);
                ++removed_arcs;
            }
        }
    }
    if (removed_arcs == 0) return std::nullopt;

    const std::size_t removed_states = red.prune_unreachable();

    // Condition 3: no event disappears.
    dyn_bitset before(base.events().size()), after(base.events().size());
    for (auto arc : g.live_arcs().ones()) before.set(base.arcs()[arc].event);
    for (auto arc : red.live_arcs().ones()) after.set(base.arcs()[arc].event);
    if (!(before == after)) return std::nullopt;

    // Condition 4: no new deadlock states.
    for (auto sv : red.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        bool has_out = false;
        for (uint32_t arc : base.out_arcs(s))
            if (red.arc_live(arc)) {
                has_out = true;
                break;
            }
        if (has_out) continue;
        // Was it a deadlock before the reduction?
        bool had_out = false;
        for (uint32_t arc : base.out_arcs(s))
            if (g.arc_live(arc)) {
                had_out = true;
                break;
            }
        if (had_out) return std::nullopt;
    }

    // Condition 1: speed independence.  Determinism and commutativity cannot
    // be violated by arc removal; output persistency must be rechecked.
    if (opt.check_output_persistency) {
        auto si = check_speed_independence(red);
        if (!si.output_persistent) return std::nullopt;
    }

    if (stats) *stats = fwdred_stats{removed_arcs, removed_states};
    return red;
}

std::optional<subgraph> forward_reduction(const subgraph& g, const er_component& a,
                                          const er_component& b) {
    return forward_reduction(g, a, b, fwdred_options{});
}

std::optional<subgraph> single_arc_reduction(const subgraph& g, uint32_t arc,
                                             const fwdred_options& opt, fwdred_stats* stats) {
    const auto& base = g.base();
    // Invalid (out-of-range) arc ids are a no-op, not UB: the function is
    // exposed for exploration drivers that may enumerate speculatively.
    if (arc >= base.arc_count() || !g.arc_live(arc)) return std::nullopt;
    const uint16_t event = base.arcs()[arc].event;
    if (opt.require_noninput_target && base.is_input_event(event)) return std::nullopt;

    subgraph red = g;
    red.kill_arc(arc);
    const std::size_t removed_states = red.prune_unreachable();

    // Condition 3: no event disappears.
    dyn_bitset before(base.events().size()), after(base.events().size());
    for (auto a2 : g.live_arcs().ones()) before.set(base.arcs()[a2].event);
    for (auto a2 : red.live_arcs().ones()) after.set(base.arcs()[a2].event);
    if (!(before == after)) return std::nullopt;

    // Condition 4: no new deadlocks.
    for (auto sv : red.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        bool has_out = false;
        for (uint32_t a2 : base.out_arcs(s))
            if (red.arc_live(a2)) {
                has_out = true;
                break;
            }
        if (has_out) continue;
        bool had_out = false;
        for (uint32_t a2 : base.out_arcs(s))
            if (g.arc_live(a2)) {
                had_out = true;
                break;
            }
        if (had_out) return std::nullopt;
    }

    // Condition 1: determinism/commutativity survive arc removal trivially;
    // output persistency must be rechecked (this is where most single-arc
    // removals die -- the reading as an ordering relation is lost).
    if (opt.check_output_persistency && !check_speed_independence(red).output_persistent)
        return std::nullopt;

    if (stats) *stats = fwdred_stats{1, removed_states};
    return red;
}

std::optional<subgraph> single_arc_reduction(const subgraph& g, uint32_t arc) {
    return single_arc_reduction(g, arc, fwdred_options{});
}

}  // namespace asynth
