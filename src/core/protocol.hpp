// Four-phase channel-protocol checking.  After handshake expansion, every
// channel's wires must interleave as [req+; ack+; req-; ack-]:
//   passive port l:  li+ ; lo+ ; li- ; lo-
//   active  port r:  ro+ ; ri+ ; ro- ; ri-
// Because the wire values identify the phase, the check is arc-local: each
// wire event must fire from the right value of the *other* wire.  The
// unconstrained expansion of Fig. 2.e violates this; the constrained one of
// Fig. 2.f satisfies it.
#pragma once

#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace asynth {

struct protocol_violation {
    uint32_t state = 0;
    uint16_t event = 0;
    std::string description;
};

/// Checks the 4-phase protocol for the channel with input wire @p in_sig and
/// output wire @p out_sig.  @p passive selects the port role.
[[nodiscard]] std::vector<protocol_violation> check_four_phase_protocol(const subgraph& g,
                                                                        uint32_t in_sig,
                                                                        uint32_t out_sig,
                                                                        bool passive);

/// Convenience: looks the wires up by channel name ("l" -> "li"/"lo") and
/// infers the role from the initial behaviour (which wire rises first).
/// Returns violations; throws if the wires are missing.
[[nodiscard]] std::vector<protocol_violation> check_channel_protocol(const subgraph& g,
                                                                     const std::string& channel);

}  // namespace asynth
