// Handshake expansion (paper section 4): completes a partial specification
// into a full STG by refining channels into wire pairs and inserting
// return-to-zero events with maximum concurrency.
//
// * Channels (events "a?" / "a!") become wires ai (input) and ao (output).
//   - 2-phase: the events are relabelled to toggle transitions ai~ / ao~.
//   - 4-phase: the Fig. 5.c/d/e structure is instantiated -- places req,
//     ack, p_rtz, a_rtz plus reset transitions; every channel event gets a
//     passive and an active copy, and the token game selects the live ones
//     (dead copies are pruned by reachability).  The structure guarantees
//     the interface constraint "never reset the requesting signal before
//     the acknowledgment" with maximal reset concurrency (Fig. 2.f).
// * Partially specified signals get the rdy/rtz loop of Fig. 5.a/b: the
//   reset transition is enabled as soon as the functional edge fires and
//   must fire before the next functional edge.
//
// Setting channel_interface = false reproduces the *unconstrained* maximal
// concurrency of Fig. 2.e (each wire treated as an independent partially
// specified signal) -- useful to show why interface constraints matter.
#pragma once

#include "petri/stg.hpp"

namespace asynth {

/// Handshake expansion knobs.
struct expand_options {
    int phases = 4;                  ///< handshake protocol: 2 or 4 phases
    bool channel_interface = true;   ///< honour the 4-phase channel protocol
    /// Budget for the reachability pruning pass (number of SG states).
    std::size_t max_states = 1u << 20;
};

/// Expands channels and partially specified signals; returns a complete STG
/// over wire/plain signals only.  Throws asynth::error when the spec cannot
/// be expanded (improper channel interleaving, mixed-polarity partial
/// signals, unsafe composition).
[[nodiscard]] stg expand_handshakes(const stg& spec, const expand_options& opt);
[[nodiscard]] stg expand_handshakes(const stg& spec);

}  // namespace asynth
