#include "core/flow.hpp"

#include "explore/engine.hpp"

namespace asynth {

search_result run_reduction(const subgraph& initial, reduction_strategy strategy,
                            const search_options& opt, const cost_breakdown* initial_cost) {
    switch (strategy) {
        case reduction_strategy::none: {
            search_result res;
            res.best = initial;
            res.best_cost = initial_cost ? *initial_cost : estimate_cost(initial, opt.cost);
            res.explored = 1;
            return res;
        }
        case reduction_strategy::beam:
            // Engine dispatch: both engines walk the same beam and return the
            // same result; `incremental` (the default) just does less work.
            // The non-exact qualities exist only in the incremental engine,
            // so they override --engine: the reference engine stays the
            // unmodified exactness oracle.  none/full ignore quality (there
            // is no beam to bound and nothing mid-flight worth returning).
            return opt.engine == search_engine::reference &&
                           opt.quality == search_quality::exact
                       ? reduce_concurrency(initial, opt)
                       : explore::reduce_concurrency_incremental(initial, opt);
        case reduction_strategy::full:
            return reduce_fully(initial, opt);
    }
    return {};
}

delay_model wire_zero_delays(const circuit& ckt, const state_graph& g, delay_model delays) {
    for (const auto& impl : ckt.impls)
        if (impl.kind == impl_kind::wire || impl.kind == impl_kind::constant)
            delays.overrides.emplace_back(g.signals()[impl.signal].name, 0.0);
    return delays;
}

namespace {

flow_report continue_flow(flow_report rep, const flow_options& opt) {
    auto initial = subgraph::full(*rep.base_sg);
    rep.initial_cost = estimate_cost(initial, opt.search.cost);

    rep.search = run_reduction(initial, opt.strategy, opt.search, &rep.initial_cost);
    rep.reduced = rep.search.best;
    rep.reduced_cost = rep.search.best_cost;

    rep.csc = resolve_csc(rep.reduced, opt.csc);
    auto encoded = subgraph::full(rep.csc.graph);
    rep.synth = synthesize(encoded, opt.synth);

    delay_model delays = opt.delays;
    if (opt.zero_delay_wires && rep.synth.ok)
        delays = wire_zero_delays(rep.synth.ckt, rep.csc.graph, std::move(delays));
    rep.perf = analyze_performance(encoded, delays);

    if (opt.recover) rep.recovered = recover_stg(rep.reduced);
    return rep;
}

}  // namespace

flow_report run_flow(const stg& spec, const flow_options& opt) {
    flow_report rep;
    rep.expanded = expand_handshakes(spec, opt.expand);
    rep.base_sg =
        std::make_shared<const state_graph>(state_graph::generate(rep.expanded).graph);

    flow_options patched = opt;
    auto kc = keepconc_events(rep.expanded);
    patched.search.keep_concurrent.insert(patched.search.keep_concurrent.end(), kc.begin(),
                                          kc.end());
    return continue_flow(std::move(rep), patched);
}

flow_report run_flow_from_sg(state_graph sg, const flow_options& opt) {
    flow_report rep;
    rep.base_sg = std::make_shared<const state_graph>(std::move(sg));
    return continue_flow(std::move(rep), opt);
}

}  // namespace asynth
