#include "core/flow.hpp"

namespace asynth {

namespace {

flow_report continue_flow(flow_report rep, const flow_options& opt) {
    auto initial = subgraph::full(*rep.base_sg);
    rep.initial_cost = estimate_cost(initial, opt.search.cost);

    switch (opt.strategy) {
        case reduction_strategy::none:
            rep.reduced = initial;
            rep.reduced_cost = rep.initial_cost;
            break;
        case reduction_strategy::beam:
            rep.search = reduce_concurrency(initial, opt.search);
            rep.reduced = rep.search.best;
            rep.reduced_cost = rep.search.best_cost;
            break;
        case reduction_strategy::full:
            rep.search = reduce_fully(initial, opt.search);
            rep.reduced = rep.search.best;
            rep.reduced_cost = rep.search.best_cost;
            break;
    }

    rep.csc = resolve_csc(rep.reduced, opt.csc);
    auto encoded = subgraph::full(rep.csc.graph);
    rep.synth = synthesize(encoded, opt.synth);

    delay_model delays = opt.delays;
    if (opt.zero_delay_wires && rep.synth.ok) {
        for (const auto& impl : rep.synth.ckt.impls)
            if (impl.kind == impl_kind::wire || impl.kind == impl_kind::constant)
                delays.overrides.emplace_back(
                    rep.csc.graph.signals()[impl.signal].name, 0.0);
    }
    rep.perf = analyze_performance(encoded, delays);

    if (opt.recover) rep.recovered = recover_stg(rep.reduced);
    return rep;
}

}  // namespace

flow_report run_flow(const stg& spec, const flow_options& opt) {
    flow_report rep;
    rep.expanded = expand_handshakes(spec, opt.expand);
    rep.base_sg =
        std::make_shared<const state_graph>(state_graph::generate(rep.expanded).graph);

    flow_options patched = opt;
    auto kc = keepconc_events(rep.expanded);
    patched.search.keep_concurrent.insert(patched.search.keep_concurrent.end(), kc.begin(),
                                          kc.end());
    return continue_flow(std::move(rep), patched);
}

flow_report run_flow_from_sg(state_graph sg, const flow_options& opt) {
    flow_report rep;
    rep.base_sg = std::make_shared<const state_graph>(std::move(sg));
    return continue_flow(std::move(rep), opt);
}

}  // namespace asynth
