#include "core/search.hpp"

#include <algorithm>
#include <unordered_set>

#include "sg/analysis.hpp"

namespace asynth {

namespace {

bool same_unordered(const sg_event& a1, const sg_event& b1, const sg_event& a2,
                    const sg_event& b2) {
    return (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2);
}

/// Is (a, b) still a concurrent pair among @p comps?
bool pair_alive(const state_graph& b, const std::vector<er_component>& comps, const sg_event& e1,
                const sg_event& e2) {
    auto id1 = b.find_event(e1.signal, e1.dir);
    auto id2 = b.find_event(e2.signal, e2.dir);
    if (!id1 || !id2) return false;
    for (const auto& c1 : comps) {
        if (c1.event != *id1) continue;
        for (const auto& c2 : comps) {
            if (c2.event != *id2) continue;
            if (concurrent(c1, c2)) return true;
        }
    }
    return false;
}

}  // namespace

const char* quality_name(search_quality q) {
    switch (q) {
        case search_quality::exact: return "exact";
        case search_quality::bounded: return "bounded";
        case search_quality::anytime: return "anytime";
    }
    return "exact";
}

bool is_kept_pair(const std::vector<std::pair<sg_event, sg_event>>& keep, const sg_event& a,
                  const sg_event& b) {
    for (const auto& [k1, k2] : keep)
        if (same_unordered(k1, k2, a, b)) return true;
    return false;
}

bool kept_pairs_alive(const subgraph& g, const std::vector<std::pair<sg_event, sg_event>>& keep) {
    if (keep.empty()) return true;
    const auto& b = g.base();
    auto comps = excitation_regions(g);
    for (const auto& [e1, e2] : keep)
        if (!pair_alive(b, comps, e1, e2)) return false;
    return true;
}

std::vector<std::pair<sg_event, sg_event>> effective_keepconc(
    const subgraph& g, const std::vector<std::pair<sg_event, sg_event>>& keep) {
    std::vector<std::pair<sg_event, sg_event>> out;
    if (keep.empty()) return out;
    const auto& b = g.base();
    auto comps = excitation_regions(g);  // computed once for every pair
    for (const auto& pair : keep)
        if (pair_alive(b, comps, pair.first, pair.second)) out.push_back(pair);
    return out;
}

namespace {

struct scored {
    subgraph g;
    cost_breakdown cost;
    hash128 sig;  ///< deterministic beam tie-break for equal costs
};

/// Strict weak order for beam selection: cost first, 128-bit signature as the
/// tie-break.  Equal costs are common on symmetric specs; without the
/// signature tie-break std::sort leaves their order unspecified and
/// search_result.best is not reproducible run-to-run.
bool beam_order(const scored& a, const scored& b) {
    if (a.cost.value != b.cost.value) return a.cost.value < b.cost.value;
    return a.sig < b.sig;
}

/// Generates every admissible one-step reduction of @p g.
std::vector<subgraph> neighbours(const subgraph& g, const search_options& opt) {
    std::vector<subgraph> out;
    const auto& b = g.base();
    auto comps = excitation_regions(g);
    for (std::size_t i = 0; i < comps.size(); ++i) {
        // e2 (the delayed event) must not be an input (Fig. 9).
        if (b.is_input_event(comps[i].event)) continue;
        for (std::size_t j = 0; j < comps.size(); ++j) {
            if (i == j || comps[i].event == comps[j].event) continue;
            if (!concurrent(comps[i], comps[j])) continue;
            const auto& ea = b.events()[comps[i].event];
            const auto& eb = b.events()[comps[j].event];
            if (is_kept_pair(opt.keep_concurrent, ea, eb)) continue;
            auto red = forward_reduction(g, comps[i], comps[j]);
            if (!red) continue;
            if (!kept_pairs_alive(*red, opt.keep_concurrent)) continue;
            out.push_back(std::move(*red));
        }
    }
    return out;
}

}  // namespace

search_result reduce_concurrency(const subgraph& initial, const search_options& options) {
    search_options opt = options;
    opt.keep_concurrent = effective_keepconc(initial, options.keep_concurrent);
    // A zero-width beam would read fresh.front() after resize(0); treat it
    // as the narrowest meaningful beam instead of crashing.
    opt.size_frontier = std::max<std::size_t>(1, opt.size_frontier);

    search_result res;
    res.best = initial;
    res.best_cost = estimate_cost(initial, opt.cost);
    res.explored = 1;

    // 128-bit dedupe keys, matching the incremental engine's transposition
    // table: with 64-bit keys a single collision would silently drop a
    // distinct candidate and let the two engines diverge.
    std::unordered_set<hash128> explored{initial.signature128()};
    std::vector<scored> frontier;
    frontier.push_back(scored{initial, res.best_cost, initial.signature128()});

    for (std::size_t level = 0; level < opt.max_levels && !frontier.empty(); ++level) {
        std::vector<scored> fresh;
        for (const auto& cfg : frontier) {
            for (auto& n : neighbours(cfg.g, opt)) {
                hash128 sig = n.signature128();
                if (!explored.insert(sig).second) continue;
                cost_breakdown c = estimate_cost(n, opt.cost);
                ++res.explored;
                fresh.push_back(scored{std::move(n), c, sig});
            }
        }
        if (fresh.empty()) break;
        std::stable_sort(fresh.begin(), fresh.end(), beam_order);
        if (fresh.size() > opt.size_frontier) fresh.resize(opt.size_frontier);
        res.levels = level + 1;
        res.level_best.push_back(fresh.front().cost.value);
        if (fresh.front().cost.value < res.best_cost.value) {
            res.best = fresh.front().g;
            res.best_cost = fresh.front().cost;
        }
        frontier = std::move(fresh);
    }
    return res;
}

search_result reduce_fully(const subgraph& initial, const search_options& options) {
    search_options opt = options;
    opt.keep_concurrent = effective_keepconc(initial, options.keep_concurrent);

    search_result res;
    res.best = initial;
    res.best_cost = estimate_cost(initial, opt.cost);
    res.explored = 1;

    bool progress = true;
    while (progress) {
        progress = false;
        auto ns = neighbours(res.best, opt);
        if (ns.empty()) break;
        // Greedy: take the cheapest successor.
        std::size_t pick = 0;
        cost_breakdown best_c;
        for (std::size_t i = 0; i < ns.size(); ++i) {
            cost_breakdown c = estimate_cost(ns[i], opt.cost);
            ++res.explored;
            if (i == 0 || c.value < best_c.value) {
                best_c = c;
                pick = i;
            }
        }
        res.best = std::move(ns[pick]);
        res.best_cost = best_c;
        res.levels++;
        res.level_best.push_back(best_c.value);
        progress = true;
    }
    return res;
}

std::vector<std::pair<sg_event, sg_event>> keepconc_events(const stg& net) {
    std::vector<std::pair<sg_event, sg_event>> out;
    for (const auto& [a, b] : net.keep_concurrent)
        out.emplace_back(sg_event{a.signal, a.dir}, sg_event{b.signal, b.dir});
    return out;
}

}  // namespace asynth
