// The concurrency-reduction exploration of Fig. 9: an alpha-beta-style beam
// search over state graphs.  Each level applies every admissible
// FwdRed(e2, e1) to every member of the frontier; the `size_frontier` best
// candidates (by the section-7 cost function) survive.  The search is
// monotone -- every level has strictly fewer arcs -- so it terminates, and
// the best configuration over *all* explored SGs is returned.
//
// Keep_Conc pairs are honoured two ways: candidate reductions directly
// targeting a kept pair are skipped (the paper's rule), and reductions whose
// side effects destroy a kept pair's concurrency are rejected as well.
#pragma once

#include <vector>

#include "core/cost.hpp"
#include "core/reduce.hpp"
#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

/// Knobs of the Fig. 9 exploration.
struct search_options {
    /// Beam width: candidates kept per level (the paper's size_frontier).
    std::size_t size_frontier = 4;
    /// Safety cap on exploration depth; the search is monotone in arcs, so
    /// it normally terminates well before this.
    std::size_t max_levels = 128;
    /// Section-7 cost function parameters driving candidate ranking.
    cost_params cost;
    /// Unordered pairs whose concurrency must be preserved (Keep_Conc).
    std::vector<std::pair<sg_event, sg_event>> keep_concurrent;
};

/// Outcome of one exploration run.
struct search_result {
    subgraph best;                  ///< lowest-cost configuration found anywhere
    cost_breakdown best_cost;       ///< its cost evaluation
    std::size_t explored = 0;       ///< distinct SGs evaluated
    std::size_t levels = 0;         ///< exploration depth reached
    std::vector<double> level_best; ///< best cost per level (trace)
};

/// Runs the Fig. 9 exploration from @p initial.
[[nodiscard]] search_result reduce_concurrency(const subgraph& initial,
                                               const search_options& opt);

/// Greedy full reduction: repeatedly applies the best admissible FwdRed until
/// none is left, regardless of whether the cost improves.  Produces the
/// "full reduction" / "original reduced" rows of Tables 1 and 2.
[[nodiscard]] search_result reduce_fully(const subgraph& initial, const search_options& opt);

/// Translates the Keep_Conc label pairs recorded in an STG into SG events.
[[nodiscard]] std::vector<std::pair<sg_event, sg_event>> keepconc_events(const stg& net);

}  // namespace asynth
