// The concurrency-reduction exploration of Fig. 9: an alpha-beta-style beam
// search over state graphs.  Each level applies every admissible
// FwdRed(e2, e1) to every member of the frontier; the `size_frontier` best
// candidates (by the section-7 cost function) survive.  The search is
// monotone -- every level has strictly fewer arcs -- so it terminates, and
// the best configuration over *all* explored SGs is returned.
//
// Keep_Conc pairs are honoured two ways: candidate reductions directly
// targeting a kept pair are skipped (the paper's rule), and reductions whose
// side effects destroy a kept pair's concurrency are rejected as well.
#pragma once

#include <vector>

#include "core/cost.hpp"
#include "core/reduce.hpp"
#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

struct search_options {
    std::size_t size_frontier = 4;
    std::size_t max_levels = 128;
    cost_params cost;
    /// Unordered pairs whose concurrency must be preserved.
    std::vector<std::pair<sg_event, sg_event>> keep_concurrent;
};

struct search_result {
    subgraph best;
    cost_breakdown best_cost;
    std::size_t explored = 0;       ///< distinct SGs evaluated
    std::size_t levels = 0;         ///< exploration depth reached
    std::vector<double> level_best; ///< best cost per level (trace)
};

/// Runs the Fig. 9 exploration from @p initial.
[[nodiscard]] search_result reduce_concurrency(const subgraph& initial,
                                               const search_options& opt);

/// Greedy full reduction: repeatedly applies the best admissible FwdRed until
/// none is left, regardless of whether the cost improves.  Produces the
/// "full reduction" / "original reduced" rows of Tables 1 and 2.
[[nodiscard]] search_result reduce_fully(const subgraph& initial, const search_options& opt);

/// Translates the Keep_Conc label pairs recorded in an STG into SG events.
[[nodiscard]] std::vector<std::pair<sg_event, sg_event>> keepconc_events(const stg& net);

}  // namespace asynth
