// The concurrency-reduction exploration of Fig. 9: an alpha-beta-style beam
// search over state graphs.  Each level applies every admissible
// FwdRed(e2, e1) to every member of the frontier; the `size_frontier` best
// candidates (by the section-7 cost function) survive.  The search is
// monotone -- every level has strictly fewer arcs -- so it terminates, and
// the best configuration over *all* explored SGs is returned.
//
// Keep_Conc pairs are honoured two ways: candidate reductions directly
// targeting a kept pair are skipped (the paper's rule), and reductions whose
// side effects destroy a kept pair's concurrency are rejected as well.
#pragma once

#include <memory>
#include <vector>

#include "core/cost.hpp"
#include "core/reduce.hpp"
#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

namespace asynth::explore {
class literal_memo;  // explore/analysis_cache.hpp (above this layer)
}

namespace asynth {

/// Which implementation of the Fig. 9 exploration to run.  Both engines walk
/// the same beam (same candidates, same costs, same deterministic tie-break)
/// and return the same result; they differ only in how the work is done.
enum class search_engine : uint8_t {
    /// The original copy-everything implementation: every candidate is fully
    /// materialised and re-analysed from scratch.  Kept as the oracle the
    /// incremental engine is tested against.
    reference,
    /// src/explore/: delta-evaluated moves over memoised per-node analyses,
    /// a 128-bit transposition table, and an optional parallel expander.
    incremental,
};

/// How the incremental engine obtains the literal term of Def. 5.2 when
/// scoring candidates.  Both modes produce bit-identical search results --
/// the dominance filter only ever discards candidates it can *prove* (via a
/// sound lower bound) cannot enter the beam; every admitted candidate is
/// scored by the same heuristic minimisation either way.  The reference
/// engine always scores exactly and ignores this knob.
enum class minimizer_mode : uint8_t {
    /// Every validity-checked candidate is exactly minimised (the oracle the
    /// dominance path is tested against).
    exact,
    /// Candidates are bounded first (boolfn/incremental_cover): the beam-width
    /// best upper bounds are exactly scored to establish the admission cost,
    /// and candidates whose optimistic bound is strictly worse are discarded
    /// without ever running the minimiser.
    incremental,
};

/// The quality dial of the exploration (CLI: --quality).  Unlike `engine` and
/// `minimizer` -- which are pure implementation knobs with bit-identical
/// results -- this knob is allowed to trade exactness for speed: anytime
/// genuinely truncates the search, and bounded's exactness rests on its gap
/// certificate rather than on exhaustive scoring.  It therefore joins the
/// result-store options fingerprint so approximate results never poison
/// exact cache entries.
enum class search_quality : uint8_t {
    /// Today's behaviour: dominance lower bounds never prune into selection.
    /// Bit-identical to every previous release; `bound_gap` is always 0.
    exact,
    /// Bound-aware beam: candidates are provisionally admitted on their
    /// `incremental_cover` lower bounds, the provisional beam is refined with
    /// exact minimisation, and refinement then widens lazily to exactly the
    /// candidates whose lower bound could still change the selected beam.
    /// At that fixpoint every never-refined candidate is provably outside
    /// the beam, so the selection equals exact search's and the *achieved*
    /// gap -- accounted per level in `search_result::level_gap` and summed
    /// into `bound_gap` -- is 0 whenever the bounds are sound.  The gap is
    /// the mode's certificate, not an expected loss: a nonzero value means a
    /// bound under-estimated, and the bounded-vs-exact fuzz oracle treats
    /// any divergence beyond it as a finding.
    bounded,
    /// The exact admission path plus a wall-clock deadline
    /// (`search_options::deadline_ms`) checked between levels: when time
    /// expires the best-so-far subgraph is returned with `deadline_hit` set
    /// and a trivial sound gap (the remaining distance to the cost floor 0).
    /// With a generous deadline the result is bit-identical to `exact`.
    anytime,
};

/// Readable name of a quality mode ("exact" / "bounded" / "anytime").
[[nodiscard]] const char* quality_name(search_quality q);

/// Knobs of the Fig. 9 exploration.
struct search_options {
    /// Beam width: candidates kept per level (the paper's size_frontier).
    std::size_t size_frontier = 4;
    /// Safety cap on exploration depth; the search is monotone in arcs, so
    /// it normally terminates well before this.
    std::size_t max_levels = 128;
    /// Section-7 cost function parameters driving candidate ranking.
    cost_params cost;
    /// Unordered pairs whose concurrency must be preserved (Keep_Conc).
    std::vector<std::pair<sg_event, sg_event>> keep_concurrent;
    /// Engine selection for the beam strategy (CLI: --engine).
    search_engine engine = search_engine::incremental;
    /// Candidate-scoring strategy of the incremental engine (CLI:
    /// --minimizer).  Results are identical; only wall-clock changes.
    minimizer_mode minimizer = minimizer_mode::incremental;
    /// Worker threads for the incremental engine's frontier expander; <= 1
    /// runs serially.  Results are identical for every value (the expander
    /// merges in a deterministic order); only wall-clock changes.
    std::size_t jobs = 1;
    /// Exactness/speed trade-off (CLI: --quality).  Non-exact qualities run
    /// on the incremental engine regardless of `engine` (the reference engine
    /// stays the exactness oracle); the none/full strategies ignore this.
    search_quality quality = search_quality::exact;
    /// Wall-clock budget in milliseconds for search_quality::anytime; 0 means
    /// no deadline.  Checked between levels, outside all parallel regions, so
    /// the jobs-independence of the admission path is untouched.
    std::size_t deadline_ms = 0;
};

/// Outcome of one exploration run.
struct search_result {
    subgraph best;                  ///< lowest-cost configuration found anywhere
    cost_breakdown best_cost;       ///< its cost evaluation
    std::size_t explored = 0;       ///< distinct SGs evaluated
    std::size_t levels = 0;         ///< exploration depth reached
    std::vector<double> level_best; ///< best cost per level (trace)
    /// Candidates the dominance filter discarded without exact minimisation
    /// (counted inside `explored`; always 0 for minimizer_mode::exact and
    /// for the reference engine).  Purely observability -- two runs differing
    /// only in `minimizer` return identical results apart from this field,
    /// and with jobs > 1 this one field may vary run-to-run (benign memo
    /// races shift how much work the filter skips, never what is selected).
    std::size_t pruned = 0;
    /// Echo of search_options::quality -- lets downstream consumers (batch
    /// records, the store, reports) label the result without re-plumbing the
    /// options next to it.
    search_quality quality = search_quality::exact;
    /// Sound upper bound on how far `best_cost.value` may sit above the best
    /// cost this run *could* have reached had nothing been bound-pruned or
    /// deadline-cut: the sum of `level_gap`.  Always 0 for quality::exact.
    /// Note the bound is relative to the configurations this run generated --
    /// beam search is itself a heuristic, so no mode bounds the distance to
    /// the global optimum.
    double bound_gap = 0.0;
    /// Per-level price of bound-pruning: for each level, how far the selected
    /// level-best exact cost sits above the smallest never-refined optimistic
    /// bound (0 when no pruned candidate could have beaten the selection --
    /// which refinement to the fixpoint guarantees for sound bounds).
    /// Parallel to `level_best`; populated only by quality::bounded.
    std::vector<double> level_gap;
    /// Did an anytime deadline cut the search short?  When set, `bound_gap`
    /// holds the trivial sound bound `best_cost.value` (distance to the cost
    /// floor 0).  Always false for exact/bounded.
    bool deadline_hit = false;
    /// The incremental engine's search-global spec memo (exact heuristic
    /// covers per signal spec key), kept alive so downstream stages can
    /// warm-start: the pipeline's logic stage seeds its exact minimiser from
    /// the winning candidate's covers when the spec keys still match.  Null
    /// for the reference engine and the none/full strategies.
    std::shared_ptr<explore::literal_memo> memo;
};

/// Runs the Fig. 9 exploration from @p initial.
[[nodiscard]] search_result reduce_concurrency(const subgraph& initial,
                                               const search_options& opt);

/// Greedy full reduction: repeatedly applies the best admissible FwdRed until
/// none is left, regardless of whether the cost improves.  Produces the
/// "full reduction" / "original reduced" rows of Tables 1 and 2.
[[nodiscard]] search_result reduce_fully(const subgraph& initial, const search_options& opt);

/// Translates the Keep_Conc label pairs recorded in an STG into SG events.
[[nodiscard]] std::vector<std::pair<sg_event, sg_event>> keepconc_events(const stg& net);

// ---- shared between the reference and incremental engines -------------------
// Both engines must agree on Keep_Conc semantics to the letter, so the three
// predicates live here rather than being duplicated in src/explore/.

/// Does @p keep contain the unordered pair (a, b)?
[[nodiscard]] bool is_kept_pair(const std::vector<std::pair<sg_event, sg_event>>& keep,
                                const sg_event& a, const sg_event& b);

/// All Keep_Conc pairs still concurrent in @p g?
[[nodiscard]] bool kept_pairs_alive(const subgraph& g,
                                    const std::vector<std::pair<sg_event, sg_event>>& keep);

/// Keep_Conc pairs that are not even concurrent in the starting SG cannot be
/// preserved and must not veto every reduction; drop them up front.
[[nodiscard]] std::vector<std::pair<sg_event, sg_event>> effective_keepconc(
    const subgraph& g, const std::vector<std::pair<sg_event, sg_event>>& keep);

}  // namespace asynth
