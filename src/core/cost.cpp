#include "core/cost.hpp"

#include "logic/synthesis.hpp"
#include "sg/analysis.hpp"

namespace asynth {

cost_breakdown estimate_cost(const subgraph& g, const cost_params& p) {
    cost_breakdown out;
    out.states = g.live_state_count();
    out.csc_pairs = check_csc(g, 0).conflict_pairs;

    const auto& b = g.base();
    for (uint32_t sig = 0; sig < b.signals().size(); ++sig) {
        if (b.signals()[sig].kind == signal_kind::input) continue;
        if (!b.find_event(static_cast<int32_t>(sig), edge::plus) &&
            !b.find_event(static_cast<int32_t>(sig), edge::minus))
            continue;
        auto ns = derive_nextstate(g, sig);
        auto c = minimize_heuristic(ns.spec, p.minimize_passes);
        out.literals += c.literal_count();
    }
    out.value = p.w * static_cast<double>(out.literals) +
                (1.0 - p.w) * p.csc_weight * static_cast<double>(out.csc_pairs);
    return out;
}

std::size_t count_concurrent_pairs(const subgraph& g) {
    auto comps = excitation_regions(g);
    std::size_t n = 0;
    for (std::size_t i = 0; i < comps.size(); ++i)
        for (std::size_t j = i + 1; j < comps.size(); ++j)
            if (comps[i].event != comps[j].event && concurrent(comps[i], comps[j])) ++n;
    return n;
}

}  // namespace asynth
