// The reshuffling cost function (paper section 7): a weighted combination of
// the number of CSC conflicts and the estimated logic complexity.  W -> 0
// biases the search towards resolving state coding; W -> 1 towards smaller
// logic.  Literals are estimated per non-input signal by a single-pass
// heuristic minimisation of the next-state function with the conflicting
// codes excluded (exact equations are impossible under CSC conflicts, which
// is the paper's motivation for combining both terms).
#pragma once

#include "sg/state_graph.hpp"

namespace asynth {

/// Parameters of the section-7 cost  C = (1-W)*csc_weight*pairs + W*literals.
struct cost_params {
    /// The paper's W, dimensionless, in [0, 1].  0 biases the search towards
    /// resolving state coding, 1 towards smaller logic.
    double w = 0.5;
    /// Exchange rate of one CSC conflict pair, in *literal equivalents* per
    /// pair (dimensionless scale between the two cost terms).
    double csc_weight = 16.0;
    /// Number of heuristic minimisation sweeps when estimating literals
    /// (a count; more passes = tighter estimate, slower evaluation).
    unsigned minimize_passes = 1;
};

/// One cost evaluation, with the raw terms kept apart for reporting.
struct cost_breakdown {
    std::size_t csc_pairs = 0;  ///< CSC conflict pairs in the subgraph
    std::size_t literals = 0;   ///< estimated SOP literals over all non-input signals
    std::size_t states = 0;     ///< live states (context for the estimate)
    double value = 0.0;         ///< the combined weighted cost C
};

[[nodiscard]] cost_breakdown estimate_cost(const subgraph& g, const cost_params& p);

/// Number of unordered pairs of event instances whose excitation regions
/// intersect (the SG concurrency measure used in reports).
[[nodiscard]] std::size_t count_concurrent_pairs(const subgraph& g);

}  // namespace asynth
