// The reshuffling cost function (paper section 7): a weighted combination of
// the number of CSC conflicts and the estimated logic complexity.  W -> 0
// biases the search towards resolving state coding; W -> 1 towards smaller
// logic.  Literals are estimated per non-input signal by a single-pass
// heuristic minimisation of the next-state function with the conflicting
// codes excluded (exact equations are impossible under CSC conflicts, which
// is the paper's motivation for combining both terms).
#pragma once

#include "sg/state_graph.hpp"

namespace asynth {

struct cost_params {
    double w = 0.5;           ///< the paper's W, in [0, 1]
    double csc_weight = 16.0; ///< scale of one CSC conflict pair vs one literal
    unsigned minimize_passes = 1;
};

struct cost_breakdown {
    std::size_t csc_pairs = 0;
    std::size_t literals = 0;
    std::size_t states = 0;
    double value = 0.0;
};

[[nodiscard]] cost_breakdown estimate_cost(const subgraph& g, const cost_params& p);

/// Number of unordered pairs of event instances whose excitation regions
/// intersect (the SG concurrency measure used in reports).
[[nodiscard]] std::size_t count_concurrent_pairs(const subgraph& g);

}  // namespace asynth
