// The end-to-end design flow of the paper's Fig. 4:
//
//   1. handshake expansion with maximal reset concurrency (core/expand)
//   2. state graph generation (sg)
//   3. concurrency reduction while the cost improves (core/search)
//   4. CSC resolution by state-signal insertion (csc)
//   5. logic synthesis + area (logic), timed analysis (perf)
//   6. STG recovery from the reduced SG (regions)
//
// run_flow() drives a channel-level specification through all six steps;
// run_flow_from_sg() starts from an already complete STG/SG (hand designs
// such as the Q-module).  Wire-implemented outputs get zero delay in the
// timing model -- a wire has no gate -- which is what makes the fully
// reduced LR process cost 4 input events * 2 = 8 time units, as in Table 1.
//
// Thread safety: every entry point in this header is a pure function of its
// arguments -- no global or function-local mutable state anywhere in the
// flow (expand, sg, reduce, csc, logic, perf, regions were audited when the
// batch engine was added; the BDD engine keeps its caches inside
// bdd_manager instances created per call).  Concurrent calls on distinct
// inputs are safe, which is what batch/batch.cpp relies on.  A `subgraph`
// (including flow_report::reduced) holds a pointer to its base SG, so a
// report must not outlive or be mutated concurrently with the shared_ptr'd
// base it carries; concurrent *reads* of one report are fine.
#pragma once

#include <memory>
#include <optional>

#include "core/cost.hpp"
#include "core/expand.hpp"
#include "core/search.hpp"
#include "csc/csc.hpp"
#include "logic/synthesis.hpp"
#include "perf/timing.hpp"
#include "regions/regions.hpp"

namespace asynth {

enum class reduction_strategy : uint8_t {
    none,  ///< keep maximal concurrency
    beam,  ///< Fig. 9 exploration
    full,  ///< greedy reduction to minimal concurrency
};

/// Configuration of the whole Fig. 4 flow.
struct flow_options {
    expand_options expand;   ///< handshake expansion knobs
    reduction_strategy strategy = reduction_strategy::beam;  ///< step-3 engine
    search_options search;   ///< Fig. 9 search configuration
    csc_options csc;         ///< CSC insertion budget
    synthesis_options synth; ///< gate library + minimiser
    delay_model delays;      ///< timed-simulation delays (model time units)
    /// Wire/constant-implemented outputs get zero delay in the timed model.
    bool zero_delay_wires = true;
    bool recover = false;    ///< also run region-based STG recovery
};

struct flow_report {
    stg expanded;
    /// Owned behind a shared_ptr so that `reduced` (a view holding a pointer
    /// to the base) stays valid when the report struct is moved around.
    std::shared_ptr<const state_graph> base_sg;
    subgraph reduced;
    cost_breakdown initial_cost, reduced_cost;
    search_result search;
    csc_result csc;
    synthesis_result synth;
    perf_report perf;
    recovery_result recovered;

    // Table row accessors.
    [[nodiscard]] double area() const { return synth.ok ? synth.ckt.total_area : -1.0; }
    [[nodiscard]] std::size_t csc_signals() const { return csc.signals_inserted; }
    [[nodiscard]] double cycle() const { return perf.cycle_time; }
    [[nodiscard]] std::size_t input_events() const { return perf.input_events_on_cycle; }
};

/// Step-3 engine dispatch: applies the configured reduction strategy to
/// @p initial.  For `none` the result wraps the input unchanged (explored=1),
/// reusing @p initial_cost when the caller already evaluated it.  Shared by
/// run_flow and the pipeline so the strategy semantics cannot drift.
[[nodiscard]] search_result run_reduction(const subgraph& initial, reduction_strategy strategy,
                                          const search_options& opt,
                                          const cost_breakdown* initial_cost = nullptr);

/// Returns @p delays extended with zero-delay overrides for every wire- or
/// constant-implemented signal of @p ckt (a wire has no gate).
[[nodiscard]] delay_model wire_zero_delays(const circuit& ckt, const state_graph& g,
                                           delay_model delays);

/// Full flow from a channel-level / partial specification.
[[nodiscard]] flow_report run_flow(const stg& spec, const flow_options& opt);

/// Flow from an already generated state graph (skips expansion).
[[nodiscard]] flow_report run_flow_from_sg(state_graph sg, const flow_options& opt);

}  // namespace asynth
