// The end-to-end design flow of the paper's Fig. 4:
//
//   1. handshake expansion with maximal reset concurrency (core/expand)
//   2. state graph generation (sg)
//   3. concurrency reduction while the cost improves (core/search)
//   4. CSC resolution by state-signal insertion (csc)
//   5. logic synthesis + area (logic), timed analysis (perf)
//   6. STG recovery from the reduced SG (regions)
//
// run_flow() drives a channel-level specification through all six steps;
// run_flow_from_sg() starts from an already complete STG/SG (hand designs
// such as the Q-module).  Wire-implemented outputs get zero delay in the
// timing model -- a wire has no gate -- which is what makes the fully
// reduced LR process cost 4 input events * 2 = 8 time units, as in Table 1.
#pragma once

#include <memory>
#include <optional>

#include "core/cost.hpp"
#include "core/expand.hpp"
#include "core/search.hpp"
#include "csc/csc.hpp"
#include "logic/synthesis.hpp"
#include "perf/timing.hpp"
#include "regions/regions.hpp"

namespace asynth {

enum class reduction_strategy : uint8_t {
    none,  ///< keep maximal concurrency
    beam,  ///< Fig. 9 exploration
    full,  ///< greedy reduction to minimal concurrency
};

struct flow_options {
    expand_options expand;
    reduction_strategy strategy = reduction_strategy::beam;
    search_options search;
    csc_options csc;
    synthesis_options synth;
    delay_model delays;
    bool zero_delay_wires = true;
    bool recover = false;  ///< also run region-based STG recovery
};

struct flow_report {
    stg expanded;
    /// Owned behind a shared_ptr so that `reduced` (a view holding a pointer
    /// to the base) stays valid when the report struct is moved around.
    std::shared_ptr<const state_graph> base_sg;
    subgraph reduced;
    cost_breakdown initial_cost, reduced_cost;
    search_result search;
    csc_result csc;
    synthesis_result synth;
    perf_report perf;
    recovery_result recovered;

    // Table row accessors.
    [[nodiscard]] double area() const { return synth.ok ? synth.ckt.total_area : -1.0; }
    [[nodiscard]] std::size_t csc_signals() const { return csc.signals_inserted; }
    [[nodiscard]] double cycle() const { return perf.cycle_time; }
    [[nodiscard]] std::size_t input_events() const { return perf.input_events_on_cycle; }
};

/// Full flow from a channel-level / partial specification.
[[nodiscard]] flow_report run_flow(const stg& spec, const flow_options& opt);

/// Flow from an already generated state graph (skips expansion).
[[nodiscard]] flow_report run_flow_from_sg(state_graph sg, const flow_options& opt);

}  // namespace asynth
