// Self-contained C simulation model emitter: no #includes, one unsigned char
// per signal, one next-state function per implemented signal plus
// excited/step helpers.  gC implementations use the same set/reset latch
// semantics as the Verilog backend and the emulator.
#include <cstddef>
#include <string>
#include <vector>

#include "netlist/backend.hpp"

namespace asynth {

namespace {

/// Emits one `const int <prefix><i> = ...;` line per non-pin gate and returns
/// the expression naming the network's output.
std::string emit_gates(std::string& out, const netlist& nl, const std::string& prefix,
                       const std::vector<std::string>& sig_ident) {
    if (nl.output == -1) return "0";
    if (nl.output == -2) return "1";
    std::vector<std::string> expr(nl.gates.size());
    for (std::size_t i = 0; i < nl.gates.size(); ++i) {
        const auto& g = nl.gates[i];
        if (g.kind == gate_kind::input_pin) {
            expr[i] = "s->" + sig_ident.at(static_cast<std::size_t>(g.a));
            continue;
        }
        expr[i] = prefix + std::to_string(i);
        const auto& a = expr.at(static_cast<std::size_t>(g.a));
        out += "    const int " + expr[i] + " = ";
        switch (g.kind) {
            case gate_kind::inverter: out += "!" + a; break;
            case gate_kind::and2:
                out += a + " && " + expr.at(static_cast<std::size_t>(g.b));
                break;
            case gate_kind::or2:
                out += a + " || " + expr.at(static_cast<std::size_t>(g.b));
                break;
            case gate_kind::input_pin: break;  // handled above
        }
        out += ";\n";
    }
    return expr.at(static_cast<std::size_t>(nl.output));
}

class cmodel_emitter final : public netlist_backend {
public:
    const char* name() const noexcept override { return "cmodel"; }
    const char* file_extension() const noexcept override { return ".c"; }

    std::string emit(const circuit_netlist& m) const override {
        std::string out;
        std::vector<std::string> ident;
        ident.reserve(m.signals.size());
        for (const auto& s : m.signals) ident.push_back(sanitize_identifier(s.name));
        const std::string mod = sanitize_identifier(m.module_name);

        out += "/*\n";
        out += " * " + mod + ": self-contained C simulation model (asynth netlist backend).\n";
        out += " * Values are 0/1; " + mod + "_init() loads the power-up state; inputs are\n";
        out += " * driven by the caller; " + mod + "_excited_<sig>() reports whether a\n";
        out += " * non-input signal may fire and " + mod + "_step_<sig>() fires it.\n";
        out += " * equations:\n";
        for (const auto& net : m.nets) out += " *   " + net.equation + "\n";
        out += " */\n\n";

        out += "typedef struct {\n";
        for (std::size_t i = 0; i < m.signals.size(); ++i)
            out += "    unsigned char " + ident[i] + ";\n";
        out += "} " + mod + "_state;\n\n";

        out += "void " + mod + "_init(" + mod + "_state* s) {\n";
        for (std::size_t i = 0; i < m.signals.size(); ++i)
            out += "    s->" + ident[i] + " = " + (m.initial_code.test(i) ? "1" : "0") + ";\n";
        out += "}\n";

        for (std::size_t i = 0; i < m.signals.size(); ++i) {
            if (m.signals[i].kind == signal_kind::input) continue;
            const auto* net = m.find(static_cast<uint32_t>(i));
            const std::string next = mod + "_next_" + ident[i];
            out += "\n";
            if (!net) {
                // No transitions in the spec: the signal holds its power-up value.
                out += "int " + next + "(const " + mod + "_state* s) {\n";
                out += "    (void)s;\n";
                out += "    return " + std::string(m.initial_code.test(i) ? "1" : "0") +
                       ";  /* no transitions */\n";
                out += "}\n";
            } else if (net->kind == impl_kind::gc_element) {
                out += "/* " + net->equation + " (set/reset latch semantics) */\n";
                out += "int " + next + "(const " + mod + "_state* s) {\n";
                const std::string set = emit_gates(out, net->set_net, "set_g", ident);
                const std::string reset = emit_gates(out, net->reset_net, "reset_g", ident);
                out += "    return s->" + ident[i] + " ? !(" + reset + ") : (" + set +
                       ") != 0;\n";
                out += "}\n";
            } else {
                out += "/* " + net->equation + " */\n";
                out += "int " + next + "(const " + mod + "_state* s) {\n";
                const std::string f = emit_gates(out, net->fn, "g", ident);
                const bool uses_state = !net->fn.gates.empty();
                if (!uses_state) out += "    (void)s;\n";
                out += "    return (" + f + ") != 0;\n";
                out += "}\n";
            }
            out += "int " + mod + "_excited_" + ident[i] + "(const " + mod +
                   "_state* s) {\n";
            out += "    return " + next + "(s) != s->" + ident[i] + ";\n";
            out += "}\n";
            out += "void " + mod + "_step_" + ident[i] + "(" + mod + "_state* s) {\n";
            out += "    s->" + ident[i] + " = (unsigned char)" + next + "(s);\n";
            out += "}\n";
        }
        return out;
    }
};

}  // namespace

const netlist_backend& cmodel_backend() {
    static const cmodel_emitter instance;
    return instance;
}

}  // namespace asynth
