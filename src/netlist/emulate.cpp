#include "netlist/emulate.hpp"

#include <deque>
#include <optional>

namespace asynth {

namespace {

constexpr std::size_t max_reported_violations = 8;
constexpr std::size_t max_trace_events = 24;

/// Is the signal's gate network excited (output may change) at @p code?
bool impl_excited_at(const signal_net& net, const dyn_bitset& code) {
    const bool value = code.test(net.signal);
    if (net.kind == impl_kind::gc_element)
        return value ? net.reset_net.evaluate(code) : net.set_net.evaluate(code);
    return net.fn.evaluate(code) != value;
}

/// Shortest event trace from the initial state to @p state (BFS parents).
std::string trace_to(const state_graph& b, const std::vector<int64_t>& parent_arc,
                     uint32_t state) {
    std::vector<uint16_t> events;
    for (uint32_t s = state; parent_arc[s] >= 0;) {
        const auto& a = b.arcs()[static_cast<std::size_t>(parent_arc[s])];
        events.push_back(a.event);
        s = a.src;
    }
    if (events.empty()) return "(initial state)";
    std::string out;
    const std::size_t n = events.size();
    const std::size_t shown = n > max_trace_events ? max_trace_events : n;
    if (n > shown) out += "... ";
    for (std::size_t i = 0; i < shown; ++i) {
        if (i) out += " ";
        out += b.event_name(events[shown - 1 - i]);
    }
    return out;
}

}  // namespace

emulation_result emulate_against_sg(const circuit_netlist& model, const subgraph& spec) {
    emulation_result res;
    const auto& b = spec.base();

    // Per-net event ids in the SG (firing direction depends on the value).
    struct net_events {
        const signal_net* net = nullptr;
        std::optional<uint16_t> plus, minus;
    };
    std::vector<net_events> nets;
    nets.reserve(model.nets.size());
    for (const auto& net : model.nets) {
        net_events ne;
        ne.net = &net;
        ne.plus = b.find_event(static_cast<int32_t>(net.signal), edge::plus);
        ne.minus = b.find_event(static_cast<int32_t>(net.signal), edge::minus);
        nets.push_back(ne);
    }

    // BFS product walk from the initial state through live arcs; parents give
    // a shortest witness trace for any divergence.
    std::vector<char> visited(b.state_count(), 0);
    std::vector<int64_t> parent_arc(b.state_count(), -1);
    std::deque<uint32_t> queue;
    if (spec.state_live(b.initial())) {
        visited[b.initial()] = 1;
        queue.push_back(b.initial());
    }
    while (!queue.empty()) {
        const uint32_t s = queue.front();
        queue.pop_front();
        ++res.states_visited;
        const auto& code = b.states()[s].code;

        bool overlap_here = false;
        for (const auto& ne : nets) {
            const bool value = code.test(ne.net->signal);
            if (ne.net->kind == impl_kind::gc_element && ne.net->set_net.evaluate(code) &&
                ne.net->reset_net.evaluate(code))
                overlap_here = true;
            const bool impl = impl_excited_at(*ne.net, code);
            const auto ev = value ? ne.minus : ne.plus;
            const bool sg = ev && spec.enabled(s, *ev);
            ++res.checks;
            if (impl == sg) continue;
            if (res.violations.size() < max_reported_violations) {
                emulation_violation v;
                v.state = s;
                v.signal = ne.net->signal;
                v.impl_excited = impl;
                const std::string event =
                    model.signals[ne.net->signal].name + (value ? "-" : "+");
                if (impl)
                    v.detail = "implementation fires " + event + " at state " +
                               b.state_code_string(s) +
                               " but the spec forbids it (trace containment violated)";
                else
                    v.detail = "spec requires " + event + " at state " +
                               b.state_code_string(s) +
                               " but the gate is not excited (output readiness violated)";
                v.detail += "; trace: " + trace_to(b, parent_arc, s);
                res.violations.push_back(std::move(v));
            }
        }
        if (overlap_here) ++res.gc_overlap_states;

        for (uint32_t a : b.out_arcs(s)) {
            if (!spec.arc_live(a)) continue;
            const uint32_t d = b.arcs()[a].dst;
            if (!spec.state_live(d) || visited[d]) continue;
            visited[d] = 1;
            parent_arc[d] = a;
            queue.push_back(d);
        }
    }

    res.ok = res.violations.empty();
    if (!res.ok) res.message = res.violations.front().detail;
    return res;
}

}  // namespace asynth
