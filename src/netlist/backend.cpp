#include "netlist/backend.hpp"

namespace asynth {

std::size_t circuit_netlist::gate_count() const noexcept {
    std::size_t n = 0;
    for (const auto& net : nets)
        n += net.fn.gate_count() + net.set_net.gate_count() + net.reset_net.gate_count();
    return n;
}

circuit_netlist build_circuit_netlist(const circuit& ckt, const state_graph& enc,
                                      std::string module_name) {
    circuit_netlist model;
    model.module_name = std::move(module_name);
    model.signals = enc.signals();
    model.initial_code = enc.states().at(enc.initial()).code;
    model.nets.reserve(ckt.impls.size());
    for (const auto& impl : ckt.impls) {
        signal_net net;
        net.signal = impl.signal;
        net.kind = impl.kind;
        net.has_feedback = impl.has_feedback;
        net.equation = impl.equation;
        if (impl.kind == impl_kind::gc_element) {
            net.set_net = decompose_cover(impl.set_fn);
            net.reset_net = decompose_cover(impl.reset_fn);
        } else {
            net.fn = decompose_cover(impl.function);
        }
        model.nets.push_back(std::move(net));
    }
    return model;
}

std::string sanitize_identifier(std::string_view name) {
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name.front() >= '0' && name.front() <= '9') out.push_back('_');
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    if (out.empty()) out = "_";
    return out;
}

// Defined by the emitter translation units.
const netlist_backend& verilog_backend();
const netlist_backend& cmodel_backend();

const std::vector<const netlist_backend*>& netlist_backends() {
    static const std::vector<const netlist_backend*> all = {&verilog_backend(),
                                                            &cmodel_backend()};
    return all;
}

const netlist_backend* find_backend(std::string_view name) {
    for (const auto* b : netlist_backends())
        if (name == b->name()) return b;
    return nullptr;
}

}  // namespace asynth
