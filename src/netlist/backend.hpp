// Netlist backends: the logic stage's per-signal implementations made into a
// whole-circuit gate-level model, plus pluggable emitters over it.
//
// build_circuit_netlist() lowers a synthesised `circuit` against its encoded
// state graph into a `circuit_netlist`: every chosen implementation style
// (constant, wire, inverter, atomic complex gate, generalized C element) is
// decomposed into the same 2-input AND/OR/inverter gates the area model
// counts (logic/netlist.hpp), so what the emitters print and what the
// emulator replays (netlist/emulate.hpp) is exactly the gate network the
// pipeline priced.
//
// A `netlist_backend` turns the model into text.  Two are registered:
//
//   verilog  synthesisable structural Verilog (one wire per gate, a shared
//            set/reset latch module for gC implementations)
//   cmodel   a self-contained C translation unit (no includes) with one
//            next-state function per implemented signal
//
// Both emissions are deterministic functions of the model -- the golden
// tests in tests/test_netlist.cpp pin them byte for byte.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "logic/netlist.hpp"
#include "logic/synthesis.hpp"
#include "sg/state_graph.hpp"
#include "util/dyn_bitset.hpp"

namespace asynth {

/// Gate-level realisation of one non-input signal.
struct signal_net {
    uint32_t signal = 0;  ///< signal index in the model's signal table
    impl_kind kind = impl_kind::complex_gate;
    /// Next-state network f_x for constant/wire/inverter/complex styles.
    netlist fn;
    /// Set/reset networks for the gC style (empty otherwise).
    netlist set_net, reset_net;
    bool has_feedback = false;  ///< fn reads the signal's own value
    std::string equation;       ///< printable equation (logic stage verbatim)
};

/// The whole circuit at gate level, against one encoded state graph.
struct circuit_netlist {
    std::string module_name;           ///< emitted module/prefix identifier
    std::vector<signal_decl> signals;  ///< encoded SG signal table, in order
    dyn_bitset initial_code;           ///< initial state code (power-up values)
    std::vector<signal_net> nets;      ///< one per implemented non-input signal

    [[nodiscard]] const signal_net* find(uint32_t signal) const noexcept {
        for (const auto& n : nets)
            if (n.signal == signal) return &n;
        return nullptr;
    }
    /// Total 2-input gate count (excluding input pins) across all networks.
    [[nodiscard]] std::size_t gate_count() const noexcept;
};

/// Lowers a synthesised circuit into the gate-level model.  @p enc must be
/// the encoded state graph the circuit was synthesised from (csc_result's
/// graph): signal indices and the initial code are taken from it.
[[nodiscard]] circuit_netlist build_circuit_netlist(const circuit& ckt, const state_graph& enc,
                                                    std::string module_name);

/// A netlist emitter.  Implementations are stateless singletons.
class netlist_backend {
public:
    virtual ~netlist_backend() = default;
    [[nodiscard]] virtual const char* name() const noexcept = 0;            ///< CLI identifier
    [[nodiscard]] virtual const char* file_extension() const noexcept = 0;  ///< ".v", ".c"
    [[nodiscard]] virtual std::string emit(const circuit_netlist& model) const = 0;
};

/// All registered backends, in stable order (verilog, cmodel).
[[nodiscard]] const std::vector<const netlist_backend*>& netlist_backends();
/// Backend by CLI name; nullptr when unknown.
[[nodiscard]] const netlist_backend* find_backend(std::string_view name);

/// Signal name made safe for Verilog/C identifiers: characters outside
/// [A-Za-z0-9_] become '_', a leading digit gets a '_' prefix.
[[nodiscard]] std::string sanitize_identifier(std::string_view name);

}  // namespace asynth
