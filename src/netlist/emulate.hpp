// Speed-independent emulation of an emitted implementation against the
// spec's state graph.
//
// The model's gates are atomic (the paper's complex-gate assumption), so the
// circuit's state *is* the signal vector: at any state, each implemented
// signal is either stable (gate output agrees with its value) or excited
// (any excited gate may fire -- speed independence makes the firing order
// free).  The emulator therefore replays the implementation as a product
// walk with the encoded state graph: BFS over the live states from the
// initial one, and at every reached state the set of excited non-input
// signals computed from the gate networks must equal the set of enabled
// non-input events of the SG.
//
//   * implementation excited but no SG arc  -> the circuit can fire a
//     transition the spec forbids: TRACE CONTAINMENT violated;
//   * SG arc but implementation not excited -> the circuit never produces
//     an output the spec requires: OUTPUT READINESS violated.
//
// Because the excited sets are checked for equality at every reachable
// state, and firing an excited signal moves the circuit to exactly the
// code of the SG successor, the walk never needs to leave the SG's state
// set: equality everywhere is precisely trace equivalence of the two
// transition systems (inputs are driven per the spec's environment).
//
// gC implementations are replayed with the set/reset latch semantics the
// emitters print (rise on set while low, fall on reset while high).  States
// where both networks are active are additionally counted in
// `gc_overlap_states`: harmless under latch semantics, but a fight under a
// transistor-level gC -- the count is surfaced so stricter libraries can
// gate on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/backend.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

/// One (state, signal) disagreement between implementation and spec.
struct emulation_violation {
    uint32_t state = 0;        ///< SG state index where the walk diverged
    uint32_t signal = 0;       ///< offending signal
    bool impl_excited = false; ///< true: extra firing (containment); false: missing (readiness)
    std::string detail;        ///< human-readable diagnosis with code and trace
};

struct emulation_result {
    bool ok = false;                  ///< implementation trace-equivalent to the spec
    std::size_t states_visited = 0;   ///< live states reached by the walk
    std::size_t checks = 0;           ///< (state, signal) equality checks performed
    std::size_t gc_overlap_states = 0;  ///< states where some gC has set & reset both on
    std::vector<emulation_violation> violations;  ///< first few divergences (capped)
    std::string message;              ///< first violation's detail ("" when ok)
};

/// Replays @p model against @p spec (the encoded SG the circuit was
/// synthesised from).  Signals absent from the model (inputs, eventless
/// signals) are driven by the spec.  Never throws.
[[nodiscard]] emulation_result emulate_against_sg(const circuit_netlist& model,
                                                  const subgraph& spec);

}  // namespace asynth
