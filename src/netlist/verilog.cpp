// Structural Verilog emitter: one wire per 2-input gate, `assign` for the
// combinational styles and a shared `asynth_gc` set/reset latch module for
// generalized C elements.  The latch semantics (rise on set while low, fall
// on reset while high, hold otherwise) are exactly what the emulator replays
// -- see netlist/emulate.hpp.
#include <cstddef>
#include <string>
#include <vector>

#include "netlist/backend.hpp"

namespace asynth {

namespace {

/// Emits one `wire <prefix><i> = ...;` line per non-pin gate of @p nl and
/// returns the expression naming the network's output (a wire, a signal name
/// or a constant literal).
std::string emit_gates(std::string& out, const netlist& nl, const std::string& prefix,
                       const std::vector<std::string>& sig_ident) {
    if (nl.output == -1) return "1'b0";
    if (nl.output == -2) return "1'b1";
    std::vector<std::string> expr(nl.gates.size());
    for (std::size_t i = 0; i < nl.gates.size(); ++i) {
        const auto& g = nl.gates[i];
        if (g.kind == gate_kind::input_pin) {
            expr[i] = sig_ident.at(static_cast<std::size_t>(g.a));
            continue;
        }
        expr[i] = prefix + std::to_string(i);
        const auto& a = expr.at(static_cast<std::size_t>(g.a));
        out += "    wire " + expr[i] + " = ";
        switch (g.kind) {
            case gate_kind::inverter: out += "~" + a; break;
            case gate_kind::and2:
                out += a + " & " + expr.at(static_cast<std::size_t>(g.b));
                break;
            case gate_kind::or2:
                out += a + " | " + expr.at(static_cast<std::size_t>(g.b));
                break;
            case gate_kind::input_pin: break;  // handled above
        }
        out += ";\n";
    }
    return expr.at(static_cast<std::size_t>(nl.output));
}

class verilog_emitter final : public netlist_backend {
public:
    const char* name() const noexcept override { return "verilog"; }
    const char* file_extension() const noexcept override { return ".v"; }

    std::string emit(const circuit_netlist& m) const override {
        std::string out;
        std::vector<std::string> ident;
        ident.reserve(m.signals.size());
        for (const auto& s : m.signals) ident.push_back(sanitize_identifier(s.name));
        const std::string mod = sanitize_identifier(m.module_name);

        out += "// " + mod + ": speed-independent gate-level implementation";
        out += " (asynth netlist backend)\n";
        out += "// equations:\n";
        for (const auto& net : m.nets) out += "//   " + net.equation + "\n";
        out += "// initial state:";
        for (std::size_t i = 0; i < m.signals.size(); ++i)
            out += " " + ident[i] + "=" + (m.initial_code.test(i) ? "1" : "0");
        out += "\n";

        out += "module " + mod + " (\n";
        std::vector<std::string> ports;
        for (std::size_t i = 0; i < m.signals.size(); ++i) {
            if (m.signals[i].kind == signal_kind::input)
                ports.push_back("    input  wire " + ident[i]);
            else if (m.signals[i].kind == signal_kind::output)
                ports.push_back("    output wire " + ident[i]);
        }
        for (std::size_t i = 0; i < ports.size(); ++i)
            out += ports[i] + (i + 1 < ports.size() ? ",\n" : "\n");
        out += ");\n";

        bool any_internal = false;
        for (std::size_t i = 0; i < m.signals.size(); ++i)
            if (m.signals[i].kind == signal_kind::internal) {
                if (!any_internal) out += "    // internal state signals\n";
                any_internal = true;
                out += "    wire " + ident[i] + ";\n";
            }

        bool used_gc = false;
        for (std::size_t i = 0; i < m.signals.size(); ++i) {
            if (m.signals[i].kind == signal_kind::input) continue;
            const auto* net = m.find(static_cast<uint32_t>(i));
            out += "\n";
            if (!net) {
                // No transitions in the spec: the signal holds its power-up value.
                out += "    assign " + ident[i] + " = 1'b" +
                       (m.initial_code.test(i) ? "1" : "0") + ";  // no transitions\n";
                continue;
            }
            out += "    // " + net->equation + "\n";
            if (net->kind == impl_kind::gc_element) {
                used_gc = true;
                const std::string set =
                    emit_gates(out, net->set_net, ident[i] + "_s", ident);
                const std::string reset =
                    emit_gates(out, net->reset_net, ident[i] + "_r", ident);
                out += "    asynth_gc #(.INIT(1'b" + std::string(m.initial_code.test(i) ? "1" : "0") +
                       ")) " + ident[i] + "_latch (.set(" + set + "), .reset(" + reset +
                       "), .q(" + ident[i] + "));\n";
            } else {
                const std::string f = emit_gates(out, net->fn, ident[i] + "_g", ident);
                out += "    assign " + ident[i] + " = " + f + ";\n";
            }
        }
        out += "endmodule\n";

        if (used_gc) {
            out += "\n";
            out += "// Generalized C element modelled as a set/reset latch: q rises when set\n";
            out += "// while low, falls when reset while high, and holds otherwise -- the\n";
            out += "// excitation semantics the asynth emulator replays.\n";
            out += "module asynth_gc #(\n";
            out += "    parameter INIT = 1'b0\n";
            out += ") (\n";
            out += "    input  wire set,\n";
            out += "    input  wire reset,\n";
            out += "    output reg  q\n";
            out += ");\n";
            out += "    initial q = INIT;\n";
            out += "    always @(set or reset) begin\n";
            out += "        if (!q && set) q = 1'b1;\n";
            out += "        else if (q && reset) q = 1'b0;\n";
            out += "    end\n";
            out += "endmodule\n";
        }
        return out;
    }
};

}  // namespace

const netlist_backend& verilog_backend() {
    static const verilog_emitter instance;
    return instance;
}

}  // namespace asynth
