// The process version string, surfaced by the daemon's health/ping ops so
// fleet tooling can fingerprint running daemons (docs/SERVICE.md).  Keep in
// sync with the project VERSION in CMakeLists.txt.
#pragma once

namespace asynth {

inline constexpr const char* version_string = "0.1.0";

}  // namespace asynth
