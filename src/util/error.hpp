// Error type used across the library.  All recoverable analysis results use
// report structs; exceptions signal malformed inputs or violated contracts.
#pragma once

#include <stdexcept>
#include <string>

namespace asynth {

/// Library-wide exception.  `what()` carries a human-readable diagnostic.
class error : public std::runtime_error {
public:
    explicit error(const std::string& msg) : std::runtime_error(msg) {}
};

/// Thrown by parsers on malformed input; carries a line number.
class parse_error : public error {
public:
    parse_error(std::size_t line, const std::string& msg)
        : error("line " + std::to_string(line) + ": " + msg), line_(line) {}
    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

/// Require a condition on user input; throws asynth::error when violated.
inline void require(bool cond, const std::string& msg) {
    if (!cond) throw error(msg);
}

}  // namespace asynth
