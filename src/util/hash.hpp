#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace asynth {

/// Boost-style hash combiner.
inline void hash_combine(std::size_t& seed, std::size_t v) noexcept {
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Finaliser of the splitmix64 PRNG: a cheap, well-mixed 64 -> 64 bijection
/// used to spread weak hashes (e.g. FNV of short bitsets) over the full word.
inline uint64_t splitmix64(uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// A 128-bit hash value: two independently mixed 64-bit lanes.  Used where a
/// plain std::size_t signature is too collision-prone to act as an identity
/// (the exploration engine's transposition table and spec memo keys).
struct hash128 {
    uint64_t hi = 0;
    uint64_t lo = 0;
    [[nodiscard]] bool operator==(const hash128&) const noexcept = default;
    /// Strict total order (used as a deterministic sort tie-break).
    [[nodiscard]] bool operator<(const hash128& o) const noexcept {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/// Chains @p v into both lanes of @p h with different mixing constants, so the
/// result depends on the *sequence* of combined values, not just their set.
inline void hash128_combine(hash128& h, uint64_t v) noexcept {
    h.hi = splitmix64(h.hi ^ v);
    h.lo = splitmix64(h.lo + 0x6a09e667f3bcc909ULL + (v << 1 | v >> 63));
}

/// 128-bit hash of a byte string: 8-byte little-endian chunks chained with
/// hash128_combine, the tail zero-padded, the length folded in last (so
/// "ab"+"c" and "abc" cannot collide by construction).  Used as the content
/// address of the result store and as record payload checksums.
inline hash128 hash128_bytes(const char* data, std::size_t size) noexcept {
    hash128 h;
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t w = 0;
        for (std::size_t b = 0; b < 8; ++b)
            w |= static_cast<uint64_t>(static_cast<unsigned char>(data[i + b])) << (8 * b);
        hash128_combine(h, w);
    }
    uint64_t tail = 0;
    for (std::size_t b = 0; i + b < size; ++b)
        tail |= static_cast<uint64_t>(static_cast<unsigned char>(data[i + b])) << (8 * b);
    hash128_combine(h, tail);
    hash128_combine(h, static_cast<uint64_t>(size));
    return h;
}

template <typename T>
void hash_combine_value(std::size_t& seed, const T& v) noexcept {
    hash_combine(seed, std::hash<T>{}(v));
}

/// Deterministic xorshift PRNG used by property tests and workload
/// generators so results are reproducible across platforms.
class xorshift64 {
public:
    explicit xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
        : state_(seed ? seed : 1) {}

    uint64_t next() noexcept {
        uint64_t x = state_;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return state_ = x;
    }

    /// Uniform in [0, n).
    uint64_t next_below(uint64_t n) noexcept { return n ? next() % n : 0; }

    /// Uniform double in [0, 1).
    double next_unit() noexcept { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

    bool next_bool(double p = 0.5) noexcept { return next_unit() < p; }

private:
    uint64_t state_;
};

}  // namespace asynth

template <>
struct std::hash<asynth::hash128> {
    std::size_t operator()(const asynth::hash128& h) const noexcept {
        return static_cast<std::size_t>(h.hi ^ h.lo);
    }
};
