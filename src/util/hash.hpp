#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace asynth {

/// Boost-style hash combiner.
inline void hash_combine(std::size_t& seed, std::size_t v) noexcept {
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
void hash_combine_value(std::size_t& seed, const T& v) noexcept {
    hash_combine(seed, std::hash<T>{}(v));
}

/// Deterministic xorshift PRNG used by property tests and workload
/// generators so results are reproducible across platforms.
class xorshift64 {
public:
    explicit xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
        : state_(seed ? seed : 1) {}

    uint64_t next() noexcept {
        uint64_t x = state_;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return state_ = x;
    }

    /// Uniform in [0, n).
    uint64_t next_below(uint64_t n) noexcept { return n ? next() % n : 0; }

    /// Uniform double in [0, 1).
    double next_unit() noexcept { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

    bool next_bool(double p = 0.5) noexcept { return next_unit() < p; }

private:
    uint64_t state_;
};

}  // namespace asynth
