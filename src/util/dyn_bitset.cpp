#include "util/dyn_bitset.hpp"

#include <bit>
#include <cassert>

namespace asynth {

dyn_bitset::dyn_bitset(std::size_t nbits, bool value)
    : nbits_(nbits), words_((nbits + 63) / 64, value ? ~uint64_t{0} : 0) {
    if (value) clear_padding();
}

void dyn_bitset::resize(std::size_t nbits, bool value) {
    const std::size_t old_bits = nbits_;
    nbits_ = nbits;
    words_.resize((nbits + 63) / 64, value ? ~uint64_t{0} : 0);
    if (value && nbits > old_bits) {
        // Bits in the last pre-existing word beyond old_bits must be set.
        for (std::size_t i = old_bits; i < nbits && (i >> 6) < words_.size() && (i >> 6) == (old_bits >> 6); ++i)
            set(i);
    }
    clear_padding();
}

void dyn_bitset::set_all() noexcept {
    for (auto& w : words_) w = ~uint64_t{0};
    clear_padding();
}

void dyn_bitset::reset_all() noexcept {
    for (auto& w : words_) w = 0;
}

std::size_t dyn_bitset::count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

std::size_t dyn_bitset::count_and_not(const dyn_bitset& o) const noexcept {
    assert(nbits_ == o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
        n += static_cast<std::size_t>(std::popcount(words_[i] & ~o.words_[i]));
    return n;
}

bool dyn_bitset::none() const noexcept {
    for (auto w : words_)
        if (w != 0) return false;
    return true;
}

std::size_t dyn_bitset::find_first() const noexcept {
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
        if (words_[wi] != 0)
            return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    return npos;
}

std::size_t dyn_bitset::find_next(std::size_t i) const noexcept {
    ++i;
    if (i >= nbits_) return npos;
    std::size_t wi = i >> 6;
    uint64_t w = words_[wi] & (~uint64_t{0} << (i & 63U));
    while (true) {
        if (w != 0) return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
        if (++wi >= words_.size()) return npos;
        w = words_[wi];
    }
}

dyn_bitset& dyn_bitset::operator|=(const dyn_bitset& o) noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
}

dyn_bitset& dyn_bitset::operator&=(const dyn_bitset& o) noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
}

dyn_bitset& dyn_bitset::operator^=(const dyn_bitset& o) noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
}

dyn_bitset& dyn_bitset::and_not(const dyn_bitset& o) noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
}

bool dyn_bitset::intersects(const dyn_bitset& o) const noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & o.words_[i]) return true;
    return false;
}

bool dyn_bitset::is_subset_of(const dyn_bitset& o) const noexcept {
    assert(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & ~o.words_[i]) return false;
    return true;
}

std::size_t dyn_bitset::hash() const noexcept {
    // FNV-1a over words; good enough for hash-map keys on markings.
    uint64_t h = 1469598103934665603ULL;
    for (auto w : words_) {
        h ^= w;
        h *= 1099511628211ULL;
    }
    h ^= nbits_;
    return static_cast<std::size_t>(h);
}

uint64_t dyn_bitset::hash_seeded(uint64_t seed) const noexcept {
    uint64_t h = seed ^ 1469598103934665603ULL;
    for (auto w : words_) {
        h ^= w;
        h *= 1099511628211ULL;
    }
    h ^= nbits_;
    return h;
}

std::string dyn_bitset::to_string() const {
    std::string s(nbits_, '0');
    for (std::size_t i = 0; i < nbits_; ++i)
        if (test(i)) s[i] = '1';
    return s;
}

void dyn_bitset::clear_padding() noexcept {
    if (nbits_ & 63U) {
        if (!words_.empty()) words_.back() &= (~uint64_t{0}) >> (64 - (nbits_ & 63U));
    }
}

}  // namespace asynth
