// Dynamic bitset tuned for the small dense universes used throughout the
// library: Petri-net markings, state-graph state/arc sets, signal codes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace asynth {

/// Fixed-universe dynamic bitset.  All binary operations require operands of
/// equal size (checked in debug builds via assertions in the .cpp helpers).
class dyn_bitset {
public:
    dyn_bitset() = default;
    explicit dyn_bitset(std::size_t nbits, bool value = false);

    [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
    [[nodiscard]] bool empty_universe() const noexcept { return nbits_ == 0; }

    void resize(std::size_t nbits, bool value = false);

    [[nodiscard]] bool test(std::size_t i) const noexcept {
        return (words_[i >> 6] >> (i & 63U)) & 1U;
    }
    void set(std::size_t i) noexcept { words_[i >> 6] |= (uint64_t{1} << (i & 63U)); }
    void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(uint64_t{1} << (i & 63U)); }
    void assign(std::size_t i, bool v) noexcept { v ? set(i) : reset(i); }
    void flip(std::size_t i) noexcept { words_[i >> 6] ^= (uint64_t{1} << (i & 63U)); }

    void set_all() noexcept;
    void reset_all() noexcept;

    /// Number of set bits.
    [[nodiscard]] std::size_t count() const noexcept;
    /// |this & ~o| without materialising the intersection.
    [[nodiscard]] std::size_t count_and_not(const dyn_bitset& o) const noexcept;
    /// True if no bit is set.
    [[nodiscard]] bool none() const noexcept;
    [[nodiscard]] bool any() const noexcept { return !none(); }

    /// Index of first set bit, or npos when none.
    [[nodiscard]] std::size_t find_first() const noexcept;
    /// Index of first set bit strictly after @p i, or npos.
    [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    dyn_bitset& operator|=(const dyn_bitset& o) noexcept;
    dyn_bitset& operator&=(const dyn_bitset& o) noexcept;
    dyn_bitset& operator^=(const dyn_bitset& o) noexcept;
    /// this := this & ~o
    dyn_bitset& and_not(const dyn_bitset& o) noexcept;

    [[nodiscard]] friend dyn_bitset operator|(dyn_bitset a, const dyn_bitset& b) { return a |= b; }
    [[nodiscard]] friend dyn_bitset operator&(dyn_bitset a, const dyn_bitset& b) { return a &= b; }
    [[nodiscard]] friend dyn_bitset operator^(dyn_bitset a, const dyn_bitset& b) { return a ^= b; }

    [[nodiscard]] bool operator==(const dyn_bitset& o) const noexcept = default;

    /// True iff this and @p o share at least one set bit.
    [[nodiscard]] bool intersects(const dyn_bitset& o) const noexcept;
    /// True iff every set bit of this is also set in @p o.
    [[nodiscard]] bool is_subset_of(const dyn_bitset& o) const noexcept;

    [[nodiscard]] std::size_t hash() const noexcept;
    /// FNV-1a over the words starting from @p seed; two different seeds give
    /// two (practically) independent hashes of the same content, which is how
    /// 128-bit signatures are assembled without exposing the word array.
    [[nodiscard]] uint64_t hash_seeded(uint64_t seed) const noexcept;

    /// "10110..." most-significant index last (index 0 printed first).
    [[nodiscard]] std::string to_string() const;

    /// Raw 64-bit words, little-endian bit order; padding bits beyond size()
    /// are always zero.  Exposed for word-parallel kernels (boolfn cubes).
    [[nodiscard]] const std::vector<uint64_t>& words() const noexcept { return words_; }
    /// Valid-bit mask of word @p w (all-ones except possibly the last word).
    [[nodiscard]] uint64_t word_mask(std::size_t w) const noexcept {
        if (w + 1 == words_.size() && (nbits_ & 63U) != 0)
            return (~uint64_t{0}) >> (64 - (nbits_ & 63U));
        return ~uint64_t{0};
    }

    /// Iterate set bits: for (auto i : bits.ones()) ...
    class ones_range {
    public:
        explicit ones_range(const dyn_bitset& b) noexcept : b_(&b) {}
        class iterator {
        public:
            iterator(const dyn_bitset* b, std::size_t pos) noexcept : b_(b), pos_(pos) {}
            std::size_t operator*() const noexcept { return pos_; }
            iterator& operator++() noexcept { pos_ = b_->find_next(pos_); return *this; }
            bool operator!=(const iterator& o) const noexcept { return pos_ != o.pos_; }
        private:
            const dyn_bitset* b_;
            std::size_t pos_;
        };
        [[nodiscard]] iterator begin() const noexcept { return {b_, b_->find_first()}; }
        [[nodiscard]] iterator end() const noexcept { return {b_, npos}; }
    private:
        const dyn_bitset* b_;
    };
    [[nodiscard]] ones_range ones() const noexcept { return ones_range(*this); }

private:
    void clear_padding() noexcept;

    std::size_t nbits_ = 0;
    std::vector<uint64_t> words_;
};

}  // namespace asynth

template <>
struct std::hash<asynth::dyn_bitset> {
    std::size_t operator()(const asynth::dyn_bitset& b) const noexcept { return b.hash(); }
};
