#include "sg/state_graph.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>

#include "util/hash.hpp"

namespace asynth {

namespace {

// During generation each state carries the parity (mod 2 toggle count) of
// every signal relative to the initial state; consistency requires a unique
// parity per marking and polarity-consistent transitions (section 2).
struct gen_state {
    marking m;
    dyn_bitset parity;
};

}  // namespace

state_graph::generation_result state_graph::generate(const stg& net) {
    return generate(net, generation_options{});
}

state_graph::generation_result state_graph::generate(const stg& net,
                                                     const generation_options& opt) {
    const std::size_t nsig = net.signal_count();
    for (const auto& s : net.signals())
        require(s.kind != signal_kind::channel,
                "STG still contains channel signal '" + s.name +
                    "'; run handshake expansion first");

    state_graph g;
    g.signals_ = net.signals();

    // Event table: unique (signal, dir) pairs.
    std::vector<int> event_of_transition(net.transitions().size());
    for (std::size_t t = 0; t < net.transitions().size(); ++t) {
        const auto& l = net.transitions()[t].label;
        sg_event e{l.signal, l.dir};
        auto found = g.find_event(l.signal, l.dir);
        if (!found) {
            g.events_.push_back(e);
            found = static_cast<uint16_t>(g.events_.size() - 1);
        }
        event_of_transition[t] = *found;
    }

    std::vector<gen_state> gen;
    // States are keyed on (marking, parity): with toggle events the same
    // marking legitimately recurs with flipped codes (2-phase refinements
    // alternate polarity every loop iteration).
    struct key_hash {
        std::size_t operator()(const std::pair<dyn_bitset, dyn_bitset>& k) const noexcept {
            std::size_t h = k.first.hash();
            hash_combine(h, k.second.hash());
            return h;
        }
    };
    std::unordered_map<std::pair<dyn_bitset, dyn_bitset>, uint32_t, key_hash> index;
    std::deque<uint32_t> work;

    gen.push_back(gen_state{net.initial_marking(), dyn_bitset(nsig)});
    index.emplace(std::make_pair(gen[0].m, gen[0].parity), 0);
    work.push_back(0);

    // Polarity constraints: plus_parity[s] records the parity at which s+
    // fires (must be unique); dually for minus.
    std::vector<std::optional<bool>> plus_parity(nsig), minus_parity(nsig);
    std::vector<bool> fired(net.transitions().size(), false);
    std::vector<bool> marked(net.places().size(), false);
    for (std::size_t p = 0; p < net.places().size(); ++p)
        if (gen[0].m.test(p)) marked[p] = true;

    while (!work.empty()) {
        const uint32_t sid = work.front();
        work.pop_front();
        for (uint32_t t = 0; t < net.transitions().size(); ++t) {
            if (!net.enabled(gen[sid].m, t)) continue;
            fired[t] = true;
            const auto& label = net.transitions()[t].label;
            const auto sig = static_cast<uint32_t>(label.signal);
            const bool src_parity = gen[sid].parity.test(sig);
            if (label.dir == edge::plus) {
                if (!plus_parity[sig])
                    plus_parity[sig] = src_parity;
                else
                    require(*plus_parity[sig] == src_parity,
                            "inconsistent STG: " + net.transition_name(t) +
                                " fires at both polarities of " + net.signals()[sig].name);
            } else if (label.dir == edge::minus) {
                if (!minus_parity[sig])
                    minus_parity[sig] = src_parity;
                else
                    require(*minus_parity[sig] == src_parity,
                            "inconsistent STG: " + net.transition_name(t) +
                                " fires at both polarities of " + net.signals()[sig].name);
            }
            marking next = net.fire(gen[sid].m, t);
            dyn_bitset parity = gen[sid].parity;
            parity.flip(sig);
            auto [it, inserted] =
                index.emplace(std::make_pair(next, parity), static_cast<uint32_t>(gen.size()));
            if (inserted) {
                require(gen.size() < opt.max_states, "state graph exceeds max_states");
                gen.push_back(gen_state{std::move(next), std::move(parity)});
                for (std::size_t p = 0; p < net.places().size(); ++p)
                    if (gen.back().m.test(p)) marked[p] = true;
                work.push_back(it->second);
            }
            g.arcs_.push_back(sg_arc{sid, it->second, static_cast<uint16_t>(event_of_transition[t])});
        }
    }

    // Initial values: v0(s) = parity at which s+ fires (v = v0 xor parity and
    // s+ needs v = 0).  Cross-check against minus transitions.
    dyn_bitset v0(nsig);
    for (uint32_t s = 0; s < nsig; ++s) {
        std::optional<bool> val;
        if (plus_parity[s]) val = *plus_parity[s];
        if (minus_parity[s]) {
            const bool from_minus = !*minus_parity[s];
            if (val)
                require(*val == from_minus, "inconsistent STG: polarity mismatch for signal " +
                                                net.signals()[s].name);
            else
                val = from_minus;
        }
        if (!val) val = net.signals()[s].initial_value;
        v0.assign(s, *val);
    }

    g.states_.reserve(gen.size());
    for (auto& st : gen) {
        dyn_bitset code = st.parity;
        code ^= v0;
        g.states_.push_back(sg_state{std::move(st.m), std::move(code)});
    }
    g.initial_ = 0;
    g.rebuild_adjacency();
    return generation_result{std::move(g), std::move(fired), std::move(marked)};
}

state_graph state_graph::build(std::vector<signal_decl> signals, std::vector<sg_event> events,
                               std::vector<sg_state> states, std::vector<sg_arc> arcs,
                               uint32_t initial) {
    state_graph g;
    g.signals_ = std::move(signals);
    g.events_ = std::move(events);
    g.states_ = std::move(states);
    g.arcs_ = std::move(arcs);
    g.initial_ = initial;
    g.rebuild_adjacency();
    return g;
}

void state_graph::rebuild_adjacency() {
    out_.assign(states_.size(), {});
    in_.assign(states_.size(), {});
    for (uint32_t a = 0; a < arcs_.size(); ++a) {
        out_.at(arcs_[a].src).push_back(a);
        in_.at(arcs_[a].dst).push_back(a);
    }
}

std::optional<uint16_t> state_graph::find_event(int32_t signal, edge dir) const noexcept {
    for (uint16_t i = 0; i < events_.size(); ++i)
        if (events_[i].signal == signal && events_[i].dir == dir) return i;
    return std::nullopt;
}

std::string state_graph::event_name(uint16_t e) const {
    const auto& ev = events_.at(e);
    return signals_.at(static_cast<uint32_t>(ev.signal)).name + edge_char(ev.dir);
}

std::string state_graph::state_code_string(uint32_t s) const {
    std::string out;
    dyn_bitset excited(signals_.size());
    for (uint32_t a : out_arcs(s)) excited.set(static_cast<uint32_t>(events_[arcs_[a].event].signal));
    for (uint32_t i = 0; i < signals_.size(); ++i) {
        out += states_[s].code.test(i) ? '1' : '0';
        if (excited.test(i)) out += '*';
    }
    return out;
}

bool state_graph::is_input_event(uint16_t e) const {
    return signals_.at(static_cast<uint32_t>(events_.at(e).signal)).kind == signal_kind::input;
}

// ---- subgraph --------------------------------------------------------------

subgraph subgraph::full(const state_graph& base) {
    subgraph g;
    g.base_ = &base;
    g.states_ = dyn_bitset(base.state_count(), true);
    g.arcs_ = dyn_bitset(base.arc_count(), true);
    return g;
}

void subgraph::kill_state(uint32_t s) noexcept {
    states_.reset(s);
    for (uint32_t a : base_->out_arcs(s)) arcs_.reset(a);
    for (uint32_t a : base_->in_arcs(s)) arcs_.reset(a);
}

bool subgraph::enabled(uint32_t s, uint16_t e) const {
    for (uint32_t a : base_->out_arcs(s))
        if (arcs_.test(a) && base_->arcs()[a].event == e) return true;
    return false;
}

std::optional<uint32_t> subgraph::arc_from(uint32_t s, uint16_t e) const {
    for (uint32_t a : base_->out_arcs(s))
        if (arcs_.test(a) && base_->arcs()[a].event == e) return a;
    return std::nullopt;
}

dyn_bitset subgraph::reachable_from_initial() const {
    dyn_bitset seen(base_->state_count());
    if (!states_.test(base_->initial())) return seen;
    std::deque<uint32_t> work{base_->initial()};
    seen.set(base_->initial());
    while (!work.empty()) {
        uint32_t s = work.front();
        work.pop_front();
        for (uint32_t a : base_->out_arcs(s)) {
            if (!arcs_.test(a)) continue;
            uint32_t d = base_->arcs()[a].dst;
            if (!states_.test(d) || seen.test(d)) continue;
            seen.set(d);
            work.push_back(d);
        }
    }
    return seen;
}

std::size_t subgraph::prune_unreachable() {
    dyn_bitset reach = reachable_from_initial();
    std::size_t removed = 0;
    for (auto s : states_.ones()) {
        if (!reach.test(s)) {
            ++removed;
            // Cannot mutate while iterating ones(); collect below instead.
        }
    }
    if (removed == 0) return 0;
    std::vector<uint32_t> to_kill;
    to_kill.reserve(removed);
    for (auto s : states_.ones())
        if (!reach.test(s)) to_kill.push_back(static_cast<uint32_t>(s));
    for (uint32_t s : to_kill) kill_state(s);
    return removed;
}

state_graph subgraph::materialize() const {
    std::vector<uint32_t> remap(base_->state_count(), UINT32_MAX);
    std::vector<sg_state> states;
    for (auto s : states_.ones()) {
        remap[s] = static_cast<uint32_t>(states.size());
        states.push_back(base_->states()[s]);
    }
    std::vector<sg_arc> arcs;
    for (auto a : arcs_.ones()) {
        const auto& arc = base_->arcs()[a];
        if (remap[arc.src] == UINT32_MAX || remap[arc.dst] == UINT32_MAX) continue;
        arcs.push_back(sg_arc{remap[arc.src], remap[arc.dst], arc.event});
    }
    require(remap[base_->initial()] != UINT32_MAX, "materialize: initial state is dead");
    return state_graph::build(base_->signals(), base_->events(), std::move(states),
                              std::move(arcs), remap[base_->initial()]);
}

std::size_t subgraph::signature() const noexcept {
    std::size_t h = states_.hash();
    hash_combine(h, arcs_.hash());
    return h;
}

hash128 subgraph::signature128() const noexcept {
    hash128 sig;
    sig.hi = splitmix64(states_.hash_seeded(0x243f6a8885a308d3ULL) ^
                        splitmix64(arcs_.hash_seeded(0x13198a2e03707344ULL)));
    sig.lo = splitmix64(states_.hash_seeded(0xa4093822299f31d0ULL) +
                        splitmix64(arcs_.hash_seeded(0x082efa98ec4e6c89ULL)));
    return sig;
}

std::string write_dot(const subgraph& g) {
    std::ostringstream out;
    const auto& b = g.base();
    out << "digraph sg {\n";
    for (auto s : g.live_states().ones()) {
        out << "  s" << s << " [label=\"" << b.state_code_string(static_cast<uint32_t>(s))
            << "\"";
        if (s == b.initial()) out << ",penwidth=2";
        out << "];\n";
    }
    for (auto a : g.live_arcs().ones()) {
        const auto& arc = b.arcs()[a];
        out << "  s" << arc.src << " -> s" << arc.dst << " [label=\""
            << b.event_name(arc.event) << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

}  // namespace asynth
