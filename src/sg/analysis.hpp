// Implementability analyses over state-graph views (paper section 2):
// determinism, commutativity, output persistency (speed independence),
// Complete State Coding, excitation regions and the concurrency relation.
#pragma once

#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace asynth {

/// Result of the speed-independence checks.  `ok()` iff all constituents
/// hold; each violation carries a readable diagnostic.
struct si_report {
    bool deterministic = true;            ///< no state enables one event twice
    bool commutative = true;              ///< diamonds commute (Def. 2.1)
    bool output_persistent = true;        ///< no event disables a non-input
    std::vector<std::string> violations;  ///< readable diagnostics, one per violation
    [[nodiscard]] bool ok() const noexcept {
        return deterministic && commutative && output_persistent;
    }
};

[[nodiscard]] si_report check_speed_independence(const subgraph& g);

/// Checks that every live arc changes exactly its event's signal, in the
/// direction of its label.  Generated SGs satisfy this by construction; the
/// checker guards synthetic SGs (tests, CSC insertion products).
[[nodiscard]] bool check_consistency(const subgraph& g, std::string* diagnostic = nullptr);

/// One CSC conflict: two states with equal codes but different enabled
/// non-input event sets.
struct csc_conflict {
    uint32_t state_a = 0;  ///< first state of the conflicting pair
    uint32_t state_b = 0;  ///< second state (same code, different outputs)
};

/// Complete State Coding verdict over a subgraph.
struct csc_report {
    std::size_t conflict_pairs = 0;       ///< |{(s,s') : CSC violated}|
    std::size_t usc_pairs = 0;            ///< pairs with equal codes at all
    std::vector<csc_conflict> examples;   ///< up to `max_examples` pairs
    [[nodiscard]] bool has_csc() const noexcept { return conflict_pairs == 0; }
};

[[nodiscard]] csc_report check_csc(const subgraph& g, std::size_t max_examples = 16);

/// An excitation-region component: a maximal connected set of states in
/// which `event` is enabled.  Components stand in for transition instances
/// at the SG level.
struct er_component {
    uint16_t event = 0;  ///< index into state_graph::events()
    dyn_bitset states;   ///< over base state ids
};

/// All ER components of all events, in a stable order.
[[nodiscard]] std::vector<er_component> excitation_regions(const subgraph& g);
/// ER components of one event.
[[nodiscard]] std::vector<er_component> excitation_regions(const subgraph& g, uint16_t event);

/// Concurrency by the paper's practical criterion: two event instances are
/// concurrent iff their excitation regions intersect (holds exactly for
/// speed-independent SGs).
[[nodiscard]] bool concurrent(const er_component& a, const er_component& b);

/// Concurrency by Definition 2.1 (diamond of states); used by tests as the
/// ground truth for `concurrent`.
[[nodiscard]] bool concurrent_by_diamond(const subgraph& g, uint16_t e1, uint16_t e2);

/// Live states with no live outgoing arc.
[[nodiscard]] std::vector<uint32_t> deadlock_states(const subgraph& g);

/// Language equivalence of two deterministic SGs over (signal-name, dir)
/// labels.  Requires both to be deterministic; explores the synchronous
/// product and fails on any mismatch in enabled label sets.
[[nodiscard]] bool lts_equivalent(const subgraph& a, const subgraph& b,
                                  std::string* diagnostic = nullptr);

}  // namespace asynth
