// State graphs (SG): the reachability graph of an STG where every state is
// labelled with a binary signal vector (paper section 2).  Concurrency
// reduction operates on *subgraphs* (live state/arc masks over an immutable
// base SG), which makes beam-search candidates cheap to copy and hash.
//
// Thread safety: a state_graph is immutable after generate()/build(), and
// every const accessor is a plain read with no hidden caches -- any number
// of threads may share one SG concurrently (the batch engine and the Fig. 9
// search both do).  A subgraph is a mutable view: confine each instance to
// one thread (copies are independent), and keep the base SG alive for as
// long as any view points at it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "petri/stg.hpp"
#include "util/dyn_bitset.hpp"
#include "util/hash.hpp"

namespace asynth {

/// An SG event: a (signal, direction) pair.  Instance numbers of the source
/// STG are intentionally dropped -- at the SG level different instances of
/// a+ are distinguished by their excitation-region component instead.
struct sg_event {
    int32_t signal = -1;
    edge dir = edge::plus;
    [[nodiscard]] bool operator==(const sg_event&) const = default;
};

/// One SG state: a reachable marking with its binary encoding.
struct sg_state {
    marking m;        ///< STG marking (empty for synthetic SGs)
    dyn_bitset code;  ///< binary signal vector v(s)
};

/// A labelled SG transition s --e--> s'.
struct sg_arc {
    uint32_t src = 0;    ///< source state index
    uint32_t dst = 0;    ///< destination state index
    uint16_t event = 0;  ///< index into state_graph::events()
};

class state_graph {
public:
    // ---- construction ----------------------------------------------------
    struct generation_options {
        /// Abort generation (asynth::error) beyond this many states.
        std::size_t max_states = 1u << 20;
    };
    struct generation_result;

    /// Generates the SG by playing the token game from the initial marking.
    /// Checks safeness and consistent encodability; throws asynth::error on
    /// violation.  Initial values are deduced from transition polarity
    /// (a signal whose first transition is a+ starts at 0); toggle-only
    /// signals use signal_decl::initial_value.
    [[nodiscard]] static generation_result generate(const stg& net, const generation_options& opt);
    [[nodiscard]] static generation_result generate(const stg& net);

    /// Builds a synthetic SG directly (used by tests and by CSC insertion).
    /// Arcs/states are validated lazily by the analyses.
    static state_graph build(std::vector<signal_decl> signals, std::vector<sg_event> events,
                             std::vector<sg_state> states, std::vector<sg_arc> arcs,
                             uint32_t initial);

    // ---- accessors ---------------------------------------------------------
    [[nodiscard]] const std::vector<signal_decl>& signals() const noexcept { return signals_; }
    [[nodiscard]] const std::vector<sg_event>& events() const noexcept { return events_; }
    [[nodiscard]] const std::vector<sg_state>& states() const noexcept { return states_; }
    [[nodiscard]] const std::vector<sg_arc>& arcs() const noexcept { return arcs_; }
    [[nodiscard]] uint32_t initial() const noexcept { return initial_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return states_.size(); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_.size(); }

    /// Arc indices leaving / entering a state.
    [[nodiscard]] const std::vector<uint32_t>& out_arcs(uint32_t s) const { return out_.at(s); }
    [[nodiscard]] const std::vector<uint32_t>& in_arcs(uint32_t s) const { return in_.at(s); }

    [[nodiscard]] std::optional<uint16_t> find_event(int32_t signal, edge dir) const noexcept;
    [[nodiscard]] std::string event_name(uint16_t e) const;
    /// "10*1": value per signal, '*' appended when the signal is excited.
    [[nodiscard]] std::string state_code_string(uint32_t s) const;

    /// True when the event's signal is an input.
    [[nodiscard]] bool is_input_event(uint16_t e) const;
    /// True when the event's signal is an output or internal signal.
    [[nodiscard]] bool is_noninput_event(uint16_t e) const { return !is_input_event(e); }

private:
    friend class subgraph;
    std::vector<signal_decl> signals_;
    std::vector<sg_event> events_;
    std::vector<sg_state> states_;
    std::vector<sg_arc> arcs_;
    std::vector<std::vector<uint32_t>> out_, in_;
    uint32_t initial_ = 0;

    void rebuild_adjacency();
};

struct state_graph::generation_result {
    state_graph graph;
    /// Per STG transition: did it ever fire?  (Used by expansion pruning.)
    std::vector<bool> transition_fired;
    /// Per STG place: was it ever marked?
    std::vector<bool> place_marked;
};

/// A live-subset view of a base SG.  All analyses and the reducer operate on
/// subgraphs; `full()` wraps an entire SG.
class subgraph {
public:
    subgraph() = default;
    [[nodiscard]] static subgraph full(const state_graph& base);

    [[nodiscard]] const state_graph& base() const noexcept { return *base_; }
    [[nodiscard]] bool state_live(uint32_t s) const noexcept { return states_.test(s); }
    [[nodiscard]] bool arc_live(uint32_t a) const noexcept { return arcs_.test(a); }
    [[nodiscard]] const dyn_bitset& live_states() const noexcept { return states_; }
    [[nodiscard]] const dyn_bitset& live_arcs() const noexcept { return arcs_; }
    [[nodiscard]] std::size_t live_state_count() const noexcept { return states_.count(); }
    [[nodiscard]] std::size_t live_arc_count() const noexcept { return arcs_.count(); }
    [[nodiscard]] uint32_t initial() const noexcept { return base_->initial(); }

    void kill_arc(uint32_t a) noexcept { arcs_.reset(a); }
    void kill_state(uint32_t s) noexcept;  ///< also kills incident arcs

    /// Is event e enabled at live state s (some live out-arc labelled e)?
    [[nodiscard]] bool enabled(uint32_t s, uint16_t e) const;
    /// The live arc (s, e) if any.
    [[nodiscard]] std::optional<uint32_t> arc_from(uint32_t s, uint16_t e) const;

    /// States reachable from the initial state through live arcs.
    [[nodiscard]] dyn_bitset reachable_from_initial() const;
    /// Drops unreachable states (and their arcs) in place; returns the number
    /// of states removed.
    std::size_t prune_unreachable();

    /// Compacts the live subset into a standalone SG (unreferenced events are
    /// kept so event indices remain stable).
    [[nodiscard]] state_graph materialize() const;

    /// Hash of the live masks; identifies a candidate during beam search.
    [[nodiscard]] std::size_t signature() const noexcept;
    /// Strengthened 128-bit signature (two independently seeded hashes of the
    /// live masks).  The exploration engine uses it as the transposition-table
    /// key and as the deterministic beam tie-break; at 128 bits, collisions
    /// within a search are out of reach in practice.
    [[nodiscard]] hash128 signature128() const noexcept;
    [[nodiscard]] bool operator==(const subgraph& o) const noexcept {
        return base_ == o.base_ && states_ == o.states_ && arcs_ == o.arcs_;
    }

private:
    const state_graph* base_ = nullptr;
    dyn_bitset states_, arcs_;
};

/// Graphviz rendering (live part only).
[[nodiscard]] std::string write_dot(const subgraph& g);

}  // namespace asynth
