#include "sg/analysis.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "util/hash.hpp"

namespace asynth {

si_report check_speed_independence(const subgraph& g) {
    si_report rep;
    const auto& b = g.base();

    // Determinism: at most one live arc per (state, event).
    for (auto s : g.live_states().ones()) {
        std::vector<uint16_t> seen;
        for (uint32_t a : b.out_arcs(static_cast<uint32_t>(s))) {
            if (!g.arc_live(a)) continue;
            uint16_t e = b.arcs()[a].event;
            if (std::find(seen.begin(), seen.end(), e) != seen.end()) {
                rep.deterministic = false;
                rep.violations.push_back("state " + b.state_code_string(static_cast<uint32_t>(s)) +
                                         " has two arcs labelled " + b.event_name(e));
            }
            seen.push_back(e);
        }
    }

    // Commutativity: if s -a-> s1, s -b-> s2, s1 -b-> x, s2 -a-> y then x == y.
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        for (uint32_t a1 : b.out_arcs(s)) {
            if (!g.arc_live(a1)) continue;
            for (uint32_t a2 : b.out_arcs(s)) {
                if (!g.arc_live(a2) || a1 == a2) continue;
                const auto& arc1 = b.arcs()[a1];
                const auto& arc2 = b.arcs()[a2];
                auto x = g.arc_from(arc1.dst, arc2.event);
                auto y = g.arc_from(arc2.dst, arc1.event);
                if (x && y && b.arcs()[*x].dst != b.arcs()[*y].dst) {
                    rep.commutative = false;
                    rep.violations.push_back("non-commutative diamond at state " +
                                             b.state_code_string(s) + " over " +
                                             b.event_name(arc1.event) + "," +
                                             b.event_name(arc2.event));
                }
            }
        }
    }

    // Output persistency: an enabled non-input event may only be disabled by
    // its own firing; an enabled input event may not be disabled by a
    // non-input event (inputs may disable each other: environment choice).
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        for (uint32_t af : b.out_arcs(s)) {
            if (!g.arc_live(af)) continue;
            const auto& fire = b.arcs()[af];
            for (uint32_t ae : b.out_arcs(s)) {
                if (!g.arc_live(ae) || ae == af) continue;
                const uint16_t e = b.arcs()[ae].event;
                if (e == fire.event) continue;
                if (g.enabled(fire.dst, e)) continue;
                const bool e_input = b.is_input_event(e);
                const bool f_input = b.is_input_event(fire.event);
                if (!e_input || !f_input) {
                    rep.output_persistent = false;
                    rep.violations.push_back("event " + b.event_name(e) + " disabled by " +
                                             b.event_name(fire.event) + " at state " +
                                             b.state_code_string(s));
                }
            }
        }
    }
    return rep;
}

bool check_consistency(const subgraph& g, std::string* diagnostic) {
    const auto& b = g.base();
    for (auto av : g.live_arcs().ones()) {
        const auto& arc = b.arcs()[av];
        if (!g.state_live(arc.src) || !g.state_live(arc.dst)) continue;
        const auto& ev = b.events()[arc.event];
        const auto sig = static_cast<uint32_t>(ev.signal);
        const auto& cs = b.states()[arc.src].code;
        const auto& cd = b.states()[arc.dst].code;
        bool ok = true;
        for (uint32_t i = 0; ok && i < b.signals().size(); ++i) {
            const bool vs = cs.test(i);
            const bool vd = cd.test(i);
            if (i == sig) {
                switch (ev.dir) {
                    case edge::plus: ok = !vs && vd; break;
                    case edge::minus: ok = vs && !vd; break;
                    default: ok = vs != vd; break;
                }
            } else {
                ok = (vs == vd);
            }
        }
        if (!ok) {
            if (diagnostic)
                *diagnostic = "arc " + b.event_name(arc.event) + " from " +
                              b.state_code_string(arc.src) + " to " + b.state_code_string(arc.dst) +
                              " violates consistency";
            return false;
        }
    }
    return true;
}

csc_report check_csc(const subgraph& g, std::size_t max_examples) {
    csc_report rep;
    const auto& b = g.base();
    std::unordered_map<dyn_bitset, std::vector<uint32_t>> by_code;
    for (auto s : g.live_states().ones())
        by_code[b.states()[s].code].push_back(static_cast<uint32_t>(s));

    auto noninput_enabled = [&](uint32_t s) {
        dyn_bitset set(b.events().size());
        for (uint32_t a : b.out_arcs(s))
            if (g.arc_live(a) && b.is_noninput_event(b.arcs()[a].event))
                set.set(b.arcs()[a].event);
        return set;
    };

    for (auto& [code, group] : by_code) {
        if (group.size() < 2) continue;
        rep.usc_pairs += group.size() * (group.size() - 1) / 2;
        std::vector<dyn_bitset> outs;
        outs.reserve(group.size());
        for (uint32_t s : group) outs.push_back(noninput_enabled(s));
        for (std::size_t i = 0; i < group.size(); ++i)
            for (std::size_t j = i + 1; j < group.size(); ++j)
                if (outs[i] != outs[j]) {
                    ++rep.conflict_pairs;
                    if (rep.examples.size() < max_examples)
                        rep.examples.push_back(csc_conflict{group[i], group[j]});
                }
    }
    return rep;
}

std::vector<er_component> excitation_regions(const subgraph& g, uint16_t event) {
    const auto& b = g.base();
    dyn_bitset es(b.state_count());
    for (auto av : g.live_arcs().ones()) {
        const auto& arc = b.arcs()[av];
        if (arc.event == event && g.state_live(arc.src)) es.set(arc.src);
    }
    // Split into connected components via live arcs whose endpoints are both
    // in the excitation set (undirected connectivity).
    std::vector<er_component> out;
    dyn_bitset seen(b.state_count());
    for (auto seedv : es.ones()) {
        const auto seed = static_cast<uint32_t>(seedv);
        if (seen.test(seed)) continue;
        er_component comp{event, dyn_bitset(b.state_count())};
        std::deque<uint32_t> work{seed};
        seen.set(seed);
        comp.states.set(seed);
        while (!work.empty()) {
            uint32_t s = work.front();
            work.pop_front();
            auto visit = [&](uint32_t n) {
                if (es.test(n) && !seen.test(n)) {
                    seen.set(n);
                    comp.states.set(n);
                    work.push_back(n);
                }
            };
            for (uint32_t a : b.out_arcs(s))
                if (g.arc_live(a)) visit(b.arcs()[a].dst);
            for (uint32_t a : b.in_arcs(s))
                if (g.arc_live(a)) visit(b.arcs()[a].src);
        }
        out.push_back(std::move(comp));
    }
    return out;
}

std::vector<er_component> excitation_regions(const subgraph& g) {
    std::vector<er_component> out;
    for (uint16_t e = 0; e < g.base().events().size(); ++e) {
        auto comps = excitation_regions(g, e);
        out.insert(out.end(), std::make_move_iterator(comps.begin()),
                   std::make_move_iterator(comps.end()));
    }
    return out;
}

bool concurrent(const er_component& a, const er_component& b) {
    return a.states.intersects(b.states);
}

bool concurrent_by_diamond(const subgraph& g, uint16_t e1, uint16_t e2) {
    const auto& b = g.base();
    if (e1 == e2) return false;
    for (auto sv : g.live_states().ones()) {
        const auto s1 = static_cast<uint32_t>(sv);
        auto a12 = g.arc_from(s1, e1);
        auto a13 = g.arc_from(s1, e2);
        if (!a12 || !a13) continue;
        const uint32_t s2 = b.arcs()[*a12].dst;
        const uint32_t s3 = b.arcs()[*a13].dst;
        auto a24 = g.arc_from(s2, e2);
        auto a34 = g.arc_from(s3, e1);
        if (a24 && a34 && b.arcs()[*a24].dst == b.arcs()[*a34].dst) return true;
    }
    return false;
}

std::vector<uint32_t> deadlock_states(const subgraph& g) {
    std::vector<uint32_t> out;
    const auto& b = g.base();
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        bool has_out = false;
        for (uint32_t a : b.out_arcs(s))
            if (g.arc_live(a)) {
                has_out = true;
                break;
            }
        if (!has_out) out.push_back(s);
    }
    return out;
}

bool lts_equivalent(const subgraph& ga, const subgraph& gb, std::string* diagnostic) {
    const auto& a = ga.base();
    const auto& b = gb.base();
    // Map event labels by (signal name, dir).
    auto label_key = [](const state_graph& g, uint16_t e) {
        const auto& ev = g.events()[e];
        return g.signals()[static_cast<uint32_t>(ev.signal)].name + edge_char(ev.dir);
    };
    std::map<std::string, uint16_t> b_events;
    for (uint16_t e = 0; e < b.events().size(); ++e) b_events[label_key(b, e)] = e;

    std::unordered_map<uint64_t, bool> visited;
    std::deque<std::pair<uint32_t, uint32_t>> work{{a.initial(), b.initial()}};
    auto key = [](uint32_t x, uint32_t y) { return (static_cast<uint64_t>(x) << 32) | y; };
    visited[key(a.initial(), b.initial())] = true;

    while (!work.empty()) {
        auto [sa, sb] = work.front();
        work.pop_front();
        // Collect enabled labels on both sides.
        std::map<std::string, uint32_t> ea, eb;
        for (uint32_t arc : a.out_arcs(sa))
            if (ga.arc_live(arc)) ea[label_key(a, a.arcs()[arc].event)] = a.arcs()[arc].dst;
        for (uint32_t arc : b.out_arcs(sb))
            if (gb.arc_live(arc)) eb[label_key(b, b.arcs()[arc].event)] = b.arcs()[arc].dst;
        if (ea.size() != eb.size()) {
            if (diagnostic)
                *diagnostic = "enabled-label mismatch at product state (" +
                              a.state_code_string(sa) + ", " + b.state_code_string(sb) + ")";
            return false;
        }
        for (auto& [label, da] : ea) {
            auto it = eb.find(label);
            if (it == eb.end()) {
                if (diagnostic) *diagnostic = "label " + label + " only enabled on one side";
                return false;
            }
            if (!visited.emplace(key(da, it->second), true).second) continue;
            work.emplace_back(da, it->second);
        }
    }
    return true;
}

}  // namespace asynth
