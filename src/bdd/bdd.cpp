#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

namespace asynth {

bdd_manager::ref bdd_manager::make(uint32_t v, ref lo, ref hi) {
    if (lo == hi) return lo;
    auto key = std::make_tuple(v, lo, hi);
    auto [it, inserted] = unique_.emplace(key, static_cast<ref>(nodes_.size()));
    if (inserted) {
        require(nodes_.size() < (1u << 30), "BDD node limit exceeded");
        nodes_.push_back(node{v, lo, hi});
    }
    return it->second;
}

uint32_t bdd_manager::top_var(ref f, ref g, ref h) const {
    uint32_t v = nvars_;
    if (!is_terminal(f)) v = std::min(v, nodes_[f].var);
    if (!is_terminal(g)) v = std::min(v, nodes_[g].var);
    if (!is_terminal(h)) v = std::min(v, nodes_[h].var);
    return v;
}

bdd_manager::ref bdd_manager::ite(ref f, ref g, ref h) {
    if (f == 1) return g;
    if (f == 0) return h;
    if (g == h) return g;
    if (g == 1 && h == 0) return f;
    auto key = std::make_tuple(f, g, h);
    if (auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

    const uint32_t v = top_var(f, g, h);
    auto cof = [&](ref x, bool hi) -> ref {
        if (is_terminal(x) || nodes_[x].var != v) return x;
        return hi ? nodes_[x].hi : nodes_[x].lo;
    };
    ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
    ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
    ref out = make(v, lo, hi);
    ite_cache_.emplace(key, out);
    return out;
}

bdd_manager::ref bdd_manager::exists(ref f, const dyn_bitset& vars) {
    if (is_terminal(f)) return f;
    // The cache is keyed on the node and invalidated when a different
    // variable set is quantified.
    if (vars.hash() != quant_sig_) {
        quant_cache_.clear();
        quant_sig_ = vars.hash();
    }
    const uint64_t key = f;
    if (auto it = quant_cache_.find(key); it != quant_cache_.end()) return it->second;
    // By value: the recursion allocates nodes, which can reallocate nodes_
    // under a reference (heap-use-after-free caught by the ASan CI job).
    const node n = nodes_[f];
    ref lo = exists(n.lo, vars);
    ref hi = exists(n.hi, vars);
    ref out = vars.test(n.var) ? apply_or(lo, hi) : make(n.var, lo, hi);
    quant_cache_.emplace(key, out);
    return out;
}

bdd_manager::ref bdd_manager::rename(ref f, const std::vector<uint32_t>& map) {
    if (is_terminal(f)) return f;
    // The cache is keyed on the node and invalidated when the map changes.
    std::size_t sig = 0;
    for (uint32_t v : map) hash_combine(sig, v);
    if (sig != rename_sig_) {
        rename_cache_.clear();
        rename_sig_ = sig;
    }
    const uint64_t key = f;
    if (auto it = rename_cache_.find(key); it != rename_cache_.end()) return it->second;
    // By value: rename() allocates via make(), which can reallocate nodes_.
    const node n = nodes_[f];
    ref lo = rename(n.lo, map);
    ref hi = rename(n.hi, map);
    ref out = make(map.at(n.var), lo, hi);
    rename_cache_.emplace(key, out);
    return out;
}

double bdd_manager::sat_count(ref f) {
    if (f == 0) return 0.0;
    struct walker {
        bdd_manager* m;
        std::unordered_map<uint64_t, double>& cache;
        double walk(ref x) {
            if (x == 0) return 0.0;
            if (x == 1) return 1.0;
            auto key = static_cast<uint64_t>(x);
            if (auto it = cache.find(key); it != cache.end()) return it->second;
            const auto& n = m->nodes_[x];
            const uint32_t lo_var = m->is_terminal(n.lo) ? m->nvars_ : m->nodes_[n.lo].var;
            const uint32_t hi_var = m->is_terminal(n.hi) ? m->nvars_ : m->nodes_[n.hi].var;
            double lo = walk(n.lo) * std::pow(2.0, lo_var - n.var - 1);
            double hi = walk(n.hi) * std::pow(2.0, hi_var - n.var - 1);
            double out = lo + hi;
            cache.emplace(key, out);
            return out;
        }
    };
    walker w{this, count_cache_};
    const uint32_t top = is_terminal(f) ? nvars_ : nodes_[f].var;
    return w.walk(f) * std::pow(2.0, top);
}

bool bdd_manager::eval(ref f, const dyn_bitset& point) const {
    while (!is_terminal(f)) {
        const auto& n = nodes_[f];
        f = point.test(n.var) ? n.hi : n.lo;
    }
    return f == 1;
}

}  // namespace asynth
