// Symbolic reachability of safe Petri nets: an independent engine used to
// cross-check the explicit token game (ablation_engines bench, tests).
// Variables are interleaved current/next place bits; each transition
// contributes a relation conjunct and the reachable set is the standard
// image-computation fixpoint.
#pragma once

#include "bdd/bdd.hpp"
#include "petri/stg.hpp"

namespace asynth {

struct symbolic_result {
    double reachable_markings = 0.0;
    std::size_t bdd_nodes = 0;
    std::size_t iterations = 0;
};

/// Counts the markings reachable from the initial marking of @p net.
/// Throws asynth::error if the net is unsafe (diverges from the explicit
/// engine's safety check, which this function does not replicate).
[[nodiscard]] symbolic_result symbolic_reachable_markings(const stg& net);

}  // namespace asynth
