#include "bdd/symbolic.hpp"

#include <cmath>
#include <vector>

namespace asynth {

symbolic_result symbolic_reachable_markings(const stg& net) {
    const auto nplaces = static_cast<uint32_t>(net.places().size());
    // Interleaved ordering: current place p at 2p, next at 2p+1.
    bdd_manager m(2 * nplaces);
    auto cur = [&](uint32_t p) { return 2 * p; };
    auto nxt = [&](uint32_t p) { return 2 * p + 1; };

    // Transition relations.
    std::vector<bdd_manager::ref> relations;
    for (const auto& t : net.transitions()) {
        dyn_bitset in_pre(nplaces), in_post(nplaces);
        for (uint32_t p : t.pre) in_pre.set(p);
        for (uint32_t p : t.post) in_post.set(p);
        auto rel = m.one();
        for (uint32_t p = 0; p < nplaces; ++p) {
            bdd_manager::ref clause;
            if (in_pre.test(p) && in_post.test(p))
                clause = m.apply_and(m.var(cur(p)), m.var(nxt(p)));
            else if (in_pre.test(p))
                clause = m.apply_and(m.var(cur(p)), m.nvar(nxt(p)));
            else if (in_post.test(p))
                // Safeness: the target place must be empty before the firing.
                clause = m.apply_and(m.nvar(cur(p)), m.var(nxt(p)));
            else
                clause = m.iff(m.var(cur(p)), m.var(nxt(p)));
            rel = m.apply_and(rel, clause);
        }
        relations.push_back(rel);
    }

    // Initial marking.
    auto reached = m.one();
    for (uint32_t p = 0; p < nplaces; ++p)
        reached = m.apply_and(reached,
                              net.places()[p].tokens ? m.var(cur(p)) : m.nvar(cur(p)));

    dyn_bitset current_vars(2 * nplaces);
    for (uint32_t p = 0; p < nplaces; ++p) current_vars.set(cur(p));
    std::vector<uint32_t> next_to_cur(2 * nplaces);
    for (uint32_t p = 0; p < nplaces; ++p) {
        next_to_cur[cur(p)] = cur(p);
        next_to_cur[nxt(p)] = cur(p);
    }

    symbolic_result out;
    bool grew = true;
    while (grew) {
        ++out.iterations;
        grew = false;
        for (auto rel : relations) {
            auto step = m.apply_and(reached, rel);
            auto image = m.rename(m.exists(step, current_vars), next_to_cur);
            auto next = m.apply_or(reached, image);
            if (next != reached) {
                reached = next;
                grew = true;
            }
        }
    }

    // Count over the place variables only: each marking fixes all current
    // bits and leaves the next bits free, so divide by 2^nplaces.
    out.reachable_markings = m.sat_count(reached) / std::pow(2.0, nplaces);
    out.bdd_nodes = m.node_count();
    return out;
}

}  // namespace asynth
