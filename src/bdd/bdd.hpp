// A compact ROBDD package (stand-in for CUDD): unique table, apply cache,
// ITE, quantification and variable renaming -- enough to run symbolic
// reachability over safe Petri nets as an independent cross-check of the
// explicit state-graph engine (see bdd/symbolic.hpp).
//
// Thread safety: there is deliberately NO global manager -- all state (the
// unique table and the apply cache) lives inside each bdd_manager instance,
// and even nominally-reading operations insert into those tables, so one
// manager must never be shared across threads without external locking.
// The contract for parallel code (e.g. batch/ sweeps running symbolic
// analyses): one bdd_manager per thread/task; refs are meaningless across
// managers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/dyn_bitset.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace asynth {

class bdd_manager {
public:
    using ref = uint32_t;

    explicit bdd_manager(uint32_t nvars) : nvars_(nvars) {
        nodes_.push_back(node{nvars, 0, 0});  // 0 terminal
        nodes_.push_back(node{nvars, 1, 1});  // 1 terminal
    }

    [[nodiscard]] ref zero() const noexcept { return 0; }
    [[nodiscard]] ref one() const noexcept { return 1; }
    [[nodiscard]] uint32_t var_count() const noexcept { return nvars_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

    /// The single-variable function x_i (or its negation).
    [[nodiscard]] ref var(uint32_t i) { return make(i, 0, 1); }
    [[nodiscard]] ref nvar(uint32_t i) { return make(i, 1, 0); }

    [[nodiscard]] ref apply_and(ref f, ref g) { return ite(f, g, 0); }
    [[nodiscard]] ref apply_or(ref f, ref g) { return ite(f, 1, g); }
    [[nodiscard]] ref apply_xor(ref f, ref g) { return ite(f, negate(g), g); }
    [[nodiscard]] ref negate(ref f) { return ite(f, 0, 1); }
    /// f <-> g
    [[nodiscard]] ref iff(ref f, ref g) { return ite(f, g, negate(g)); }

    [[nodiscard]] ref ite(ref f, ref g, ref h);

    /// Existential quantification over the variables set in @p vars.
    [[nodiscard]] ref exists(ref f, const dyn_bitset& vars);

    /// Renames variables: var i becomes map[i] (must be order-preserving on
    /// the support for correctness; our current/next interleaving satisfies
    /// this).
    [[nodiscard]] ref rename(ref f, const std::vector<uint32_t>& map);

    /// Number of satisfying assignments over all nvars variables.
    [[nodiscard]] double sat_count(ref f);

    /// Evaluates f at a point.
    [[nodiscard]] bool eval(ref f, const dyn_bitset& point) const;

private:
    struct node {
        uint32_t var;
        ref lo, hi;
    };

    ref make(uint32_t v, ref lo, ref hi);

    [[nodiscard]] bool is_terminal(ref f) const noexcept { return f <= 1; }
    [[nodiscard]] uint32_t top_var(ref f, ref g, ref h) const;

    uint32_t nvars_;
    std::vector<node> nodes_;

    struct triple_hash {
        std::size_t operator()(const std::tuple<uint32_t, uint32_t, uint32_t>& t) const noexcept {
            std::size_t h = std::get<0>(t);
            hash_combine(h, std::get<1>(t));
            hash_combine(h, std::get<2>(t));
            return h;
        }
    };
    std::unordered_map<std::tuple<uint32_t, uint32_t, uint32_t>, ref, triple_hash> unique_;
    std::unordered_map<std::tuple<uint32_t, uint32_t, uint32_t>, ref, triple_hash> ite_cache_;
    std::unordered_map<uint64_t, ref> quant_cache_;
    std::unordered_map<uint64_t, ref> rename_cache_;
    std::unordered_map<uint64_t, double> count_cache_;
    std::size_t quant_sig_ = 0;
    std::size_t rename_sig_ = 0;
};

}  // namespace asynth
