// Complete State Coding resolution by state-signal insertion.
//
// petrify resolves CSC with a region-based bipartition theory; we implement
// a simpler *event-anchored* insertion that is re-verified after the fact
// (documented substitution, see DESIGN.md):
//
//   insert_state_signal(G, e1, e2) adds an internal signal x such that x+
//   fires immediately before every occurrence of e1 and x- immediately
//   before every occurrence of e2 (both non-input).  x+ becomes excited on
//   entry into ER(e1) and only delays e1 itself; all other events stay
//   concurrent with x+, so output persistency of the rest of the circuit is
//   untouched.  The construction is a product of the SG with a three-state
//   tracker (value, pending+), rejected whenever it would make x
//   inconsistent (e1/e2 do not alternate) or leave determinism.
//
// resolve_csc() greedily searches anchor pairs until all CSC conflicts are
// gone (or max_signals insertions were tried), re-running the full property
// checks on each accepted product.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace asynth {

/// Builds the product SG with the new internal signal.  Returns nullopt when
/// the anchors are unusable (an input among them, e1 == e2, non-alternating
/// occurrences, pending collision).  The result is a fresh base SG whose
/// signal table gains `name` and whose codes gain x's value bit.
[[nodiscard]] std::optional<state_graph> insert_state_signal(const state_graph& base,
                                                             uint16_t e1, uint16_t e2,
                                                             const std::string& name);

struct csc_options {
    std::size_t max_signals = 4;  ///< insertion rounds (beam depth)
    std::size_t beam_width = 4;   ///< partial solutions kept per round
};

/// Outcome of a CSC resolution run.
struct csc_result {
    bool solved = false;                ///< all CSC conflicts eliminated
    std::size_t signals_inserted = 0;   ///< internal signals added
    state_graph graph;                  ///< encoded SG (valid also when !solved)
    std::vector<std::string> anchors;   ///< human-readable insertion log
    std::string message;                ///< diagnostic when !solved
};

/// Resolves CSC conflicts of @p g by repeated state-signal insertion.
[[nodiscard]] csc_result resolve_csc(const subgraph& g, const csc_options& opt);
[[nodiscard]] csc_result resolve_csc(const subgraph& g);

}  // namespace asynth
