#include "csc/csc.hpp"

#include <deque>
#include <unordered_map>

#include "sg/analysis.hpp"
#include "util/hash.hpp"

namespace asynth {

namespace {

enum pending : uint8_t { none = 0, plus_pending = 1, minus_pending = 2 };

struct product_key {
    uint32_t s;
    uint8_t v;
    uint8_t p;
    bool operator==(const product_key&) const = default;
};

struct product_key_hash {
    std::size_t operator()(const product_key& k) const noexcept {
        std::size_t h = k.s;
        hash_combine(h, (static_cast<std::size_t>(k.v) << 2) | k.p);
        return h;
    }
};

std::optional<state_graph> try_product(const state_graph& base, uint16_t e1, uint16_t e2,
                                       const std::string& name, bool v0) {
    const auto nsig = static_cast<uint32_t>(base.signals().size());

    // Excitation sets of the anchors.
    dyn_bitset es1(base.state_count()), es2(base.state_count());
    for (const auto& arc : base.arcs()) {
        if (arc.event == e1) es1.set(arc.src);
        if (arc.event == e2) es2.set(arc.src);
    }
    if (es1.none() || es2.none()) return std::nullopt;
    if (es1.intersects(es2)) return std::nullopt;  // both pending at once

    auto signals = base.signals();
    signals.push_back(signal_decl{name, signal_kind::internal, false, false});
    auto events = base.events();
    const auto xsig = static_cast<int32_t>(nsig);
    const auto x_plus = static_cast<uint16_t>(events.size());
    events.push_back(sg_event{xsig, edge::plus});
    const auto x_minus = static_cast<uint16_t>(events.size());
    events.push_back(sg_event{xsig, edge::minus});

    std::vector<sg_state> states;
    std::vector<sg_arc> arcs;
    std::unordered_map<product_key, uint32_t, product_key_hash> index;
    std::deque<product_key> work;

    auto classify = [&](uint32_t s, bool v) -> std::optional<product_key> {
        // Entering ER(e1) arms x+, entering ER(e2) arms x-.
        if (es1.test(s)) {
            if (v) return std::nullopt;  // x must be 0 before x+
            return product_key{s, 0, plus_pending};
        }
        if (es2.test(s)) {
            if (!v) return std::nullopt;
            return product_key{s, 1, minus_pending};
        }
        return product_key{s, static_cast<uint8_t>(v), none};
    };

    auto intern = [&](const product_key& k) {
        auto [it, inserted] = index.emplace(k, static_cast<uint32_t>(states.size()));
        if (inserted) {
            dyn_bitset code = base.states()[k.s].code;
            code.resize(nsig + 1);
            code.assign(nsig, k.v);
            states.push_back(sg_state{base.states()[k.s].m, std::move(code)});
            work.push_back(k);
        }
        return it->second;
    };

    auto start = classify(base.initial(), v0);
    if (!start) return std::nullopt;
    const uint32_t initial = intern(*start);

    // Invariants: p = plus_pending implies s in ES(e1) and v = 0;
    //             p = minus_pending implies s in ES(e2) and v = 1.
    while (!work.empty()) {
        const product_key k = work.front();
        work.pop_front();
        const uint32_t sid = index.at(k);

        if (k.p == plus_pending)
            arcs.push_back(sg_arc{sid, intern(product_key{k.s, 1, none}), x_plus});
        else if (k.p == minus_pending)
            arcs.push_back(sg_arc{sid, intern(product_key{k.s, 0, none}), x_minus});

        for (uint32_t a : base.out_arcs(k.s)) {
            const auto& arc = base.arcs()[a];
            // The anchors wait for x; everything else is free to fire.
            if (arc.event == e1 && !(k.v == 1 && k.p == none)) continue;
            if (arc.event == e2 && !(k.v == 0 && k.p == none)) continue;
            const bool src1 = es1.test(k.s), dst1 = es1.test(arc.dst);
            const bool src2 = es2.test(k.s), dst2 = es2.test(arc.dst);
            uint8_t nv = k.v, np = k.p;
            if (k.p == plus_pending) {
                // While x+ is pending the anchor must stay excited (it is a
                // non-input event of a speed-independent SG).
                if (!dst1) return std::nullopt;
            } else if (k.p == minus_pending) {
                if (!dst2) return std::nullopt;
            } else if (dst1) {
                if (k.v == 0) {
                    np = plus_pending;  // fresh entry into ER(e1): arm x+
                } else if (!src1 || arc.event == e1) {
                    // ER(e1) re-excited before x- fired: e1 and e2 do not
                    // alternate with these anchors.
                    return std::nullopt;
                }
            } else if (dst2) {
                if (k.v == 1) {
                    np = minus_pending;
                } else if (!src2 || arc.event == e2) {
                    return std::nullopt;
                }
            }
            arcs.push_back(sg_arc{sid, intern(product_key{arc.dst, nv, np}), arc.event});
        }
    }

    return state_graph::build(std::move(signals), std::move(events), std::move(states),
                              std::move(arcs), initial);
}

}  // namespace

std::optional<state_graph> insert_state_signal(const state_graph& base, uint16_t e1, uint16_t e2,
                                               const std::string& name) {
    if (e1 == e2) return std::nullopt;
    if (base.is_input_event(e1) || base.is_input_event(e2)) return std::nullopt;
    for (bool v0 : {false, true}) {
        auto product = try_product(base, e1, e2, name, v0);
        if (!product) continue;
        auto g = subgraph::full(*product);
        std::string diag;
        if (!check_consistency(g, &diag)) continue;
        auto si = check_speed_independence(g);
        if (!si.ok()) continue;
        if (!deadlock_states(g).empty()) continue;
        return product;
    }
    return std::nullopt;
}

csc_result resolve_csc(const subgraph& g) { return resolve_csc(g, csc_options{}); }

namespace {

struct csc_node {
    state_graph graph;
    std::size_t conflicts = 0;
    std::vector<std::string> anchors;
};

}  // namespace

csc_result resolve_csc(const subgraph& g, const csc_options& opt) {
    csc_result res;
    res.graph = g.materialize();
    const std::size_t initial_conflicts = check_csc(subgraph::full(res.graph), 0).conflict_pairs;
    if (initial_conflicts == 0) {
        res.solved = true;
        return res;
    }

    // Beam search over insertion sequences: a single greedy pass can plateau
    // (the new signal may only become distinguishable after a follow-up
    // insertion), so we keep the `beam_width` best partial solutions.
    std::vector<csc_node> beam;
    beam.push_back(csc_node{res.graph, initial_conflicts, {}});
    csc_node best_overall = beam.front();

    for (std::size_t round = 0; round < opt.max_signals; ++round) {
        const std::string name = "csc" + std::to_string(round);
        std::vector<csc_node> fresh;
        for (const auto& node : beam) {
            const auto n_events = static_cast<uint16_t>(node.graph.events().size());
            for (uint16_t e1 = 0; e1 < n_events; ++e1) {
                for (uint16_t e2 = 0; e2 < n_events; ++e2) {
                    if (e1 == e2) continue;
                    auto candidate = insert_state_signal(node.graph, e1, e2, name);
                    if (!candidate) continue;
                    auto crep = check_csc(subgraph::full(*candidate), 0);
                    if (crep.conflict_pairs > node.conflicts) continue;
                    csc_node next;
                    next.conflicts = crep.conflict_pairs;
                    next.graph = std::move(*candidate);
                    next.anchors = node.anchors;
                    next.anchors.push_back(name + "+ < " + node.graph.event_name(e1) + ", " +
                                           name + "- < " + node.graph.event_name(e2));
                    fresh.push_back(std::move(next));
                }
            }
        }
        if (fresh.empty()) break;
        std::sort(fresh.begin(), fresh.end(), [](const csc_node& a, const csc_node& b) {
            if (a.conflicts != b.conflicts) return a.conflicts < b.conflicts;
            return a.graph.state_count() < b.graph.state_count();
        });
        if (fresh.size() > opt.beam_width) fresh.resize(opt.beam_width);
        if (fresh.front().conflicts < best_overall.conflicts ||
            (fresh.front().conflicts == best_overall.conflicts &&
             fresh.front().anchors.size() < best_overall.anchors.size()))
            best_overall = fresh.front();
        if (fresh.front().conflicts == 0) break;
        beam = std::move(fresh);
    }

    res.graph = best_overall.graph;
    res.anchors = best_overall.anchors;
    res.signals_inserted = best_overall.anchors.size();
    res.solved = best_overall.conflicts == 0;
    if (!res.solved)
        res.message = "CSC unresolved: " + std::to_string(best_overall.conflicts) +
                      " conflict pairs remain after " + std::to_string(opt.max_signals) +
                      " insertion rounds";
    return res;
}

}  // namespace asynth
