// Per-node memoised analyses for the incremental Fig. 9 exploration engine.
//
// The reference search re-derives everything (excitation regions, the CSC
// conflict count, every signal's minimised next-state cover) from scratch for
// every candidate reduction.  Almost all of that work is redundant: a
// FwdRed(a, b) removes arcs of one event and prunes a few states, so most ER
// components, most code groups and most signal covers are bit-for-bit
// identical to the parent's.  An analysis_cache captures exactly the parts a
// move can invalidate, at base-state granularity:
//
//  * excitation-region components per event, with the per-event state union
//    used to decide which events a given arc/state removal can disturb;
//  * the enabled-event row of every live state (one bit per event), which is
//    what both the CSC conflict count and the next-state functions read;
//  * live states grouped by binary code in first-encounter order -- the CSC
//    structure -- with a conflict-pair count per group so Delta(csc_pairs)
//    only touches groups containing removed/disturbed states;
//  * per-signal spec keys: an order-sensitive 128-bit hash of the ON/OFF
//    code sequence exactly as derive_nextstate() would emit it.  Equal keys
//    mean the heuristic minimiser would see the identical input, so the
//    cached literal count can be reused without re-minimising.
//
// Every cached quantity is *exact*: the incremental engine reproduces the
// reference engine's costs to the last bit (the corpus equivalence test in
// tests/test_explore.cpp pins this).  The only approximation anywhere is the
// use of 128-bit hashes as identities, whose collision probability over a
// search is negligible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "boolfn/cover.hpp"
#include "boolfn/incremental_cover.hpp"
#include "core/cost.hpp"
#include "sg/analysis.hpp"
#include "sg/state_graph.hpp"
#include "util/hash.hpp"

namespace asynth::explore {

/// Order-sensitive identity of one signal's next-state specification: the
/// chained hash of the ON and OFF code sequences in derive_nextstate() order.
struct sig_key {
    hash128 on, off;
    [[nodiscard]] bool operator==(const sig_key&) const noexcept = default;
};

/// Cached cost terms of one non-input signal.
struct signal_entry {
    sig_key key;                ///< spec identity at the node
    std::size_t literals = 0;   ///< minimised SOP literal count
    bool estimated = false;     ///< participates in the cost (non-input, has events)
};

/// Live states sharing one binary code, in ascending state order.  Groups are
/// kept in first-encounter order over ascending live states -- the exact
/// iteration order of derive_nextstate() and check_csc().
struct code_group {
    std::vector<uint32_t> states;     ///< ascending member state ids
    std::size_t conflict_pairs = 0;   ///< member pairs with differing non-input
                                      ///< enabled sets (the group's CSC term)
};

/// Immutable per-search context: base-graph lookups every node shares.
struct context {
    const state_graph* base = nullptr;
    cost_params params;
    std::size_t nevents = 0;
    std::size_t words = 0;                  ///< 64-bit words per enabled-event row
    std::vector<uint64_t> noninput_mask;    ///< row mask of non-input events
    std::vector<char> input_event;          ///< per event: signal is an input
    struct signal_events {
        int plus = -1;          ///< event id of sig+ (-1: absent)
        int minus = -1;         ///< event id of sig- (-1: absent)
        bool estimated = false; ///< non-input with at least one event
    };
    std::vector<signal_events> sig_events;  ///< per signal
    std::vector<uint64_t> code_hash;        ///< per state: mixed hash of its code
};

/// The memoised analyses attached to one frontier node.
struct analysis_cache {
    /// Enabled-event rows, `words` words per state, flat.  Rows of dead
    /// states are all-zero.
    std::vector<uint64_t> rows;
    /// Live arc count per event (condition 3 -- "no event disappears" -- is a
    /// counter decrement instead of a full live-arc sweep).
    std::vector<uint32_t> event_arcs;
    /// ER components per event, in excitation_regions() order.
    std::vector<std::vector<er_component>> er;
    /// Union of each event's component states (dirtiness test support).
    std::vector<dyn_bitset> er_union;
    /// CSC structure: code groups in first-encounter order + membership map.
    std::vector<code_group> groups;
    std::vector<uint32_t> group_of;  ///< per state: group index (live states only)
    std::size_t csc_pairs = 0;       ///< sum of per-group conflict pairs
    /// Per-signal cost terms (index: signal id).
    std::vector<signal_entry> signals;
    /// The node's section-7 cost; equals estimate_cost() on the subgraph.
    cost_breakdown cost;
};

[[nodiscard]] context make_context(const state_graph& base, const cost_params& params);

/// One memoised fact about a spec key.  Entries are monotone: a key starts
/// empty, may gain cheap `bounds` from a dominance pass, and is upgraded to
/// `literals` + `cubes` the first time the exact path minimises it.  Every
/// stored value is a pure function of the key, so lookup/upgrade order cannot
/// affect search results.
struct memo_entry {
    /// Exact heuristic literal count, once the key has been minimised.
    std::optional<std::size_t> literals;
    /// The minimised cover itself -- the warm-start parent for future
    /// restrict-and-repair bounds.  Non-null iff `literals` is set.
    std::shared_ptr<const cover> cubes;
    /// Cheap lower/upper bounds from boolfn/bound_literals, when a dominance
    /// pass bounded the key before (or instead of) minimising it.
    std::optional<literal_bounds> bounds;
};

/// Search-global memo: spec identity -> literal facts (exact counts, covers,
/// dominance bounds).  Thread-safe (the parallel expander scores moves
/// concurrently).
class literal_memo {
public:
    [[nodiscard]] std::optional<memo_entry> find(const sig_key& key) {
        std::lock_guard<std::mutex> lock(m_);
        auto it = map_.find(combine(key));
        if (it == map_.end()) return std::nullopt;
        return it->second;
    }
    void insert_exact(const sig_key& key, std::size_t literals,
                      std::shared_ptr<const cover> cubes) {
        std::lock_guard<std::mutex> lock(m_);
        auto& e = map_[combine(key)];
        e.literals = literals;
        e.cubes = std::move(cubes);
    }
    void insert_bounds(const sig_key& key, literal_bounds bounds) {
        std::lock_guard<std::mutex> lock(m_);
        map_[combine(key)].bounds = bounds;
    }

private:
    static hash128 combine(const sig_key& key) noexcept {
        hash128 k = key.on;
        hash128_combine(k, key.off.hi);
        hash128_combine(k, key.off.lo);
        return k;
    }
    std::unordered_map<hash128, memo_entry> map_;
    std::mutex m_;
};

/// Full (non-incremental) cache build: used for the search root and as the
/// oracle the derived caches are tested against.  @p memo, when non-null,
/// is consulted/seeded for the per-signal minimisations.
[[nodiscard]] analysis_cache build_cache(const context& ctx, const subgraph& g,
                                         literal_memo* memo = nullptr);

/// The spec key of an already-assembled ON/OFF specification: the identical
/// chained hash that detail::signal_key computes from the cached group
/// structure (pinned in tests/test_logic.cpp).  This is the bridge that lets
/// a consumer holding only a sop_spec -- the logic stage, whose
/// derive_nextstate() emits the same minterm lists in the same order -- look
/// up the search's literal_memo without an analysis_cache.
[[nodiscard]] sig_key key_of_spec(const sop_spec& spec);

// ---- row helpers (shared with move.cpp) ------------------------------------

inline bool row_bit(const uint64_t* row, std::size_t event) noexcept {
    return (row[event >> 6] >> (event & 63U)) & 1U;
}
inline void row_set(uint64_t* row, std::size_t event) noexcept {
    row[event >> 6] |= uint64_t{1} << (event & 63U);
}

/// f_x(s): the next-state function value of signal x at state s (paper
/// section 3), reading excitation from an enabled-event row.
inline bool nextstate_value(const context& ctx, uint32_t signal, uint32_t state,
                            const uint64_t* row) noexcept {
    const auto& ev = ctx.sig_events[signal];
    const bool value = ctx.base->states()[state].code.test(signal);
    const bool rising = ev.plus >= 0 && row_bit(row, static_cast<std::size_t>(ev.plus));
    const bool falling = ev.minus >= 0 && row_bit(row, static_cast<std::size_t>(ev.minus));
    return rising || (value && !falling);
}

// ---- internals shared by analysis_cache.cpp and move.cpp -------------------

namespace detail {

/// Row lookup over a base row array with a sparse override (the child rows of
/// the disturbed states during move scoring).  @p overrides is ascending.
struct row_view {
    const context* ctx = nullptr;
    const std::vector<uint64_t>* rows = nullptr;
    const std::vector<uint32_t>* overrides = nullptr;
    const std::vector<uint64_t>* override_rows = nullptr;

    [[nodiscard]] const uint64_t* operator()(uint32_t state) const noexcept {
        if (overrides) {
            auto it = std::lower_bound(overrides->begin(), overrides->end(), state);
            if (it != overrides->end() && *it == state)
                return override_rows->data() +
                       ctx->words * static_cast<std::size_t>(it - overrides->begin());
        }
        return rows->data() + ctx->words * state;
    }
};

/// The order-sensitive spec key of @p signal over @p ordered code groups
/// (members with a set bit in @p removed are skipped; @p removed may be null).
[[nodiscard]] sig_key signal_key(const context& ctx, uint32_t signal,
                                 const std::vector<const code_group*>& ordered,
                                 const dyn_bitset* removed, const row_view& rows);

/// Conflict pairs within one code group: member pairs whose non-input enabled
/// sets differ (members in @p removed skipped; may be null).
[[nodiscard]] std::size_t group_conflicts(const context& ctx, const std::vector<uint32_t>& members,
                                          const dyn_bitset* removed, const row_view& rows);

/// Live states grouped by code in first-encounter order (= ascending minimum
/// member, the derive_nextstate()/check_csc() iteration order).
void build_groups(const context& ctx, const subgraph& g, std::vector<code_group>& groups,
                  std::vector<uint32_t>& group_of);

/// Enabled-event rows of every live state.
[[nodiscard]] std::vector<uint64_t> build_rows(const context& ctx, const subgraph& g);

/// The ON/OFF spec of @p signal over @p ordered groups -- the identical
/// minterm lists, in the identical order, that derive_nextstate() would emit
/// for the corresponding subgraph, but assembled from the cached group
/// structure without re-hashing every state's code.
[[nodiscard]] sop_spec assemble_spec(const context& ctx, uint32_t signal,
                                     const std::vector<const code_group*>& ordered,
                                     const dyn_bitset* removed, const row_view& rows);

/// Minimised literal count of @p spec via minimize_heuristic(), memoised
/// under @p key when @p memo is non-null.
[[nodiscard]] std::size_t minimise_literals(const context& ctx, const sop_spec& spec,
                                            const sig_key& key, literal_memo* memo);

}  // namespace detail

}  // namespace asynth::explore
