#include "explore/engine.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <unordered_set>

#include "batch/pool.hpp"
#include "explore/move.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace asynth::explore {

namespace {

/// One frontier member: the subgraph plus its memoised analyses.
struct node {
    subgraph g;
    analysis_cache cache;
};

/// A candidate reduction as a lightweight descriptor: which frontier node it
/// expands and which ER component pair it reduces.  Nothing is materialised
/// until apply_move().
struct move_ref {
    uint32_t node = 0;
    const er_component* a = nullptr;
    const er_component* b = nullptr;
};

/// Runs body(0..n-1), on the search's persistent work-stealing pool when one
/// exists.  Each body writes only its own slot, so results are identical for
/// every job count.  @p min_parallel sets when a batch is worth waking the
/// pooled workers for: cheap ~10us tasks (bounds, applies) stay serial below
/// 16, while exact-minimisation batches (milliseconds per task) parallelise
/// from 2 tasks up.
template <typename Body>
void run_tasks(batch::work_stealing_pool* pool, std::size_t n, Body&& body,
               std::size_t min_parallel = 16) {
    if (!pool || n < min_parallel) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }
    pool->run(n, body);
}

/// Exact-scoring batches parallelise aggressively: one finish_score can run a
/// full heuristic minimisation, which dwarfs the pool wake-up cost.
constexpr std::size_t kParallelExact = 2;

/// Process-wide search counters, accumulated once per finished search.
/// @p refined counts the bounded-quality provisional beam members that were
/// exactly refined (0 outside quality::bounded).
void count_search(const search_result& r, std::size_t refined = 0) {
    auto& reg = obs::registry::global();
    static obs::counter& explored =
        reg.get_counter("asynth_explore_explored_total", "Unique candidate SGs scored");
    static obs::counter& pruned = reg.get_counter(
        "asynth_explore_pruned_total", "Candidates discarded on bounds without exact scoring");
    explored.add(r.explored);
    pruned.add(r.pruned);
    static obs::counter& refined_total = reg.get_counter(
        "asynth_explore_refined_total",
        "Bounded-quality provisional beam members refined by exact minimisation");
    refined_total.add(refined);
    if (r.quality == search_quality::bounded) {
        static obs::histogram& gap = reg.get_histogram(
            "asynth_explore_bound_gap", {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
            "Final bound gap reported by bounded-quality searches");
        gap.observe(r.bound_gap);
    }
}

}  // namespace

search_result reduce_concurrency_incremental(const subgraph& initial,
                                             const search_options& options) {
    // The delta validity checks assume the root is output-persistent (the
    // search keeps that invariant thereafter).  A hand-built SG that is not
    // falls back to the reference engine, whose full per-candidate
    // speed-independence recheck handles it -- the engines stay equivalent
    // on every input, not just well-formed ones.
    // The fallback ignores the quality dial: the reference engine is the
    // exact path, so the result is labelled exact with a zero gap -- an
    // exact answer under a non-exact request is always sound.
    if (!check_speed_independence(initial).output_persistent) {
        search_result res = reduce_concurrency(initial, options);
        count_search(res);
        return res;
    }

    search_options opt = options;
    opt.keep_concurrent = effective_keepconc(initial, options.keep_concurrent);
    opt.size_frontier = std::max<std::size_t>(1, opt.size_frontier);

    const state_graph& base = initial.base();
    const context ctx = make_context(base, opt.cost);
    // Heap-allocated so the result can hand the memo (exact covers per spec
    // key) onward: the pipeline's logic stage warm-starts its exact
    // minimisation from the winning candidate's covers (see pipeline.cpp).
    auto memo_ptr = std::make_shared<literal_memo>();
    literal_memo& memo = *memo_ptr;

    // One persistent pool per search (ROADMAP item): the per-level phases
    // dispatch several small batches each, and constructing a fresh pool per
    // batch spent more time spawning threads than scoring moves.
    std::optional<batch::work_stealing_pool> pool_storage;
    if (opt.jobs > 1) pool_storage.emplace(opt.jobs);
    batch::work_stealing_pool* pool = pool_storage ? &*pool_storage : nullptr;

    search_result res;
    res.best = initial;
    res.explored = 1;
    res.memo = memo_ptr;
    res.quality = opt.quality;
    std::size_t refined = 0;  // bounded-quality exact refinements (obs only)
    const auto search_start = std::chrono::steady_clock::now();

    std::vector<node> frontier(1);
    frontier[0].g = initial;
    frontier[0].cache = build_cache(ctx, initial, &memo);
    res.best_cost = frontier[0].cache.cost;

    std::unordered_set<hash128> transposition{initial.signature128()};

    for (std::size_t level = 0; level < opt.max_levels && !frontier.empty(); ++level) {
        // ---- anytime deadline, checked between levels only (outside every
        // parallel region, so jobs-independence of the admission path is
        // untouched).  The trivial bound best_cost - 0 is sound: no
        // unexplored configuration can cost less than the cost floor 0.
        if (opt.quality == search_quality::anytime && opt.deadline_ms > 0 &&
            std::chrono::steady_clock::now() - search_start >=
                std::chrono::milliseconds(opt.deadline_ms)) {
            res.deadline_hit = true;
            res.bound_gap = res.best_cost.value;
            break;
        }
        obs::span lsp("explore.level", "explore");
        lsp.arg("level", static_cast<std::uint64_t>(level));
        // ---- enumerate candidate moves in the reference engine's order:
        // frontier order, then ER components ascending by event.
        std::vector<move_ref> moves;
        for (uint32_t ni = 0; ni < frontier.size(); ++ni) {
            const auto& cache = frontier[ni].cache;
            std::vector<const er_component*> comps;
            for (std::size_t e = 0; e < ctx.nevents; ++e)
                for (const auto& comp : cache.er[e]) comps.push_back(&comp);
            for (std::size_t i = 0; i < comps.size(); ++i) {
                // e2 (the delayed event) must not be an input (Fig. 9).
                if (ctx.input_event[comps[i]->event]) continue;
                for (std::size_t j = 0; j < comps.size(); ++j) {
                    if (i == j || comps[i]->event == comps[j]->event) continue;
                    if (!comps[i]->states.intersects(comps[j]->states)) continue;
                    if (is_kept_pair(opt.keep_concurrent, base.events()[comps[i]->event],
                                     base.events()[comps[j]->event]))
                        continue;
                    moves.push_back(move_ref{ni, comps[i], comps[j]});
                }
            }
        }

        // ---- phase 1: apply + validity-check every move (parallel).
        std::vector<std::optional<applied_move>> applied(moves.size());
        run_tasks(pool, moves.size(), [&](std::size_t i) {
            const move_ref& m = moves[i];
            applied[i] = apply_move(ctx, frontier[m.node].g, frontier[m.node].cache, *m.a, *m.b);
            if (applied[i] && !opt.keep_concurrent.empty() &&
                !kept_pairs_alive(applied[i]->child, opt.keep_concurrent))
                applied[i].reset();
        });

        // ---- phase 2: transposition dedupe, serially in enumeration order
        // (the reference engine's `explored` semantics, with 128-bit keys).
        std::vector<uint32_t> unique;
        for (std::size_t i = 0; i < applied.size(); ++i) {
            if (!applied[i]) continue;
            if (transposition.insert(applied[i]->sig).second)
                unique.push_back(static_cast<uint32_t>(i));
            else
                applied[i].reset();
        }
        lsp.arg("moves", static_cast<std::uint64_t>(moves.size()));
        lsp.arg("unique", static_cast<std::uint64_t>(unique.size()));
        if (unique.empty()) break;

        // ---- phase 3: delta-score the survivors of dedupe (parallel).
        // `admitted` lists the candidates holding an exact score afterwards;
        // with the exact minimizer that is everyone, with the incremental
        // minimizer the dominance filter discards candidates that provably
        // cannot enter the beam without ever minimising them.
        std::vector<move_score> scores(unique.size());
        std::vector<uint32_t> admitted;
        // Smallest optimistic cost among this level's never-refined
        // candidates (bounded quality only): the gap accounting below
        // measures the selection against it.
        std::optional<double> min_pruned_lo;
        const bool bounded = opt.quality == search_quality::bounded;
        if (!bounded && opt.minimizer == minimizer_mode::exact) {
            run_tasks(pool, unique.size(), [&](std::size_t k) {
                const move_ref& m = moves[unique[k]];
                scores[k] = score_move(ctx, frontier[m.node].g, frontier[m.node].cache,
                                       *applied[unique[k]], memo);
            });
            admitted.resize(unique.size());
            std::iota(admitted.begin(), admitted.end(), 0u);
        } else {
            // ---- phase 3a: bound every candidate (parallel, cheap).
            std::vector<move_eval> evals(unique.size());
            run_tasks(pool, unique.size(), [&](std::size_t k) {
                const move_ref& m = moves[unique[k]];
                evals[k] = bound_move(ctx, frontier[m.node].g, frontier[m.node].cache,
                                      *applied[unique[k]], memo);
            });

            // ---- phase 3b: exactly score the beam-width most promising
            // candidates to establish the admission cost.  The dominance
            // filter seeds by the *upper* bound (a guaranteed-achievable
            // cost makes the tightest threshold); bounded quality seeds by
            // the *lower* bound -- the provisional beam the mode admits on.
            // Seeding only affects how tight the initial threshold is, never
            // which candidates the beam finally selects.
            std::vector<uint32_t> by_hi(unique.size());
            std::iota(by_hi.begin(), by_hi.end(), 0u);
            std::stable_sort(by_hi.begin(), by_hi.end(), [&](uint32_t x, uint32_t y) {
                const double vx = bounded ? evals[x].value_lo : evals[x].value_hi;
                const double vy = bounded ? evals[y].value_lo : evals[y].value_hi;
                if (vx != vy) return vx < vy;
                return applied[unique[x]]->sig < applied[unique[y]]->sig;
            });
            const std::size_t nseed = std::min(by_hi.size(), opt.size_frontier);
            run_tasks(
                pool, nseed,
                [&](std::size_t i) {
                    const uint32_t k = by_hi[i];
                    scores[k] = finish_score(ctx, frontier[moves[unique[k]].node].cache,
                                             *applied[unique[k]], std::move(evals[k]), memo);
                },
                kParallelExact);
            admitted.assign(by_hi.begin(), by_hi.begin() + static_cast<std::ptrdiff_t>(nseed));

            // ---- phase 3c: lazy refinement to the no-displacement fixpoint
            // (the dominance prune; bounded quality runs the identical loop
            // from its lower-bound seed).  A candidate whose optimistic
            // cost is strictly worse than `size_frontier` exact scores cannot
            // be among the `size_frontier` best (ties keep their signature
            // chance, so only strict inequality prunes).  The remaining
            // candidates are visited in ascending optimistic cost and scored
            // in chunks; each chunk tightens the admission cost (the
            // size_frontier-th smallest exact value so far), so the first
            // candidate above it ends the level -- everything after is
            // provably out (the list is sorted by the very bound we prune
            // on).  The chunk size is a constant, but with jobs > 1 the
            // exactly-scored set (and so `res.pruned`) can still vary
            // run-to-run: sibling moves race benignly to bound a shared key
            // from different warm covers, and the last writer's upper bound
            // seeds the sort.  The *selection* never varies -- pruning only
            // ever consults sound lower bounds against exact scores.
            std::vector<uint32_t> rest(by_hi.begin() + static_cast<std::ptrdiff_t>(nseed),
                                       by_hi.end());
            std::stable_sort(rest.begin(), rest.end(), [&](uint32_t x, uint32_t y) {
                if (evals[x].value_lo != evals[y].value_lo)
                    return evals[x].value_lo < evals[y].value_lo;
                return applied[unique[x]]->sig < applied[unique[y]]->sig;
            });
            std::vector<double> kbest;  // ascending, capped at size_frontier
            for (uint32_t k : admitted) kbest.push_back(scores[k].cost.value);
            std::sort(kbest.begin(), kbest.end());
            constexpr std::size_t chunk_cap = 16;
            std::vector<uint32_t> chunk;
            std::size_t i = 0;
            while (i < rest.size() && evals[rest[i]].value_lo <= kbest.back()) {
                chunk.clear();
                while (i < rest.size() && chunk.size() < chunk_cap &&
                       evals[rest[i]].value_lo <= kbest.back())
                    chunk.push_back(rest[i++]);
                run_tasks(
                    pool, chunk.size(),
                    [&](std::size_t j) {
                        const uint32_t k = chunk[j];
                        scores[k] = finish_score(ctx, frontier[moves[unique[k]].node].cache,
                                                 *applied[unique[k]], std::move(evals[k]), memo);
                    },
                    kParallelExact);
                for (uint32_t k : chunk) {
                    const double v = scores[k].cost.value;
                    if (v < kbest.back()) {
                        kbest.insert(std::lower_bound(kbest.begin(), kbest.end(), v), v);
                        kbest.pop_back();
                    }
                }
                admitted.insert(admitted.end(), chunk.begin(), chunk.end());
            }
            if (bounded) {
                // Everything left in `rest` was pruned on its bound without
                // refinement; the cheapest such bound feeds the gap
                // accounting after selection (at the fixpoint it exceeds the
                // admission cost, so the achieved gap is 0 -- unless a bound
                // was unsound, which the gap would then report rather than
                // silently absorb).
                refined += admitted.size();
                if (i < rest.size()) min_pruned_lo = evals[rest[i]].value_lo;
            }
            std::sort(admitted.begin(), admitted.end());
            res.pruned += unique.size() - admitted.size();
        }
        res.explored += unique.size();
        lsp.arg("admitted", static_cast<std::uint64_t>(admitted.size()));

        // ---- phase 4: deterministic beam selection -- cost, then signature.
        // Restricting the sort to the admitted set is exact in every mode:
        // every pruned candidate was proved strictly worse than
        // `size_frontier` admitted ones, so the selected prefix is identical
        // to the full sort's.  Bounded quality additionally prices its
        // pruning below -- the gap is 0 whenever the bounds were sound.
        std::vector<uint32_t> order = admitted;
        std::stable_sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
            if (scores[x].cost.value != scores[y].cost.value)
                return scores[x].cost.value < scores[y].cost.value;
            return applied[unique[x]]->sig < applied[unique[y]]->sig;
        });
        if (order.size() > opt.size_frontier) order.resize(opt.size_frontier);

        res.levels = level + 1;
        res.level_best.push_back(scores[order[0]].cost.value);
        if (scores[order[0]].cost.value < res.best_cost.value) {
            res.best = applied[unique[order[0]]]->child;
            res.best_cost = scores[order[0]].cost;
        }
        if (bounded) {
            // The cheapest never-refined candidate had exact cost >=
            // min_pruned_lo (the lower bound is sound), so the level's price
            // is at most level_best - min_pruned_lo when that is positive.
            // At the refinement fixpoint min_pruned_lo exceeds the admission
            // cost and the achieved gap is exactly 0; a nonzero entry here
            // means a bound under-estimated -- reported, never hidden.
            const double gap =
                min_pruned_lo
                    ? std::max(0.0, scores[order[0]].cost.value - *min_pruned_lo)
                    : 0.0;
            res.level_gap.push_back(gap);
            res.bound_gap += gap;
        }

        // ---- phase 5: survivors derive their caches and become the frontier.
        // Beam-width batches of ms-scale derivations: parallel from 2 up.
        std::vector<node> next(order.size());
        run_tasks(
            pool, order.size(),
            [&](std::size_t k) {
                const move_ref& m = moves[unique[order[k]]];
                const applied_move& am = *applied[unique[order[k]]];
                next[k].g = am.child;
                next[k].cache = derive_cache(ctx, frontier[m.node].g, frontier[m.node].cache, am,
                                             scores[order[k]]);
            },
            kParallelExact);
        frontier = std::move(next);
    }
    count_search(res, refined);
    return res;
}

}  // namespace asynth::explore
