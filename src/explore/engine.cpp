#include "explore/engine.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "batch/pool.hpp"
#include "explore/move.hpp"

namespace asynth::explore {

namespace {

/// One frontier member: the subgraph plus its memoised analyses.
struct node {
    subgraph g;
    analysis_cache cache;
};

/// A candidate reduction as a lightweight descriptor: which frontier node it
/// expands and which ER component pair it reduces.  Nothing is materialised
/// until apply_move().
struct move_ref {
    uint32_t node = 0;
    const er_component* a = nullptr;
    const er_component* b = nullptr;
};

/// Runs body(0..n-1), on the work-stealing pool when jobs > 1.  Each body
/// writes only its own slot, so results are identical for every job count.
/// Tiny task batches (e.g. the <= size_frontier survivor derivations) stay
/// serial: spawning a thread costs more than a handful of move scores.
template <typename Body>
void run_tasks(std::size_t jobs, std::size_t n, Body&& body) {
    if (jobs <= 1 || n < 16) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }
    batch::work_stealing_pool pool(std::min(jobs, n), n);
    pool.run(body);
}

}  // namespace

search_result reduce_concurrency_incremental(const subgraph& initial,
                                             const search_options& options) {
    // The delta validity checks assume the root is output-persistent (the
    // search keeps that invariant thereafter).  A hand-built SG that is not
    // falls back to the reference engine, whose full per-candidate
    // speed-independence recheck handles it -- the engines stay equivalent
    // on every input, not just well-formed ones.
    if (!check_speed_independence(initial).output_persistent)
        return reduce_concurrency(initial, options);

    search_options opt = options;
    opt.keep_concurrent = effective_keepconc(initial, options.keep_concurrent);
    opt.size_frontier = std::max<std::size_t>(1, opt.size_frontier);

    const state_graph& base = initial.base();
    const context ctx = make_context(base, opt.cost);
    literal_memo memo;

    search_result res;
    res.best = initial;
    res.explored = 1;

    std::vector<node> frontier(1);
    frontier[0].g = initial;
    frontier[0].cache = build_cache(ctx, initial, &memo);
    res.best_cost = frontier[0].cache.cost;

    std::unordered_set<hash128> transposition{initial.signature128()};

    for (std::size_t level = 0; level < opt.max_levels && !frontier.empty(); ++level) {
        // ---- enumerate candidate moves in the reference engine's order:
        // frontier order, then ER components ascending by event.
        std::vector<move_ref> moves;
        for (uint32_t ni = 0; ni < frontier.size(); ++ni) {
            const auto& cache = frontier[ni].cache;
            std::vector<const er_component*> comps;
            for (std::size_t e = 0; e < ctx.nevents; ++e)
                for (const auto& comp : cache.er[e]) comps.push_back(&comp);
            for (std::size_t i = 0; i < comps.size(); ++i) {
                // e2 (the delayed event) must not be an input (Fig. 9).
                if (ctx.input_event[comps[i]->event]) continue;
                for (std::size_t j = 0; j < comps.size(); ++j) {
                    if (i == j || comps[i]->event == comps[j]->event) continue;
                    if (!comps[i]->states.intersects(comps[j]->states)) continue;
                    if (is_kept_pair(opt.keep_concurrent, base.events()[comps[i]->event],
                                     base.events()[comps[j]->event]))
                        continue;
                    moves.push_back(move_ref{ni, comps[i], comps[j]});
                }
            }
        }

        // ---- phase 1: apply + validity-check every move (parallel).
        std::vector<std::optional<applied_move>> applied(moves.size());
        run_tasks(opt.jobs, moves.size(), [&](std::size_t i) {
            const move_ref& m = moves[i];
            applied[i] = apply_move(ctx, frontier[m.node].g, frontier[m.node].cache, *m.a, *m.b);
            if (applied[i] && !opt.keep_concurrent.empty() &&
                !kept_pairs_alive(applied[i]->child, opt.keep_concurrent))
                applied[i].reset();
        });

        // ---- phase 2: transposition dedupe, serially in enumeration order
        // (the reference engine's `explored` semantics, with 128-bit keys).
        std::vector<uint32_t> unique;
        for (std::size_t i = 0; i < applied.size(); ++i) {
            if (!applied[i]) continue;
            if (transposition.insert(applied[i]->sig).second)
                unique.push_back(static_cast<uint32_t>(i));
            else
                applied[i].reset();
        }
        if (unique.empty()) break;

        // ---- phase 3: delta-score the survivors of dedupe (parallel).
        std::vector<move_score> scores(unique.size());
        run_tasks(opt.jobs, unique.size(), [&](std::size_t k) {
            const move_ref& m = moves[unique[k]];
            scores[k] = score_move(ctx, frontier[m.node].g, frontier[m.node].cache,
                                   *applied[unique[k]], memo);
        });
        res.explored += unique.size();

        // ---- phase 4: deterministic beam selection -- cost, then signature.
        std::vector<uint32_t> order(unique.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
            if (scores[x].cost.value != scores[y].cost.value)
                return scores[x].cost.value < scores[y].cost.value;
            return applied[unique[x]]->sig < applied[unique[y]]->sig;
        });
        if (order.size() > opt.size_frontier) order.resize(opt.size_frontier);

        res.levels = level + 1;
        res.level_best.push_back(scores[order[0]].cost.value);
        if (scores[order[0]].cost.value < res.best_cost.value) {
            res.best = applied[unique[order[0]]]->child;
            res.best_cost = scores[order[0]].cost;
        }

        // ---- phase 5: survivors derive their caches and become the frontier.
        std::vector<node> next(order.size());
        run_tasks(opt.jobs, order.size(), [&](std::size_t k) {
            const move_ref& m = moves[unique[order[k]]];
            const applied_move& am = *applied[unique[order[k]]];
            next[k].g = am.child;
            next[k].cache = derive_cache(ctx, frontier[m.node].g, frontier[m.node].cache, am,
                                         scores[order[k]]);
        });
        frontier = std::move(next);
    }
    return res;
}

}  // namespace asynth::explore
