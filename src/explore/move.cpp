#include "explore/move.hpp"

#include <algorithm>
#include <bit>

#include "core/reduce.hpp"

namespace asynth::explore {

std::optional<applied_move> apply_move(const context& ctx, const subgraph& g,
                                       const analysis_cache& cache, const er_component& a,
                                       const er_component& b) {
    const auto& base = g.base();

    dyn_bitset intersection = a.states;
    intersection &= b.states;
    if (intersection.none()) return std::nullopt;  // not concurrent: no-op

    // Removal zone, exactly as forward_reduction(): ER(b) plus every state of
    // this excitation episode from which the common states are reachable
    // without leaving ER(a).
    dyn_bitset zone = backward_reachable(g, intersection, &a.states);
    zone |= b.states;
    zone &= a.states;

    applied_move am;
    am.child = g;
    am.delayed_event = a.event;
    std::size_t removed_count = 0;
    for (auto sv : zone.ones()) {
        for (uint32_t arc : base.out_arcs(static_cast<uint32_t>(sv))) {
            if (!am.child.arc_live(arc)) continue;
            if (base.arcs()[arc].event == a.event) {
                am.child.kill_arc(arc);
                ++removed_count;
            }
        }
    }
    if (removed_count == 0) return std::nullopt;
    am.child.prune_unreachable();

    am.removed_arcs = g.live_arcs();
    am.removed_arcs.and_not(am.child.live_arcs());
    am.removed_states = g.live_states();
    am.removed_states.and_not(am.child.live_states());

    // Condition 3 -- no event disappears -- as a counter decrement, and the
    // disturbed set D (live states that lost an out-arc) in one sweep.
    std::vector<uint32_t> removed_per_event(ctx.nevents, 0);
    for (auto av : am.removed_arcs.ones()) {
        const auto& arc = base.arcs()[av];
        ++removed_per_event[arc.event];
        if (am.child.state_live(arc.src)) am.disturbed.push_back(arc.src);
    }
    for (std::size_t e = 0; e < ctx.nevents; ++e)
        if (removed_per_event[e] != 0 && cache.event_arcs[e] == removed_per_event[e])
            return std::nullopt;
    std::sort(am.disturbed.begin(), am.disturbed.end());
    am.disturbed.erase(std::unique(am.disturbed.begin(), am.disturbed.end()),
                       am.disturbed.end());

    // Child enabled rows of the disturbed states.
    am.disturbed_rows.assign(am.disturbed.size() * ctx.words, 0);
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        uint64_t* row = am.disturbed_rows.data() + k * ctx.words;
        for (uint32_t arc : base.out_arcs(am.disturbed[k]))
            if (am.child.arc_live(arc)) row_set(row, base.arcs()[arc].event);
    }

    // Condition 4 -- no new deadlock.  Only a state that lost an out-arc can
    // become one, and every disturbed state had an out-arc before the move.
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        const uint64_t* row = am.disturbed_rows.data() + k * ctx.words;
        bool has_out = false;
        for (std::size_t w = 0; w < ctx.words; ++w)
            if (row[w] != 0) {
                has_out = true;
                break;
            }
        if (!has_out) return std::nullopt;
    }

    // Condition 1 -- output persistency -- as a delta.  The parent is
    // output-persistent (search invariant), and arc removal can only create a
    // new violation (s, fire, e) where e was enabled at fire's destination in
    // the parent and no longer is: that destination lost an out-arc, so it is
    // in D.  Check every predecessor of every disturbed state against the
    // events the state lost.
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        const uint32_t d = am.disturbed[k];
        const uint64_t* parent_row = cache.rows.data() + ctx.words * d;
        const uint64_t* child_row = am.disturbed_rows.data() + k * ctx.words;
        for (uint32_t ain : base.in_arcs(d)) {
            if (!am.child.arc_live(ain)) continue;
            const uint32_t s = base.arcs()[ain].src;
            const uint16_t f = base.arcs()[ain].event;
            const uint64_t* s_row = child_rows(s);
            for (std::size_t w = 0; w < ctx.words; ++w) {
                uint64_t lost = parent_row[w] & ~child_row[w];
                while (lost != 0) {
                    const auto e =
                        static_cast<uint16_t>(w * 64 + std::countr_zero(lost));
                    lost &= lost - 1;
                    if (e == f) continue;
                    if (!row_bit(s_row, e)) continue;  // e not enabled at s
                    if (ctx.input_event[e] && ctx.input_event[f]) continue;
                    return std::nullopt;  // firing f at s disables e
                }
            }
        }
    }

    am.sig = am.child.signature128();
    return am;
}

move_score score_move(const context& ctx, const subgraph& parent, const analysis_cache& cache,
                      const applied_move& am, literal_memo& memo) {
    (void)parent;
    move_score out;
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};

    // ---- Delta(csc_pairs): only code groups containing a removed or
    // disturbed state can change their conflict-pair count.
    std::vector<uint32_t> affected;
    for (auto sv : am.removed_states.ones()) affected.push_back(cache.group_of[sv]);
    for (uint32_t d : am.disturbed) affected.push_back(cache.group_of[d]);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    std::size_t csc = cache.csc_pairs;
    for (uint32_t gi : affected) {
        csc -= cache.groups[gi].conflict_pairs;
        csc += detail::group_conflicts(ctx, cache.groups[gi].states, &am.removed_states,
                                       child_rows);
    }

    // ---- Delta(literals): recompute a signal's spec key only when the move
    // can have changed it, re-minimise only when the key actually differs.
    std::size_t literals = cache.cost.literals;
    auto update_signal = [&](uint32_t x, const std::vector<const code_group*>& ordered) {
        const sig_key key = detail::signal_key(ctx, x, ordered, &am.removed_states, child_rows);
        if (key == cache.signals[x].key) return;  // identical spec: reuse count
        std::size_t lits;
        if (auto hit = memo.find(key)) {
            lits = *hit;
        } else {
            lits = detail::minimise_literals(
                ctx, detail::assemble_spec(ctx, x, ordered, &am.removed_states, child_rows), key,
                &memo);
        }
        literals -= cache.signals[x].literals;
        literals += lits;
        out.updates.push_back({x, key, lits});
    };

    if (am.removed_states.none()) {
        // No pruning: the code groups are unchanged and only the delayed
        // event's signal changed its excitation anywhere.
        std::vector<const code_group*> ordered;
        ordered.reserve(cache.groups.size());
        for (const auto& grp : cache.groups) ordered.push_back(&grp);
        const auto sig =
            static_cast<uint32_t>(ctx.base->events()[am.delayed_event].signal);
        update_signal(sig, ordered);
    } else {
        // Pruning may drop codes (larger DC-set) anywhere and can reorder the
        // first-encounter sequence; rebuild the child's group order (ascending
        // minimum surviving member) and re-key every estimated signal.
        std::vector<std::pair<uint32_t, const code_group*>> order;
        order.reserve(cache.groups.size());
        for (const auto& grp : cache.groups) {
            for (uint32_t s : grp.states) {
                if (!am.removed_states.test(s)) {
                    order.emplace_back(s, &grp);
                    break;
                }
            }
        }
        std::sort(order.begin(), order.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        std::vector<const code_group*> ordered;
        ordered.reserve(order.size());
        for (const auto& [min_state, grp] : order) ordered.push_back(grp);
        for (uint32_t x = 0; x < ctx.sig_events.size(); ++x)
            if (ctx.sig_events[x].estimated) update_signal(x, ordered);
    }

    out.cost.states = am.child.live_state_count();
    out.cost.csc_pairs = csc;
    out.cost.literals = literals;
    out.cost.value = ctx.params.w * static_cast<double>(literals) +
                     (1.0 - ctx.params.w) * ctx.params.csc_weight * static_cast<double>(csc);
    return out;
}

analysis_cache derive_cache(const context& ctx, const subgraph& parent,
                            const analysis_cache& parent_cache, const applied_move& am,
                            const move_score& score) {
    (void)parent;
    const auto& base = am.child.base();
    analysis_cache c;

    // Rows: copy, zero the pruned states, splice in the disturbed rows.
    c.rows = parent_cache.rows;
    for (auto sv : am.removed_states.ones())
        std::fill_n(c.rows.begin() + static_cast<std::ptrdiff_t>(ctx.words * sv), ctx.words, 0);
    for (std::size_t k = 0; k < am.disturbed.size(); ++k)
        std::copy_n(am.disturbed_rows.begin() + static_cast<std::ptrdiff_t>(k * ctx.words),
                    ctx.words,
                    c.rows.begin() + static_cast<std::ptrdiff_t>(ctx.words * am.disturbed[k]));

    c.event_arcs = parent_cache.event_arcs;
    for (auto av : am.removed_arcs.ones()) --c.event_arcs[base.arcs()[av].event];

    // ER components: an event is dirty when it lost arcs, lost member states,
    // or a removed arc connected two states of its excitation set (the
    // component partition may split); everything else is copied verbatim.
    std::vector<char> dirty(ctx.nevents, 0);
    for (auto av : am.removed_arcs.ones()) dirty[base.arcs()[av].event] = 1;
    for (std::size_t e = 0; e < ctx.nevents; ++e)
        if (!dirty[e] && parent_cache.er_union[e].intersects(am.removed_states)) dirty[e] = 1;
    for (auto av : am.removed_arcs.ones()) {
        const auto& arc = base.arcs()[av];
        for (std::size_t e = 0; e < ctx.nevents; ++e)
            if (!dirty[e] && parent_cache.er_union[e].test(arc.src) &&
                parent_cache.er_union[e].test(arc.dst))
                dirty[e] = 1;
    }
    c.er.resize(ctx.nevents);
    c.er_union.resize(ctx.nevents);
    for (std::size_t e = 0; e < ctx.nevents; ++e) {
        if (!dirty[e]) {
            c.er[e] = parent_cache.er[e];
            c.er_union[e] = parent_cache.er_union[e];
            continue;
        }
        c.er[e] = excitation_regions(am.child, static_cast<uint16_t>(e));
        dyn_bitset u(base.state_count());
        for (const auto& comp : c.er[e]) u |= comp.states;
        c.er_union[e] = std::move(u);
    }

    // CSC structure: rebuilt (one linear pass; the scorer already produced
    // the total, which the rebuild must reproduce).
    detail::build_groups(ctx, am.child, c.groups, c.group_of);
    const detail::row_view rows{&ctx, &c.rows, nullptr, nullptr};
    c.csc_pairs = 0;
    for (auto& grp : c.groups) {
        grp.conflict_pairs = detail::group_conflicts(ctx, grp.states, nullptr, rows);
        c.csc_pairs += grp.conflict_pairs;
    }

    c.signals = parent_cache.signals;
    for (const auto& u : score.updates) {
        c.signals[u.signal].key = u.key;
        c.signals[u.signal].literals = u.literals;
    }

    c.cost = score.cost;
    return c;
}

}  // namespace asynth::explore
