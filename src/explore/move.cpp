#include "explore/move.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "core/reduce.hpp"
#include "obs/metrics.hpp"

namespace asynth::explore {

namespace {

/// Exact-literal memo hits across all scoring paths -- the lazy-minimisation
/// effectiveness signal (docs/OBSERVABILITY.md).  One relaxed add per hit.
obs::counter& memo_hits() {
    static obs::counter& c = obs::registry::global().get_counter(
        "asynth_explore_memo_hits_total", "Exact-literal memo hits during move scoring");
    return c;
}

}  // namespace

std::optional<applied_move> apply_move(const context& ctx, const subgraph& g,
                                       const analysis_cache& cache, const er_component& a,
                                       const er_component& b) {
    const auto& base = g.base();

    dyn_bitset intersection = a.states;
    intersection &= b.states;
    if (intersection.none()) return std::nullopt;  // not concurrent: no-op

    // Removal zone, exactly as forward_reduction(): ER(b) plus every state of
    // this excitation episode from which the common states are reachable
    // without leaving ER(a).
    dyn_bitset zone = backward_reachable(g, intersection, &a.states);
    zone |= b.states;
    zone &= a.states;

    applied_move am;
    am.child = g;
    am.delayed_event = a.event;
    std::size_t removed_count = 0;
    for (auto sv : zone.ones()) {
        for (uint32_t arc : base.out_arcs(static_cast<uint32_t>(sv))) {
            if (!am.child.arc_live(arc)) continue;
            if (base.arcs()[arc].event == a.event) {
                am.child.kill_arc(arc);
                ++removed_count;
            }
        }
    }
    if (removed_count == 0) return std::nullopt;
    am.child.prune_unreachable();

    am.removed_arcs = g.live_arcs();
    am.removed_arcs.and_not(am.child.live_arcs());
    am.removed_states = g.live_states();
    am.removed_states.and_not(am.child.live_states());

    // Condition 3 -- no event disappears -- as a counter decrement, and the
    // disturbed set D (live states that lost an out-arc) in one sweep.
    std::vector<uint32_t> removed_per_event(ctx.nevents, 0);
    for (auto av : am.removed_arcs.ones()) {
        const auto& arc = base.arcs()[av];
        ++removed_per_event[arc.event];
        if (am.child.state_live(arc.src)) am.disturbed.push_back(arc.src);
    }
    for (std::size_t e = 0; e < ctx.nevents; ++e)
        if (removed_per_event[e] != 0 && cache.event_arcs[e] == removed_per_event[e])
            return std::nullopt;
    std::sort(am.disturbed.begin(), am.disturbed.end());
    am.disturbed.erase(std::unique(am.disturbed.begin(), am.disturbed.end()),
                       am.disturbed.end());

    // Child enabled rows of the disturbed states.
    am.disturbed_rows.assign(am.disturbed.size() * ctx.words, 0);
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        uint64_t* row = am.disturbed_rows.data() + k * ctx.words;
        for (uint32_t arc : base.out_arcs(am.disturbed[k]))
            if (am.child.arc_live(arc)) row_set(row, base.arcs()[arc].event);
    }

    // Condition 4 -- no new deadlock.  Only a state that lost an out-arc can
    // become one, and every disturbed state had an out-arc before the move.
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        const uint64_t* row = am.disturbed_rows.data() + k * ctx.words;
        bool has_out = false;
        for (std::size_t w = 0; w < ctx.words; ++w)
            if (row[w] != 0) {
                has_out = true;
                break;
            }
        if (!has_out) return std::nullopt;
    }

    // Condition 1 -- output persistency -- as a delta.  The parent is
    // output-persistent (search invariant), and arc removal can only create a
    // new violation (s, fire, e) where e was enabled at fire's destination in
    // the parent and no longer is: that destination lost an out-arc, so it is
    // in D.  Check every predecessor of every disturbed state against the
    // events the state lost.
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};
    for (std::size_t k = 0; k < am.disturbed.size(); ++k) {
        const uint32_t d = am.disturbed[k];
        const uint64_t* parent_row = cache.rows.data() + ctx.words * d;
        const uint64_t* child_row = am.disturbed_rows.data() + k * ctx.words;
        for (uint32_t ain : base.in_arcs(d)) {
            if (!am.child.arc_live(ain)) continue;
            const uint32_t s = base.arcs()[ain].src;
            const uint16_t f = base.arcs()[ain].event;
            const uint64_t* s_row = child_rows(s);
            for (std::size_t w = 0; w < ctx.words; ++w) {
                uint64_t lost = parent_row[w] & ~child_row[w];
                while (lost != 0) {
                    const auto e =
                        static_cast<uint16_t>(w * 64 + std::countr_zero(lost));
                    lost &= lost - 1;
                    if (e == f) continue;
                    if (!row_bit(s_row, e)) continue;  // e not enabled at s
                    if (ctx.input_event[e] && ctx.input_event[f]) continue;
                    return std::nullopt;  // firing f at s disables e
                }
            }
        }
    }

    am.sig = am.child.signature128();
    return am;
}

namespace {

/// Delta(csc_pairs): only code groups containing a removed or disturbed
/// state can change their conflict-pair count.
std::size_t delta_csc_pairs(const context& ctx, const analysis_cache& cache,
                            const applied_move& am, const detail::row_view& child_rows) {
    std::vector<uint32_t> affected;
    for (auto sv : am.removed_states.ones()) affected.push_back(cache.group_of[sv]);
    for (uint32_t d : am.disturbed) affected.push_back(cache.group_of[d]);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    std::size_t csc = cache.csc_pairs;
    for (uint32_t gi : affected) {
        csc -= cache.groups[gi].conflict_pairs;
        csc += detail::group_conflicts(ctx, cache.groups[gi].states, &am.removed_states,
                                       child_rows);
    }
    return csc;
}

/// The child's code-group order (ascending minimum surviving member -- the
/// derive_nextstate()/check_csc() first-encounter order).  Deterministic in
/// (cache, am), so the bounder and the finisher rebuild the identical order.
std::vector<const code_group*> child_group_order(const analysis_cache& cache,
                                                 const applied_move& am) {
    std::vector<const code_group*> ordered;
    if (am.removed_states.none()) {
        // No pruning: the code groups are unchanged.
        ordered.reserve(cache.groups.size());
        for (const auto& grp : cache.groups) ordered.push_back(&grp);
        return ordered;
    }
    // Pruning may drop codes (larger DC-set) anywhere and can reorder the
    // first-encounter sequence; rebuild it from the surviving members.
    std::vector<std::pair<uint32_t, const code_group*>> order;
    order.reserve(cache.groups.size());
    for (const auto& grp : cache.groups) {
        for (uint32_t s : grp.states) {
            if (!am.removed_states.test(s)) {
                order.emplace_back(s, &grp);
                break;
            }
        }
    }
    std::sort(order.begin(), order.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    ordered.reserve(order.size());
    for (const auto& [min_state, grp] : order) ordered.push_back(grp);
    return ordered;
}

/// The canonical changed-signal enumeration both the exact scorer and the
/// dominance bounder share (one source, so their orders cannot drift): calls
/// visit(signal, key) for every estimated signal whose spec key differs from
/// the parent's.  @p ordered is child_group_order(cache, am).
template <typename Visit>
void for_each_changed_signal(const context& ctx, const analysis_cache& cache,
                             const applied_move& am, const detail::row_view& child_rows,
                             const std::vector<const code_group*>& ordered, Visit&& visit) {
    auto visit_if_changed = [&](uint32_t x) {
        const sig_key key = detail::signal_key(ctx, x, ordered, &am.removed_states, child_rows);
        if (key == cache.signals[x].key) return;  // identical spec: reuse count
        visit(x, key);
    };

    if (am.removed_states.none()) {
        // Only the delayed event's signal changed its excitation anywhere.
        visit_if_changed(static_cast<uint32_t>(ctx.base->events()[am.delayed_event].signal));
    } else {
        // Pruning can change any signal's spec: re-key every estimated one.
        for (uint32_t x = 0; x < ctx.sig_events.size(); ++x)
            if (ctx.sig_events[x].estimated) visit_if_changed(x);
    }
}

cost_breakdown combine_cost(const context& ctx, std::size_t states, std::size_t csc,
                            std::size_t literals) {
    cost_breakdown c;
    c.states = states;
    c.csc_pairs = csc;
    c.literals = literals;
    c.value = ctx.params.w * static_cast<double>(literals) +
              (1.0 - ctx.params.w) * ctx.params.csc_weight * static_cast<double>(csc);
    return c;
}

}  // namespace

move_score score_move(const context& ctx, const subgraph& parent, const analysis_cache& cache,
                      const applied_move& am, literal_memo& memo) {
    (void)parent;
    move_score out;
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};

    const std::size_t csc = delta_csc_pairs(ctx, cache, am, child_rows);

    // ---- Delta(literals): recompute a signal's spec key only when the move
    // can have changed it, re-minimise only when the key actually differs.
    std::size_t literals = cache.cost.literals;
    const std::vector<const code_group*> ordered = child_group_order(cache, am);
    for_each_changed_signal(ctx, cache, am, child_rows, ordered, [&](uint32_t x,
                                                                     const sig_key& key) {
        std::size_t lits;
        if (auto hit = memo.find(key); hit && hit->literals) {
            memo_hits().add();
            lits = *hit->literals;
        } else {
            lits = detail::minimise_literals(
                ctx, detail::assemble_spec(ctx, x, ordered, &am.removed_states, child_rows), key,
                &memo);
        }
        literals -= cache.signals[x].literals;
        literals += lits;
        out.updates.push_back({x, key, lits});
    });

    out.cost = combine_cost(ctx, am.child.live_state_count(), csc, literals);
    return out;
}

move_eval bound_move(const context& ctx, const subgraph& parent, const analysis_cache& cache,
                     const applied_move& am, literal_memo& memo) {
    (void)parent;
    move_eval ev;
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};

    ev.csc = delta_csc_pairs(ctx, cache, am, child_rows);
    ev.states = am.child.live_state_count();

    // Bracketed literal delta.  Signed accumulation: an intermediate sum may
    // dip below zero even though the final total cannot.
    auto lo = static_cast<std::int64_t>(cache.cost.literals);
    auto hi = lo;
    const std::vector<const code_group*> ordered = child_group_order(cache, am);
    for_each_changed_signal(ctx, cache, am, child_rows, ordered, [&](uint32_t x,
                                                                     const sig_key& key) {
        move_eval::changed_signal ch;
        ch.signal = x;
        ch.key = key;
        const auto cached = static_cast<std::int64_t>(cache.signals[x].literals);
        if (auto hit = memo.find(key); hit && hit->literals) {
            memo_hits().add();
            ch.resolved = true;
            ch.literals = *hit->literals;
            lo += static_cast<std::int64_t>(ch.literals) - cached;
            hi += static_cast<std::int64_t>(ch.literals) - cached;
        } else {
            if (hit && hit->bounds) {
                ch.bounds = *hit->bounds;  // a sibling move bounded this key
            } else {
                // First sight of this key anywhere: assemble its spec once
                // and bound it, warm-starting the upper bound on the parent's
                // minimised cover for this signal (always memoised when the
                // engine drives us).
                const sop_spec spec =
                    detail::assemble_spec(ctx, x, ordered, &am.removed_states, child_rows);
                std::shared_ptr<const cover> warm;
                if (auto parent_hit = memo.find(cache.signals[x].key);
                    parent_hit && parent_hit->cubes)
                    warm = parent_hit->cubes;
                ch.bounds = warm ? bound_literals(spec, *warm) : bound_literals(spec);
                memo.insert_bounds(key, ch.bounds);
            }
            lo += static_cast<std::int64_t>(ch.bounds.lower) - cached;
            hi += static_cast<std::int64_t>(ch.bounds.upper) - cached;
        }
        ev.changed.push_back(std::move(ch));
    });

    ev.lits_lo = static_cast<std::size_t>(std::max<std::int64_t>(0, lo));
    ev.lits_hi = static_cast<std::size_t>(std::max<std::int64_t>(0, hi));
    ev.value_lo = combine_cost(ctx, ev.states, ev.csc, ev.lits_lo).value;
    ev.value_hi = combine_cost(ctx, ev.states, ev.csc, ev.lits_hi).value;
    return ev;
}

move_score finish_score(const context& ctx, const analysis_cache& cache, const applied_move& am,
                        move_eval eval, literal_memo& memo) {
    move_score out;
    const detail::row_view child_rows{&ctx, &cache.rows, &am.disturbed, &am.disturbed_rows};
    // Group order rebuilt lazily: every unresolved signal may already be an
    // exact memo hit by now (a sibling seed minimised the same key).
    std::vector<const code_group*> ordered;
    std::size_t literals = cache.cost.literals;
    for (auto& ch : eval.changed) {
        std::size_t lits;
        if (ch.resolved) {
            lits = ch.literals;
        } else if (auto hit = memo.find(ch.key); hit && hit->literals) {
            memo_hits().add();
            lits = *hit->literals;
        } else {
            if (ordered.empty()) ordered = child_group_order(cache, am);
            lits = detail::minimise_literals(
                ctx, detail::assemble_spec(ctx, ch.signal, ordered, &am.removed_states, child_rows),
                ch.key, &memo);
        }
        literals -= cache.signals[ch.signal].literals;
        literals += lits;
        out.updates.push_back({ch.signal, ch.key, lits});
    }
    out.cost = combine_cost(ctx, eval.states, eval.csc, literals);
    return out;
}

analysis_cache derive_cache(const context& ctx, const subgraph& parent,
                            const analysis_cache& parent_cache, const applied_move& am,
                            const move_score& score) {
    (void)parent;
    const auto& base = am.child.base();
    analysis_cache c;

    // Rows: copy, zero the pruned states, splice in the disturbed rows.
    c.rows = parent_cache.rows;
    for (auto sv : am.removed_states.ones())
        std::fill_n(c.rows.begin() + static_cast<std::ptrdiff_t>(ctx.words * sv), ctx.words, 0);
    for (std::size_t k = 0; k < am.disturbed.size(); ++k)
        std::copy_n(am.disturbed_rows.begin() + static_cast<std::ptrdiff_t>(k * ctx.words),
                    ctx.words,
                    c.rows.begin() + static_cast<std::ptrdiff_t>(ctx.words * am.disturbed[k]));

    c.event_arcs = parent_cache.event_arcs;
    for (auto av : am.removed_arcs.ones()) --c.event_arcs[base.arcs()[av].event];

    // ER components: an event is dirty when it lost arcs, lost member states,
    // or a removed arc connected two states of its excitation set (the
    // component partition may split); everything else is copied verbatim.
    std::vector<char> dirty(ctx.nevents, 0);
    for (auto av : am.removed_arcs.ones()) dirty[base.arcs()[av].event] = 1;
    for (std::size_t e = 0; e < ctx.nevents; ++e)
        if (!dirty[e] && parent_cache.er_union[e].intersects(am.removed_states)) dirty[e] = 1;
    for (auto av : am.removed_arcs.ones()) {
        const auto& arc = base.arcs()[av];
        for (std::size_t e = 0; e < ctx.nevents; ++e)
            if (!dirty[e] && parent_cache.er_union[e].test(arc.src) &&
                parent_cache.er_union[e].test(arc.dst))
                dirty[e] = 1;
    }
    c.er.resize(ctx.nevents);
    c.er_union.resize(ctx.nevents);
    for (std::size_t e = 0; e < ctx.nevents; ++e) {
        if (!dirty[e]) {
            c.er[e] = parent_cache.er[e];
            c.er_union[e] = parent_cache.er_union[e];
            continue;
        }
        c.er[e] = excitation_regions(am.child, static_cast<uint16_t>(e));
        dyn_bitset u(base.state_count());
        for (const auto& comp : c.er[e]) u |= comp.states;
        c.er_union[e] = std::move(u);
    }

    // CSC structure: rebuilt (one linear pass; the scorer already produced
    // the total, which the rebuild must reproduce).
    detail::build_groups(ctx, am.child, c.groups, c.group_of);
    const detail::row_view rows{&ctx, &c.rows, nullptr, nullptr};
    c.csc_pairs = 0;
    for (auto& grp : c.groups) {
        grp.conflict_pairs = detail::group_conflicts(ctx, grp.states, nullptr, rows);
        c.csc_pairs += grp.conflict_pairs;
    }

    c.signals = parent_cache.signals;
    for (const auto& u : score.updates) {
        c.signals[u.signal].key = u.key;
        c.signals[u.signal].literals = u.literals;
    }

    c.cost = score.cost;
    return c;
}

}  // namespace asynth::explore
