// The move layer of the incremental engine: candidate reductions as
// lightweight descriptors, applied and delta-scored against the parent's
// analysis_cache instead of being re-analysed from scratch.
//
// apply_move() is an exact replacement for forward_reduction() on the search
// path: it produces the identical child subgraph and accepts/rejects the
// identical candidate set, but runs the Definition 5.1 validity battery as a
// delta.  Only states that lost an out-arc (the "disturbed" set D) can gain a
// deadlock or a persistency violation, and "no event disappears" is a counter
// decrement -- so validity costs O(|removed arcs| + |D| * degree) instead of
// a full O(states * degree^2) speed-independence sweep.
//
// score_move() computes the child's section-7 cost as a delta: csc_pairs is
// adjusted only for code groups containing removed/disturbed states, and a
// signal is re-minimised only when its 128-bit spec key differs from the
// parent's (otherwise the parent's literal count is provably reusable).  A
// search-global literal_memo additionally dedupes minimisations across
// sibling candidates that converge to the same spec.
#pragma once

#include <optional>
#include <vector>

#include "explore/analysis_cache.hpp"

namespace asynth::explore {

/// One applied (and validity-checked) reduction, plus the delta bookkeeping
/// the scorer and the survivor cache derivation need.
struct applied_move {
    subgraph child;             ///< identical to forward_reduction()'s result
    hash128 sig;                ///< child.signature128() (transposition key)
    dyn_bitset removed_arcs;    ///< live in parent, dead in child
    dyn_bitset removed_states;  ///< pruned by the reduction
    /// D: states live in the child that lost at least one out-arc, ascending.
    std::vector<uint32_t> disturbed;
    /// Child enabled-event rows of the disturbed states, `ctx.words` words
    /// each, in `disturbed` order.
    std::vector<uint64_t> disturbed_rows;
    uint16_t delayed_event = 0;  ///< the reduced event a of FwdRed(a, b)
};

/// Applies FwdRed(a, b) to @p g with delta validity checks.  Returns
/// std::nullopt exactly when forward_reduction(g, a, b) would (given that
/// @p g itself is output-persistent, which the search maintains invariantly).
/// @p cache is the parent node's analyses.
[[nodiscard]] std::optional<applied_move> apply_move(const context& ctx, const subgraph& g,
                                                     const analysis_cache& cache,
                                                     const er_component& a,
                                                     const er_component& b);

/// Cost evaluation of one applied move.
struct move_score {
    cost_breakdown cost;  ///< equals estimate_cost(child, ctx.params)
    /// Signals whose spec key changed: their fresh key + literal count.
    /// Signals absent from this list provably kept the parent's entry.
    struct sig_update {
        uint32_t signal = 0;
        sig_key key;
        std::size_t literals = 0;
    };
    std::vector<sig_update> updates;
};

/// Delta-scores @p am against the parent's cache.
[[nodiscard]] move_score score_move(const context& ctx, const subgraph& parent,
                                    const analysis_cache& cache, const applied_move& am,
                                    literal_memo& memo);

/// Derives the child's full cache from the parent's: clean ER components and
/// signal entries are copied, dirty ones recomputed; the CSC structure and
/// enabled rows are rebuilt.  Exact: equals build_cache(ctx, am.child).
[[nodiscard]] analysis_cache derive_cache(const context& ctx, const subgraph& parent,
                                          const analysis_cache& parent_cache,
                                          const applied_move& am, const move_score& score);

}  // namespace asynth::explore
