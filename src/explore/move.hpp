// The move layer of the incremental engine: candidate reductions as
// lightweight descriptors, applied and delta-scored against the parent's
// analysis_cache instead of being re-analysed from scratch.
//
// apply_move() is an exact replacement for forward_reduction() on the search
// path: it produces the identical child subgraph and accepts/rejects the
// identical candidate set, but runs the Definition 5.1 validity battery as a
// delta.  Only states that lost an out-arc (the "disturbed" set D) can gain a
// deadlock or a persistency violation, and "no event disappears" is a counter
// decrement -- so validity costs O(|removed arcs| + |D| * degree) instead of
// a full O(states * degree^2) speed-independence sweep.
//
// score_move() computes the child's section-7 cost as a delta: csc_pairs is
// adjusted only for code groups containing removed/disturbed states, and a
// signal is re-minimised only when its 128-bit spec key differs from the
// parent's (otherwise the parent's literal count is provably reusable).  A
// search-global literal_memo additionally dedupes minimisations across
// sibling candidates that converge to the same spec.
#pragma once

#include <optional>
#include <vector>

#include "explore/analysis_cache.hpp"

namespace asynth::explore {

/// One applied (and validity-checked) reduction, plus the delta bookkeeping
/// the scorer and the survivor cache derivation need.
struct applied_move {
    subgraph child;             ///< identical to forward_reduction()'s result
    hash128 sig;                ///< child.signature128() (transposition key)
    dyn_bitset removed_arcs;    ///< live in parent, dead in child
    dyn_bitset removed_states;  ///< pruned by the reduction
    /// D: states live in the child that lost at least one out-arc, ascending.
    std::vector<uint32_t> disturbed;
    /// Child enabled-event rows of the disturbed states, `ctx.words` words
    /// each, in `disturbed` order.
    std::vector<uint64_t> disturbed_rows;
    uint16_t delayed_event = 0;  ///< the reduced event a of FwdRed(a, b)
};

/// Applies FwdRed(a, b) to @p g with delta validity checks.  Returns
/// std::nullopt exactly when forward_reduction(g, a, b) would (given that
/// @p g itself is output-persistent, which the search maintains invariantly).
/// @p cache is the parent node's analyses.
[[nodiscard]] std::optional<applied_move> apply_move(const context& ctx, const subgraph& g,
                                                     const analysis_cache& cache,
                                                     const er_component& a,
                                                     const er_component& b);

/// Cost evaluation of one applied move.
struct move_score {
    cost_breakdown cost;  ///< equals estimate_cost(child, ctx.params)
    /// Signals whose spec key changed: their fresh key + literal count.
    /// Signals absent from this list provably kept the parent's entry.
    struct sig_update {
        uint32_t signal = 0;
        sig_key key;
        std::size_t literals = 0;
    };
    std::vector<sig_update> updates;
};

/// Delta-scores @p am against the parent's cache.
[[nodiscard]] move_score score_move(const context& ctx, const subgraph& parent,
                                    const analysis_cache& cache, const applied_move& am,
                                    literal_memo& memo);

/// Partial (bounded) evaluation of one applied move -- the cheap first phase
/// of the dominance filter.  The CSC term is exact (it is a counting delta);
/// the literal term is bracketed instead of minimised: signals whose spec key
/// kept the parent's value contribute exactly, and each changed signal
/// contributes either an exact memo hit or [lower, upper] bounds from
/// boolfn/bound_literals warm-started on the parent cover.  value_lo is a
/// sound optimistic cost -- no exact score of this move can be smaller -- so
/// a candidate whose value_lo is strictly worse than `size_frontier`
/// already-exact scores can be discarded without ever minimising.  value_hi
/// is only a seeding heuristic (the heuristic minimiser may exceed it) and
/// must never be used to prune.
///
/// search_quality::bounded seeds its provisional beam on value_lo instead of
/// value_hi and then widens refinement to the same no-displacement fixpoint
/// as the dominance filter; the per-level price of anything never refined is
/// quantified into search_result::level_gap (sound because value_lo is
/// sound, and 0 at the fixpoint; see engine.cpp).  The value_hi never-prune
/// rule holds in every mode.
struct move_eval {
    std::size_t csc = 0;     ///< exact Delta-adjusted csc_pairs of the child
    std::size_t states = 0;  ///< child live states
    /// Bracketed literal total over all estimated signals.
    std::size_t lits_lo = 0, lits_hi = 0;
    double value_lo = 0.0;  ///< cost with lits_lo (sound lower bound)
    double value_hi = 0.0;  ///< cost with lits_hi (seeding heuristic only)
    /// Changed-key signals in the exact scorer's canonical order.  Specs are
    /// deliberately NOT materialised here: a pruned candidate never assembles
    /// one, and finish_score() rebuilds the (deterministic) group order from
    /// the parent cache for the few candidates that survive.
    struct changed_signal {
        uint32_t signal = 0;
        sig_key key;
        bool resolved = false;      ///< exact literal count already known
        std::size_t literals = 0;   ///< valid when resolved
        literal_bounds bounds;      ///< valid when !resolved
    };
    std::vector<changed_signal> changed;
};

/// Bounded evaluation of @p am against the parent's cache.  Bounds for new
/// keys are memoised in @p memo (and reused from it), so sibling moves that
/// converge to the same spec bound it once -- and assemble its minterm lists
/// at most once.
[[nodiscard]] move_eval bound_move(const context& ctx, const subgraph& parent,
                                   const analysis_cache& cache, const applied_move& am,
                                   literal_memo& memo);

/// Resolves a bounded evaluation into the exact score.  Bit-for-bit equal to
/// score_move() on the same (cache, am) pair (pinned in
/// tests/test_explore.cpp): the unresolved signals run the identical memoised
/// heuristic minimisation, in the identical order, over identically assembled
/// specs.
[[nodiscard]] move_score finish_score(const context& ctx, const analysis_cache& cache,
                                      const applied_move& am, move_eval eval,
                                      literal_memo& memo);

/// Derives the child's full cache from the parent's: clean ER components and
/// signal entries are copied, dirty ones recomputed; the CSC structure and
/// enabled rows are rebuilt.  Exact: equals build_cache(ctx, am.child).
[[nodiscard]] analysis_cache derive_cache(const context& ctx, const subgraph& parent,
                                          const analysis_cache& parent_cache,
                                          const applied_move& am, const move_score& score);

}  // namespace asynth::explore
