// The incremental Fig. 9 exploration engine (the `--engine incremental`
// default).  Same beam, same results as core/search's reference engine --
// the per-level candidate set, every candidate's cost, the deterministic
// (cost, signature) beam order and therefore search_result are identical;
// tests/test_explore.cpp pins the equivalence over the whole corpus.
//
// What changes is the work per candidate:
//
//  * every frontier node carries an analysis_cache (memoised excitation
//    regions, CSC structure, per-signal minimised covers);
//  * candidate moves are applied with delta validity checks and delta-scored
//    against the parent's cache (move.hpp) -- a candidate that prunes no
//    state re-minimises at most one signal instead of all of them;
//  * with search_options::minimizer == incremental (the default) candidates
//    are dominance-filtered: cheap literal bounds (boolfn/incremental_cover)
//    run first, and a candidate provably unable to enter the beam is
//    discarded without exact minimisation -- selection stays bit-identical
//    to the exact path because only strictly-dominated candidates are
//    dropped (see the admission logic in engine.cpp);
//  * a 128-bit transposition table replaces the collision-prone
//    std::size_t `explored` set;
//  * with search_options::jobs > 1 the per-level apply/score work fans out
//    over one persistent batch work-stealing pool per search; the expander
//    merges in enumeration order, so results are independent of the job
//    count.
//
// The bit-for-bit equivalence guarantee above is scoped to
// search_options::quality == exact (the default).  `--quality bounded`
// admits the beam provisionally on optimistic lower bounds, lazily refines
// every candidate that could still change the selection, and certifies the
// outcome in search_result::bound_gap / level_gap -- 0 at the refinement
// fixpoint, so its results match exact search whenever the bounds are sound;
// `--quality anytime` keeps the exact admission path but may cut the search
// at a level boundary when the wall-clock deadline expires (deadline_hit).
// Both non-exact qualities run on this engine only -- the reference engine
// stays the exactness oracle.  See docs/SEARCH.md for the gap semantics.
#pragma once

#include "core/search.hpp"

namespace asynth::explore {

/// Runs the Fig. 9 exploration from @p initial, incrementally.  Returns the
/// same search_result as reduce_concurrency(initial, opt).
[[nodiscard]] search_result reduce_concurrency_incremental(const subgraph& initial,
                                                           const search_options& opt);

}  // namespace asynth::explore
