#include "explore/analysis_cache.hpp"

#include <unordered_map>

namespace asynth::explore {

context make_context(const state_graph& base, const cost_params& params) {
    context ctx;
    ctx.base = &base;
    ctx.params = params;
    ctx.nevents = base.events().size();
    ctx.words = (ctx.nevents + 63) / 64;

    ctx.noninput_mask.assign(ctx.words, 0);
    ctx.input_event.assign(ctx.nevents, 0);
    for (std::size_t e = 0; e < ctx.nevents; ++e) {
        ctx.input_event[e] = base.is_input_event(static_cast<uint16_t>(e)) ? 1 : 0;
        if (!ctx.input_event[e]) row_set(ctx.noninput_mask.data(), e);
    }

    ctx.sig_events.resize(base.signals().size());
    for (uint32_t s = 0; s < base.signals().size(); ++s) {
        auto& se = ctx.sig_events[s];
        if (auto p = base.find_event(static_cast<int32_t>(s), edge::plus)) se.plus = *p;
        if (auto m = base.find_event(static_cast<int32_t>(s), edge::minus)) se.minus = *m;
        se.estimated = base.signals()[s].kind != signal_kind::input &&
                       (se.plus >= 0 || se.minus >= 0);
    }

    ctx.code_hash.reserve(base.state_count());
    for (const auto& st : base.states())
        ctx.code_hash.push_back(splitmix64(st.code.hash()));
    return ctx;
}

namespace detail {

std::vector<uint64_t> build_rows(const context& ctx, const subgraph& g) {
    const auto& b = *ctx.base;
    std::vector<uint64_t> rows(ctx.words * b.state_count(), 0);
    for (auto av : g.live_arcs().ones()) {
        const auto& arc = b.arcs()[av];
        if (!g.state_live(arc.src)) continue;
        row_set(rows.data() + ctx.words * arc.src, arc.event);
    }
    return rows;
}

void build_groups(const context& ctx, const subgraph& g, std::vector<code_group>& groups,
                  std::vector<uint32_t>& group_of) {
    const auto& b = *ctx.base;
    groups.clear();
    group_of.assign(b.state_count(), UINT32_MAX);
    std::unordered_map<dyn_bitset, uint32_t> index;
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        auto [it, inserted] =
            index.emplace(b.states()[s].code, static_cast<uint32_t>(groups.size()));
        if (inserted) groups.emplace_back();
        groups[it->second].states.push_back(s);
        group_of[s] = it->second;
    }
}

std::size_t group_conflicts(const context& ctx, const std::vector<uint32_t>& members,
                            const dyn_bitset* removed, const row_view& rows) {
    // Gather the masked (non-input) enabled rows of the surviving members.
    std::vector<const uint64_t*> alive;
    alive.reserve(members.size());
    for (uint32_t s : members) {
        if (removed && removed->test(s)) continue;
        alive.push_back(rows(s));
    }
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        for (std::size_t j = i + 1; j < alive.size(); ++j) {
            for (std::size_t w = 0; w < ctx.words; ++w) {
                if ((alive[i][w] & ctx.noninput_mask[w]) !=
                    (alive[j][w] & ctx.noninput_mask[w])) {
                    ++pairs;
                    break;
                }
            }
        }
    }
    return pairs;
}

sig_key signal_key(const context& ctx, uint32_t signal,
                   const std::vector<const code_group*>& ordered, const dyn_bitset* removed,
                   const row_view& rows) {
    sig_key key;
    for (const code_group* grp : ordered) {
        // side: +1 = every member ON, -1 = every member OFF, 0 = conflicting
        // (excluded from both sides, exactly as derive_nextstate() does).
        int side = 2;  // 2 = no live member seen yet
        uint64_t chash = 0;
        for (uint32_t s : grp->states) {
            if (removed && removed->test(s)) continue;
            const int fs = nextstate_value(ctx, signal, s, rows(s)) ? 1 : -1;
            if (side == 2) {
                side = fs;
                chash = ctx.code_hash[s];
            } else if (side != fs) {
                side = 0;
                break;
            }
        }
        if (side == 1)
            hash128_combine(key.on, chash);
        else if (side == -1)
            hash128_combine(key.off, chash);
    }
    return key;
}

sop_spec assemble_spec(const context& ctx, uint32_t signal,
                       const std::vector<const code_group*>& ordered, const dyn_bitset* removed,
                       const row_view& rows) {
    const auto& b = *ctx.base;
    sop_spec spec;
    spec.nvars = b.signals().size();
    for (const code_group* grp : ordered) {
        int side = 2;
        uint32_t first = 0;
        for (uint32_t s : grp->states) {
            if (removed && removed->test(s)) continue;
            const int fs = nextstate_value(ctx, signal, s, rows(s)) ? 1 : -1;
            if (side == 2) {
                side = fs;
                first = s;
            } else if (side != fs) {
                side = 0;
                break;
            }
        }
        if (side == 1)
            spec.on.push_back(b.states()[first].code);
        else if (side == -1)
            spec.off.push_back(b.states()[first].code);
    }
    return spec;
}

std::size_t minimise_literals(const context& ctx, const sop_spec& spec, const sig_key& key,
                              literal_memo* memo) {
    if (memo) {
        if (auto hit = memo->find(key); hit && hit->literals) return *hit->literals;
    }
    cover c = minimize_heuristic(spec, ctx.params.minimize_passes);
    const std::size_t literals = c.literal_count();
    // The cover is stored too: it seeds the restrict-and-repair upper bounds
    // of the dominance filter (move.cpp) for child specs of this key.
    if (memo) memo->insert_exact(key, literals, std::make_shared<const cover>(std::move(c)));
    return literals;
}

}  // namespace detail

sig_key key_of_spec(const sop_spec& spec) {
    // Must mirror detail::signal_key: that walks the code groups once,
    // chaining splitmix64(code.hash()) of each single-sided group into the
    // matching lane; the group walk emits exactly spec.on / spec.off in
    // order, so chaining over the assembled lists reproduces the key.
    sig_key key;
    for (const auto& code : spec.on) hash128_combine(key.on, splitmix64(code.hash()));
    for (const auto& code : spec.off) hash128_combine(key.off, splitmix64(code.hash()));
    return key;
}

analysis_cache build_cache(const context& ctx, const subgraph& g, literal_memo* memo) {
    const auto& b = *ctx.base;
    analysis_cache c;

    c.rows = detail::build_rows(ctx, g);
    c.event_arcs.assign(ctx.nevents, 0);
    for (auto av : g.live_arcs().ones()) ++c.event_arcs[b.arcs()[av].event];

    c.er.resize(ctx.nevents);
    c.er_union.resize(ctx.nevents);
    for (std::size_t e = 0; e < ctx.nevents; ++e) {
        c.er[e] = excitation_regions(g, static_cast<uint16_t>(e));
        dyn_bitset u(b.state_count());
        for (const auto& comp : c.er[e]) u |= comp.states;
        c.er_union[e] = std::move(u);
    }

    detail::build_groups(ctx, g, c.groups, c.group_of);
    const detail::row_view rows{&ctx, &c.rows, nullptr, nullptr};
    c.csc_pairs = 0;
    for (auto& grp : c.groups) {
        grp.conflict_pairs = detail::group_conflicts(ctx, grp.states, nullptr, rows);
        c.csc_pairs += grp.conflict_pairs;
    }

    std::vector<const code_group*> ordered;
    ordered.reserve(c.groups.size());
    for (const auto& grp : c.groups) ordered.push_back(&grp);

    c.signals.resize(b.signals().size());
    std::size_t literals = 0;
    for (uint32_t s = 0; s < b.signals().size(); ++s) {
        auto& entry = c.signals[s];
        entry.estimated = ctx.sig_events[s].estimated;
        if (!entry.estimated) continue;
        entry.key = detail::signal_key(ctx, s, ordered, nullptr, rows);
        auto hit = memo ? memo->find(entry.key) : std::nullopt;
        if (hit && hit->literals)
            entry.literals = *hit->literals;
        else
            entry.literals = detail::minimise_literals(
                ctx, detail::assemble_spec(ctx, s, ordered, nullptr, rows), entry.key, memo);
        literals += entry.literals;
    }

    c.cost.states = g.live_state_count();
    c.cost.csc_pairs = c.csc_pairs;
    c.cost.literals = literals;
    c.cost.value = ctx.params.w * static_cast<double>(literals) +
                   (1.0 - ctx.params.w) * ctx.params.csc_weight *
                       static_cast<double>(c.csc_pairs);
    return c;
}

}  // namespace asynth::explore
