#include "spec/csp.hpp"

#include <cctype>
#include <vector>

#include "util/error.hpp"

namespace asynth {

namespace {

struct fragment {
    std::vector<uint32_t> entries;
    std::vector<uint32_t> exits;
};

class csp_parser {
public:
    explicit csp_parser(std::string_view text) : text_(text) {}

    stg run() {
        skip_ws();
        std::string name = ident();
        require_token("=");
        net_.model_name = name;
        fragment body = expr();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing input");
        // The body repeats forever: close the loop with marked places.
        for (uint32_t e : body.exits)
            for (uint32_t s : body.entries) net_.connect(e, s, 1);
        return std::move(net_);
    }

private:
    fragment expr() { return seq(); }

    fragment seq() {
        fragment acc = par();
        while (peek_token(";")) {
            require_token(";");
            fragment next = par();
            for (uint32_t e : acc.exits)
                for (uint32_t s : next.entries) net_.connect(e, s);
            acc.exits = std::move(next.exits);
        }
        return acc;
    }

    fragment par() {
        fragment acc = atom();
        while (peek_token("||")) {
            require_token("||");
            fragment next = atom();
            acc.entries.insert(acc.entries.end(), next.entries.begin(), next.entries.end());
            acc.exits.insert(acc.exits.end(), next.exits.begin(), next.exits.end());
        }
        return acc;
    }

    fragment atom() {
        skip_ws();
        if (peek_token("(")) {
            require_token("(");
            // Recursive descent burns a few stack frames per '(': bound the
            // depth so adversarial input (the fuzz corpus replays arbitrary
            // text) gets a parse error instead of a stack overflow.
            if (++depth_ > max_depth) fail("parentheses nested deeper than 64 levels");
            fragment inner = expr();
            --depth_;
            require_token(")");
            return inner;
        }
        std::string name = ident();
        skip_ws();
        edge dir;
        if (pos_ < text_.size() && text_[pos_] == '?') dir = edge::recv;
        else if (pos_ < text_.size() && text_[pos_] == '!') dir = edge::send;
        else { fail("expected '?' or '!' after channel name '" + name + "'"); dir = edge::recv; }
        ++pos_;
        int32_t sig;
        if (auto found = net_.find_signal(name)) {
            sig = static_cast<int32_t>(*found);
            require(net_.signals()[static_cast<uint32_t>(sig)].kind == signal_kind::channel,
                    "'" + name + "' is not a channel");
        } else {
            sig = static_cast<int32_t>(net_.add_signal(name, signal_kind::channel));
        }
        uint32_t t = net_.add_transition(event_label{sig, dir, 0});
        return fragment{{t}, {t}};
    }

    // ---- lexing ------------------------------------------------------------
    void skip_ws() {
        while (pos_ < text_.size() &&
               (std::isspace(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '\n'))
            ++pos_;
    }

    bool peek_token(std::string_view tok) {
        skip_ws();
        return text_.substr(pos_, tok.size()) == tok;
    }

    void require_token(std::string_view tok) {
        skip_ws();
        if (text_.substr(pos_, tok.size()) != tok) fail("expected '" + std::string(tok) + "'");
        pos_ += tok.size();
    }

    std::string ident() {
        skip_ws();
        std::string out;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            out += text_[pos_++];
        if (out.empty()) fail("expected an identifier");
        return out;
    }

    [[noreturn]] void fail(const std::string& msg) const {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n') ++line;
        throw parse_error(line, msg + " (at offset " + std::to_string(pos_) + ")");
    }

    static constexpr int max_depth = 64;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    stg net_;
};

}  // namespace

stg parse_csp(std::string_view text) { return csp_parser(text).run(); }

}  // namespace asynth
