// A small CSP-like front end (paper section 1, design scenario 2): the
// designer writes the behaviour in terms of abstract channel actions and the
// tool handles refinement.  Grammar:
//
//   process   := name '=' expr           (the body repeats forever)
//   expr      := par (';' par)*          sequential composition
//   par       := atom ('||' atom)*       parallel composition (fork/join)
//   atom      := name '?' | name '!' | '(' expr ')'
//
// Example -- the LR process:   lr = l? ; r! ; r? ; l!
// Example -- the PAR component: par = a? ; (b! ; b?) || (c! ; c?) ; a!
//
// The result is a channel-level STG ready for expand_handshakes().
#pragma once

#include <string_view>

#include "petri/stg.hpp"

namespace asynth {

/// Parses a process definition into a channel STG.  Channels are declared
/// implicitly on first use.  Throws asynth::parse_error on syntax errors.
[[nodiscard]] stg parse_csp(std::string_view text);

}  // namespace asynth
