// Process-wide metrics registry: named monotone counters, gauges and
// fixed-bucket histograms with atomic updates, snapshotable without stopping
// writers, rendered as Prometheus text exposition (format 0.0.4).
//
// Naming scheme (docs/OBSERVABILITY.md): `asynth_<layer>_<what>[_total|_ms]`
// -- counters end in `_total`, histograms carry their unit as a suffix
// (`_ms`), gauges are bare.  Every layer registers its metrics against the
// process-global registry::global() and caches the returned reference in a
// function-local static, so the hot path is one relaxed atomic add with no
// name lookup:
//
//     static obs::counter& hits =
//         obs::registry::global().get_counter("asynth_store_hits_total");
//     hits.add();
//
// Thread safety: every update is a single atomic RMW; registration and
// snapshotting take the registry mutex, updates never do.  Returned metric
// references stay valid for the registry's lifetime (node-based storage).
// A snapshot taken while writers are mid-update observes, per metric, some
// value each writer either fully published or had not yet published -- no
// torn reads (tests/test_obs.cpp stresses this under TSan/ASan).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asynth::obs {

/// Monotone counter.  add() is one relaxed fetch_add; value() is one load.
class counter {
public:
    void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (queue depth, worker count).  Stored as double bits in
/// one atomic word, so set/read never tear; add() is a CAS loop (gauges are
/// cold -- the loop retries only under concurrent adds).
class gauge {
public:
    void set(double v) noexcept { bits_.store(to_bits(v), std::memory_order_relaxed); }
    void add(double d) noexcept {
        std::uint64_t old = bits_.load(std::memory_order_relaxed);
        while (!bits_.compare_exchange_weak(old, to_bits(from_bits(old) + d),
                                            std::memory_order_relaxed))
            ;
    }
    [[nodiscard]] double value() const noexcept {
        return from_bits(bits_.load(std::memory_order_relaxed));
    }

private:
    static std::uint64_t to_bits(double v) noexcept {
        std::uint64_t b;
        static_assert(sizeof b == sizeof v);
        __builtin_memcpy(&b, &v, sizeof b);
        return b;
    }
    static double from_bits(std::uint64_t b) noexcept {
        double v;
        __builtin_memcpy(&v, &b, sizeof v);
        return v;
    }
    std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram.  Bucket semantics follow Prometheus: bucket i
/// counts observations <= bounds[i] and > bounds[i-1]; one implicit +Inf
/// bucket catches the rest.  observe() is one fetch_add plus a CAS for the
/// running sum; the total count is *derived* from the per-bucket counts at
/// snapshot time, so a snapshot's count always equals the sum of its buckets
/// by construction (tear-freedom the tests can assert exactly).
class histogram {
public:
    /// @p bounds must be ascending and non-empty (upper bucket edges).
    explicit histogram(std::vector<double> bounds);

    void observe(double v) noexcept;

    struct snapshot_data {
        std::vector<double> bounds;          ///< upper edges, ascending (no +Inf)
        std::vector<std::uint64_t> buckets;  ///< bounds.size()+1, last = +Inf
        std::uint64_t count = 0;             ///< == sum(buckets), by construction
        double sum = 0.0;                    ///< running sum of observed values
        /// Nearest-rank percentile estimate from the bucket upper edges
        /// (the +Inf bucket reports the largest finite edge).
        [[nodiscard]] double percentile(double q) const;
    };
    [[nodiscard]] snapshot_data snapshot() const;
    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size()+1
    std::atomic<std::uint64_t> sum_bits_{0};                 ///< double bits, CAS-add
};

/// Default bucket edges for millisecond-scale latency histograms.
[[nodiscard]] std::vector<double> default_ms_buckets();

/// What kind of metric a registry entry is.
enum class metric_kind : uint8_t { counter, gauge, histogram };

/// One metric's state at snapshot time.
struct metric_snapshot {
    std::string name;
    std::string help;
    metric_kind kind = metric_kind::counter;
    std::uint64_t counter_value = 0;    ///< kind == counter
    double gauge_value = 0.0;           ///< kind == gauge
    histogram::snapshot_data hist;      ///< kind == histogram
};

/// Name -> metric map.  get_* registers on first use and returns a stable
/// reference; re-registration under a different kind throws asynth::error
/// (a programming error worth failing loudly on).  registry::global() is the
/// process-wide instance every layer records into; tests construct their own.
class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    [[nodiscard]] static registry& global();

    counter& get_counter(std::string_view name, std::string_view help = {});
    gauge& get_gauge(std::string_view name, std::string_view help = {});
    /// @p bounds applies on first registration only (later calls must name
    /// the same metric; their bounds argument is ignored).
    histogram& get_histogram(std::string_view name, std::vector<double> bounds,
                             std::string_view help = {});

    /// All metrics, name order.  Safe while writers update concurrently.
    [[nodiscard]] std::vector<metric_snapshot> snapshot() const;

    /// Counters only, name order -- the batch report's schema-v4 counter
    /// block is a delta of two of these.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

    /// Prometheus text exposition (format 0.0.4): HELP/TYPE headers, counter
    /// and gauge samples, histogram _bucket{le=...}/_sum/_count series.
    [[nodiscard]] std::string prometheus_text() const;

private:
    struct entry {
        metric_kind kind = metric_kind::counter;
        std::string help;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<histogram> h;
    };
    entry& find_or_insert(std::string_view name, metric_kind kind, std::string_view help);

    mutable std::mutex m_;
    std::map<std::string, entry, std::less<>> metrics_;
};

/// Fixed-capacity uniform random sample of an unbounded stream (Vitter's
/// algorithm R): O(1) per offer, O(capacity) memory, every element of the
/// stream equally likely to be retained.  The synthesis service bounds its
/// queue-wait percentile samples with one of these so a long-lived daemon
/// cannot grow memory with request count (tests stream 1M samples through
/// it).  Not thread-safe; callers serialise (the service already holds its
/// accounting mutex).
class reservoir {
public:
    explicit reservoir(std::size_t capacity, std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : cap_(capacity ? capacity : 1), rng_(seed ? seed : 1) {}

    void offer(double v) {
        ++seen_;
        if (samples_.size() < cap_) {
            samples_.push_back(v);
            return;
        }
        // splitmix64 step; modulo bias is negligible against cap_ << 2^64.
        rng_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = rng_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const std::uint64_t idx = z % seen_;
        if (idx < cap_) samples_[static_cast<std::size_t>(idx)] = v;
    }

    [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

private:
    std::size_t cap_;
    std::vector<double> samples_;
    std::uint64_t seen_ = 0;
    std::uint64_t rng_;
};

}  // namespace asynth::obs
