#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace asynth::obs {

namespace {

/// Test-only cap override (trace.hpp detail); 0 = the built-in 1M cap.
std::atomic<std::size_t> g_test_cap{0};

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

/// Per-thread event storage.  A fixed table of atomically-published chunk
/// pointers (so the collector never chases a reallocating vector); only the
/// owning thread writes, publishing progress via a release store of `used`.
/// Buffers are allocated on a thread's first traced span, owned by the
/// global tracer_state, and freed only at process exit -- which requires
/// every span-recording thread to be joined before exit (they are: the pool
/// and the daemon join their workers in their destructors).
struct thread_buffer {
    static constexpr std::size_t chunk_events = 256;
    static constexpr std::size_t max_chunks = 4096;  // 1M spans per thread per session

    struct chunk {
        trace_event events[chunk_events];
    };

    std::atomic<chunk*> chunks[max_chunks] = {};
    ~thread_buffer() {
        for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
    }
    std::atomic<std::size_t> used{0};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint64_t tid = 0;
    std::string name;  // guarded by tracer_state::mutex

    void append(trace_event&& ev, std::uint64_t epoch_now) {
        // First append under a new session: owner-side lazy reset, so resets
        // never race the owning thread's own writes.
        if (epoch.load(std::memory_order_relaxed) != epoch_now) {
            used.store(0, std::memory_order_relaxed);
            dropped.store(0, std::memory_order_relaxed);
            epoch.store(epoch_now, std::memory_order_release);
        }
        const std::size_t n = used.load(std::memory_order_relaxed);
        const std::size_t ci = n / chunk_events;
        const std::size_t cap = g_test_cap.load(std::memory_order_relaxed);
        if (ci >= max_chunks || (cap != 0 && n >= cap)) {
            // Overflow is benign but must never be invisible: count it in the
            // process metrics (the flamegraph already reports it per session)
            // and warn once per thread per session when drops begin.
            static counter& drop_metric = registry::global().get_counter(
                "asynth_trace_dropped_total", "Spans dropped at the per-thread buffer cap");
            drop_metric.add();
            if (dropped.fetch_add(1, std::memory_order_relaxed) == 0)
                log_event(log_level::warn, "trace.dropped")
                    .field("events_kept", static_cast<std::uint64_t>(n));
            return;
        }
        chunk* c = chunks[ci].load(std::memory_order_relaxed);
        if (!c) {
            c = new chunk;
            chunks[ci].store(c, std::memory_order_release);
        }
        c->events[n % chunk_events] = std::move(ev);
        used.store(n + 1, std::memory_order_release);
    }
};

struct tracer_state {
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> epoch{0};
    std::mutex mutex;  // buffer registration, thread names, session arm/disarm
    std::vector<std::unique_ptr<thread_buffer>> buffers;
    trace_session* current = nullptr;
};

tracer_state& state() {
    static tracer_state s;
    return s;
}

thread_buffer& local_buffer() {
    thread_local thread_buffer* buf = [] {
        auto owned = std::make_unique<thread_buffer>();
        thread_buffer* b = owned.get();
        auto& s = state();
        std::lock_guard lock(s.mutex);
        b->tid = s.buffers.size();
        s.buffers.push_back(std::move(owned));
        return b;
    }();
    return *buf;
}

void json_escape(std::string& out, std::string_view s) {
    for (char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

std::string format_number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void append_args_json(std::string& out, const std::vector<trace_arg>& args) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& a : args) {
        if (!first) out += ',';
        first = false;
        out += '"';
        json_escape(out, a.key);
        out += "\":";
        if (a.numeric) {
            out += a.value;
        } else {
            out += '"';
            json_escape(out, a.value);
            out += '"';
        }
    }
    out += '}';
}

}  // namespace

void name_thread(std::string_view name) {
    thread_buffer& b = local_buffer();
    {
        std::lock_guard lock(state().mutex);
        b.name = std::string(name);
    }
    // One name per thread, shared by trace tracks and log lines.
    detail::set_log_thread_name(name);
}

namespace detail {

void set_trace_buffer_cap_for_testing(std::size_t max_events) {
    g_test_cap.store(max_events, std::memory_order_relaxed);
}

}  // namespace detail

trace_session::~trace_session() {
    if (armed_) stop();
}

void trace_session::start() {
    auto& s = state();
    std::lock_guard lock(s.mutex);
    require(s.current == nullptr, "another trace session is already armed");
    events_.clear();
    thread_names_.clear();
    dropped_ = 0;
    epoch_ = s.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
    start_ns_ = now_ns();
    s.current = this;
    armed_ = true;
    s.enabled.store(true, std::memory_order_release);
}

void trace_session::stop() {
    auto& s = state();
    std::lock_guard lock(s.mutex);
    if (!armed_) return;
    s.enabled.store(false, std::memory_order_release);
    s.current = nullptr;
    armed_ = false;
    for (const auto& b : s.buffers) {
        // Buffers still tagged with an older epoch never recorded under this
        // session; skipping them is what makes stale-span drops benign.
        if (b->epoch.load(std::memory_order_acquire) != epoch_) continue;
        dropped_ += b->dropped.load(std::memory_order_relaxed);
        const std::size_t n = b->used.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            thread_buffer::chunk* c =
                b->chunks[i / thread_buffer::chunk_events].load(std::memory_order_acquire);
            trace_event ev = c->events[i % thread_buffer::chunk_events];
            ev.tid = b->tid;
            events_.push_back(std::move(ev));
        }
        if (!b->name.empty()) thread_names_.emplace_back(b->tid, b->name);
    }
    std::sort(events_.begin(), events_.end(), [](const trace_event& a, const trace_event& b) {
        if (a.tid != b.tid) return a.tid < b.tid;
        if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
        return a.dur_ns > b.dur_ns;  // parents before children on ties
    });
}

namespace {

double rel_us(std::uint64_t ns, std::uint64_t base_ns) {
    return ns >= base_ns ? static_cast<double>(ns - base_ns) / 1000.0 : 0.0;
}

std::string format_us(double us) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    return buf;
}

}  // namespace

std::string trace_session::chrome_json() const {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& ev) {
        if (!first) out += ',';
        first = false;
        out += '\n';
        out += ev;
    };
    for (const auto& [tid, name] : thread_names_) {
        std::string ev = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                         std::to_string(tid) + ",\"args\":{\"name\":\"";
        json_escape(ev, name);
        ev += "\"}}";
        emit(ev);
    }
    // Per-thread B/E generation: events_ is sorted (tid, start asc, dur desc),
    // so a stack walk recovers the nesting RAII guaranteed at record time.
    // Emitted timestamps are clamped non-decreasing per thread, which is what
    // tools/validate_trace.py asserts.
    std::size_t i = 0;
    while (i < events_.size()) {
        const std::uint64_t tid = events_[i].tid;
        struct open_span {
            const trace_event* ev;
            std::uint64_t end_ns;
        };
        std::vector<open_span> stack;
        double last_ts = 0.0;
        auto clamp_ts = [&](double ts) {
            if (ts < last_ts) ts = last_ts;
            last_ts = ts;
            return ts;
        };
        auto emit_end = [&](const open_span& o) {
            std::string ev = "{\"name\":\"";
            json_escape(ev, o.ev->name);
            ev += "\",\"ph\":\"E\",\"ts\":" + format_us(clamp_ts(rel_us(o.end_ns, start_ns_))) +
                  ",\"pid\":1,\"tid\":" + std::to_string(tid) + "}";
            emit(ev);
        };
        for (; i < events_.size() && events_[i].tid == tid; ++i) {
            const trace_event& e = events_[i];
            while (!stack.empty() && stack.back().end_ns <= e.start_ns) {
                emit_end(stack.back());
                stack.pop_back();
            }
            std::string ev = "{\"name\":\"";
            json_escape(ev, e.name);
            ev += "\",\"cat\":\"";
            json_escape(ev, e.category.empty() ? std::string_view("default") : e.category);
            ev += "\",\"ph\":\"B\",\"ts\":" + format_us(clamp_ts(rel_us(e.start_ns, start_ns_))) +
                  ",\"pid\":1,\"tid\":" + std::to_string(tid);
            if (!e.args.empty()) append_args_json(ev, e.args);
            ev += '}';
            emit(ev);
            std::uint64_t end_ns = e.start_ns + e.dur_ns;
            // Clock truncation can put a child's end a hair past its parent's;
            // clamp so the stack pops in strict LIFO order.
            if (!stack.empty()) end_ns = std::min(end_ns, stack.back().end_ns);
            stack.push_back({&e, end_ns});
        }
        while (!stack.empty()) {
            emit_end(stack.back());
            stack.pop_back();
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string trace_session::flamegraph() const {
    std::string out;
    std::size_t i = 0;
    while (i < events_.size()) {
        const std::uint64_t tid = events_[i].tid;
        std::string tname = "thread-" + std::to_string(tid);
        for (const auto& [t, n] : thread_names_)
            if (t == tid) tname = n;
        // Track total = sum of root-span durations (found via a stack walk).
        const std::size_t begin = i;
        std::uint64_t total_ns = 0;
        std::size_t count = 0;
        {
            std::vector<std::uint64_t> ends;
            for (std::size_t j = begin; j < events_.size() && events_[j].tid == tid; ++j) {
                const trace_event& e = events_[j];
                while (!ends.empty() && ends.back() <= e.start_ns) ends.pop_back();
                if (ends.empty()) total_ns += e.dur_ns;
                ends.push_back(e.start_ns + e.dur_ns);
                ++count;
            }
        }
        char head[128];
        std::snprintf(head, sizeof head, "== %s · %zu spans · %.2f ms ==\n", tname.c_str(),
                      count, static_cast<double>(total_ns) / 1e6);
        out += head;
        std::vector<std::uint64_t> ends;
        for (; i < events_.size() && events_[i].tid == tid; ++i) {
            const trace_event& e = events_[i];
            while (!ends.empty() && ends.back() <= e.start_ns) ends.pop_back();
            const double ms = static_cast<double>(e.dur_ns) / 1e6;
            const double pct =
                total_ns ? 100.0 * static_cast<double>(e.dur_ns) / static_cast<double>(total_ns)
                         : 0.0;
            out += std::string(2 * ends.size(), ' ');
            const int bar = static_cast<int>(pct / 5.0 + 0.5);  // 20 cells = 100%
            char line[160];
            std::snprintf(line, sizeof line, "%-28s %9.3f ms %5.1f%% |%-20s|", e.name.c_str(),
                          ms, pct, std::string(static_cast<std::size_t>(bar), '#').c_str());
            out += line;
            if (!e.args.empty()) {
                out += "  (";
                for (std::size_t a = 0; a < e.args.size(); ++a) {
                    if (a) out += ", ";
                    out += e.args[a].key + "=" + e.args[a].value;
                }
                out += ')';
            }
            out += '\n';
            ends.push_back(e.start_ns + e.dur_ns);
        }
    }
    if (dropped_ > 0) out += "(dropped " + std::to_string(dropped_) + " spans: buffer cap)\n";
    return out;
}

span::span(std::string_view name, std::string_view category) {
    start_ns_ = now_ns();
    auto& s = state();
    if (!s.enabled.load(std::memory_order_relaxed)) return;
    recording_ = true;
    epoch_ = s.epoch.load(std::memory_order_relaxed);
    ev_.name = std::string(name);
    ev_.category = std::string(category);
}

span::~span() {
    if (!recording_) return;
    ev_.start_ns = start_ns_;
    ev_.dur_ns = now_ns() - start_ns_;
    local_buffer().append(std::move(ev_), epoch_);
}

void span::arg(std::string_view key, std::string_view value) {
    if (!recording_) return;
    ev_.args.push_back({std::string(key), std::string(value), false});
}

void span::arg(std::string_view key, std::uint64_t v) {
    if (!recording_) return;
    ev_.args.push_back({std::string(key), std::to_string(v), true});
}

void span::arg(std::string_view key, std::int64_t v) {
    if (!recording_) return;
    ev_.args.push_back({std::string(key), std::to_string(v), true});
}

void span::arg(std::string_view key, double v) {
    if (!recording_) return;
    ev_.args.push_back({std::string(key), format_number(v), true});
}

double span::seconds() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

}  // namespace asynth::obs
