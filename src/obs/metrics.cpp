#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace asynth::obs {

histogram::histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    require(!bounds_.empty(), "histogram needs at least one bucket bound");
    require(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bucket bounds must be ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void histogram::observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
    for (;;) {
        double s;
        __builtin_memcpy(&s, &old, sizeof s);
        s += v;
        std::uint64_t nb;
        __builtin_memcpy(&nb, &s, sizeof nb);
        if (sum_bits_.compare_exchange_weak(old, nb, std::memory_order_relaxed)) break;
    }
}

histogram::snapshot_data histogram::snapshot() const {
    snapshot_data s;
    s.bounds = bounds_;
    s.buckets.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        s.count += s.buckets[i];
    }
    const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    __builtin_memcpy(&s.sum, &bits, sizeof s.sum);
    return s;
}

double histogram::snapshot_data::percentile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank && seen > 0) {
            if (i < bounds.size()) return bounds[i];
            return bounds.empty() ? 0.0 : bounds.back();
        }
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> default_ms_buckets() {
    return {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
}

registry& registry::global() {
    static registry r;
    return r;
}

registry::entry& registry::find_or_insert(std::string_view name, metric_kind kind,
                                          std::string_view help) {
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        it = metrics_.emplace(std::string(name), entry{}).first;
        it->second.kind = kind;
        it->second.help = std::string(help);
    } else {
        require(it->second.kind == kind,
                "metric '" + std::string(name) + "' re-registered with a different kind");
        if (it->second.help.empty() && !help.empty()) it->second.help = std::string(help);
    }
    return it->second;
}

counter& registry::get_counter(std::string_view name, std::string_view help) {
    std::lock_guard lock(m_);
    entry& e = find_or_insert(name, metric_kind::counter, help);
    if (!e.c) e.c = std::make_unique<counter>();
    return *e.c;
}

gauge& registry::get_gauge(std::string_view name, std::string_view help) {
    std::lock_guard lock(m_);
    entry& e = find_or_insert(name, metric_kind::gauge, help);
    if (!e.g) e.g = std::make_unique<gauge>();
    return *e.g;
}

histogram& registry::get_histogram(std::string_view name, std::vector<double> bounds,
                                   std::string_view help) {
    std::lock_guard lock(m_);
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        entry& e = find_or_insert(name, metric_kind::histogram, help);
        return *e.h;
    }
    // Construct before inserting: a bad-bounds throw (histogram's ctor
    // validation) must not leave a half-registered entry behind.
    auto h = std::make_unique<histogram>(std::move(bounds));
    entry& e = find_or_insert(name, metric_kind::histogram, help);
    e.h = std::move(h);
    return *e.h;
}

std::vector<metric_snapshot> registry::snapshot() const {
    std::lock_guard lock(m_);
    std::vector<metric_snapshot> out;
    out.reserve(metrics_.size());
    for (const auto& [name, e] : metrics_) {
        metric_snapshot s;
        s.name = name;
        s.help = e.help;
        s.kind = e.kind;
        switch (e.kind) {
            case metric_kind::counter: s.counter_value = e.c->value(); break;
            case metric_kind::gauge: s.gauge_value = e.g->value(); break;
            case metric_kind::histogram: s.hist = e.h->snapshot(); break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>> registry::counter_values() const {
    std::lock_guard lock(m_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& [name, e] : metrics_)
        if (e.kind == metric_kind::counter) out.emplace_back(name, e.c->value());
    return out;
}

namespace {

// Prometheus renders le= labels as decimal with no trailing zeros.
std::string format_double(double v) {
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

}  // namespace

std::string registry::prometheus_text() const {
    const auto metrics = snapshot();
    std::ostringstream os;
    for (const auto& m : metrics) {
        if (!m.help.empty()) os << "# HELP " << m.name << " " << m.help << "\n";
        switch (m.kind) {
            case metric_kind::counter:
                os << "# TYPE " << m.name << " counter\n";
                os << m.name << " " << m.counter_value << "\n";
                break;
            case metric_kind::gauge:
                os << "# TYPE " << m.name << " gauge\n";
                os << m.name << " " << format_double(m.gauge_value) << "\n";
                break;
            case metric_kind::histogram: {
                os << "# TYPE " << m.name << " histogram\n";
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i < m.hist.buckets.size(); ++i) {
                    cum += m.hist.buckets[i];
                    const std::string le = i < m.hist.bounds.size()
                                               ? format_double(m.hist.bounds[i])
                                               : std::string("+Inf");
                    os << m.name << "_bucket{le=\"" << le << "\"} " << cum << "\n";
                }
                os << m.name << "_sum " << format_double(m.hist.sum) << "\n";
                os << m.name << "_count " << m.hist.count << "\n";
                break;
            }
        }
    }
    return os.str();
}

}  // namespace asynth::obs
