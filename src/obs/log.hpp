// Structured logging: a process-wide logger that emits one self-contained
// JSON object per line (wall + monotonic timestamps, level, thread track
// name, event name, typed key/value fields) to stderr or a --log-file, with
// per-level runtime filtering and a bounded in-memory ring of recent events
// for the daemon's `stats` op and crash paths to dump.
//
// Cost model (the same contract as the tracer, trace.hpp): a `log_event`
// constructed below the configured level costs one relaxed atomic load --
// no allocation, no clock read, no locking; `field()` calls are no-ops.
// Events are therefore placed at request/run/lifecycle granularity, never
// inside hot loops.
//
// Concurrency design, mirroring the tracer's owner-only-writes discipline:
// the emitting thread formats the complete line into its own buffer (no
// shared state touched while building), then takes the sink mutex only for
// one fwrite of the finished line plus the ring push.  One fwrite per line
// is what guarantees no torn or interleaved lines under concurrent emitters
// (tests/test_log.cpp stresses this with 8 threads).
//
// Correlation: a thread may bind a request id with the RAII `log_context`
// guard; every line emitted while the guard lives carries `"req_id"`.
// Contexts nest (inner guards shadow, destructors restore), so a batch
// worker's per-spec id and a nested helper's id compose correctly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asynth::obs {

/// Severity, ascending.  `off` is a filter level only, never an event level.
enum class log_level : std::uint8_t { debug = 0, info, warn, error, off };

/// "debug" | "info" | "warn" | "error" | "off".
[[nodiscard]] const char* level_name(log_level l) noexcept;
/// Inverse of level_name; nullopt on anything else.
[[nodiscard]] std::optional<log_level> level_from_name(std::string_view s) noexcept;

/// Runtime filter: events below @p l are dropped on the lock-free path.
/// The process default is `warn` (the CLI's --log-level overrides it).
void set_log_level(log_level l) noexcept;
[[nodiscard]] log_level get_log_level() noexcept;
/// One relaxed load: would an event at @p l be emitted right now?
[[nodiscard]] bool log_enabled(log_level l) noexcept;

/// Redirects emission from stderr to @p path (append mode).  Returns false
/// and fills @p error when the file cannot be opened; the sink is unchanged.
[[nodiscard]] bool open_log_file(const std::string& path, std::string& error);

/// Capacity of the bounded recent-events ring.
[[nodiscard]] std::size_t log_ring_capacity() noexcept;
/// Snapshot of the ring, oldest first.  Each entry is one self-contained
/// JSON object (no trailing newline), so callers may embed them verbatim.
[[nodiscard]] std::vector<std::string> recent_log_lines();
/// Writes the ring to @p to, one line per event -- the crash path (the
/// daemon's terminate handler dumps to stderr before aborting).
void dump_recent_log(std::FILE* to);

/// One structured event, emitted on destruction.  Constructed below the
/// configured level it is inert: fields are no-ops and nothing is emitted.
///
///     obs::log_event(obs::log_level::warn, "service.slow_request")
///         .field("spec", name)
///         .field("service_ms", ms);
class log_event {
public:
    log_event(log_level lvl, std::string_view event);
    ~log_event();
    log_event(const log_event&) = delete;
    log_event& operator=(const log_event&) = delete;

    log_event& field(std::string_view key, std::string_view value);
    log_event& field(std::string_view key, const char* value) {
        return field(key, std::string_view(value));
    }
    log_event& field(std::string_view key, std::uint64_t v);
    log_event& field(std::string_view key, std::int64_t v);
    log_event& field(std::string_view key, double v);
    log_event& field(std::string_view key, bool v);

private:
    bool emitting_ = false;
    std::string line_;  ///< owner-only while building; published under the sink mutex
};

/// RAII request-identity binding for the calling thread.  An empty @p req_id
/// binds nothing (the enclosing context, if any, stays visible).
class log_context {
public:
    explicit log_context(std::string_view req_id);
    ~log_context();
    log_context(const log_context&) = delete;
    log_context& operator=(const log_context&) = delete;

private:
    bool bound_ = false;
    std::string prev_;
};

/// The req_id bound to the calling thread ("" when none).
[[nodiscard]] const std::string& current_req_id() noexcept;

namespace detail {
/// Names the calling thread for log lines.  Called by obs::name_thread so
/// trace tracks and log lines agree on one name per thread.
void set_log_thread_name(std::string_view name);
}  // namespace detail

}  // namespace asynth::obs
